//! Integration tests for the paper's headline qualitative results, at a
//! reduced scale (the full-scale numbers are produced by the benches and
//! recorded in EXPERIMENTS.md).

use cacti_d::study::configs::{build, LlcKind};
use cacti_d::study::figure4::run_one;
use cacti_d::study::power::{energy_delay, MemoryHierarchyPower};
use cacti_d::study::table2;
use cacti_d::workloads::NpbApp;

const N: u64 = 800_000;

#[test]
fn table2_reproduces_within_paper_class_error() {
    let (_, rows) = table2::table2();
    let mae = table2::mean_abs_error(&rows);
    // The paper's CACTI-D averaged 16 %; stay within 2× of that.
    assert!(mae < 32.0, "Table 2 mean |error| {mae:.1}%");
}

#[test]
fn ft_b_ranking_matches_figure4() {
    // Paper §4.2: ft.B's working set fits the big L3s; the SRAM L3 is too
    // small, so the DRAM L3s outperform it.
    let nol3 = run_one(&build(LlcKind::NoL3), NpbApp::FtB, N);
    let sram = run_one(&build(LlcKind::Sram24), NpbApp::FtB, N);
    let comm = run_one(&build(LlcKind::CmDramC192), NpbApp::FtB, N);
    assert!(sram.stats.ipc() > nol3.stats.ipc(), "any L3 helps ft.B");
    assert!(
        comm.stats.ipc() > sram.stats.ipc(),
        "the 24MB SRAM L3 is not big enough for ft.B ({} vs {})",
        comm.stats.ipc(),
        sram.stats.ipc()
    );
    assert!(comm.stats.avg_read_latency() < nol3.stats.avg_read_latency());
}

#[test]
fn ua_c_is_insensitive_to_the_l3() {
    // Paper §4.2: ua.C's L3 access frequency is very low.
    let nol3 = run_one(&build(LlcKind::NoL3), NpbApp::UaC, N);
    let comm = run_one(&build(LlcKind::CmDramC192), NpbApp::UaC, N);
    let delta = (comm.stats.ipc() / nol3.stats.ipc() - 1.0).abs();
    assert!(delta < 0.15, "ua.C moved by {delta:.2}");
}

#[test]
fn sram_l3_raises_hierarchy_power_comm_l3_barely_does() {
    // Paper §4.3: SRAM/LP-DRAM L3s increase memory-hierarchy power
    // (leakage); COMM-DRAM L3s are nearly free.
    let apps = [NpbApp::BtC, NpbApp::FtB];
    let mut nol3_p = 0.0;
    let mut sram_p = 0.0;
    let mut comm_p = 0.0;
    for &app in &apps {
        for (kind, acc) in [
            (LlcKind::NoL3, &mut nol3_p),
            (LlcKind::Sram24, &mut sram_p),
            (LlcKind::CmDramEd96, &mut comm_p),
        ] {
            let cfg = build(kind);
            let run = run_one(&cfg, app, N);
            *acc += MemoryHierarchyPower::from_run(&cfg, &run.stats).total();
        }
    }
    assert!(
        sram_p > nol3_p * 1.1,
        "SRAM L3 must add watts: {sram_p:.2} vs {nol3_p:.2}"
    );
    assert!(
        comm_p < nol3_p * 1.35,
        "COMM L3 adds little power: {comm_p:.2} vs {nol3_p:.2}"
    );
    assert!(comm_p < sram_p, "COMM beats SRAM on hierarchy power");
}

#[test]
fn comm_dram_l3_wins_energy_delay_on_fitting_workloads() {
    // Paper §6: the COMM-DRAM LLCs have the best system energy-delay.
    let app = NpbApp::FtB;
    let mut edp = Vec::new();
    for kind in [LlcKind::NoL3, LlcKind::Sram24, LlcKind::CmDramC192] {
        let cfg = build(kind);
        let run = run_one(&cfg, app, N);
        let h = MemoryHierarchyPower::from_run(&cfg, &run.stats);
        edp.push(energy_delay(&h, run.seconds));
    }
    let (nol3, sram, comm) = (edp[0], edp[1], edp[2]);
    assert!(
        comm < nol3,
        "COMM L3 improves E*D: {comm:.3e} vs {nol3:.3e}"
    );
    assert!(
        comm < sram,
        "COMM L3 beats SRAM on E*D: {comm:.3e} vs {sram:.3e}"
    );
}

#[test]
fn cycle_breakdown_is_conserved_and_memory_dominated_for_cg() {
    let cfg = build(LlcKind::NoL3);
    let run = run_one(&cfg, NpbApp::CgC, N);
    let total: u64 = run.stats.cycle_breakdown.iter().sum();
    assert_eq!(total, run.stats.cycles * 32, "thread-cycle conservation");
    let f = run.stats.breakdown_fractions();
    assert!(f[3] > 0.5, "cg.C is memory-bound: mem fraction {:.2}", f[3]);
}
