//! End-to-end exit-code contract of the `cactid` CLI.
//!
//! `lint` and `audit --jsonl` share one exit policy: rule errors always
//! fail (exit 1), warnings fail only under `--deny-warnings`, a clean or
//! warnings-only report exits 0, and a bad invocation (unknown rule code,
//! unknown flag) exits 2 before any analysis runs. These tests pin that
//! policy through the real binary, not the library.

use std::path::PathBuf;
use std::process::{Command, Output};

fn cactid(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_cactid"))
        .args(args)
        .output()
        .expect("cactid binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("cactid exits, not signals")
}

fn stdout(out: &Output) -> String {
    String::from_utf8(out.stdout.clone()).expect("stdout is UTF-8")
}

/// A two-record run whose larger capacity is *faster* — a CD0101
/// monotonicity warning, and nothing else.
fn inversion_jsonl() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cactid-cli-exit-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inversion.jsonl");
    let record = |idx: u64, cap: u64, ns: f64| {
        format!(
            "{{\"idx\":{idx},\"capacity_bytes\":{cap},\"block_bytes\":64,\
             \"associativity\":8,\"banks\":1,\"node_nm\":32.0,\"cell\":\"sram\",\
             \"mode\":\"normal\",\"opt\":\"default\",\"status\":\"ok\",\
             \"access_ns\":{ns},\"random_cycle_ns\":{ns},\"read_nj\":0.1,\
             \"write_nj\":0.1,\"area_mm2\":1.0,\"leakage_mw\":10.0}}\n"
        )
    };
    std::fs::write(
        &path,
        format!("{}{}", record(0, 64 << 10, 2.0), record(1, 128 << 10, 1.0)),
    )
    .unwrap();
    path
}

#[test]
fn lint_errors_always_exit_nonzero() {
    // 1.5 MB → 3072 sets: CD0001 fires at error severity.
    let out = cactid(&["lint", "--size", "1536K"]);
    assert_eq!(code(&out), 1, "{out:?}");
    assert!(stdout(&out).contains("error[CD0001]"), "{out:?}");
}

#[test]
fn lint_clean_specs_exit_zero_even_with_deny_warnings() {
    let clean = &["lint", "--size", "2M", "--cell", "sram", "--node", "32"];
    let out = cactid(clean);
    assert_eq!(code(&out), 0, "{out:?}");
    let denied = cactid(&[clean as &[&str], &["--deny-warnings"]].concat());
    assert_eq!(code(&denied), 0, "{denied:?}");
}

#[test]
fn lint_unknown_rule_code_is_a_usage_error() {
    let out = cactid(&["lint", "--size", "2M", "--allow", "CD9999"]);
    assert_eq!(code(&out), 2, "{out:?}");
    let deny = cactid(&["lint", "--size", "2M", "--deny", "bogus"]);
    assert_eq!(code(&deny), 2, "{deny:?}");
}

#[test]
fn lint_format_json_emits_parseable_diagnostics() {
    let out = cactid(&["lint", "--size", "1536K", "--format", "json"]);
    assert_eq!(code(&out), 1, "errors still fail in json mode");
    let text = stdout(&out);
    let first = text.lines().next().expect("one diagnostic line");
    assert!(first.starts_with('{') && first.ends_with('}'), "{first}");
    assert!(first.contains("\"code\":\"CD0001\""), "{first}");
    assert!(first.contains("\"severity\":\"error\""), "{first}");
}

#[test]
fn warnings_only_exit_zero_unless_denied() {
    let path = inversion_jsonl();
    let jsonl = path.to_str().unwrap();

    // A warning-only report exits 0...
    let out = cactid(&["audit", "--jsonl", jsonl]);
    assert_eq!(code(&out), 0, "{out:?}");
    assert!(stdout(&out).contains("warning[CD0101]"), "{out:?}");

    // ...fails under --deny-warnings...
    let denied = cactid(&["audit", "--jsonl", jsonl, "--deny-warnings"]);
    assert_eq!(code(&denied), 1, "{denied:?}");

    // ...fails when the rule itself is promoted to deny...
    let promoted = cactid(&["audit", "--jsonl", jsonl, "--deny", "CD0101"]);
    assert_eq!(code(&promoted), 1, "{promoted:?}");
    assert!(stdout(&promoted).contains("error[CD0101]"), "{promoted:?}");

    // ...and passes again when the rule is allowed away, leaving an
    // empty machine-readable report.
    let allowed = cactid(&[
        "audit",
        "--jsonl",
        jsonl,
        "--allow",
        "CD0101",
        "--deny-warnings",
        "--format",
        "json",
    ]);
    assert_eq!(code(&allowed), 0, "{allowed:?}");
    assert!(stdout(&allowed).is_empty(), "{allowed:?}");

    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

#[test]
fn audit_grid_mode_classifies_and_exits_zero() {
    let out = cactid(&[
        "audit",
        "--grid",
        "--sizes",
        "48K,64K,512M",
        "--cells",
        "sram",
        "--nodes",
        "32",
    ]);
    assert_eq!(code(&out), 0, "{out:?}");
    let text = stdout(&out);
    assert!(text.contains("infeasibility histogram"), "{text}");
    assert!(text.contains("1 maybe-feasible"), "{text}");
    assert!(text.contains("1 statically infeasible"), "{text}");
    assert!(text.contains("1 invalid"), "{text}");

    let json = cactid(&[
        "audit", "--grid", "--sizes", "48K,64K", "--cells", "sram", "--nodes", "32", "--format",
        "json",
    ]);
    assert_eq!(code(&json), 0, "{json:?}");
    let lines: Vec<String> = stdout(&json).lines().map(str::to_string).collect();
    assert_eq!(lines.len(), 2, "one JSON object per grid point");
    assert!(
        lines[0].contains("\"verdict\":\"invalid\"") && lines[0].contains("\"CD0001\""),
        "invalid points name the spec rule: {}",
        lines[0]
    );
    assert!(
        lines[1].contains("\"verdict\":\"maybe-feasible\""),
        "{}",
        lines[1]
    );
}
