//! Meta-lint over the observability layer: every literal `counter!` /
//! `histogram!` call site in the workspace must be documented in
//! DESIGN.md §13's metric inventory table, and every documented metric
//! must still have a call site. The `cactid-obs` crate itself is
//! excluded — its macro uses are doc examples and self-tests with
//! placeholder names.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.unwrap().path();
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name != "target" && name != "obs" {
                rust_sources(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Extracts `macro!("name")` metric names from one line, skipping
/// comments so doc examples don't count as call sites.
fn names_on_line<'a>(line: &'a str, marker: &str) -> Vec<&'a str> {
    if line.trim_start().starts_with("//") {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut rest = line;
    while let Some(pos) = rest.find(marker) {
        rest = &rest[pos + marker.len()..];
        if let Some(end) = rest.find('"') {
            out.push(&rest[..end]);
            rest = &rest[end..];
        }
    }
    out
}

/// Metric name → kind ("counter" / "histogram") at real call sites.
fn call_sites() -> BTreeMap<String, &'static str> {
    let root = repo_root();
    let mut files = Vec::new();
    rust_sources(&root.join("crates"), &mut files);
    rust_sources(&root.join("src"), &mut files);
    let mut out = BTreeMap::new();
    for path in files {
        let text = std::fs::read_to_string(&path).unwrap();
        for line in text.lines() {
            for name in names_on_line(line, "counter!(\"") {
                out.insert(name.to_string(), "counter");
            }
            for name in names_on_line(line, "histogram!(\"") {
                out.insert(name.to_string(), "histogram");
            }
        }
    }
    out
}

/// Metric name → kind parsed from DESIGN.md §13's inventory table rows
/// (`| `name` | kind | meaning |`).
fn documented() -> BTreeMap<String, String> {
    let doc = std::fs::read_to_string(repo_root().join("DESIGN.md")).unwrap();
    let mut out = BTreeMap::new();
    for line in doc.lines() {
        let line = line.trim();
        let Some(rest) = line.strip_prefix("| `") else {
            continue;
        };
        let Some((name, rest)) = rest.split_once("` | ") else {
            continue;
        };
        let Some((kind, _)) = rest.split_once(" | ") else {
            continue;
        };
        if kind == "counter" || kind == "histogram" {
            out.insert(name.to_string(), kind.to_string());
        }
    }
    out
}

#[test]
fn metric_call_sites_and_design_md_inventory_agree() {
    let sites = call_sites();
    let table = documented();
    assert!(
        !sites.is_empty(),
        "no metric call sites found in the workspace?"
    );
    assert!(
        !table.is_empty(),
        "no inventory rows found in DESIGN.md §13?"
    );

    let undocumented: Vec<&String> = sites.keys().filter(|n| !table.contains_key(*n)).collect();
    assert!(
        undocumented.is_empty(),
        "metrics recorded in code but missing from DESIGN.md §13: {undocumented:?}"
    );
    let stale: Vec<&String> = table.keys().filter(|n| !sites.contains_key(*n)).collect();
    assert!(
        stale.is_empty(),
        "metrics documented in DESIGN.md §13 with no call site: {stale:?}"
    );
    for (name, kind) in &sites {
        assert_eq!(
            table[name], *kind,
            "{name} is a {kind} in code but documented as {}",
            table[name]
        );
    }
}

#[test]
fn audit_pipeline_metrics_are_inventoried() {
    // The metrics this PR introduced must be present on both sides.
    let sites = call_sites();
    let table = documented();
    for name in [
        "core.screen.calls",
        "core.screen.infeasible",
        "explore.engine.audit_skipped",
        "explore.audit.points",
    ] {
        assert_eq!(sites.get(name), Some(&"counter"), "{name} call site");
        assert_eq!(
            table.get(name).map(String::as_str),
            Some("counter"),
            "{name} row"
        );
    }
}
