//! Property-based tests on the core data structures and model invariants.
//!
//! Enabled with `cargo test --features proptest`. The suite originally used
//! the `proptest` crate; to keep the workspace build hermetic (no registry
//! dependencies) it now drives the same properties with the in-tree
//! deterministic xorshift64* generator (`memsim::rng`), sampling a fixed
//! number of cases per property from a fixed seed.
#![cfg(feature = "proptest")]

use cacti_d::core::{solve, AccessMode, MemoryKind, MemorySpec};
use cacti_d::sim::cache::{LineState, SetAssocCache};
use cacti_d::sim::config::{DramConfig, PagePolicy};
use cacti_d::sim::dram::DramChannel;
use cacti_d::sim::rng::XorShift64Star;
use cacti_d::tech::{CellTechnology, TechNode, Technology};

/// Cases per property — matches the old `ProptestConfig::with_cases(64)`.
const CASES: u64 = 64;

fn dram_cfg(policy: PagePolicy) -> DramConfig {
    DramConfig {
        channels: 1,
        banks: 8,
        page_bytes: 8 << 10,
        t_rcd: 31,
        t_cl: 27,
        t_rp: 22,
        t_rc: 109,
        t_rrd: 6,
        t_burst: 4,
        page_policy: policy,
    }
}

/// The spec builder never panics; it either builds or returns an error.
#[test]
fn spec_builder_total() {
    let mut rng = XorShift64Star::new(0xCAC7_1D01);
    for _ in 0..CASES {
        let cap_shift = rng.next_in_range(10, 33) as u32;
        let block_shift = rng.next_in_range(2, 8) as u32;
        let assoc = rng.next_in_range(1, 39) as u32;
        let banks_shift = rng.next_in_range(0, 4) as u32;
        let _ = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(1 << block_shift)
            .associativity(assoc)
            .banks(1 << banks_shift)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N45)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build();
    }
}

/// Every solution of any feasible spec reports positive, finite metrics,
/// and capacity is conserved by the organization.
#[test]
fn solutions_are_physical() {
    let mut rng = XorShift64Star::new(0xCAC7_1D02);
    for _ in 0..CASES {
        let cap_shift = rng.next_in_range(16, 23) as u32;
        let cell = CellTechnology::ALL[rng.next_below(3) as usize];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        if let Ok(sols) = solve(&spec) {
            for s in sols {
                assert!(s.access_time.is_finite() && s.access_time.value() > 0.0);
                assert!(s.area.is_finite() && s.area.value() > 0.0);
                assert!(s.read_energy.is_finite() && s.read_energy.value() > 0.0);
                assert!(s.leakage_power.is_finite() && s.leakage_power.value() > 0.0);
                let bits = s.org.rows(&spec)
                    * s.org.cols(&spec)
                    * u64::from(s.org.ndwl)
                    * u64::from(s.org.ndbl);
                assert_eq!(bits, spec.bank_bytes() * 8);
            }
        }
    }
}

/// A cache never holds more lines than its capacity, a line inserted is
/// findable until evicted, and eviction reports a previously-present line
/// of the same set.
#[test]
fn cache_capacity_and_lookup_invariants() {
    let mut rng = XorShift64Star::new(0xCAC7_1D03);
    for _ in 0..CASES {
        let n_ops = rng.next_in_range(1, 299);
        let mut cache = SetAssocCache::new(4096, 64, 4); // 16 sets x 4 ways
        for _ in 0..n_ops {
            let line = rng.next_below(4096);
            let addr = line * 64;
            let ev = cache.insert(addr, LineState::Shared);
            assert!(cache.probe(addr).is_some(), "inserted line present");
            if let Some(e) = ev {
                // The evicted line maps to the same set as the inserted one.
                assert_eq!(cache.set_index(e.addr), cache.set_index(addr));
                assert!(cache.probe(e.addr).is_none(), "victim gone");
            }
            assert!(cache.valid_lines() <= 64);
        }
    }
}

/// DRAM channel timing invariants under arbitrary request streams:
/// completions never precede their request by less than the minimum
/// service time, page hits only occur under the open-page policy, and
/// every access pays at least CL + burst.
#[test]
fn dram_channel_time_is_causal() {
    let mut rng = XorShift64Star::new(0xCAC7_1D04);
    for _ in 0..CASES {
        let open = rng.next_bool(0.5);
        let policy = if open {
            PagePolicy::Open
        } else {
            PagePolicy::Closed
        };
        let cfg = dram_cfg(policy);
        let mut ch = DramChannel::new(cfg.clone());
        let mut now = 0u64;
        let n_reqs = rng.next_in_range(1, 199);
        for _ in 0..n_reqs {
            let addr = rng.next_below(1 << 22);
            now += rng.next_below(50);
            let a = ch.access(addr, now);
            let min_service = cfg.t_cl + cfg.t_burst;
            assert!(a.done_at >= now + min_service, "causality violated");
            if a.activated {
                assert!(a.done_at >= now + cfg.t_rcd + min_service);
            }
            if !open {
                assert!(!a.page_hit, "closed page never hits a row");
            }
            assert!(!(a.page_hit && a.activated), "hit implies no activate");
        }
    }
}

/// DRAM sense signal is monotone-decreasing in bitline length and the
/// technology tables interpolate within their anchors.
#[test]
fn dram_signal_monotone() {
    let mut rng = XorShift64Star::new(0xCAC7_1D05);
    let tech = Technology::new(TechNode::N32);
    let cell = tech.cell(CellTechnology::CommDram);
    for _ in 0..CASES {
        let rows_a = rng.next_in_range(16, 255) as usize;
        let extra = rng.next_in_range(1, 255) as usize;
        let a = cell.dram_sense_signal(rows_a).unwrap();
        let b = cell.dram_sense_signal(rows_a + extra).unwrap();
        assert!(b < a);
        assert!(a.value() < cell.vdd_cell.value() / 2.0 + 1e-12);
    }
}

#[test]
fn cache_eviction_is_set_local() {
    // Eviction occurs when a *set* fills, long before the whole cache is
    // full — verify with a direct conflict chain.
    let mut cache = SetAssocCache::new(4096, 64, 4);
    // 5 lines in the same set (stride = sets × line = 16 × 64).
    for i in 0..5u64 {
        cache.insert(i * 1024, LineState::Shared);
    }
    assert_eq!(cache.valid_lines(), 4);
}

/// The staged/pruned solve pipeline and the debug-only unpruned reference
/// produce identical `(org, access_time, area, energy)` tuples for random
/// valid specs, and the pre-screen accounts for exactly the candidates the
/// full models reject.
#[test]
fn staged_solve_matches_the_unpruned_reference() {
    use cacti_d::core::{solve_with_stats, solve_with_stats_reference};
    let mut rng = XorShift64Star::new(0xCAC7_1D06);
    for _ in 0..CASES {
        let cap_shift = rng.next_in_range(16, 23) as u32;
        let assoc = 1u32 << rng.next_in_range(0, 4) as u32;
        let cell = CellTechnology::ALL[rng.next_below(3) as usize];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(assoc)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let staged = solve_with_stats(&spec, None);
        let reference = solve_with_stats_reference(&spec, None);
        assert_eq!(
            staged.stats.bound_pruned, reference.stats.electrical_pruned,
            "pre-screen does not account for the model rejections"
        );
        match (staged.result, reference.result) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.org, y.org);
                    assert_eq!(x.access_time, y.access_time);
                    assert_eq!(x.area, y.area);
                    assert_eq!(x.read_energy, y.read_energy);
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("pipelines disagree on feasibility: {a:?} vs {b:?}"),
        }
    }
}

/// Three-way verdict agreement on random subarray geometries: the
/// closed-form pre-screen, the certified fast path (under both the proved
/// and the conservative certificate), and the full electrical evaluation
/// accept/reject exactly the same `(cell, rows, cols)` points — and the
/// screens name the same failure reason.
#[test]
fn prescreen_certificates_and_evaluation_agree_on_random_arrays() {
    use cacti_d::core::array::{evaluate, prescreen_explain, prescreen_verdict_with, ArrayInput};
    use cacti_d::core::CertifiedBounds;

    let mut rng = XorShift64Star::new(0xCAC7_1D08);
    let conservative = CertifiedBounds::conservative();
    let nodes = [TechNode::N90, TechNode::N45, TechNode::N32];
    // The proved certificates are per (node, cell): build each once.
    let mut proved = std::collections::HashMap::new();
    for _ in 0..CASES {
        let node = nodes[rng.next_below(3) as usize];
        let cell_tech = CellTechnology::ALL[rng.next_below(3) as usize];
        let rows = 1u64 << rng.next_in_range(4, 13);
        let cols = 1u64 << rng.next_in_range(5, 13);
        let tech = Technology::new(node);
        let cell = tech.cell(cell_tech);
        let input = ArrayInput {
            rows,
            cols,
            ndwl: 4,
            ndbl: 8,
            deg_bl_mux: 1,
            deg_sa_mux: 4,
            output_bits: cols.min(512),
            address_bits: 40,
            cell,
            periph: tech.peripheral_device(cell_tech),
            repeater_relax: 1.0,
            sleep_transistors: false,
            sense_fraction: 1.0,
        };

        let explained = prescreen_explain(&cell, rows, cols).map(|_| ());
        let evaluated = evaluate(&tech, &input);
        assert_eq!(
            explained.is_ok(),
            evaluated.is_ok(),
            "screen and evaluation disagree for {cell_tech:?}@{node:?} {rows}x{cols}"
        );

        let bounds = proved
            .entry((node, cell_tech))
            .or_insert_with(|| cacti_d::prove::certified_bounds(node, cell_tech));
        for b in [&conservative, &*bounds] {
            assert_eq!(
                explained,
                prescreen_verdict_with(&cell, rows, cols, b),
                "certified fast path diverges for {cell_tech:?}@{node:?} {rows}x{cols}"
            );
        }
    }
}

/// Three-way agreement on random cache specs: `static_screen`, its
/// certified variant, and the real staged solve see the same organization
/// population — identical enumeration and bound-prune counts, a provably
/// infeasible verdict reproduces the solve's exact error and stats, and a
/// maybe-feasible verdict never over-counts the survivors.
#[test]
fn static_screen_certificates_and_solve_agree_on_random_specs() {
    use cacti_d::core::array::prescreen_explain;
    use cacti_d::core::{
        org, solve_with_stats, static_screen, static_screen_certified, ScreenVerdict,
    };

    let mut rng = XorShift64Star::new(0xCAC7_1D09);
    let nodes = [TechNode::N90, TechNode::N45, TechNode::N32];
    let mut proved = std::collections::HashMap::new();
    for _ in 0..CASES / 2 {
        let node = nodes[rng.next_below(3) as usize];
        let cell = CellTechnology::ALL[rng.next_below(3) as usize];
        let cap_shift = rng.next_in_range(14, 23) as u32;
        let assoc = 1u32 << rng.next_in_range(0, 4) as u32;
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(assoc)
            .banks(1)
            .cell_tech(cell)
            .node(node)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();

        let screen = static_screen(&spec);
        let bounds = proved
            .entry((node, cell))
            .or_insert_with(|| cacti_d::prove::certified_bounds(node, cell));
        assert_eq!(
            screen,
            static_screen_certified(&spec, bounds),
            "certified screen diverges for {cell:?}@{node:?} {}B x{assoc}",
            spec.capacity_bytes
        );

        // The screen's aggregate must restate the per-org closed form.
        let tech = Technology::new(node);
        let cell_params = tech.cell(cell);
        let mut enumerated = 0usize;
        let mut rejected = 0usize;
        for o in org::enumerate_lazy(&spec) {
            enumerated += 1;
            if prescreen_explain(&cell_params, o.rows(&spec), o.cols(&spec)).is_err() {
                rejected += 1;
            }
        }
        assert_eq!(screen.stats.orgs_enumerated, enumerated);
        assert_eq!(screen.stats.bound_pruned, rejected);
        assert_eq!(screen.reasons.total(), rejected);

        // And the real solve must see the same population.
        let solved = solve_with_stats(&spec, None);
        assert_eq!(solved.stats.orgs_enumerated, enumerated);
        assert_eq!(solved.stats.bound_pruned, rejected);
        match screen.verdict {
            ScreenVerdict::Infeasible(ref e) => {
                assert_eq!(solved.result.as_ref().err(), Some(e));
                assert_eq!(solved.stats, screen.stats, "infeasible stats diverge");
            }
            ScreenVerdict::MaybeFeasible { survivors } => {
                assert_eq!(survivors, enumerated - rejected);
                if let Ok(sols) = &solved.result {
                    assert!(sols.len() <= survivors, "more solutions than survivors");
                }
            }
        }
    }
}

/// Memo-carrying evaluation is order-independent: evaluating a spec's
/// candidates in a shuffled order through one shared [`EvalMemo`] returns,
/// for every candidate, exactly the from-scratch result. Sweep order only
/// changes which slices hit; it can never change what a slice returns,
/// because every slice is keyed by the complete set of inputs it reads.
#[test]
fn incremental_evaluation_carries_no_enumeration_order_dependence() {
    use cacti_d::core::array::{evaluate, evaluate_incremental, ArrayInput, EvalMemo};
    use cacti_d::core::org;

    let mut rng = XorShift64Star::new(0xCAC7_1D0A);
    for _ in 0..CASES / 4 {
        let cap_shift = rng.next_in_range(16, 21) as u32;
        let assoc = 1u32 << rng.next_in_range(0, 4) as u32;
        let cell_tech = CellTechnology::ALL[rng.next_below(3) as usize];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(assoc)
            .banks(1)
            .cell_tech(cell_tech)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let tech = Technology::new(TechNode::N32);
        let cell = tech.cell(cell_tech);
        let periph = tech.peripheral_device(cell_tech);

        // Fisher–Yates shuffle of the sweep order.
        let mut orgs: Vec<_> = org::enumerate_lazy(&spec).collect();
        for i in (1..orgs.len()).rev() {
            let j = rng.next_below(i as u64 + 1) as usize;
            orgs.swap(i, j);
        }

        let mut memo = EvalMemo::new();
        for o in &orgs {
            let input = ArrayInput {
                rows: o.rows(&spec),
                cols: o.cols(&spec),
                ndwl: o.ndwl,
                ndbl: o.ndbl,
                deg_bl_mux: o.deg_bl_mux,
                deg_sa_mux: o.deg_sa_mux,
                output_bits: spec.output_bits(),
                address_bits: spec.address_bits,
                cell,
                periph,
                repeater_relax: spec.opt.repeater_relax,
                sleep_transistors: spec.opt.sleep_transistors,
                sense_fraction: spec.sense_fraction(),
            };
            match (
                evaluate(&tech, &input),
                evaluate_incremental(&tech, &input, &mut memo),
            ) {
                (Ok(a), Ok(b)) => assert_eq!(a, b, "shuffled-order divergence at org {o:?}"),
                (Err(_), Err(_)) => {}
                (a, b) => panic!("feasibility flipped at org {o:?}: {a:?} vs {b:?}"),
            }
        }
    }
}

/// `solve_with_stats_parallel` returns the same solutions in the same
/// order as the serial staged pipeline, at every thread count.
#[test]
fn parallel_solve_ordering_equals_serial() {
    use cacti_d::core::{solve_with_stats, solve_with_stats_parallel};
    let mut rng = XorShift64Star::new(0xCAC7_1D07);
    for _ in 0..CASES / 4 {
        let cap_shift = rng.next_in_range(16, 21) as u32;
        let cell = CellTechnology::ALL[rng.next_below(3) as usize];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let serial = solve_with_stats(&spec, None);
        let threads = 1 + rng.next_below(8) as usize;
        let par = solve_with_stats_parallel(&spec, None, threads);
        assert_eq!(
            serial.stats, par.stats,
            "stats diverge at {threads} threads"
        );
        match (serial.result, par.result) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "ordering diverges at {threads} threads"),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("pipelines disagree on feasibility: {a:?} vs {b:?}"),
        }
    }
}
