//! Property-based tests (proptest) on the core data structures and model
//! invariants.

use cacti_d::core::{solve, AccessMode, MemoryKind, MemorySpec};
use cacti_d::sim::cache::{LineState, SetAssocCache};
use cacti_d::sim::config::{DramConfig, PagePolicy};
use cacti_d::sim::dram::DramChannel;
use cacti_d::tech::{CellTechnology, TechNode, Technology};
use proptest::prelude::*;

fn dram_cfg(policy: PagePolicy) -> DramConfig {
    DramConfig {
        channels: 1,
        banks: 8,
        page_bytes: 8 << 10,
        t_rcd: 31,
        t_cl: 27,
        t_rp: 22,
        t_rc: 109,
        t_rrd: 6,
        t_burst: 4,
        page_policy: policy,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The spec builder never panics; it either builds or returns an error.
    #[test]
    fn spec_builder_total(
        cap_shift in 10u32..34,
        block_shift in 2u32..9,
        assoc in 1u32..40,
        banks_shift in 0u32..5,
    ) {
        let _ = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(1 << block_shift)
            .associativity(assoc)
            .banks(1 << banks_shift)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N45)
            .kind(MemoryKind::Cache { access_mode: AccessMode::Normal })
            .build();
    }

    /// Every solution of any feasible spec reports positive, finite
    /// metrics, and capacity is conserved by the organization.
    #[test]
    fn solutions_are_physical(
        cap_shift in 16u32..24,
        cell_idx in 0usize..3,
    ) {
        let cell = CellTechnology::ALL[cell_idx];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache { access_mode: AccessMode::Normal })
            .build()
            .unwrap();
        if let Ok(sols) = solve(&spec) {
            for s in sols {
                prop_assert!(s.access_time.is_finite() && s.access_time > 0.0);
                prop_assert!(s.area.is_finite() && s.area > 0.0);
                prop_assert!(s.read_energy.is_finite() && s.read_energy > 0.0);
                prop_assert!(s.leakage_power.is_finite() && s.leakage_power > 0.0);
                let bits = s.org.rows(&spec) * s.org.cols(&spec)
                    * s.org.ndwl as u64 * s.org.ndbl as u64;
                prop_assert_eq!(bits, spec.bank_bytes() * 8);
            }
        }
    }

    /// A cache never holds more lines than its capacity, a line inserted is
    /// findable until evicted, and eviction reports a previously-present
    /// line of the same set.
    #[test]
    fn cache_capacity_and_lookup_invariants(
        ops in prop::collection::vec((0u64..4096, prop::bool::ANY), 1..300),
    ) {
        let mut cache = SetAssocCache::new(4096, 64, 4); // 16 sets x 4 ways
        for (line, _write) in &ops {
            let addr = line * 64;
            let ev = cache.insert(addr, LineState::Shared);
            prop_assert!(cache.probe(addr).is_some(), "inserted line present");
            if let Some(e) = ev {
                // The evicted line maps to the same set as the inserted one.
                prop_assert_eq!(cache.set_index(e.addr), cache.set_index(addr));
                prop_assert!(cache.probe(e.addr).is_none(), "victim gone");
            }
            prop_assert!(cache.valid_lines() <= 64);
        }
    }

    /// DRAM channel timing invariants under arbitrary request streams:
    /// completions never precede their request by less than the minimum
    /// service time, page hits only occur under the open-page policy, and
    /// every access pays at least CL + burst.
    #[test]
    fn dram_channel_time_is_causal(
        reqs in prop::collection::vec((0u64..(1 << 22), 0u64..50), 1..200),
        open in prop::bool::ANY,
    ) {
        let policy = if open { PagePolicy::Open } else { PagePolicy::Closed };
        let cfg = dram_cfg(policy);
        let mut ch = DramChannel::new(cfg.clone());
        let mut now = 0u64;
        for (addr, gap) in reqs {
            now += gap;
            let a = ch.access(addr, now);
            let min_service = cfg.t_cl + cfg.t_burst;
            prop_assert!(a.done_at >= now + min_service, "causality violated");
            if a.activated {
                prop_assert!(a.done_at >= now + cfg.t_rcd + min_service);
            }
            if !open {
                prop_assert!(!a.page_hit, "closed page never hits a row");
            }
            prop_assert!(!(a.page_hit && a.activated), "hit implies no activate");
        }
    }

    /// DRAM sense signal is monotone-decreasing in bitline length and the
    /// technology tables interpolate within their anchors.
    #[test]
    fn dram_signal_monotone(rows_a in 16usize..256, extra in 1usize..256) {
        let tech = Technology::new(TechNode::N32);
        let cell = tech.cell(CellTechnology::CommDram);
        let a = cell.dram_sense_signal(rows_a).unwrap();
        let b = cell.dram_sense_signal(rows_a + extra).unwrap();
        prop_assert!(b < a);
        prop_assert!(a < cell.vdd_cell / 2.0 + 1e-12);
    }
}

#[test]
fn cache_eviction_is_set_local() {
    // Eviction occurs when a *set* fills, long before the whole cache is
    // full — verify with a direct conflict chain.
    let mut cache = SetAssocCache::new(4096, 64, 4);
    // 5 lines in the same set (stride = sets × line = 16 × 64).
    for i in 0..5u64 {
        cache.insert(i * 1024, LineState::Shared);
    }
    assert_eq!(cache.valid_lines(), 4);
}
