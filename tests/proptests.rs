//! Property-based tests on the core data structures and model invariants.
//!
//! Enabled with `cargo test --features proptest`. The suite originally used
//! the `proptest` crate; to keep the workspace build hermetic (no registry
//! dependencies) it now drives the same properties with the in-tree
//! deterministic xorshift64* generator (`memsim::rng`), sampling a fixed
//! number of cases per property from a fixed seed.
#![cfg(feature = "proptest")]

use cacti_d::core::{solve, AccessMode, MemoryKind, MemorySpec};
use cacti_d::sim::cache::{LineState, SetAssocCache};
use cacti_d::sim::config::{DramConfig, PagePolicy};
use cacti_d::sim::dram::DramChannel;
use cacti_d::sim::rng::XorShift64Star;
use cacti_d::tech::{CellTechnology, TechNode, Technology};

/// Cases per property — matches the old `ProptestConfig::with_cases(64)`.
const CASES: u64 = 64;

fn dram_cfg(policy: PagePolicy) -> DramConfig {
    DramConfig {
        channels: 1,
        banks: 8,
        page_bytes: 8 << 10,
        t_rcd: 31,
        t_cl: 27,
        t_rp: 22,
        t_rc: 109,
        t_rrd: 6,
        t_burst: 4,
        page_policy: policy,
    }
}

/// The spec builder never panics; it either builds or returns an error.
#[test]
fn spec_builder_total() {
    let mut rng = XorShift64Star::new(0xCAC7_1D01);
    for _ in 0..CASES {
        let cap_shift = rng.next_in_range(10, 33) as u32;
        let block_shift = rng.next_in_range(2, 8) as u32;
        let assoc = rng.next_in_range(1, 39) as u32;
        let banks_shift = rng.next_in_range(0, 4) as u32;
        let _ = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(1 << block_shift)
            .associativity(assoc)
            .banks(1 << banks_shift)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N45)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build();
    }
}

/// Every solution of any feasible spec reports positive, finite metrics,
/// and capacity is conserved by the organization.
#[test]
fn solutions_are_physical() {
    let mut rng = XorShift64Star::new(0xCAC7_1D02);
    for _ in 0..CASES {
        let cap_shift = rng.next_in_range(16, 23) as u32;
        let cell = CellTechnology::ALL[rng.next_below(3) as usize];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        if let Ok(sols) = solve(&spec) {
            for s in sols {
                assert!(s.access_time.is_finite() && s.access_time.value() > 0.0);
                assert!(s.area.is_finite() && s.area.value() > 0.0);
                assert!(s.read_energy.is_finite() && s.read_energy.value() > 0.0);
                assert!(s.leakage_power.is_finite() && s.leakage_power.value() > 0.0);
                let bits = s.org.rows(&spec)
                    * s.org.cols(&spec)
                    * u64::from(s.org.ndwl)
                    * u64::from(s.org.ndbl);
                assert_eq!(bits, spec.bank_bytes() * 8);
            }
        }
    }
}

/// A cache never holds more lines than its capacity, a line inserted is
/// findable until evicted, and eviction reports a previously-present line
/// of the same set.
#[test]
fn cache_capacity_and_lookup_invariants() {
    let mut rng = XorShift64Star::new(0xCAC7_1D03);
    for _ in 0..CASES {
        let n_ops = rng.next_in_range(1, 299);
        let mut cache = SetAssocCache::new(4096, 64, 4); // 16 sets x 4 ways
        for _ in 0..n_ops {
            let line = rng.next_below(4096);
            let addr = line * 64;
            let ev = cache.insert(addr, LineState::Shared);
            assert!(cache.probe(addr).is_some(), "inserted line present");
            if let Some(e) = ev {
                // The evicted line maps to the same set as the inserted one.
                assert_eq!(cache.set_index(e.addr), cache.set_index(addr));
                assert!(cache.probe(e.addr).is_none(), "victim gone");
            }
            assert!(cache.valid_lines() <= 64);
        }
    }
}

/// DRAM channel timing invariants under arbitrary request streams:
/// completions never precede their request by less than the minimum
/// service time, page hits only occur under the open-page policy, and
/// every access pays at least CL + burst.
#[test]
fn dram_channel_time_is_causal() {
    let mut rng = XorShift64Star::new(0xCAC7_1D04);
    for _ in 0..CASES {
        let open = rng.next_bool(0.5);
        let policy = if open {
            PagePolicy::Open
        } else {
            PagePolicy::Closed
        };
        let cfg = dram_cfg(policy);
        let mut ch = DramChannel::new(cfg.clone());
        let mut now = 0u64;
        let n_reqs = rng.next_in_range(1, 199);
        for _ in 0..n_reqs {
            let addr = rng.next_below(1 << 22);
            now += rng.next_below(50);
            let a = ch.access(addr, now);
            let min_service = cfg.t_cl + cfg.t_burst;
            assert!(a.done_at >= now + min_service, "causality violated");
            if a.activated {
                assert!(a.done_at >= now + cfg.t_rcd + min_service);
            }
            if !open {
                assert!(!a.page_hit, "closed page never hits a row");
            }
            assert!(!(a.page_hit && a.activated), "hit implies no activate");
        }
    }
}

/// DRAM sense signal is monotone-decreasing in bitline length and the
/// technology tables interpolate within their anchors.
#[test]
fn dram_signal_monotone() {
    let mut rng = XorShift64Star::new(0xCAC7_1D05);
    let tech = Technology::new(TechNode::N32);
    let cell = tech.cell(CellTechnology::CommDram);
    for _ in 0..CASES {
        let rows_a = rng.next_in_range(16, 255) as usize;
        let extra = rng.next_in_range(1, 255) as usize;
        let a = cell.dram_sense_signal(rows_a).unwrap();
        let b = cell.dram_sense_signal(rows_a + extra).unwrap();
        assert!(b < a);
        assert!(a.value() < cell.vdd_cell.value() / 2.0 + 1e-12);
    }
}

#[test]
fn cache_eviction_is_set_local() {
    // Eviction occurs when a *set* fills, long before the whole cache is
    // full — verify with a direct conflict chain.
    let mut cache = SetAssocCache::new(4096, 64, 4);
    // 5 lines in the same set (stride = sets × line = 16 × 64).
    for i in 0..5u64 {
        cache.insert(i * 1024, LineState::Shared);
    }
    assert_eq!(cache.valid_lines(), 4);
}

/// The staged/pruned solve pipeline and the debug-only unpruned reference
/// produce identical `(org, access_time, area, energy)` tuples for random
/// valid specs, and the pre-screen accounts for exactly the candidates the
/// full models reject.
#[test]
fn staged_solve_matches_the_unpruned_reference() {
    use cacti_d::core::{solve_with_stats, solve_with_stats_reference};
    let mut rng = XorShift64Star::new(0xCAC7_1D06);
    for _ in 0..CASES {
        let cap_shift = rng.next_in_range(16, 23) as u32;
        let assoc = 1u32 << rng.next_in_range(0, 4) as u32;
        let cell = CellTechnology::ALL[rng.next_below(3) as usize];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(assoc)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let staged = solve_with_stats(&spec, None);
        let reference = solve_with_stats_reference(&spec, None);
        assert_eq!(
            staged.stats.bound_pruned, reference.stats.electrical_pruned,
            "pre-screen does not account for the model rejections"
        );
        match (staged.result, reference.result) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len());
                for (x, y) in a.iter().zip(&b) {
                    assert_eq!(x.org, y.org);
                    assert_eq!(x.access_time, y.access_time);
                    assert_eq!(x.area, y.area);
                    assert_eq!(x.read_energy, y.read_energy);
                }
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("pipelines disagree on feasibility: {a:?} vs {b:?}"),
        }
    }
}

/// `solve_with_stats_parallel` returns the same solutions in the same
/// order as the serial staged pipeline, at every thread count.
#[test]
fn parallel_solve_ordering_equals_serial() {
    use cacti_d::core::{solve_with_stats, solve_with_stats_parallel};
    let mut rng = XorShift64Star::new(0xCAC7_1D07);
    for _ in 0..CASES / 4 {
        let cap_shift = rng.next_in_range(16, 21) as u32;
        let cell = CellTechnology::ALL[rng.next_below(3) as usize];
        let spec = MemorySpec::builder()
            .capacity_bytes(1u64 << cap_shift)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let serial = solve_with_stats(&spec, None);
        let threads = 1 + rng.next_below(8) as usize;
        let par = solve_with_stats_parallel(&spec, None, threads);
        assert_eq!(
            serial.stats, par.stats,
            "stats diverge at {threads} threads"
        );
        match (serial.result, par.result) {
            (Ok(a), Ok(b)) => assert_eq!(a, b, "ordering diverges at {threads} threads"),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("pipelines disagree on feasibility: {a:?} vs {b:?}"),
        }
    }
}
