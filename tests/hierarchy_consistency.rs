//! Cross-crate integration tests: internal consistency of the CACTI-D
//! model across technologies, nodes and capacities.

use cacti_d::core::{optimize, solve, AccessMode, MemoryKind, MemorySpec};
use cacti_d::tech::{CellTechnology, TechNode};
use cacti_d::units::{Joules, Seconds, SquareMeters, Watts};

fn cache_spec(capacity: u64, cell: CellTechnology, node: TechNode) -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(capacity)
        .block_bytes(64)
        .associativity(8)
        .banks(1)
        .cell_tech(cell)
        .node(node)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .build()
        .expect("valid spec")
}

#[test]
fn area_grows_monotonically_with_capacity() {
    for cell in CellTechnology::ALL {
        let mut prev = SquareMeters::ZERO;
        for shift in [18u32, 20, 22, 24] {
            let sol = optimize(&cache_spec(1 << shift, *cell, TechNode::N32)).unwrap();
            assert!(
                sol.area > prev,
                "{cell}: area must grow with capacity (2^{shift})"
            );
            prev = sol.area;
        }
    }
}

#[test]
fn scaling_shrinks_area_across_nodes() {
    for cell in CellTechnology::ALL {
        let mut prev = SquareMeters::from_si(f64::INFINITY);
        for node in [TechNode::N90, TechNode::N65, TechNode::N45, TechNode::N32] {
            let sol = optimize(&cache_spec(4 << 20, *cell, node)).unwrap();
            assert!(
                sol.area < prev,
                "{cell}@{node}: area must shrink with scaling"
            );
            prev = sol.area;
        }
    }
}

#[test]
fn every_solution_satisfies_basic_physics() {
    for cell in CellTechnology::ALL {
        let spec = cache_spec(2 << 20, *cell, TechNode::N45);
        for sol in solve(&spec).unwrap() {
            assert!(sol.access_time > Seconds::ZERO);
            assert!(sol.random_cycle > Seconds::ZERO);
            assert!(sol.interleave_cycle > Seconds::ZERO);
            // Interleaving can't be slower than the full random cycle by
            // construction of the shared-bus pipeline.
            assert!(sol.interleave_cycle <= sol.random_cycle * 4.0);
            assert!(sol.read_energy > Joules::ZERO && sol.write_energy > Joules::ZERO);
            assert!(sol.area_efficiency > 0.0 && sol.area_efficiency < 1.0);
            if cell.is_dram() {
                assert!(sol.refresh_power > Watts::ZERO, "{cell} must refresh");
            } else {
                assert_eq!(sol.refresh_power, Watts::ZERO);
            }
        }
    }
}

#[test]
fn main_memory_timing_identities_hold_across_nodes() {
    for node in [
        TechNode::N90,
        TechNode::N78,
        TechNode::N65,
        TechNode::N45,
        TechNode::N32,
    ] {
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 28)
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(node)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8 << 10,
            })
            .build()
            .expect("valid");
        let sol = optimize(&spec).unwrap();
        let mm = sol.main_memory.as_ref().unwrap();
        let t = &mm.timing;
        assert!(t.t_ras >= t.t_rcd, "{node}");
        assert!(
            (t.t_rc - (t.t_ras + t.t_rp)).abs() < Seconds::from_si(1e-15),
            "{node}"
        );
        assert!(t.t_rrd < t.t_rc, "{node}: interleaving must beat tRC");
        assert!(mm.energies.activate > mm.energies.read, "{node}");
        assert!(mm.energies.refresh_power > Watts::ZERO, "{node}");
    }
}

#[test]
fn dram_main_memory_gets_faster_at_newer_nodes() {
    let t_rcd_at = |node| {
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 28)
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(node)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8 << 10,
            })
            .build()
            .unwrap();
        let sol = optimize(&spec).unwrap();
        sol.main_memory.as_ref().unwrap().timing.t_rcd
    };
    // DRAM latency improves only slowly with scaling — but it must not
    // regress for the same capacity.
    assert!(t_rcd_at(TechNode::N32) < t_rcd_at(TechNode::N90));
}

#[test]
fn tag_overhead_is_small() {
    let sol = optimize(&cache_spec(8 << 20, CellTechnology::Sram, TechNode::N32)).unwrap();
    let tag = sol.tag.as_ref().expect("cache has tags");
    assert!(tag.array.area() < 0.1 * sol.data.area());
}

#[test]
fn sequential_mode_saves_sram_read_energy() {
    let normal = optimize(&cache_spec(8 << 20, CellTechnology::Sram, TechNode::N32)).unwrap();
    let mut seq_spec = cache_spec(8 << 20, CellTechnology::Sram, TechNode::N32);
    seq_spec.kind = MemoryKind::Cache {
        access_mode: AccessMode::Sequential,
    };
    let seq = optimize(&seq_spec).unwrap();
    assert!(
        seq.read_energy < normal.read_energy,
        "sequential {} vs normal {}",
        seq.read_energy,
        normal.read_energy
    );
    // And it must be slower end-to-end (tag then data).
    assert!(seq.access_time > normal.access_time);
}
