//! Golden migration test: the typed-quantity pipeline must reproduce the
//! pre-migration (bare-`f64`) solution metrics **bit for bit**.
//!
//! The golden file `tests/goldens/solutions.txt` was captured from the seed
//! code before the `cactid-units` migration. Every metric is stored as the
//! IEEE-754 bit pattern (`f64::to_bits`, hex), so any reassociation or
//! reordering of floating-point operations introduced by the refactor shows
//! up as a failure here — not as a silently different design point.
//!
//! Regenerate (only when an *intentional* model change lands) with:
//! `cargo test --test golden_metrics -- --ignored regen_goldens`

use cacti_d::core::{optimize, AccessMode, MemoryKind, MemorySpec, Solution};
use cacti_d::tech::{CellTechnology, TechNode};
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/goldens/solutions.txt";

fn cache_spec(capacity: u64, cell: CellTechnology, node: TechNode, mode: AccessMode) -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(capacity)
        .block_bytes(64)
        .associativity(8)
        .banks(1)
        .cell_tech(cell)
        .node(node)
        .kind(MemoryKind::Cache { access_mode: mode })
        .build()
        .unwrap()
}

/// The seed config set: one representative spec per cell technology, access
/// mode and memory kind, spanning three nodes.
fn config_set() -> Vec<(&'static str, MemorySpec)> {
    vec![
        (
            "sram_l2_1m_n32_normal",
            cache_spec(
                1 << 20,
                CellTechnology::Sram,
                TechNode::N32,
                AccessMode::Normal,
            ),
        ),
        (
            "sram_l2_1m_n32_seq",
            cache_spec(
                1 << 20,
                CellTechnology::Sram,
                TechNode::N32,
                AccessMode::Sequential,
            ),
        ),
        (
            "sram_l2_1m_n32_fast",
            cache_spec(
                1 << 20,
                CellTechnology::Sram,
                TechNode::N32,
                AccessMode::Fast,
            ),
        ),
        (
            "lpdram_l3_2m_n32",
            cache_spec(
                2 << 20,
                CellTechnology::LpDram,
                TechNode::N32,
                AccessMode::Normal,
            ),
        ),
        (
            "commdram_l3_2m_n32",
            cache_spec(
                2 << 20,
                CellTechnology::CommDram,
                TechNode::N32,
                AccessMode::Normal,
            ),
        ),
        (
            "sram_ram_256k_n45",
            MemorySpec::builder()
                .capacity_bytes(256 << 10)
                .block_bytes(64)
                .associativity(1)
                .banks(1)
                .cell_tech(CellTechnology::Sram)
                .node(TechNode::N45)
                .kind(MemoryKind::Ram)
                .build()
                .unwrap(),
        ),
        (
            "mm_1gb_n78",
            MemorySpec::builder()
                .capacity_bytes(1 << 27)
                .block_bytes(8)
                .banks(8)
                .cell_tech(CellTechnology::CommDram)
                .node(TechNode::N78)
                .kind(MemoryKind::MainMemory {
                    io_bits: 8,
                    burst_length: 8,
                    prefetch: 8,
                    page_bits: 8192,
                })
                .build()
                .unwrap(),
        ),
    ]
}

/// Flattens every physically meaningful metric of a solution into
/// `(name, value)` pairs. Organization parameters are included so a changed
/// design-point pick is reported as such, not as a cascade of metric diffs.
fn metrics(sol: &Solution) -> Vec<(String, f64)> {
    let mut m: Vec<(String, f64)> = Vec::new();
    let mut push = |name: &str, v: f64| m.push((name.to_string(), v));

    push("org.ndwl", f64::from(sol.org.ndwl));
    push("org.ndbl", f64::from(sol.org.ndbl));
    push("org.nspd", sol.org.nspd);
    push("org.deg_bl_mux", f64::from(sol.org.deg_bl_mux));
    push("org.deg_sa_mux", f64::from(sol.org.deg_sa_mux));

    push("access_time", sol.access_time.value());
    push("random_cycle", sol.random_cycle.value());
    push("interleave_cycle", sol.interleave_cycle.value());
    push("area", sol.area.value());
    push("area_efficiency", sol.area_efficiency);
    push("read_energy", sol.read_energy.value());
    push("write_energy", sol.write_energy.value());
    push("leakage_power", sol.leakage_power.value());
    push("refresh_power", sol.refresh_power.value());

    let d = &sol.data.delay;
    push("data.delay.htree_in", d.htree_in.value());
    push("data.delay.decode", d.decode.value());
    push("data.delay.bitline", d.bitline.value());
    push("data.delay.sense", d.sense.value());
    push("data.delay.mux", d.mux.value());
    push("data.delay.htree_out", d.htree_out.value());
    push("data.delay.precharge", d.precharge.value());
    push("data.delay.restore", d.restore.value());
    let e = &sol.data.energy;
    push("data.energy.htree_in", e.htree_in.value());
    push("data.energy.decode", e.decode.value());
    push("data.energy.bitline", e.bitline.value());
    push("data.energy.sense", e.sense.value());
    push("data.energy.column", e.column.value());
    push("data.sense_signal", sol.data.sense_signal.value());
    push("data.width", sol.data.width.value());
    push("data.height", sol.data.height.value());

    if let Some(tag) = &sol.tag {
        push("tag.access_time", tag.access_time().value());
        push("tag.read_energy", tag.read_energy().value());
        push("tag.comparator_delay", tag.comparator_delay.value());
    }
    if let Some(mm) = &sol.main_memory {
        push("mm.t_rcd", mm.timing.t_rcd.value());
        push("mm.cas_latency", mm.timing.cas_latency.value());
        push("mm.t_ras", mm.timing.t_ras.value());
        push("mm.t_rp", mm.timing.t_rp.value());
        push("mm.t_rc", mm.timing.t_rc.value());
        push("mm.t_rrd", mm.timing.t_rrd.value());
        push("mm.e_activate", mm.energies.activate.value());
        push("mm.e_read", mm.energies.read.value());
        push("mm.e_write", mm.energies.write.value());
        push("mm.refresh_power", mm.energies.refresh_power.value());
        push("mm.standby_power", mm.energies.standby_power.value());
        push("mm.chip_area", mm.chip_area.value());
        push("mm.area_efficiency", mm.area_efficiency);
    }
    m
}

fn render() -> String {
    let mut out = String::new();
    for (name, spec) in config_set() {
        let sol = optimize(&spec).unwrap_or_else(|e| panic!("{name}: {e}"));
        for (metric, value) in metrics(&sol) {
            writeln!(out, "{name}/{metric} = {:016x}", value.to_bits()).unwrap();
        }
    }
    out
}

#[test]
fn golden_metrics_bit_for_bit() {
    let expected = std::fs::read_to_string(GOLDEN_PATH)
        .expect("golden file missing — run the ignored regen_goldens test first");
    let actual = render();
    if expected == actual {
        return;
    }
    // Report per-line diffs with the decoded values so a failure is
    // diagnosable without manual bit-twiddling.
    let mut report = String::new();
    for (exp, act) in expected.lines().zip(actual.lines()) {
        if exp != act {
            let decode = |line: &str| {
                line.rsplit(" = ")
                    .next()
                    .and_then(|h| u64::from_str_radix(h, 16).ok())
                    .map(f64::from_bits)
            };
            writeln!(
                report,
                "  {exp}  (= {:?})\n  {act}  (= {:?})\n",
                decode(exp),
                decode(act)
            )
            .unwrap();
        }
    }
    if expected.lines().count() != actual.lines().count() {
        writeln!(
            report,
            "  line count changed: {} -> {}",
            expected.lines().count(),
            actual.lines().count()
        )
        .unwrap();
    }
    panic!("golden metrics drifted from the seed capture:\n{report}");
}

/// Rewrites the golden file from the current model. Run only when a model
/// change is intentional: `cargo test --test golden_metrics -- --ignored`.
#[test]
#[ignore = "regenerates the golden capture"]
fn regen_goldens() {
    std::fs::write(GOLDEN_PATH, render()).unwrap();
}
