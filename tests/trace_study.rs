//! End-to-end observability test: a miniature study run must leave
//! optimizer, solve-cache, pool, and simulator counters in the process
//! registry, and the trace sidecar must carry all of them as valid JSONL.

use cacti_d::obs;
use cacti_d::study::{configs, sweep};
use cacti_d::workloads::{NpbApp, NpbClass};

#[test]
fn study_run_populates_every_counter_family_in_the_trace() {
    // Building a study configuration solves the L1/L2/L3/main-memory specs
    // through the global solve cache → optimizer + cache counters.
    let base = configs::build(configs::LlcKind::LpDramEd48);
    // A two-point capacity sweep rides the work-claiming pool and runs the
    // simulator → pool + sim counters.
    let pts = sweep::capacity_sweep(
        &base,
        NpbApp::FtB,
        NpbClass::B,
        &[12 << 20, 24 << 20],
        50_000,
    );
    assert_eq!(pts.len(), 2);

    let snap = obs::snapshot();
    for name in [
        "core.solve.calls",     // optimizer
        "core.select.calls",    // §2.4 staged selection
        "explore.cache.misses", // solve memo
        "explore.pool.claims",  // work-claiming pool
        "sim.loads",            // simulator aggregate publish
        "sim.l1.hits",
    ] {
        let v = snap.counter(name);
        assert!(
            v.is_some_and(|v| v > 0),
            "counter {name} missing or zero: {v:?}"
        );
    }
    assert!(
        snap.histogram("explore.pool.work_ns")
            .is_some_and(|h| h.count >= 2),
        "pool work histogram missing"
    );

    // The sidecar carries every family and stays one-JSON-object-per-line.
    let dir = std::env::temp_dir().join(format!("cactid-trace-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("study.trace.jsonl");
    obs::write_trace(&path, "test-study").unwrap();
    let body = std::fs::read_to_string(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    let lines: Vec<&str> = body.lines().collect();
    assert!(lines[0].contains("\"type\":\"meta\""));
    assert!(lines[0].contains("\"cmd\":\"test-study\""));
    for line in &lines {
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "not a JSONL object: {line}"
        );
    }
    for family in [
        "\"name\":\"core.solve.",
        "\"name\":\"explore.cache.",
        "\"name\":\"explore.pool.",
        "\"name\":\"sim.",
    ] {
        assert!(body.contains(family), "trace lacks {family}");
    }
}
