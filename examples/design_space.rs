//! Design-space exploration: how the three cell technologies trade off
//! capacity, speed, area and power as the cache grows — the kind of study
//! the paper's introduction motivates for stacked last-level caches.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use cacti_d::core::{optimize, AccessMode, MemoryKind, MemorySpec};
use cacti_d::tech::{CellTechnology, TechNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("capacity sweep @ 32nm, 8-way, 64B lines, single bank");
    println!(
        "{:>10} {:>10} {:>9} {:>9} {:>10} {:>9} {:>10}",
        "capacity", "tech", "acc ns", "cyc ns", "area mm2", "Erd nJ", "leak W"
    );
    for shift in [20u32, 21, 22, 23, 24, 25] {
        let capacity = 1u64 << shift;
        for cell in [
            CellTechnology::Sram,
            CellTechnology::LpDram,
            CellTechnology::CommDram,
        ] {
            let spec = MemorySpec::builder()
                .capacity_bytes(capacity)
                .block_bytes(64)
                .associativity(8)
                .banks(1)
                .cell_tech(cell)
                .node(TechNode::N32)
                .kind(MemoryKind::Cache {
                    access_mode: AccessMode::Normal,
                })
                .build()?;
            let s = optimize(&spec)?;
            println!(
                "{:>9}M {:>10} {:>9.3} {:>9.3} {:>10.3} {:>9.3} {:>10.4}",
                capacity >> 20,
                cell.to_string(),
                s.access_ns(),
                s.random_cycle * 1e9,
                s.area_mm2(),
                s.read_energy_nj(),
                s.leakage_power,
            );
        }
    }

    println!("\nnode sweep: 1MB SRAM across the four ITRS nodes");
    for node in [TechNode::N90, TechNode::N65, TechNode::N45, TechNode::N32] {
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(node)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()?;
        let s = optimize(&spec)?;
        println!(
            "  {node}: access {:.3} ns, area {:.3} mm^2, read {:.3} nJ",
            s.access_ns(),
            s.area_mm2(),
            s.read_energy_nj(),
        );
    }
    Ok(())
}
