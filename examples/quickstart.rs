//! Quickstart: model one cache with CACTI-D and print its key metrics.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cacti_d::core::{optimize, AccessMode, MemoryKind, MemorySpec};
use cacti_d::tech::{CellTechnology, TechNode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 2 MB 8-way SRAM cache with 64 B lines at the 32 nm node.
    let spec = MemorySpec::builder()
        .capacity_bytes(2 << 20)
        .block_bytes(64)
        .associativity(8)
        .banks(1)
        .cell_tech(CellTechnology::Sram)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .build()?;

    let sol = optimize(&spec)?;

    println!("2MB 8-way SRAM cache @ 32nm");
    println!("  organization      : {:?}", sol.org);
    println!("  access time       : {:.3} ns", sol.access_ns());
    println!("  random cycle time : {:.3} ns", sol.random_cycle * 1e9);
    println!(
        "  interleave cycle  : {:.3} ns (multisubbank interleaving)",
        sol.interleave_cycle * 1e9
    );
    println!("  area              : {:.3} mm^2", sol.area_mm2());
    println!("  area efficiency   : {:.1} %", sol.area_efficiency * 100.0);
    println!("  read energy       : {:.3} nJ", sol.read_energy_nj());
    println!("  write energy      : {:.3} nJ", sol.write_energy * 1e9);
    println!("  leakage power     : {:.3} W", sol.leakage_power);

    // The same cache in the two DRAM technologies, for comparison.
    for cell in [CellTechnology::LpDram, CellTechnology::CommDram] {
        let mut spec2 = spec.clone();
        spec2.cell_tech = cell;
        let s = optimize(&spec2)?;
        println!(
            "{cell}: access {:.3} ns, cycle {:.3} ns, area {:.3} mm^2, leak {:.4} W, refresh {:.4} W",
            s.access_ns(),
            s.random_cycle * 1e9,
            s.area_mm2(),
            s.leakage_power,
            s.refresh_power,
        );
    }
    Ok(())
}
