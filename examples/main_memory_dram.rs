//! Main-memory DRAM chip modeling: the §2.1 organization (banks, burst,
//! prefetch, page size) and the §2.3.5 timing model, across device
//! generations.
//!
//! ```text
//! cargo run --release --example main_memory_dram
//! ```

use cacti_d::core::{optimize, MemoryKind, MemorySpec, OptimizationOptions};
use cacti_d::tech::{CellTechnology, TechNode};

fn chip(
    capacity_bits: u64,
    node: TechNode,
    io_bits: u32,
    page_kbit: u64,
) -> Result<MemorySpec, Box<dyn std::error::Error>> {
    Ok(MemorySpec::builder()
        .capacity_bytes(capacity_bits / 8)
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(node)
        .kind(MemoryKind::MainMemory {
            io_bits,
            burst_length: 8,
            prefetch: 8,
            page_bits: page_kbit << 10,
        })
        .optimization(OptimizationOptions {
            max_area_overhead: 0.20,
            max_access_time_overhead: 1.0,
            weight_dynamic: 0.5,
            weight_leakage: 1.0,
            weight_cycle: 0.3,
            weight_interleave: 0.3,
            ..OptimizationOptions::default()
        })
        .build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>22} {:>7} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7} {:>7} {:>8}",
        "device", "tRCD", "CL", "tRC", "tRRD", "ACT nJ", "RD nJ", "refr mW", "eff %", "area mm2"
    );
    let parts: [(&str, u64, TechNode, u32, u64); 4] = [
        ("512Mb DDR2-like @90nm", 512 << 20, TechNode::N90, 8, 8),
        ("1Gb DDR3-1066 @78nm", 1 << 30, TechNode::N78, 8, 8),
        ("4Gb DDR3+ @45nm", 4 << 30, TechNode::N45, 8, 8),
        ("8Gb DDR4-3200 @32nm", 8 << 30, TechNode::N32, 8, 8),
    ];
    for (name, bits, node, io, page) in parts {
        let spec = chip(bits, node, io, page)?;
        let sol = optimize(&spec)?;
        let mm = sol.main_memory.as_ref().expect("chip-level result");
        println!(
            "{:>22} {:>6.1}n {:>6.1}n {:>6.1}n {:>6.1}n {:>7.2} {:>8.2} {:>7.2} {:>7.1} {:>8.1}",
            name,
            mm.timing.t_rcd * 1e9,
            mm.timing.cas_latency * 1e9,
            mm.timing.t_rc * 1e9,
            mm.timing.t_rrd * 1e9,
            mm.energies.activate * 1e9,
            mm.energies.read * 1e9,
            mm.energies.refresh_power * 1e3,
            mm.area_efficiency * 100.0,
            mm.chip_area / 1e-6,
        );
    }
    println!("\nNote: per-chip numbers; a 64-bit rank accesses 8 x8 chips in lockstep.");
    Ok(())
}
