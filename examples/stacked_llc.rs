//! A miniature version of the paper's stacked-LLC study: build two system
//! configurations from live CACTI-D solutions, run one NPB-like workload
//! through the CMP simulator, and compare performance and power.
//!
//! ```text
//! cargo run --release --example stacked_llc [instructions]
//! ```

use cacti_d::study::configs::{build, LlcKind};
use cacti_d::study::figure4::run_one;
use cacti_d::study::power::{energy_delay, system_power, MemoryHierarchyPower};
use cacti_d::workloads::NpbApp;

fn main() {
    let n: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.replace('_', "").parse().ok())
        .unwrap_or(2_000_000);
    let app = NpbApp::FtB;
    println!("running {app} for {n} instructions on two configurations...\n");

    let mut baseline_edp = None;
    for kind in [LlcKind::NoL3, LlcKind::CmDramC192] {
        let cfg = build(kind);
        let run = run_one(&cfg, app, n);
        let hier = MemoryHierarchyPower::from_run(&cfg, &run.stats);
        let edp = energy_delay(&hier, run.seconds);
        println!("{}:", kind.label());
        println!("  IPC               : {:.2}", run.stats.ipc());
        println!(
            "  avg read latency  : {:.1} cycles",
            run.stats.avg_read_latency()
        );
        println!("  L3 hit rate       : {:.2}", run.stats.l3_hit_rate());
        println!("  hierarchy power   : {:.2} W", hier.total());
        println!("  system power      : {:.2} W", system_power(&hier));
        match baseline_edp {
            None => {
                baseline_edp = Some(edp);
                println!("  energy-delay      : 1.000 (baseline)");
            }
            Some(base) => println!("  energy-delay      : {:.3} vs nol3", edp / base),
        }
        println!();
    }
    println!("(the paper's full study is `cargo run --release -p llc-study -- all`)");
}
