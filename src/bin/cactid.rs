//! `cactid` — a command-line front end in the spirit of the original CACTI.
//!
//! ```text
//! cactid --size 2M --block 64 --assoc 8 --banks 1 --cell sram --node 32
//! cactid --size 1G --banks 8 --cell comm-dram --node 78 --main-memory \
//!        --io 8 --burst 8 --prefetch 8 --page 8K
//! cactid --size 8M --cell lp-dram --node 32 --mode sequential --solutions
//! cactid lint --size 1G --banks 8 --cell comm-dram --node 32 --main-memory
//! ```
//!
//! Prints the optimized solution with full delay/energy breakdowns; with
//! `--solutions`, lists the whole feasible set instead. The `lint`
//! subcommand runs the `cactid-analyze` diagnostics engine
//! (`CD0001`–`CD0022`) over the spec and — when the spec is solvable —
//! over the optimized solution, printing a rustc-style report;
//! `--deny-warnings` turns warnings into a non-zero exit.
//!
//! The binary lives in the facade crate (not `cactid-core`) because the
//! `lint` subcommand needs `cactid-analyze`, which depends on the core —
//! a bin inside the core could not see it.

use cactid_analyze::{render, Analyzer};
use cactid_core::{
    AccessMode, Diagnostic, MemoryKind, MemorySpec, OptimizationOptions, Report, Solution,
};
use cactid_tech::{CellTechnology, TechNode};
use cactid_units::{Seconds, Watts};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: cactid [lint] --size <bytes|K|M|G> [--block N] [--assoc N] [--banks N]\n\
         \x20      --cell sram|lp-dram|comm-dram --node 90|78|65|45|32\n\
         \x20      [--mode normal|sequential|fast] [--ram]\n\
         \x20      [--main-memory --io N --burst N --prefetch N --page <bits|K>]\n\
         \x20      [--max-area PCT] [--max-time PCT] [--relax X] [--sleep]\n\
         \x20      [--solutions]\n\
         \n\
         subcommands:\n\
         \x20 lint   run the CD0001-CD0022 diagnostics over the spec (and the\n\
         \x20        optimized solution, when one exists) instead of printing it;\n\
         \x20        accepts --deny-warnings; exits non-zero on errors"
    );
    exit(2)
}

fn parse_size(v: &str) -> Option<u64> {
    let v = v.trim();
    let (num, mult) = match v.chars().last()? {
        'K' | 'k' => (&v[..v.len() - 1], 1u64 << 10),
        'M' | 'm' => (&v[..v.len() - 1], 1 << 20),
        'G' | 'g' => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

struct Args {
    size: u64,
    block: u32,
    assoc: u32,
    banks: u32,
    cell: CellTechnology,
    node: TechNode,
    mode: AccessMode,
    ram: bool,
    main_memory: bool,
    io: u32,
    burst: u32,
    prefetch: u32,
    page_bits: u64,
    opt: OptimizationOptions,
    list_solutions: bool,
    deny_warnings: bool,
}

fn parse_args(argv: &[String]) -> Args {
    let mut a = Args {
        size: 0,
        block: 64,
        assoc: 8,
        banks: 1,
        cell: CellTechnology::Sram,
        node: TechNode::N32,
        mode: AccessMode::Normal,
        ram: false,
        main_memory: false,
        io: 8,
        burst: 8,
        prefetch: 8,
        page_bits: 8 << 10,
        opt: OptimizationOptions::default(),
        list_solutions: false,
        deny_warnings: false,
    };
    let mut i = 0;
    let next = |i: &mut usize| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| usage())
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--size" => a.size = parse_size(&next(&mut i)).unwrap_or_else(|| usage()),
            "--block" => a.block = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--assoc" => a.assoc = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--banks" => a.banks = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--cell" => {
                a.cell = match next(&mut i).as_str() {
                    "sram" => CellTechnology::Sram,
                    "lp-dram" | "lpdram" => CellTechnology::LpDram,
                    "comm-dram" | "commdram" => CellTechnology::CommDram,
                    _ => usage(),
                }
            }
            "--node" => {
                let nm: u32 = next(&mut i).parse().unwrap_or_else(|_| usage());
                a.node = TechNode::from_nm(nm).unwrap_or_else(|| usage());
            }
            "--mode" => {
                a.mode = match next(&mut i).as_str() {
                    "normal" => AccessMode::Normal,
                    "sequential" => AccessMode::Sequential,
                    "fast" => AccessMode::Fast,
                    _ => usage(),
                }
            }
            "--ram" => a.ram = true,
            "--main-memory" => a.main_memory = true,
            "--io" => a.io = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--burst" => a.burst = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--prefetch" => a.prefetch = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--page" => a.page_bits = parse_size(&next(&mut i)).unwrap_or_else(|| usage()),
            "--max-area" => {
                a.opt.max_area_overhead =
                    next(&mut i).parse::<f64>().unwrap_or_else(|_| usage()) / 100.0;
            }
            "--max-time" => {
                a.opt.max_access_time_overhead =
                    next(&mut i).parse::<f64>().unwrap_or_else(|_| usage()) / 100.0;
            }
            "--relax" => a.opt.repeater_relax = next(&mut i).parse().unwrap_or_else(|_| usage()),
            "--sleep" => a.opt.sleep_transistors = true,
            "--solutions" => a.list_solutions = true,
            "--deny-warnings" => a.deny_warnings = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage()
            }
        }
        i += 1;
    }
    if a.size == 0 {
        usage()
    }
    a
}

/// Assembles the spec directly from the parsed flags, **bypassing** the
/// builder's validation — the point of `cactid lint` is to diagnose specs
/// the builder would reject outright, naming the rule, field, and fix.
fn spec_from_args(a: &Args) -> MemorySpec {
    let kind = if a.main_memory {
        MemoryKind::MainMemory {
            io_bits: a.io,
            burst_length: a.burst,
            prefetch: a.prefetch,
            page_bits: a.page_bits,
        }
    } else if a.ram {
        MemoryKind::Ram
    } else {
        MemoryKind::Cache {
            access_mode: a.mode,
        }
    };
    let assoc = if matches!(kind, MemoryKind::Cache { .. }) {
        a.assoc
    } else {
        1
    };
    MemorySpec {
        capacity_bytes: a.size,
        block_bytes: a.block,
        associativity: assoc,
        n_banks: a.banks,
        kind,
        cell_tech: a.cell,
        node: a.node,
        address_bits: 40,
        opt: a.opt.clone(),
    }
}

fn print_solution(sol: &Solution) {
    println!("organization:");
    println!(
        "  stripe x subarrays : {} x {} (nspd {}, bl-mux {}, sa-mux {})",
        sol.org.ndwl, sol.org.ndbl, sol.org.nspd, sol.org.deg_bl_mux, sol.org.deg_sa_mux
    );
    println!("timing:");
    println!("  access time        : {:>9.3} ns", sol.access_ns());
    println!(
        "  random cycle       : {:>9.3} ns",
        sol.random_cycle.value() * 1e9
    );
    println!(
        "  interleave cycle   : {:>9.3} ns",
        sol.interleave_cycle.value() * 1e9
    );
    let d = &sol.data.delay;
    println!(
        "  breakdown          : htree-in {:.3} | decode {:.3} | bitline {:.3} | sense {:.3} | mux {:.3} | htree-out {:.3} ns",
        d.htree_in.value() * 1e9,
        d.decode.value() * 1e9,
        d.bitline.value() * 1e9,
        d.sense.value() * 1e9,
        d.mux.value() * 1e9,
        d.htree_out.value() * 1e9
    );
    if d.restore > Seconds::ZERO {
        println!(
            "  dram phases        : restore {:.3} | precharge {:.3} ns",
            d.restore.value() * 1e9,
            d.precharge.value() * 1e9
        );
    }
    println!("area:");
    println!("  total              : {:>9.3} mm^2", sol.area_mm2());
    println!(
        "  efficiency         : {:>9.1} %",
        sol.area_efficiency * 100.0
    );
    println!("energy/power:");
    println!("  read energy        : {:>9.3} nJ", sol.read_energy_nj());
    println!(
        "  write energy       : {:>9.3} nJ",
        sol.write_energy.value() * 1e9
    );
    let e = &sol.data.energy;
    println!(
        "  breakdown          : htree {:.3} | decode {:.3} | bitline {:.3} | sense {:.3} | column {:.3} nJ",
        e.htree_in.value() * 1e9,
        e.decode.value() * 1e9,
        e.bitline.value() * 1e9,
        e.sense.value() * 1e9,
        e.column.value() * 1e9
    );
    println!(
        "  leakage            : {:>9.4} W",
        sol.leakage_power.value()
    );
    if sol.refresh_power > Watts::ZERO {
        println!(
            "  refresh            : {:>9.4} W",
            sol.refresh_power.value()
        );
    }
    if let Some(tag) = &sol.tag {
        println!("tag array:");
        println!(
            "  access {:.3} ns (incl. compare {:.3} ns), {:.4} mm^2, {:.4} nJ",
            tag.access_time().value() * 1e9,
            tag.comparator_delay.value() * 1e9,
            tag.array.area().value() / 1e-6,
            tag.read_energy().value() * 1e9
        );
    }
    if let Some(mm) = &sol.main_memory {
        println!("main-memory interface:");
        println!(
            "  tRCD {:.2} | CL {:.2} | tRAS {:.2} | tRP {:.2} | tRC {:.2} | tRRD {:.2} ns",
            mm.timing.t_rcd.value() * 1e9,
            mm.timing.cas_latency.value() * 1e9,
            mm.timing.t_ras.value() * 1e9,
            mm.timing.t_rp.value() * 1e9,
            mm.timing.t_rc.value() * 1e9,
            mm.timing.t_rrd.value() * 1e9
        );
        println!(
            "  ACT {:.3} nJ | RD {:.3} nJ | WR {:.3} nJ | refresh {:.3} mW | standby {:.3} mW",
            mm.energies.activate.value() * 1e9,
            mm.energies.read.value() * 1e9,
            mm.energies.write.value() * 1e9,
            mm.energies.refresh_power.value() * 1e3,
            mm.energies.standby_power.value() * 1e3
        );
    }
}

/// The `cactid lint` subcommand: spec-stage diagnostics always; when the
/// spec has no errors and the optimizer finds a winner, the full
/// three-stage report over that solution too. Exit 0 only when no errors
/// (and, under `--deny-warnings`, no warnings) were emitted.
fn run_lint(a: &Args) -> ! {
    let spec = spec_from_args(a);
    let analyzer = Analyzer::new();
    let spec_report = analyzer.lint_spec(&spec);

    let report = if spec_report.error_count() > 0 {
        spec_report
    } else {
        // The spec is structurally sound: lint the optimized solution so
        // the organization- and solution-stage rules get a say as well.
        match cactid_core::optimize_with(&spec, &analyzer) {
            Ok(sol) => analyzer.lint_solution(&spec, &sol),
            Err(e) => {
                print!("{}", render::render(&analyzer, &spec_report));
                eprintln!("error: the spec lints clean but has no feasible solution: {e}");
                exit(1)
            }
        }
    };

    print!("{}", render::render(&analyzer, &report));
    if report.is_empty() {
        println!("{}", render::summary_line(&report));
    }
    let errors = report.error_count();
    let warns = report.warn_count();
    if errors > 0 || (a.deny_warnings && warns > 0) {
        exit(1)
    }
    exit(0)
}

fn print_warnings(analyzer: &Analyzer, warnings: &[Diagnostic]) {
    if warnings.is_empty() {
        return;
    }
    let report: Report = warnings.iter().cloned().collect();
    eprint!("{}", render::render(analyzer, &report));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (lint_mode, rest) = match argv.first().map(String::as_str) {
        Some("lint") => (true, &argv[1..]),
        _ => (false, &argv[..]),
    };
    let a = parse_args(rest);
    if lint_mode {
        run_lint(&a);
    }

    let spec = spec_from_args(&a);
    // The classic path still validates eagerly, like the builder would.
    if let Err(e) = MemorySpec::builder()
        .capacity_bytes(spec.capacity_bytes)
        .block_bytes(spec.block_bytes)
        .associativity(spec.associativity)
        .banks(spec.n_banks)
        .cell_tech(spec.cell_tech)
        .node(spec.node)
        .kind(spec.kind)
        .optimization(spec.opt.clone())
        .build()
    {
        eprintln!("error: {e}");
        eprintln!("hint: run `cactid lint` with the same flags for a full diagnosis");
        exit(1)
    }

    println!(
        "cactid: {} bytes, block {}, assoc {}, banks {}, {} @ {}",
        spec.capacity_bytes,
        spec.block_bytes,
        spec.associativity,
        spec.n_banks,
        spec.cell_tech,
        spec.node
    );
    let analyzer = Analyzer::new();
    if a.list_solutions {
        let sols = cactid_core::solve_with(&spec, &analyzer).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        println!(
            "{:>5} {:>5} {:>5} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "ndwl", "ndbl", "nspd", "blmux", "samux", "acc ns", "cyc ns", "mm2", "Erd nJ"
        );
        for s in &sols {
            println!(
                "{:>5} {:>5} {:>5} {:>6} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                s.org.ndwl,
                s.org.ndbl,
                s.org.nspd,
                s.org.deg_bl_mux,
                s.org.deg_sa_mux,
                s.access_ns(),
                s.random_cycle.value() * 1e9,
                s.area_mm2(),
                s.read_energy_nj()
            );
        }
        println!("{} feasible organizations", sols.len());
    } else {
        let sol = cactid_core::optimize_with(&spec, &analyzer).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        print_solution(&sol);
        print_warnings(&analyzer, &sol.warnings);
    }
}
