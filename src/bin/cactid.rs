//! `cactid` — a command-line front end in the spirit of the original CACTI.
//!
//! ```text
//! cactid --size 2M --block 64 --assoc 8 --banks 1 --cell sram --node 32
//! cactid --size 1G --banks 8 --cell comm-dram --node 78 --main-memory \
//!        --io 8 --burst 8 --prefetch 8 --page 8K
//! cactid --size 8M --cell lp-dram --node 32 --mode sequential --solutions
//! cactid lint --size 1G --banks 8 --cell comm-dram --node 32 --main-memory
//! cactid explore --sizes 1M,2M,4M --assocs 4,8,16 --threads 4 --pareto \
//!        --out sweep.jsonl
//! ```
//!
//! Prints the optimized solution with full delay/energy breakdowns; with
//! `--solutions`, lists the whole feasible set instead. The `lint`
//! subcommand runs the `cactid-analyze` diagnostics engine
//! (`CD0001`–`CD0022`) over the spec and — when the spec is solvable —
//! over the optimized solution, printing a rustc-style report (or JSONL
//! with `--format json`); `--allow/--warn/--deny CDxxxx` reshape rule
//! severities and `--deny-warnings` turns warnings into a non-zero exit.
//! The `explore` subcommand expands a grid over comma-separated axes and
//! runs the `cactid-explore` batch engine (parallel, resumable,
//! Pareto-annotated JSONL); `--audit` lets it retire statically-doomed
//! points without solving. The `audit` subcommand statically classifies
//! every point of a grid before any solve (`--grid` + axis flags, with a
//! per-rule infeasibility histogram) or replays the cross-record
//! `CD0101`–`CD0105` rules over a finished run (`--jsonl FILE`). The
//! `prove` subcommand runs the `cactid-prove` interval certifier over the
//! spec's technology domain: it checks every shipped prescreen rule
//! sound on the whole sweep grid, analyzes the CD0021/CD0022
//! plausibility windows for vacuity and dead edges, and reports the
//! certified prescreen bounds (`CD0201`–`CD0204`). On the classic path,
//! `--certified` routes the solve through those proven bounds — the
//! solution set is byte-identical by construction. The `serve` subcommand
//! keeps a solver resident: a JSONL request loop (stdin/stdout or
//! `--listen` TCP) answering solve/grid queries in the explore record
//! schema, with an optional `--store` disk-backed solution store so
//! restarts answer duplicate specs without re-solving.
//!
//! The binary lives in the facade crate (not `cactid-core`) because the
//! `lint` subcommand needs `cactid-analyze`, which depends on the core —
//! a bin inside the core could not see it.

use cactid_analyze::rules::sol::{
    ACCESS_TIME_MAX, ACCESS_TIME_MIN, DYN_ENERGY_MAX, DYN_ENERGY_MIN,
};
use cactid_analyze::{render, Analyzer, RunContext, SeverityAction, SeverityOverrides};
use cactid_core::{
    AccessMode, CactiError, Diagnostic, MemoryKind, MemorySpec, OptimizationOptions, Report,
    Solution, SolutionLinter,
};
use cactid_explore::{AuditVerdict, ExploreConfig, Grid, OptVariant};
use cactid_prove::{MetricWindow, WindowMetric};
use cactid_tech::{CellTechnology, TechNode};
use cactid_units::{Seconds, Watts};
use std::path::PathBuf;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: cactid [lint] --size <bytes|K|M|G> [--block N] [--assoc N] [--banks N]\n\
         \x20      --cell sram|lp-dram|comm-dram --node 90|78|65|45|32\n\
         \x20      [--mode normal|sequential|fast] [--ram]\n\
         \x20      [--main-memory --io N --burst N --prefetch N --page <bits|K>]\n\
         \x20      [--max-area PCT] [--max-time PCT] [--relax X] [--sleep]\n\
         \x20      [--solutions] [--certified]\n\
         \n\
         subcommands:\n\
         \x20 lint     run the CD0001-CD0022 diagnostics over the spec (and the\n\
         \x20          optimized solution, when one exists) instead of printing it;\n\
         \x20          accepts --deny-warnings, --format text|json, and repeatable\n\
         \x20          --allow/--warn/--deny CDxxxx severity overrides;\n\
         \x20          exits non-zero on errors\n\
         \x20 prove    run the interval-arithmetic certifier over the spec's\n\
         \x20          technology domain: soundness certificates for every shipped\n\
         \x20          prescreen rule, CD0021/CD0022 window satisfiability, and\n\
         \x20          certified prescreen bounds (CD0201-CD0204); accepts the\n\
         \x20          same lint output/severity flags\n\
         \x20 explore  batch design-space exploration; axes are comma lists:\n\
         \x20          --sizes LIST (required) [--blocks LIST] [--assocs LIST]\n\
         \x20          [--banks LIST] [--nodes LIST] [--cells LIST]\n\
         \x20          [--opts default|ed|c LIST] [--mode M] [--out FILE]\n\
         \x20          [--threads N] [--resume] [--pareto] [--lint]\n\
         \x20          [--audit]       statically retire infeasible points\n\
         \x20                          without solving (same output bytes)\n\
         \x20          [--trace FILE]  write a JSONL metrics sidecar and print a\n\
         \x20                          counter/histogram summary to stderr\n\
         \x20 serve    resident solve service speaking a JSONL request protocol\n\
         \x20          (solve/grid/stats/shutdown) in the explore record schema:\n\
         \x20          [--stdio]       serve stdin/stdout (the default)\n\
         \x20          [--listen ADDR] serve TCP connections on ADDR\n\
         \x20          [--store FILE]  disk-backed content-addressed solution\n\
         \x20                          store; restarts answer duplicates without\n\
         \x20                          re-solving, byte-identical to a cold solve\n\
         \x20          [--threads N] [--trace FILE]\n\
         \x20 audit    static analysis without solving; one of two modes:\n\
         \x20          --grid + the explore axis flags  classify every grid point\n\
         \x20                   (invalid / infeasible / maybe-feasible) and print\n\
         \x20                   the per-rule infeasibility histogram\n\
         \x20          --jsonl FILE  run the cross-record CD0101-CD0105 rules over\n\
         \x20                   a finished explore run\n\
         \x20          both accept --format text|json, --allow/--warn/--deny\n\
         \x20          CDxxxx, and --deny-warnings"
    );
    exit(2)
}

fn parse_size(v: &str) -> Option<u64> {
    let v = v.trim();
    let (num, mult) = match v.chars().last()? {
        'K' | 'k' => (&v[..v.len() - 1], 1u64 << 10),
        'M' | 'm' => (&v[..v.len() - 1], 1 << 20),
        'G' | 'g' => (&v[..v.len() - 1], 1 << 30),
        _ => (v, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

/// Splits a comma-separated axis list, applying `parse` per element.
fn parse_list<T>(flag: &str, v: &str, parse: impl Fn(&str) -> Option<T>) -> Result<Vec<T>, String> {
    v.split(',')
        .map(|item| parse(item.trim()).ok_or_else(|| format!("invalid value {item:?} in {flag}")))
        .collect()
}

/// How diagnostics (and audit verdicts) are written.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutputFormat {
    /// Rustc-style report (the default).
    Text,
    /// One JSON object per diagnostic / grid point, one per line.
    Json,
}

fn parse_format(v: &str) -> Option<OutputFormat> {
    match v {
        "text" => Some(OutputFormat::Text),
        "json" => Some(OutputFormat::Json),
        _ => None,
    }
}

/// Parses one `--allow/--warn/--deny CDxxxx` severity-override flag into
/// `overrides`; returns `false` when `flag` is none of the three. Unknown
/// codes are rejected later by [`Analyzer::with_overrides`].
fn parse_severity_flag(
    overrides: &mut SeverityOverrides,
    flag: &str,
    argv: &[String],
    i: &mut usize,
) -> Result<bool, String> {
    let action = match flag {
        "--allow" => SeverityAction::Allow,
        "--warn" => SeverityAction::Warn,
        "--deny" => SeverityAction::Deny,
        _ => return Ok(false),
    };
    overrides.set(value(argv, i, flag)?, action);
    Ok(true)
}

#[derive(Debug)]
struct Args {
    size: u64,
    block: u32,
    assoc: u32,
    banks: u32,
    cell: CellTechnology,
    node: TechNode,
    mode: AccessMode,
    ram: bool,
    main_memory: bool,
    io: u32,
    burst: u32,
    prefetch: u32,
    page_bits: u64,
    opt: OptimizationOptions,
    list_solutions: bool,
    certified: bool,
    deny_warnings: bool,
    format: OutputFormat,
    overrides: SeverityOverrides,
}

/// Consumes the value of `flag`, or explains what is missing.
fn value<'a>(argv: &'a [String], i: &mut usize, flag: &str) -> Result<&'a str, String> {
    *i += 1;
    argv.get(*i)
        .map(String::as_str)
        .ok_or_else(|| format!("flag {flag} expects a value"))
}

fn parse_num<T: std::str::FromStr>(flag: &str, v: &str) -> Result<T, String> {
    v.parse()
        .map_err(|_| format!("invalid value {v:?} for {flag}"))
}

fn parse_cell(v: &str) -> Option<CellTechnology> {
    match v {
        "sram" => Some(CellTechnology::Sram),
        "lp-dram" | "lpdram" => Some(CellTechnology::LpDram),
        "comm-dram" | "commdram" => Some(CellTechnology::CommDram),
        _ => None,
    }
}

fn parse_mode(v: &str) -> Option<AccessMode> {
    match v {
        "normal" => Some(AccessMode::Normal),
        "sequential" => Some(AccessMode::Sequential),
        "fast" => Some(AccessMode::Fast),
        _ => None,
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut a = Args {
        size: 0,
        block: 64,
        assoc: 8,
        banks: 1,
        cell: CellTechnology::Sram,
        node: TechNode::N32,
        mode: AccessMode::Normal,
        ram: false,
        main_memory: false,
        io: 8,
        burst: 8,
        prefetch: 8,
        page_bits: 8 << 10,
        opt: OptimizationOptions::default(),
        list_solutions: false,
        certified: false,
        deny_warnings: false,
        format: OutputFormat::Text,
        overrides: SeverityOverrides::new(),
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        let bad = |v: &str| format!("invalid value {v:?} for {flag}");
        match flag {
            "--size" => {
                let v = value(argv, &mut i, flag)?;
                a.size = parse_size(v).ok_or_else(|| bad(v))?;
            }
            "--block" => a.block = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--assoc" => a.assoc = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--banks" => a.banks = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--cell" => {
                let v = value(argv, &mut i, flag)?;
                a.cell = parse_cell(v).ok_or_else(|| bad(v))?;
            }
            "--node" => {
                let v = value(argv, &mut i, flag)?;
                let nm: u32 = parse_num(flag, v)?;
                a.node = TechNode::from_nm(nm).ok_or_else(|| bad(v))?;
            }
            "--mode" => {
                let v = value(argv, &mut i, flag)?;
                a.mode = parse_mode(v).ok_or_else(|| bad(v))?;
            }
            "--ram" => a.ram = true,
            "--main-memory" => a.main_memory = true,
            "--io" => a.io = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--burst" => a.burst = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--prefetch" => a.prefetch = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--page" => {
                let v = value(argv, &mut i, flag)?;
                a.page_bits = parse_size(v).ok_or_else(|| bad(v))?;
            }
            "--max-area" => {
                a.opt.max_area_overhead =
                    parse_num::<f64>(flag, value(argv, &mut i, flag)?)? / 100.0;
            }
            "--max-time" => {
                a.opt.max_access_time_overhead =
                    parse_num::<f64>(flag, value(argv, &mut i, flag)?)? / 100.0;
            }
            "--relax" => a.opt.repeater_relax = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--sleep" => a.opt.sleep_transistors = true,
            "--solutions" => a.list_solutions = true,
            "--certified" => a.certified = true,
            "--deny-warnings" => a.deny_warnings = true,
            "--format" => {
                let v = value(argv, &mut i, flag)?;
                a.format = parse_format(v).ok_or_else(|| bad(v))?;
            }
            "--help" | "-h" => return Err("help requested".to_string()),
            other => {
                if !parse_severity_flag(&mut a.overrides, other, argv, &mut i)? {
                    return Err(format!("unknown flag {other:?}"));
                }
            }
        }
        i += 1;
    }
    if a.size == 0 {
        return Err("missing required flag --size".to_string());
    }
    Ok(a)
}

/// Everything `cactid explore` needs: the grid plus engine options.
#[derive(Debug)]
struct ExploreArgs {
    grid: Grid,
    threads: usize,
    out: Option<PathBuf>,
    resume: bool,
    pareto: bool,
    lint: bool,
    audit: bool,
    trace: Option<PathBuf>,
}

/// The named optimization-knob variants the `--opts` axis accepts:
/// `default`, plus the paper's `ed` (energy/delay mats) and `c` (capacity)
/// settings from §3.1. The table lives in [`OptVariant::named`], shared
/// with the serve protocol.
fn parse_opt_variant(v: &str) -> Option<OptVariant> {
    OptVariant::named(v)
}

/// Parses one comma-list grid-axis flag into `grid`; returns `false` when
/// `flag` is not a grid axis. Shared by `explore` and `audit --grid`.
fn parse_grid_flag(
    grid: &mut Grid,
    flag: &str,
    argv: &[String],
    i: &mut usize,
) -> Result<bool, String> {
    match flag {
        "--sizes" => grid.capacities = parse_list(flag, value(argv, i, flag)?, parse_size)?,
        "--blocks" => {
            grid.blocks = parse_list(flag, value(argv, i, flag)?, |v| v.parse::<u32>().ok())?;
        }
        "--assocs" => {
            grid.associativities =
                parse_list(flag, value(argv, i, flag)?, |v| v.parse::<u32>().ok())?;
        }
        "--banks" => {
            grid.banks = parse_list(flag, value(argv, i, flag)?, |v| v.parse::<u32>().ok())?;
        }
        "--nodes" => {
            grid.nodes = parse_list(flag, value(argv, i, flag)?, |v| {
                v.parse::<u32>().ok().and_then(TechNode::from_nm)
            })?;
        }
        "--cells" => grid.cells = parse_list(flag, value(argv, i, flag)?, parse_cell)?,
        "--opts" => grid.opts = parse_list(flag, value(argv, i, flag)?, parse_opt_variant)?,
        "--mode" => {
            let v = value(argv, i, flag)?;
            grid.access_mode =
                parse_mode(v).ok_or_else(|| format!("invalid value {v:?} for {flag}"))?;
        }
        _ => return Ok(false),
    }
    Ok(true)
}

fn parse_explore_args(argv: &[String]) -> Result<ExploreArgs, String> {
    let mut a = ExploreArgs {
        grid: Grid::new(),
        threads: 0,
        out: None,
        resume: false,
        pareto: false,
        lint: false,
        audit: false,
        trace: None,
    };
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--out" => a.out = Some(PathBuf::from(value(argv, &mut i, flag)?)),
            "--trace" => a.trace = Some(PathBuf::from(value(argv, &mut i, flag)?)),
            "--threads" => a.threads = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--resume" => a.resume = true,
            "--pareto" => a.pareto = true,
            "--lint" => a.lint = true,
            "--audit" => a.audit = true,
            "--help" | "-h" => return Err("help requested".to_string()),
            other => {
                if !parse_grid_flag(&mut a.grid, other, argv, &mut i)? {
                    return Err(format!("unknown flag {other:?}"));
                }
            }
        }
        i += 1;
    }
    if a.grid.capacities.is_empty() {
        return Err("missing required flag --sizes".to_string());
    }
    Ok(a)
}

/// The `cactid explore` subcommand: expand the grid, run the batch engine,
/// and print the JSONL (stdout, unless `--out`) plus the engine stats
/// (stderr, so piping the records stays clean).
fn run_explore(argv: &[String]) -> ! {
    let a = parse_explore_args(argv).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    let analyzer = Analyzer::new();
    let config = ExploreConfig {
        threads: a.threads,
        out: a.out.as_deref(),
        resume: a.resume,
        pareto: a.pareto,
        audit: a.audit,
        linter: a.lint.then_some(&analyzer as &(dyn SolutionLinter + Sync)),
        cache: None,
    };
    match cactid_explore::explore(&a.grid, &config) {
        Ok(report) => {
            if a.out.is_none() {
                for line in &report.lines {
                    println!("{line}");
                }
            }
            eprintln!("{}", report.stats.render());
            // Metrics are recorded unconditionally; --trace only controls
            // whether the sidecar is written, so the result JSONL is
            // byte-identical with tracing on or off.
            if let Some(trace) = &a.trace {
                if let Err(e) = cactid_obs::write_trace(trace, "explore") {
                    eprintln!("error: writing trace {}: {e}", trace.display());
                    exit(1)
                }
                eprint!("{}", cactid_obs::render_summary(&cactid_obs::snapshot()));
            }
            exit(0)
        }
        Err(e) => {
            eprintln!("error: {e}");
            exit(1)
        }
    }
}

/// Everything `cactid serve` needs: the transport plus service options.
#[derive(Debug)]
struct ServeArgs {
    /// `Some(addr)` for TCP, `None` for the stdin/stdout JSONL loop.
    listen: Option<String>,
    store: Option<PathBuf>,
    threads: usize,
    trace: Option<PathBuf>,
}

fn parse_serve_args(argv: &[String]) -> Result<ServeArgs, String> {
    let mut a = ServeArgs {
        listen: None,
        store: None,
        threads: 0,
        trace: None,
    };
    let mut stdio = false;
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--stdio" => stdio = true,
            "--listen" => a.listen = Some(value(argv, &mut i, flag)?.to_string()),
            "--store" => a.store = Some(PathBuf::from(value(argv, &mut i, flag)?)),
            "--threads" => a.threads = parse_num(flag, value(argv, &mut i, flag)?)?,
            "--trace" => a.trace = Some(PathBuf::from(value(argv, &mut i, flag)?)),
            "--help" | "-h" => return Err("help requested".to_string()),
            other => return Err(format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    if stdio && a.listen.is_some() {
        return Err("--stdio and --listen are mutually exclusive".to_string());
    }
    Ok(a)
}

/// The `cactid serve` subcommand: a resident solve service. Records go to
/// stdout (stdio mode) or the socket; diagnostics, the end-of-run metric
/// summary (request latency p50/p99 included) and the optional trace
/// sidecar go to stderr/disk, so piping the records stays clean.
fn run_serve(argv: &[String]) -> ! {
    let a = parse_serve_args(argv).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    let config = cactid_serve::ServeConfig {
        threads: a.threads,
        store: a.store.clone(),
    };
    let svc = cactid_serve::Service::new(&config).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    });
    let result = match &a.listen {
        Some(addr) => std::net::TcpListener::bind(addr.as_str())
            .map_err(|e| format!("binding {addr}: {e}"))
            .and_then(|listener| {
                if let Ok(local) = listener.local_addr() {
                    eprintln!("cactid-serve: listening on {local}");
                }
                svc.run_tcp(&listener).map_err(|e| e.to_string())
            }),
        None => svc.run_stdio().map(drop).map_err(|e| e.to_string()),
    };
    if let Err(e) = result {
        eprintln!("error: {e}");
        exit(1)
    }
    eprintln!("cactid-serve: served {} requests", svc.requests_served());
    if let Some(trace) = &a.trace {
        if let Err(e) = cactid_obs::write_trace(trace, "serve") {
            eprintln!("error: writing trace {}: {e}", trace.display());
            exit(1)
        }
    }
    eprint!("{}", cactid_obs::render_summary(&cactid_obs::snapshot()));
    exit(0)
}

/// Everything `cactid audit` needs: either a grid (static pre-solve
/// classification) or a finished run's JSONL (cross-record CD01xx rules).
#[derive(Debug)]
struct AuditArgs {
    grid: Option<Grid>,
    jsonl: Option<PathBuf>,
    format: OutputFormat,
    overrides: SeverityOverrides,
    deny_warnings: bool,
}

fn parse_audit_args(argv: &[String]) -> Result<AuditArgs, String> {
    let mut a = AuditArgs {
        grid: None,
        jsonl: None,
        format: OutputFormat::Text,
        overrides: SeverityOverrides::new(),
        deny_warnings: false,
    };
    let mut grid = Grid::new();
    let mut grid_mode = false;
    let mut i = 0;
    while i < argv.len() {
        let flag = argv[i].as_str();
        match flag {
            "--grid" => grid_mode = true,
            "--jsonl" => a.jsonl = Some(PathBuf::from(value(argv, &mut i, flag)?)),
            "--format" => {
                let v = value(argv, &mut i, flag)?;
                a.format =
                    parse_format(v).ok_or_else(|| format!("invalid value {v:?} for {flag}"))?;
            }
            "--deny-warnings" => a.deny_warnings = true,
            "--help" | "-h" => return Err("help requested".to_string()),
            other => {
                if parse_grid_flag(&mut grid, other, argv, &mut i)? {
                    grid_mode = true;
                } else if !parse_severity_flag(&mut a.overrides, other, argv, &mut i)? {
                    return Err(format!("unknown flag {other:?}"));
                }
            }
        }
        i += 1;
    }
    match (grid_mode, a.jsonl.is_some()) {
        (true, true) => Err("--grid axes and --jsonl are mutually exclusive".to_string()),
        (false, false) => {
            Err("audit needs --grid with axis flags (--sizes ...) or --jsonl FILE".to_string())
        }
        (true, false) => {
            if grid.capacities.is_empty() {
                return Err("missing required flag --sizes".to_string());
            }
            a.grid = Some(grid);
            Ok(a)
        }
        (false, true) => Ok(a),
    }
}

/// Rebuilds the raw (unvalidated) spec for a grid point and names the
/// spec-stage rules it trips — the CD-code attribution for `invalid`
/// verdicts in `--format json` audit output.
fn audit_rule_codes(
    analyzer: &Analyzer,
    grid: &Grid,
    point: &cactid_explore::GridPoint,
) -> Vec<&'static str> {
    let opt = grid
        .opts
        .iter()
        .find(|o| o.label == point.opt_label)
        .map(|o| o.opt.clone())
        .unwrap_or_default();
    let spec = MemorySpec {
        capacity_bytes: point.capacity_bytes,
        block_bytes: point.block_bytes,
        associativity: point.associativity,
        n_banks: point.banks,
        kind: MemoryKind::Cache {
            access_mode: point.access_mode,
        },
        cell_tech: point.cell,
        node: point.node,
        address_bits: 40,
        opt,
    };
    let mut codes: Vec<&'static str> = analyzer.lint_spec(&spec).iter().map(|d| d.code).collect();
    codes.sort_unstable();
    codes.dedup();
    codes
}

/// One audit grid point as a stable JSON object:
/// `{"idx":N,"verdict":"...","detail":STRING|null,"rules":["CDxxxx",...]}`
/// (`rules` names the spec-stage diagnostics for `invalid` points and is
/// empty otherwise).
fn audit_point_json(p: &cactid_explore::PointAudit, rules: &[&str]) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "{{\"idx\":{},\"verdict\":\"{}\",\"detail\":",
        p.idx,
        p.verdict.as_str()
    );
    match &p.detail {
        Some(d) => {
            let _ = write!(s, "\"{}\"", cactid_analyze::json::escape(d));
        }
        None => s.push_str("null"),
    }
    s.push_str(",\"rules\":[");
    for (k, code) in rules.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{code}\"");
    }
    s.push_str("]}");
    s
}

/// Grid mode: classify every point statically, print the verdicts (JSONL
/// on stdout under `--format json`) and the histogram summary. Always
/// exits 0 — classification is information, not failure.
fn run_audit_grid(grid: &Grid, format: OutputFormat, analyzer: &Analyzer) -> ! {
    let report = cactid_explore::audit(grid).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(1)
    });
    match format {
        OutputFormat::Text => println!("{}", report.render()),
        OutputFormat::Json => {
            let expansion = grid.expand().expect("audit already expanded this grid");
            for p in &report.points {
                let rules = if p.verdict == AuditVerdict::Invalid {
                    audit_rule_codes(analyzer, grid, &expansion.points[p.idx])
                } else {
                    Vec::new()
                };
                println!("{}", audit_point_json(p, &rules));
            }
            eprintln!("{}", report.render());
        }
    }
    exit(0)
}

/// Prints a lint report in the requested format and exits with the shared
/// severity contract: errors always fail; warnings fail only under
/// `--deny-warnings`; info diagnostics never affect the exit code.
fn finish_lint(
    analyzer: &Analyzer,
    report: &Report,
    deny_warnings: bool,
    format: OutputFormat,
) -> ! {
    match format {
        OutputFormat::Text => {
            print!("{}", render::render(analyzer, report));
            if report.is_empty() {
                println!("{}", render::summary_line(report));
            }
        }
        OutputFormat::Json => {
            // Machine-readable JSONL on stdout; the human summary goes to
            // stderr so piping stays clean.
            print!("{}", render::render_json(analyzer, report));
            eprintln!("{}", render::summary_line(report));
        }
    }
    if report.error_count() > 0 || (deny_warnings && report.warn_count() > 0) {
        exit(1)
    }
    exit(0)
}

/// The `cactid audit` subcommand: whole-grid static feasibility analysis
/// (`--grid`) or cross-record run analysis (`--jsonl FILE`).
fn run_audit(argv: &[String]) -> ! {
    let a = parse_audit_args(argv).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    let analyzer = Analyzer::with_overrides(a.overrides).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2)
    });
    if let Some(grid) = &a.grid {
        run_audit_grid(grid, a.format, &analyzer);
    }
    let path = a.jsonl.expect("parse_audit_args guarantees a mode");
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        eprintln!("error: reading {}: {e}", path.display());
        exit(1)
    });
    let ctx = RunContext::parse(&text);
    let report = analyzer.lint_run(&ctx);
    finish_lint(&analyzer, &report, a.deny_warnings, a.format)
}

/// Assembles the spec directly from the parsed flags, **bypassing** the
/// builder's validation — the point of `cactid lint` is to diagnose specs
/// the builder would reject outright, naming the rule, field, and fix.
fn spec_from_args(a: &Args) -> MemorySpec {
    let kind = if a.main_memory {
        MemoryKind::MainMemory {
            io_bits: a.io,
            burst_length: a.burst,
            prefetch: a.prefetch,
            page_bits: a.page_bits,
        }
    } else if a.ram {
        MemoryKind::Ram
    } else {
        MemoryKind::Cache {
            access_mode: a.mode,
        }
    };
    let assoc = if matches!(kind, MemoryKind::Cache { .. }) {
        a.assoc
    } else {
        1
    };
    MemorySpec {
        capacity_bytes: a.size,
        block_bytes: a.block,
        associativity: assoc,
        n_banks: a.banks,
        kind,
        cell_tech: a.cell,
        node: a.node,
        address_bits: 40,
        opt: a.opt.clone(),
    }
}

fn print_solution(sol: &Solution) {
    println!("organization:");
    println!(
        "  stripe x subarrays : {} x {} (nspd {}, bl-mux {}, sa-mux {})",
        sol.org.ndwl, sol.org.ndbl, sol.org.nspd, sol.org.deg_bl_mux, sol.org.deg_sa_mux
    );
    println!("timing:");
    println!("  access time        : {:>9.3} ns", sol.access_ns());
    println!(
        "  random cycle       : {:>9.3} ns",
        sol.random_cycle.value() * 1e9
    );
    println!(
        "  interleave cycle   : {:>9.3} ns",
        sol.interleave_cycle.value() * 1e9
    );
    let d = &sol.data.delay;
    println!(
        "  breakdown          : htree-in {:.3} | decode {:.3} | bitline {:.3} | sense {:.3} | mux {:.3} | htree-out {:.3} ns",
        d.htree_in.value() * 1e9,
        d.decode.value() * 1e9,
        d.bitline.value() * 1e9,
        d.sense.value() * 1e9,
        d.mux.value() * 1e9,
        d.htree_out.value() * 1e9
    );
    if d.restore > Seconds::ZERO {
        println!(
            "  dram phases        : restore {:.3} | precharge {:.3} ns",
            d.restore.value() * 1e9,
            d.precharge.value() * 1e9
        );
    }
    println!("area:");
    println!("  total              : {:>9.3} mm^2", sol.area_mm2());
    println!(
        "  efficiency         : {:>9.1} %",
        sol.area_efficiency * 100.0
    );
    println!("energy/power:");
    println!("  read energy        : {:>9.3} nJ", sol.read_energy_nj());
    println!(
        "  write energy       : {:>9.3} nJ",
        sol.write_energy.value() * 1e9
    );
    let e = &sol.data.energy;
    println!(
        "  breakdown          : htree {:.3} | decode {:.3} | bitline {:.3} | sense {:.3} | column {:.3} nJ",
        e.htree_in.value() * 1e9,
        e.decode.value() * 1e9,
        e.bitline.value() * 1e9,
        e.sense.value() * 1e9,
        e.column.value() * 1e9
    );
    println!(
        "  leakage            : {:>9.4} W",
        sol.leakage_power.value()
    );
    if sol.refresh_power > Watts::ZERO {
        println!(
            "  refresh            : {:>9.4} W",
            sol.refresh_power.value()
        );
    }
    if let Some(tag) = &sol.tag {
        println!("tag array:");
        println!(
            "  access {:.3} ns (incl. compare {:.3} ns), {:.4} mm^2, {:.4} nJ",
            tag.access_time().value() * 1e9,
            tag.comparator_delay.value() * 1e9,
            tag.array.area().value() / 1e-6,
            tag.read_energy().value() * 1e9
        );
    }
    if let Some(mm) = &sol.main_memory {
        println!("main-memory interface:");
        println!(
            "  tRCD {:.2} | CL {:.2} | tRAS {:.2} | tRP {:.2} | tRC {:.2} | tRRD {:.2} ns",
            mm.timing.t_rcd.value() * 1e9,
            mm.timing.cas_latency.value() * 1e9,
            mm.timing.t_ras.value() * 1e9,
            mm.timing.t_rp.value() * 1e9,
            mm.timing.t_rc.value() * 1e9,
            mm.timing.t_rrd.value() * 1e9
        );
        println!(
            "  ACT {:.3} nJ | RD {:.3} nJ | WR {:.3} nJ | refresh {:.3} mW | standby {:.3} mW",
            mm.energies.activate.value() * 1e9,
            mm.energies.read.value() * 1e9,
            mm.energies.write.value() * 1e9,
            mm.energies.refresh_power.value() * 1e3,
            mm.energies.standby_power.value() * 1e3
        );
    }
}

/// The `cactid lint` subcommand: spec-stage diagnostics always; when the
/// spec has no errors and the optimizer finds a winner, the full
/// three-stage report over that solution too. Exit 0 only when no errors
/// (and, under `--deny-warnings`, no warnings) were emitted.
fn run_lint(a: &Args) -> ! {
    let spec = spec_from_args(a);
    let analyzer = Analyzer::with_overrides(a.overrides.clone()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2)
    });
    let spec_report = analyzer.lint_spec(&spec);

    let report = if spec_report.error_count() > 0 {
        spec_report
    } else {
        // The spec is structurally sound: lint the optimized solution so
        // the organization- and solution-stage rules get a say as well.
        match cactid_core::optimize_with(&spec, &analyzer) {
            Ok(sol) => analyzer.lint_solution(&spec, &sol),
            Err(e) => {
                print!("{}", render::render(&analyzer, &spec_report));
                eprintln!("error: the spec lints clean but has no feasible solution: {e}");
                exit(1)
            }
        }
    };
    finish_lint(&analyzer, &report, a.deny_warnings, a.format)
}

/// The shipped CD0021/CD0022 plausibility windows, in the shape the
/// prover's window analysis consumes. Built from the same public
/// constants the rules themselves compare against, so the analysis can
/// never drift from the lint.
fn shipped_windows() -> [MetricWindow; 2] {
    [
        MetricWindow {
            rule_code: "CD0021",
            metric: WindowMetric::AccessTime,
            min_si: ACCESS_TIME_MIN.value(),
            max_si: ACCESS_TIME_MAX.value(),
        },
        MetricWindow {
            rule_code: "CD0022",
            metric: WindowMetric::ReadEnergy,
            min_si: DYN_ENERGY_MIN.value(),
            max_si: DYN_ENERGY_MAX.value(),
        },
    ]
}

/// The `cactid prove` subcommand: certify the prescreen sound over the
/// spec's whole technology domain, analyze the plausibility windows, and
/// report via the standard diagnostics pipeline (CD0201-CD0204). The
/// human-readable proof summary goes to stdout in text mode and stderr in
/// JSON mode, so piping the JSONL stays clean.
fn run_prove(argv: &[String]) -> ! {
    let a = parse_args(argv).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    // Validates any --allow/--warn/--deny codes against the registry.
    let analyzer = Analyzer::with_overrides(a.overrides.clone()).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        exit(2)
    });
    let spec = spec_from_args(&a);
    let proof = cactid_prove::certify_spec(&spec);
    let report: Report = cactid_prove::diagnostics(&proof, &shipped_windows())
        .into_vec()
        .into_iter()
        .filter_map(|d| a.overrides.apply(d))
        .collect();
    match a.format {
        OutputFormat::Text => println!("{}", cactid_prove::text_summary(&proof)),
        OutputFormat::Json => eprintln!("{}", cactid_prove::text_summary(&proof)),
    }
    finish_lint(&analyzer, &report, a.deny_warnings, a.format)
}

/// Solves the spec for the classic path: the exact staged screen by
/// default, or — with `--certified` — through the prover's certified
/// prescreen bounds. The certified screen only skips checks the proof
/// shows redundant, so the solution set is identical either way.
fn solve_classic(
    a: &Args,
    spec: &MemorySpec,
    analyzer: &Analyzer,
) -> Result<Vec<Solution>, CactiError> {
    if a.certified {
        let bounds = cactid_prove::certified_bounds(spec.node, spec.cell_tech);
        cactid_core::solve_with_stats_certified(spec, Some(analyzer), &bounds).result
    } else {
        cactid_core::solve_with(spec, analyzer)
    }
}

fn print_warnings(analyzer: &Analyzer, warnings: &[Diagnostic]) {
    if warnings.is_empty() {
        return;
    }
    let report: Report = warnings.iter().cloned().collect();
    eprint!("{}", render::render(analyzer, &report));
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("explore") {
        run_explore(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("audit") {
        run_audit(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("prove") {
        run_prove(&argv[1..]);
    }
    if argv.first().map(String::as_str) == Some("serve") {
        run_serve(&argv[1..]);
    }
    let (lint_mode, rest) = match argv.first().map(String::as_str) {
        Some("lint") => (true, &argv[1..]),
        _ => (false, &argv[..]),
    };
    let a = parse_args(rest).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        usage()
    });
    if lint_mode {
        run_lint(&a);
    }

    let spec = spec_from_args(&a);
    // The classic path still validates eagerly, like the builder would.
    if let Err(e) = MemorySpec::builder()
        .capacity_bytes(spec.capacity_bytes)
        .block_bytes(spec.block_bytes)
        .associativity(spec.associativity)
        .banks(spec.n_banks)
        .cell_tech(spec.cell_tech)
        .node(spec.node)
        .kind(spec.kind)
        .optimization(spec.opt.clone())
        .build()
    {
        eprintln!("error: {e}");
        eprintln!("hint: run `cactid lint` with the same flags for a full diagnosis");
        exit(1)
    }

    println!(
        "cactid: {} bytes, block {}, assoc {}, banks {}, {} @ {}",
        spec.capacity_bytes,
        spec.block_bytes,
        spec.associativity,
        spec.n_banks,
        spec.cell_tech,
        spec.node
    );
    let analyzer = Analyzer::new();
    if a.list_solutions {
        let sols = solve_classic(&a, &spec, &analyzer).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        println!(
            "{:>5} {:>5} {:>5} {:>6} {:>6} {:>9} {:>9} {:>9} {:>9}",
            "ndwl", "ndbl", "nspd", "blmux", "samux", "acc ns", "cyc ns", "mm2", "Erd nJ"
        );
        for s in &sols {
            println!(
                "{:>5} {:>5} {:>5} {:>6} {:>6} {:>9.3} {:>9.3} {:>9.3} {:>9.3}",
                s.org.ndwl,
                s.org.ndbl,
                s.org.nspd,
                s.org.deg_bl_mux,
                s.org.deg_sa_mux,
                s.access_ns(),
                s.random_cycle.value() * 1e9,
                s.area_mm2(),
                s.read_energy_nj()
            );
        }
        println!("{} feasible organizations", sols.len());
    } else {
        // solve + select is exactly optimize_with, split so --certified
        // can swap the solve stage without touching the selection.
        let sols = solve_classic(&a, &spec, &analyzer).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        let sol = cactid_core::select(&spec, &sols).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            exit(1)
        });
        print_solution(&sol);
        print_warnings(&analyzer, &sol.warnings);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn size_suffixes_scale_correctly() {
        assert_eq!(parse_size("64"), Some(64));
        assert_eq!(parse_size("64K"), Some(64 << 10));
        assert_eq!(parse_size("64k"), Some(64 << 10));
        assert_eq!(parse_size("2M"), Some(2 << 20));
        assert_eq!(parse_size("1g"), Some(1 << 30));
        assert_eq!(parse_size(" 8K "), Some(8 << 10), "whitespace is trimmed");
    }

    #[test]
    fn malformed_sizes_are_rejected() {
        for bad in ["", "K", "12Q", "1.5M", "-4K", "64KB"] {
            assert_eq!(parse_size(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn classic_flags_round_trip() {
        let a = parse_args(&args(&[
            "--size", "2M", "--block", "32", "--assoc", "16", "--banks", "4", "--cell", "lp-dram",
            "--node", "45", "--mode", "fast", "--sleep",
        ]))
        .unwrap();
        assert_eq!(a.size, 2 << 20);
        assert_eq!((a.block, a.assoc, a.banks), (32, 16, 4));
        assert_eq!(a.cell, CellTechnology::LpDram);
        assert_eq!(a.node, TechNode::N45);
        assert_eq!(a.mode, AccessMode::Fast);
        assert!(a.opt.sleep_transistors);
    }

    #[test]
    fn classic_parser_reports_what_went_wrong() {
        let missing = parse_args(&args(&["--block", "64"])).unwrap_err();
        assert!(missing.contains("--size"), "{missing}");
        let unknown = parse_args(&args(&["--size", "1M", "--frobnicate"])).unwrap_err();
        assert!(unknown.contains("unknown flag"), "{unknown}");
        let dangling = parse_args(&args(&["--size"])).unwrap_err();
        assert!(dangling.contains("expects a value"), "{dangling}");
        let bad_num = parse_args(&args(&["--size", "1M", "--assoc", "eight"])).unwrap_err();
        assert!(bad_num.contains("--assoc"), "{bad_num}");
        let bad_node = parse_args(&args(&["--size", "1M", "--node", "33"])).unwrap_err();
        assert!(bad_node.contains("--node"), "{bad_node}");
    }

    #[test]
    fn explore_axes_parse_as_comma_lists() {
        let a = parse_explore_args(&args(&[
            "--sizes",
            "64K,128K,1M",
            "--blocks",
            "32,64",
            "--assocs",
            "4,8",
            "--cells",
            "sram,lp-dram",
            "--nodes",
            "45,32",
            "--opts",
            "default,ed,c",
            "--threads",
            "4",
            "--pareto",
            "--resume",
            "--out",
            "sweep.jsonl",
            "--trace",
            "sweep.trace.jsonl",
        ]))
        .unwrap();
        assert_eq!(a.grid.capacities, vec![64 << 10, 128 << 10, 1 << 20]);
        assert_eq!(a.grid.blocks, vec![32, 64]);
        assert_eq!(a.grid.associativities, vec![4, 8]);
        assert_eq!(
            a.grid.cells,
            vec![CellTechnology::Sram, CellTechnology::LpDram]
        );
        assert_eq!(a.grid.nodes, vec![TechNode::N45, TechNode::N32]);
        let labels: Vec<&str> = a.grid.opts.iter().map(|o| o.label.as_str()).collect();
        assert_eq!(labels, ["default", "ed", "c"]);
        assert_eq!(a.threads, 4);
        assert!(a.pareto && a.resume && !a.lint);
        assert_eq!(a.out.as_deref(), Some(std::path::Path::new("sweep.jsonl")));
        assert_eq!(
            a.trace.as_deref(),
            Some(std::path::Path::new("sweep.trace.jsonl"))
        );
        assert_eq!(a.grid.len(), 3 * 2 * 2 * 2 * 2 * 3);
    }

    #[test]
    fn explore_parser_accepts_audit_switch() {
        let a = parse_explore_args(&args(&["--sizes", "1M", "--audit"])).unwrap();
        assert!(a.audit);
        let plain = parse_explore_args(&args(&["--sizes", "1M"])).unwrap();
        assert!(!plain.audit);
    }

    #[test]
    fn lint_parser_collects_severity_overrides_and_format() {
        let a = parse_args(&args(&[
            "--size", "1M", "--format", "json", "--allow", "CD0004", "--deny", "CD0021", "--warn",
            "CD0002",
        ]))
        .unwrap();
        assert_eq!(a.format, OutputFormat::Json);
        assert_eq!(a.overrides.action("CD0004"), Some(SeverityAction::Allow));
        assert_eq!(a.overrides.action("CD0021"), Some(SeverityAction::Deny));
        assert_eq!(a.overrides.action("CD0002"), Some(SeverityAction::Warn));
        assert_eq!(a.overrides.action("CD0001"), None);
        let bad = parse_args(&args(&["--size", "1M", "--format", "yaml"])).unwrap_err();
        assert!(bad.contains("--format"), "{bad}");
    }

    #[test]
    fn audit_parser_separates_the_two_modes() {
        let g =
            parse_audit_args(&args(&["--grid", "--sizes", "64K,1M", "--assocs", "4,8"])).unwrap();
        let grid = g.grid.expect("grid mode");
        assert_eq!(grid.capacities, vec![64 << 10, 1 << 20]);
        assert_eq!(grid.associativities, vec![4, 8]);
        assert!(g.jsonl.is_none());

        // Axis flags alone imply grid mode; --grid is just the marker.
        let implied = parse_audit_args(&args(&["--sizes", "1M"])).unwrap();
        assert!(implied.grid.is_some());

        let j = parse_audit_args(&args(&[
            "--jsonl",
            "run.jsonl",
            "--format",
            "json",
            "--deny",
            "CD0104",
            "--deny-warnings",
        ]))
        .unwrap();
        assert!(j.grid.is_none());
        assert_eq!(j.jsonl.as_deref(), Some(std::path::Path::new("run.jsonl")));
        assert_eq!(j.format, OutputFormat::Json);
        assert_eq!(j.overrides.action("CD0104"), Some(SeverityAction::Deny));
        assert!(j.deny_warnings);

        let both = parse_audit_args(&args(&["--sizes", "1M", "--jsonl", "x"])).unwrap_err();
        assert!(both.contains("mutually exclusive"), "{both}");
        let neither = parse_audit_args(&args(&[])).unwrap_err();
        assert!(neither.contains("--grid"), "{neither}");
        let no_sizes = parse_audit_args(&args(&["--grid"])).unwrap_err();
        assert!(no_sizes.contains("--sizes"), "{no_sizes}");
    }

    #[test]
    fn audit_point_json_is_stable() {
        use cactid_explore::PointAudit;
        let ok = PointAudit {
            idx: 3,
            verdict: AuditVerdict::MaybeFeasible,
            detail: None,
        };
        assert_eq!(
            audit_point_json(&ok, &[]),
            r#"{"idx":3,"verdict":"maybe-feasible","detail":null,"rules":[]}"#
        );
        let bad = PointAudit {
            idx: 0,
            verdict: AuditVerdict::Invalid,
            detail: Some("768 sets \"bad\"".to_string()),
        };
        assert_eq!(
            audit_point_json(&bad, &["CD0001"]),
            r#"{"idx":0,"verdict":"invalid","detail":"768 sets \"bad\"","rules":["CD0001"]}"#
        );
    }

    #[test]
    fn explore_parser_rejects_bad_input() {
        let missing = parse_explore_args(&args(&["--assocs", "4"])).unwrap_err();
        assert!(missing.contains("--sizes"), "{missing}");
        let bad_item = parse_explore_args(&args(&["--sizes", "64K,oops"])).unwrap_err();
        assert!(bad_item.contains("oops"), "{bad_item}");
        let bad_opt = parse_explore_args(&args(&["--sizes", "1M", "--opts", "fancy"])).unwrap_err();
        assert!(bad_opt.contains("fancy"), "{bad_opt}");
        let unknown = parse_explore_args(&args(&["--sizes", "1M", "--bogus"])).unwrap_err();
        assert!(unknown.contains("unknown flag"), "{unknown}");
    }

    #[test]
    fn serve_flags_round_trip() {
        let a = parse_serve_args(&args(&[])).unwrap();
        assert!(a.listen.is_none() && a.store.is_none() && a.trace.is_none());
        assert_eq!(a.threads, 0);

        let a = parse_serve_args(&args(&[
            "--stdio",
            "--store",
            "solutions.store",
            "--threads",
            "2",
            "--trace",
            "trace.jsonl",
        ]))
        .unwrap();
        assert!(a.listen.is_none());
        assert_eq!(
            a.store.as_deref(),
            Some(std::path::Path::new("solutions.store"))
        );
        assert_eq!(a.threads, 2);
        assert!(a.trace.is_some());

        let a = parse_serve_args(&args(&["--listen", "127.0.0.1:7878"])).unwrap();
        assert_eq!(a.listen.as_deref(), Some("127.0.0.1:7878"));
    }

    #[test]
    fn serve_parser_rejects_bad_input() {
        let both = parse_serve_args(&args(&["--stdio", "--listen", "127.0.0.1:0"])).unwrap_err();
        assert!(both.contains("mutually exclusive"), "{both}");
        let unknown = parse_serve_args(&args(&["--bogus"])).unwrap_err();
        assert!(unknown.contains("unknown flag"), "{unknown}");
        let dangling = parse_serve_args(&args(&["--store"])).unwrap_err();
        assert!(dangling.contains("expects a value"), "{dangling}");
    }
}
