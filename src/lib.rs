//! # cacti-d — a Rust reproduction of CACTI-D (ISCA 2008)
//!
//! Facade crate re-exporting the whole workspace:
//!
//! * [`units`] — the compile-time dimensional-analysis layer: typed
//!   physical quantities (`Seconds`, `Farads`, `Joules`, …) whose algebra
//!   admits only physically meaningful products and ratios.
//! * [`tech`] — ITRS-style device/wire/cell technology models.
//! * [`circuit`] — circuit primitives (logical effort, Horowitz, decoders,
//!   sense amps, repeaters, crossbars).
//! * [`core`] — the CACTI-D array-organization model, DRAM operational
//!   models, main-memory chip model and the staged solution optimizer.
//! * [`analyze`] — the diagnostics engine: twenty-two lint rules over specs,
//!   organizations and solutions (`cactid lint`, `CD0001`–`CD0022`).
//! * [`prove`] — interval-arithmetic soundness certificates for the prune
//!   pipeline: outward-rounded dimensional intervals, an abstract
//!   prescreen, window/dead-rule analysis and certified prescreen bounds
//!   (`cactid prove`, `CD0201`–`CD0204`).
//! * [`sim`] — the cycle-level CMP memory-hierarchy simulator.
//! * [`workloads`] — synthetic NPB-like workload generators.
//! * [`study`] — the paper's tables and figures (Tables 1–3, Figures 1,
//!   4 and 5).
//! * [`explore`] — batch design-space exploration: grid expansion, a
//!   hermetic thread pool, solve memoization, resumable JSONL sweeps and
//!   Pareto-frontier extraction (`cactid explore`).
//! * [`serve`] — a resident solve service: JSONL requests over
//!   stdin/stdout or TCP, answered in the explore record schema and backed
//!   by a disk-backed content-addressed solution store, so restarts answer
//!   duplicates without re-solving (`cactid serve`).
//! * [`obs`] — zero-dependency observability: process-wide counters,
//!   histograms and timing spans recorded across the solve and simulation
//!   paths, dumped as a JSONL trace sidecar by `--trace`.
//!
//! See the README for a guided tour and `examples/` for runnable
//! demonstrations.
pub use cactid_analyze as analyze;
pub use cactid_circuit as circuit;
pub use cactid_core as core;
pub use cactid_explore as explore;
pub use cactid_obs as obs;
pub use cactid_prove as prove;
pub use cactid_serve as serve;
pub use cactid_tech as tech;
pub use cactid_units as units;
pub use llc_study as study;
pub use memsim as sim;
pub use npbgen as workloads;
