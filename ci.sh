#!/bin/sh
# The checks CI runs — all hermetic (no network, no registry deps).
# Usage: ./ci.sh
set -eu

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "== cargo doc --workspace --no-deps"
# missing_docs is a workspace lint, so the docs must build warning-free.
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "== cactid lint smoke run (example specs)"
# Exercise the CD0001-CD0022 analyzer end to end, not just in unit tests.
# Each spec mirrors one examples/ configuration; lint must exit 0 with no
# diagnostics for all of them (--deny-warnings makes warnings fatal).
cargo build --release --quiet --bin cactid
CACTID=target/release/cactid
$CACTID lint --deny-warnings --size 2M --block 64 --assoc 8 --banks 1 \
    --cell sram --node 32 >/dev/null
$CACTID lint --deny-warnings --size 8M --assoc 16 --cell lp-dram --node 32 \
    --mode sequential >/dev/null
$CACTID lint --deny-warnings --size 128M --banks 8 --block 8 \
    --cell comm-dram --node 78 --main-memory --io 8 --burst 8 \
    --prefetch 8 --page 8K >/dev/null

echo "== cactid-explore tests + explore smoke run"
# Belt and braces: the workspace run above covers these, but the explore
# engine's resume path also gets an end-to-end CLI check here.
cargo test -q -p cactid-explore
OUT=$(mktemp -d)/sweep.jsonl
# A 4-point sweep, then the same sweep resumed: the second run must find
# every point in the checkpoint sidecars and re-solve nothing — its
# stderr stats report "solved 0,".
$CACTID explore --sizes 64K,128K --assocs 4,8 --threads 2 --pareto \
    --out "$OUT" 2>/dev/null
RESUMED=$($CACTID explore --sizes 64K,128K --assocs 4,8 --threads 2 \
    --pareto --out "$OUT" --resume 2>&1 >/dev/null)
echo "$RESUMED" | grep -q "solved 0," || {
    echo "explore --resume re-solved completed points:" >&2
    echo "$RESUMED" >&2
    exit 1
}
rm -rf "$(dirname "$OUT")"

echo "== --trace smoke run (determinism + sidecar validity)"
# The result JSONL must be byte-identical with tracing on or off, at any
# thread count; the sidecar must be non-empty, one JSON object per line,
# and carry optimizer/pool/cache counters.
TDIR=$(mktemp -d)
$CACTID explore --sizes 64K,128K --assocs 4,8 --threads 1 --pareto \
    --out "$TDIR/ref.jsonl" 2>/dev/null
for T in 1 2 8; do
    $CACTID explore --sizes 64K,128K --assocs 4,8 --threads "$T" --pareto \
        --out "$TDIR/t$T.jsonl" --trace "$TDIR/t$T.trace.jsonl" 2>/dev/null
    cmp "$TDIR/ref.jsonl" "$TDIR/t$T.jsonl" || {
        echo "result JSONL differs with --trace at --threads $T" >&2
        exit 1
    }
    test -s "$TDIR/t$T.trace.jsonl" || {
        echo "trace sidecar empty at --threads $T" >&2
        exit 1
    }
    # Every line must look like one JSON object.
    if grep -vq '^{.*}$' "$TDIR/t$T.trace.jsonl"; then
        echo "trace sidecar has a non-JSONL line at --threads $T" >&2
        exit 1
    fi
done
for NAME in core.solve.calls explore.pool.claims explore.cache.misses; do
    grep -q "\"name\":\"$NAME\"" "$TDIR/t2.trace.jsonl" || {
        echo "trace sidecar lacks counter $NAME" >&2
        exit 1
    }
done
# The incremental evaluator must actually score memo reuse on a real
# solve — a bench-spec-sized sweep with a zero counter means the memo
# plumbing silently fell out of the staged path.
$CACTID explore --sizes 1M --assocs 8 --threads 1 \
    --out "$TDIR/reuse.jsonl" --trace "$TDIR/reuse.trace.jsonl" 2>/dev/null
grep -q '"name":"core.solve.incremental_reuse","value":[1-9]' \
    "$TDIR/reuse.trace.jsonl" || {
    echo "core.solve.incremental_reuse did not fire on the 1M/8-way sweep" >&2
    exit 1
}
rm -rf "$TDIR"

echo "== cactid audit smoke run (static grid analysis + json diagnostics)"
# Whole-grid static feasibility: a mixed grid must classify all three
# verdicts without solving and print the per-rule infeasibility histogram.
ADIR=$(mktemp -d)
$CACTID audit --grid --sizes 48K,64K,128K,512M,1G --blocks 64,128 \
    --assocs 4,8 --cells sram,comm-dram --nodes 32,90 \
    > "$ADIR/audit.txt"
grep -q "infeasibility histogram" "$ADIR/audit.txt" || {
    echo "audit summary lacks the infeasibility histogram:" >&2
    cat "$ADIR/audit.txt" >&2
    exit 1
}
grep -q "statically infeasible" "$ADIR/audit.txt" || {
    echo "audit found no statically infeasible points on the smoke grid" >&2
    exit 1
}
# The audited engine run must emit byte-identical JSONL to a plain run.
$CACTID explore --sizes 64K,512M --cells sram,comm-dram --threads 2 \
    --out "$ADIR/plain.jsonl" 2>/dev/null
$CACTID explore --sizes 64K,512M --cells sram,comm-dram --threads 2 \
    --out "$ADIR/audited.jsonl" --audit 2>/dev/null
cmp "$ADIR/plain.jsonl" "$ADIR/audited.jsonl" || {
    echo "explore --audit changed the output JSONL" >&2
    exit 1
}
# Machine-readable diagnostics: every line one JSON object carrying the
# schema's required keys, and the lint exit contract holds.
if $CACTID lint --size 1536K --format json > "$ADIR/diag.jsonl"; then
    echo "cactid lint exited 0 on a spec with a CD0001 error" >&2
    exit 1
fi
grep -q '^{"code":"CD0001","severity":"error","location":{"object":"spec"' \
    "$ADIR/diag.jsonl" || {
    echo "json diagnostics missing the CD0001 schema line:" >&2
    cat "$ADIR/diag.jsonl" >&2
    exit 1
}
if grep -vq '^{.*}$' "$ADIR/diag.jsonl"; then
    echo "json diagnostics contain a non-JSONL line" >&2
    exit 1
fi
rm -rf "$ADIR"

echo "== cactid prove smoke run (soundness certificates + json schema)"
# The interval prover must certify every shipped rule for each of the
# three bench specs (an unsound rule is a CD0201 error: exit != 0), and
# the JSON stream must carry the CD0204 certified-cutoff diagnostic with
# full rule metadata.
PDIR=$(mktemp -d)
$CACTID prove --size 2M --block 64 --assoc 8 --banks 1 --cell sram \
    --node 32 > "$PDIR/sram.txt"
$CACTID prove --size 8M --assoc 16 --cell lp-dram --node 32 \
    --mode sequential >/dev/null
$CACTID prove --size 128M --banks 8 --block 8 --cell comm-dram --node 78 \
    --main-memory --io 8 --burst 8 --prefetch 8 --page 8K >/dev/null
grep -q "sound" "$PDIR/sram.txt" || {
    echo "prove summary lacks a soundness verdict:" >&2
    cat "$PDIR/sram.txt" >&2
    exit 1
}
$CACTID prove --size 2M --block 64 --assoc 8 --banks 1 --cell sram \
    --node 32 --format json > "$PDIR/diag.jsonl" 2>/dev/null
grep -q '^{"code":"CD0204","severity":"info",.*"rule":{' "$PDIR/diag.jsonl" || {
    echo "prove json diagnostics missing the CD0204 schema line:" >&2
    cat "$PDIR/diag.jsonl" >&2
    exit 1
}
if grep -vq '^{.*}$' "$PDIR/diag.jsonl"; then
    echo "prove json diagnostics contain a non-JSONL line" >&2
    exit 1
fi
rm -rf "$PDIR"

echo "== cactid serve smoke run (stdio JSONL + persistent store)"
# Drive the resident service end to end over stdio: three requests where
# the third duplicates the first, against a fresh store. The duplicate
# must be answered from the persistent store (serve.store.hits >= 1 in
# the trace sidecar), every response line must be JSONL, and the two
# duplicate answers must differ only in their idx prefix.
SDIR=$(mktemp -d)
printf '%s\n' \
  '{"id":1,"op":"solve","size":1048576,"assoc":8,"cell":"sram","node":32}' \
  '{"id":2,"op":"solve","size":8388608,"assoc":16,"cell":"lp-dram","node":32}' \
  '{"id":3,"op":"solve","size":1048576,"assoc":8,"cell":"sram","node":32}' \
  | $CACTID serve --stdio --store "$SDIR/solutions.store" \
      --trace "$SDIR/serve.trace.jsonl" > "$SDIR/responses.jsonl" 2>/dev/null
test "$(wc -l < "$SDIR/responses.jsonl")" = 3 || {
    echo "serve answered the wrong number of lines:" >&2
    cat "$SDIR/responses.jsonl" >&2
    exit 1
}
if grep -vq '^{.*}$' "$SDIR/responses.jsonl"; then
    echo "serve emitted a non-JSONL response line" >&2
    exit 1
fi
grep -q '"error"' "$SDIR/responses.jsonl" && {
    echo "serve answered a smoke request with an error:" >&2
    cat "$SDIR/responses.jsonl" >&2
    exit 1
}
# Duplicate answered from the store, byte-identical after the idx prefix.
grep -q '"name":"serve.store.hits","value":[1-9]' "$SDIR/serve.trace.jsonl" || {
    echo "the duplicate request did not hit the persistent store" >&2
    exit 1
}
test "$(sed -n '1s/^{"idx":1,//p' "$SDIR/responses.jsonl")" = \
     "$(sed -n '3s/^{"idx":3,//p' "$SDIR/responses.jsonl")" || {
    echo "duplicate answers differ beyond the idx prefix:" >&2
    cat "$SDIR/responses.jsonl" >&2
    exit 1
}
rm -rf "$SDIR"

echo "== solve-throughput bench smoke (--quick)"
# The hermetic single-solve bench must run, emit a schema-valid
# BENCH_solve.json, and show the cheap-bound pre-screen actually firing
# (bound_pruned > 0) on the COMM-DRAM DIMM spec. Quick mode keeps this to
# a few seconds; the committed artifact is regenerated with a full run.
BDIR=$(mktemp -d)
cargo bench --quiet -p cactid-bench --bench solve_throughput -- \
    --quick --out "$BDIR/bench.json" >/dev/null 2>&1
for KEY in '"schema":"cactid-bench-solve-v1"' '"staged_candidates_per_sec"' \
    '"reference_us_per_solve"' '"speedup_parallel_vs_staged"' \
    '"improvement_vs_prechange"' '"comm_dram_meets_2x"' \
    '"staged_beats_reference_all"'; do
    grep -q "$KEY" "$BDIR/bench.json" || {
        echo "BENCH_solve.json missing key $KEY" >&2
        exit 1
    }
done
grep -q '"spec":"comm-dram-dimm","orgs_per_solve":[0-9]*,"bound_pruned":[1-9]' \
    "$BDIR/bench.json" || {
    echo "bound pruning did not fire on the COMM-DRAM smoke spec:" >&2
    cat "$BDIR/bench.json" >&2
    exit 1
}
rm -rf "$BDIR"

echo "== serve-throughput bench smoke (--quick)"
# The cold-vs-warm serve bench must run (its internal asserts pin warm
# byte-identity) and emit a schema-valid BENCH_serve.json.
VDIR=$(mktemp -d)
cargo bench --quiet -p cactid-bench --bench serve_throughput -- \
    --quick --out "$VDIR/bench.json" >/dev/null 2>&1
for KEY in '"schema":"cactid-bench-serve-v1"' '"warm_p50_us"' \
    '"warm_queries_per_sec"' '"speedup_warm_vs_cold"' \
    '"warm_byte_identical":true' '"warm_speedup_over_5x"'; do
    grep -q "$KEY" "$VDIR/bench.json" || {
        echo "BENCH_serve.json missing key $KEY" >&2
        exit 1
    }
done
rm -rf "$VDIR"

echo "== sharded-sim smoke (worker-count determinism + obs counters)"
# A 64-core run through the sharded engine must produce a bitwise
# identical stats digest at 1 and 8 workers, and the trace sidecar must
# show the epoch machinery actually ran (sim.shard.epochs > 0).
MDIR=$(mktemp -d)
cargo build --release --quiet -p llc-study --bin llc-study
LLC=target/release/llc-study
$LLC shard --cores 64 --shards 1 -n 20000 > "$MDIR/w1.txt" 2>/dev/null
$LLC shard --cores 64 --shards 8 -n 20000 --trace "$MDIR/shard.trace.jsonl" \
    > "$MDIR/w8.txt" 2>/dev/null
D1=$(sed 's/.*digest=//' "$MDIR/w1.txt")
D8=$(sed 's/.*digest=//' "$MDIR/w8.txt")
test -n "$D1" && test "$D1" = "$D8" || {
    echo "sharded digests differ between 1 and 8 workers:" >&2
    cat "$MDIR/w1.txt" "$MDIR/w8.txt" >&2
    exit 1
}
grep -q '"name":"sim.shard.epochs","value":[1-9]' "$MDIR/shard.trace.jsonl" || {
    echo "trace sidecar lacks a nonzero sim.shard.epochs counter" >&2
    exit 1
}
rm -rf "$MDIR"

echo "== sim-throughput bench smoke (--quick)"
# The serial-vs-sharded bench must run and emit a schema-valid
# BENCH_sim.json whose determinism and overhead gates hold (the speedup
# gate self-waives on single-CPU hosts and is checked by the bench).
WDIR=$(mktemp -d)
cargo bench --quiet -p cactid-bench --bench sim_throughput -- \
    --quick --out "$WDIR/bench.json" >/dev/null 2>&1
for KEY in '"schema":"cactid-bench-sim-v1"' '"legacy_cycles_per_sec"' \
    '"serial_overhead_vs_legacy"' '"sharded_speedup_8w"' \
    '"sharded_matches_serial":true' '"serial_overhead_ok":true' \
    '"sharded_speedup_ok":true'; do
    grep -q "$KEY" "$WDIR/bench.json" || {
        echo "BENCH_sim.json missing key $KEY:" >&2
        cat "$WDIR/bench.json" >&2
        exit 1
    }
done
rm -rf "$WDIR"

echo "ci: all checks passed"
