#!/bin/sh
# The checks CI runs — all hermetic (no network, no registry deps).
# Usage: ./ci.sh
set -eu

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets --workspace -- -D warnings

echo "== cargo test"
cargo test --workspace -q

echo "ci: all checks passed"
