//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds hermetically (no registry dependencies), so tests
//! and workload generators that need randomness use this xorshift64*
//! generator instead of the `rand` crate. xorshift64* (Vigna, 2016) passes
//! the usual statistical batteries far beyond what trace generation or
//! property sampling needs, and its determinism keeps every test and
//! generated workload exactly reproducible from a seed.

/// A xorshift64* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use memsim::rng::XorShift64Star;
///
/// let mut rng = XorShift64Star::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // Same seed, same stream.
/// assert_eq!(XorShift64Star::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. A zero seed is remapped (the
    /// all-zero state is a fixed point of the xorshift recurrence).
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift range reduction: keeps the high bits, which are
        // the strong ones for this generator.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64Star::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64Star::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = XorShift64Star::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = XorShift64Star::new(1234);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
            let v = r.next_in_range(5, 9);
            assert!((5..=9).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn roughly_uniform() {
        let mut r = XorShift64Star::new(99);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            // Each bucket expects n/8 = 10k; allow ±5 %.
            assert!((9_500..=10_500).contains(&b), "bucket count {b}");
        }
    }
}
