//! A tiny deterministic pseudo-random number generator.
//!
//! The workspace builds hermetically (no registry dependencies), so tests
//! and workload generators that need randomness use this xorshift64*
//! generator instead of the `rand` crate. xorshift64* (Vigna, 2016) passes
//! the usual statistical batteries far beyond what trace generation or
//! property sampling needs, and its determinism keeps every test and
//! generated workload exactly reproducible from a seed.

/// One step of the splitmix64 output function: a bijective avalanche mixer
/// (Steele et al., "Fast splittable pseudorandom number generators"). Used
/// to expand a `(seed, stream)` pair into decorrelated generator states —
/// nearby inputs (stream 0, 1, 2, …) land on unrelated outputs, unlike the
/// affine `id * constant` seeding it replaces.
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A xorshift64* pseudo-random number generator.
///
/// # Example
///
/// ```
/// use memsim::rng::XorShift64Star;
///
/// let mut rng = XorShift64Star::new(42);
/// let a = rng.next_u64();
/// let b = rng.next_u64();
/// assert_ne!(a, b);
/// // Same seed, same stream.
/// assert_eq!(XorShift64Star::new(42).next_u64(), a);
/// ```
#[derive(Debug, Clone)]
pub struct XorShift64Star {
    state: u64,
}

impl XorShift64Star {
    /// Creates a generator from a seed. A zero seed is remapped (the
    /// all-zero state is a fixed point of the xorshift recurrence).
    pub fn new(seed: u64) -> Self {
        XorShift64Star {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Creates the generator for logical stream `stream` of `seed`: the
    /// state is a two-round [`splitmix64`] expansion of the pair, so
    /// every `(seed, stream)` combination gets a statistically independent
    /// sequence. This is how per-core workload streams are derived —
    /// stream = core/thread id — making trace generation independent of
    /// the order in which cores consume randomness (and therefore
    /// shard-invariant in the parallel simulator).
    pub fn for_stream(seed: u64, stream: u64) -> Self {
        XorShift64Star::new(splitmix64(splitmix64(seed) ^ stream))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform value in `[0, bound)`; returns 0 for `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift range reduction: keeps the high bits, which are
        // the strong ones for this generator.
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform value in the inclusive range `[lo, hi]`.
    pub fn next_in_range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        lo + self.next_below(hi - lo + 1)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = XorShift64Star::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = XorShift64Star::new(7);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c: Vec<u64> = {
            let mut r = XorShift64Star::new(8);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, c);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = XorShift64Star::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = XorShift64Star::new(1234);
        for _ in 0..10_000 {
            assert!(r.next_below(17) < 17);
            let v = r.next_in_range(5, 9);
            assert!((5..=9).contains(&v));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn splitmix_decorrelates_adjacent_streams() {
        // The old affine seeding (`id * constant`) made adjacent streams
        // start from linearly related states. Adjacent splitmix-derived
        // streams must differ in roughly half their bits, immediately.
        for seed in [0u64, 1, 42, u64::MAX] {
            let mut total = 0u32;
            for stream in 0..16u64 {
                let a = XorShift64Star::for_stream(seed, stream).next_u64();
                let b = XorShift64Star::for_stream(seed, stream + 1).next_u64();
                total += (a ^ b).count_ones();
            }
            let avg = f64::from(total) / 16.0;
            assert!((20.0..44.0).contains(&avg), "avg hamming distance {avg}");
        }
    }

    #[test]
    fn for_stream_is_deterministic_and_seed_sensitive() {
        let a = XorShift64Star::for_stream(7, 3).next_u64();
        assert_eq!(a, XorShift64Star::for_stream(7, 3).next_u64());
        assert_ne!(a, XorShift64Star::for_stream(8, 3).next_u64());
        assert_ne!(a, XorShift64Star::for_stream(7, 4).next_u64());
    }

    #[test]
    fn roughly_uniform() {
        let mut r = XorShift64Star::new(99);
        let mut buckets = [0u32; 8];
        let n = 80_000;
        for _ in 0..n {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            // Each bucket expects n/8 = 10k; allow ±5 %.
            assert!((9_500..=10_500).contains(&b), "bucket count {b}");
        }
    }
}
