//! Instruction-stream abstraction consumed by the simulator.
//!
//! The LLC study feeds synthetic NPB-like streams (crate `npbgen`); tests
//! use the simple generators here.

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Floating-point (SIMD) arithmetic — issues every cycle.
    Fp,
    /// Any other non-memory instruction — 4 cycles on average.
    Other,
    /// Load from a byte address (blocking).
    Load(u64),
    /// Store to a byte address (posted).
    Store(u64),
    /// Global barrier across all threads.
    Barrier,
    /// Acquire lock `id`.
    Lock(u32),
    /// Release lock `id`.
    Unlock(u32),
}

/// A per-thread instruction source.
///
/// Implementations must be deterministic for reproducible simulations.
pub trait TraceSource {
    /// Produces the next instruction for hardware thread `tid`.
    fn next(&mut self, tid: usize) -> Instr;
}

/// Simple deterministic source for tests: each thread interleaves FP and
/// other instructions with a configurable fraction of loads striding
/// through a private region of the given size.
#[derive(Debug, Clone)]
pub struct StridedSource {
    mem_fraction_permille: u32,
    region_bytes: u64,
    state: Vec<u64>,
}

impl StridedSource {
    /// Creates a source for `n_threads` threads, issuing memory operations
    /// with probability `mem_fraction` (0–1), striding through
    /// `region_bytes` per thread.
    ///
    /// # Panics
    ///
    /// Panics if `mem_fraction` is outside [0, 1] or `region_bytes` is 0.
    pub fn new(n_threads: usize, mem_fraction: f64, region_bytes: u64) -> StridedSource {
        assert!((0.0..=1.0).contains(&mem_fraction));
        assert!(region_bytes > 0);
        StridedSource {
            mem_fraction_permille: (mem_fraction * 1000.0) as u32,
            region_bytes,
            state: (0..n_threads as u64)
                .map(|t| t.wrapping_mul(0x9E3779B9) | 1)
                .collect(),
        }
    }

    fn rng(&mut self, tid: usize) -> u64 {
        // xorshift64* — deterministic, cheap.
        let s = &mut self.state[tid];
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        s.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl TraceSource for StridedSource {
    fn next(&mut self, tid: usize) -> Instr {
        let r = self.rng(tid);
        if (r % 1000) < u64::from(self.mem_fraction_permille) {
            // Sequential stride within the thread's private region.
            let offset = (r >> 10) % (self.region_bytes / 64) * 64;
            let base = tid as u64 * self.region_bytes;
            if r & (1 << 9) != 0 {
                Instr::Store(base + offset)
            } else {
                Instr::Load(base + offset)
            }
        } else if r & 1 == 0 {
            Instr::Fp
        } else {
            Instr::Other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_source_is_deterministic() {
        let mut a = StridedSource::new(4, 0.3, 1 << 20);
        let mut b = StridedSource::new(4, 0.3, 1 << 20);
        for tid in 0..4 {
            for _ in 0..100 {
                assert_eq!(a.next(tid), b.next(tid));
            }
        }
    }

    #[test]
    fn threads_have_disjoint_regions() {
        let mut s = StridedSource::new(2, 1.0, 1 << 16);
        for _ in 0..200 {
            for tid in 0..2 {
                match s.next(tid) {
                    Instr::Load(a) | Instr::Store(a) => {
                        let region = a / (1 << 16);
                        assert_eq!(region, tid as u64);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn mem_fraction_zero_yields_no_memory_ops() {
        let mut s = StridedSource::new(1, 0.0, 64);
        for _ in 0..500 {
            assert!(!matches!(s.next(0), Instr::Load(_) | Instr::Store(_)));
        }
    }
}
