//! Instruction-stream abstraction consumed by the simulator.
//!
//! The LLC study feeds synthetic NPB-like streams (crate `npbgen`); tests
//! use the simple generators here.

/// One dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Floating-point (SIMD) arithmetic — issues every cycle.
    Fp,
    /// Any other non-memory instruction — 4 cycles on average.
    Other,
    /// Load from a byte address (blocking).
    Load(u64),
    /// Store to a byte address (posted).
    Store(u64),
    /// Global barrier across all threads.
    Barrier,
    /// Acquire lock `id`.
    Lock(u32),
    /// Release lock `id`.
    Unlock(u32),
}

/// A per-thread instruction source.
///
/// Implementations must be deterministic for reproducible simulations.
pub trait TraceSource {
    /// Produces the next instruction for hardware thread `tid`.
    fn next(&mut self, tid: usize) -> Instr;
}

/// Simple deterministic source for tests: each thread interleaves FP and
/// other instructions with a configurable fraction of loads striding
/// through a private region of the given size.
#[derive(Debug, Clone)]
pub struct StridedSource {
    mem_fraction_permille: u32,
    region_bytes: u64,
    state: Vec<u64>,
}

impl StridedSource {
    /// Creates a source for `n_threads` threads, issuing memory operations
    /// with probability `mem_fraction` (0–1), striding through
    /// `region_bytes` per thread.
    ///
    /// # Panics
    ///
    /// Panics if `mem_fraction` is outside [0, 1] or `region_bytes` is 0.
    pub fn new(n_threads: usize, mem_fraction: f64, region_bytes: u64) -> StridedSource {
        StridedSource::with_seed(n_threads, mem_fraction, region_bytes, 0)
    }

    /// [`StridedSource::new`] with an explicit global seed. Per-thread
    /// streams are derived as `(seed, tid)` splitmix expansions
    /// ([`crate::rng::XorShift64Star::for_stream`]), so each thread's
    /// stream is a pure function of the pair — independent of the order
    /// threads are polled in, and therefore identical whether the
    /// simulator runs serially or sharded.
    ///
    /// # Panics
    ///
    /// Panics if `mem_fraction` is outside [0, 1] or `region_bytes` is 0.
    pub fn with_seed(
        n_threads: usize,
        mem_fraction: f64,
        region_bytes: u64,
        seed: u64,
    ) -> StridedSource {
        assert!((0.0..=1.0).contains(&mem_fraction));
        assert!(region_bytes > 0);
        StridedSource {
            mem_fraction_permille: (mem_fraction * 1000.0) as u32,
            region_bytes,
            state: (0..n_threads as u64)
                .map(|t| crate::rng::splitmix64(crate::rng::splitmix64(seed) ^ t) | 1)
                .collect(),
        }
    }

    fn rng(&mut self, tid: usize) -> u64 {
        // xorshift64* — deterministic, cheap.
        let s = &mut self.state[tid];
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        s.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

impl TraceSource for StridedSource {
    fn next(&mut self, tid: usize) -> Instr {
        let r = self.rng(tid);
        if (r % 1000) < u64::from(self.mem_fraction_permille) {
            // Sequential stride within the thread's private region.
            let offset = (r >> 10) % (self.region_bytes / 64) * 64;
            let base = tid as u64 * self.region_bytes;
            if r & (1 << 9) != 0 {
                Instr::Store(base + offset)
            } else {
                Instr::Load(base + offset)
            }
        } else if r & 1 == 0 {
            Instr::Fp
        } else {
            Instr::Other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_source_is_deterministic() {
        let mut a = StridedSource::new(4, 0.3, 1 << 20);
        let mut b = StridedSource::new(4, 0.3, 1 << 20);
        for tid in 0..4 {
            for _ in 0..100 {
                assert_eq!(a.next(tid), b.next(tid));
            }
        }
    }

    #[test]
    fn seeds_select_distinct_streams_and_default_is_seed_zero() {
        let mut d = StridedSource::new(2, 1.0, 1 << 20);
        let mut z = StridedSource::with_seed(2, 1.0, 1 << 20, 0);
        let mut s7 = StridedSource::with_seed(2, 1.0, 1 << 20, 7);
        let mut same = true;
        for _ in 0..50 {
            let a = d.next(0);
            assert_eq!(a, z.next(0));
            same &= a == s7.next(0);
        }
        assert!(!same, "seed 7 must produce a different stream");
    }

    #[test]
    fn thread_streams_are_order_independent() {
        // Polling tid 1 must not perturb tid 0's stream: the per-thread
        // states are pure functions of (seed, tid). This is the property
        // the sharded simulator relies on when each shard clones the
        // source and only polls its own threads.
        let mut solo = StridedSource::new(2, 0.5, 1 << 20);
        let mut interleaved = StridedSource::new(2, 0.5, 1 << 20);
        for _ in 0..100 {
            let a = solo.next(0);
            let _ = interleaved.next(1);
            assert_eq!(a, interleaved.next(0));
        }
    }

    #[test]
    fn threads_have_disjoint_regions() {
        let mut s = StridedSource::new(2, 1.0, 1 << 16);
        for _ in 0..200 {
            for tid in 0..2 {
                match s.next(tid) {
                    Instr::Load(a) | Instr::Store(a) => {
                        let region = a / (1 << 16);
                        assert_eq!(region, tid as u64);
                    }
                    _ => {}
                }
            }
        }
    }

    #[test]
    fn mem_fraction_zero_yields_no_memory_ops() {
        let mut s = StridedSource::new(1, 0.0, 64);
        for _ in 0..500 {
            assert!(!matches!(s.next(0), Instr::Load(_) | Instr::Store(_)));
        }
    }
}
