//! Banked shared L3 with multisubbank-interleaved timing and the cache-set
//! ↔ DRAM-page mappings of paper Figure 3.

use crate::cache::{Eviction, LineState, SetAssocCache};
use crate::config::{ConfigError, L3Config, L3Interface, L3PageTiming, SetMapping};

/// The operational interface with its timing resolved at construction, so
/// the per-access path never has to unwrap `page_timing`.
#[derive(Debug, Clone, Copy)]
enum Interface {
    SramLike,
    PageMode(L3PageTiming),
}

/// One L3 bank: a tag array plus its timing reservation state.
#[derive(Debug)]
pub struct L3Bank {
    /// Tag/state array of this bank.
    pub tags: SetAssocCache,
    /// Per-subbank next-free cycle (random cycle time granularity).
    subbank_ready: Vec<u64>,
    /// Bank port next-free cycle (interleave cycle granularity).
    port_ready: u64,
    /// Open row per subbank (page-mode interface only).
    open_row: Vec<Option<u64>>,
}

/// The shared last-level cache.
#[derive(Debug)]
pub struct L3 {
    cfg: L3Config,
    iface: Interface,
    banks: Vec<L3Bank>,
}

impl L3 {
    /// Builds an idle L3 from its configuration.
    ///
    /// # Errors
    ///
    /// [`ConfigError::PageModeWithoutTiming`] when `cfg` selects the
    /// page-mode interface without supplying [`L3PageTiming`]
    /// (see [`L3Config::validate`]).
    pub fn try_new(cfg: L3Config) -> Result<L3, ConfigError> {
        cfg.validate()?;
        let iface = match cfg.interface {
            L3Interface::SramLike => Interface::SramLike,
            L3Interface::PageMode => {
                Interface::PageMode(cfg.page_timing.ok_or(ConfigError::PageModeWithoutTiming)?)
            }
        };
        let banks = (0..cfg.n_banks)
            .map(|_| L3Bank {
                tags: SetAssocCache::new(
                    cfg.bank.capacity_bytes,
                    cfg.bank.line_bytes,
                    cfg.bank.associativity,
                ),
                subbank_ready: vec![0; cfg.bank.n_subbanks as usize],
                port_ready: 0,
                open_row: vec![None; cfg.bank.n_subbanks as usize],
            })
            .collect();
        Ok(L3 { banks, iface, cfg })
    }

    /// Builds an idle L3 from its configuration.
    ///
    /// # Panics
    ///
    /// On an invalid configuration; use [`L3::try_new`] to get the typed
    /// [`ConfigError`] instead.
    pub fn new(cfg: L3Config) -> L3 {
        L3::try_new(cfg).unwrap_or_else(|e| panic!("invalid L3 configuration: {e}"))
    }

    /// The configuration this L3 was built from.
    pub fn config(&self) -> &L3Config {
        &self.cfg
    }

    /// Bank an address maps to (line-interleaved, as the study's 8 L3 banks
    /// are line-interleaved across the crossbar).
    pub fn bank_of(&self, addr: u64) -> usize {
        ((addr / u64::from(self.cfg.bank.line_bytes)) % u64::from(self.cfg.n_banks)) as usize
    }

    /// Subbank a set maps to under the configured set↔page mapping
    /// (Figure 3): consecutive sets share a page/subbank under
    /// [`SetMapping::SetsPerPage`]; they spread round-robin under
    /// [`SetMapping::StripedWays`].
    pub fn subbank_of(&self, set: u64) -> usize {
        let n = u64::from(self.cfg.bank.n_subbanks);
        let sets = self.cfg.bank.sets();
        match self.cfg.set_mapping {
            SetMapping::SetsPerPage => ((set * n) / sets.max(1)) as usize,
            SetMapping::StripedWays => (set % n) as usize,
        }
    }

    /// Mutable access to a bank's tags (tests/diagnostics).
    pub fn bank_tags(&mut self, bank: usize) -> &mut SetAssocCache {
        &mut self.banks[bank].tags
    }

    /// Bank-local address: lines are interleaved across banks, so each
    /// bank indexes its sets with the line address *divided by* the bank
    /// count (otherwise only 1/n_banks of the sets would ever be used).
    fn local_addr(&self, addr: u64) -> u64 {
        let lb = u64::from(self.cfg.bank.line_bytes);
        let line = addr / lb;
        (line / u64::from(self.cfg.n_banks)) * lb + addr % lb
    }

    /// Maps a bank-local line address back to the global address space.
    fn global_addr(&self, local: u64, bank: usize) -> u64 {
        let lb = u64::from(self.cfg.bank.line_bytes);
        let line = local / lb;
        (line * u64::from(self.cfg.n_banks) + bank as u64) * lb
    }

    /// Looks up `addr` in its bank (refreshes LRU).
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let bank = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.banks[bank].tags.lookup(local)
    }

    /// Inserts `addr` in `state`; any eviction is reported with its
    /// *global* address.
    pub fn insert(&mut self, addr: u64, state: LineState) -> Option<Eviction> {
        let bank = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.banks[bank]
            .tags
            .insert(local, state)
            .map(|ev| Eviction {
                addr: self.global_addr(ev.addr, bank),
                state: ev.state,
            })
    }

    /// Invalidates `addr` if present, returning its previous state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let bank = self.bank_of(addr);
        let local = self.local_addr(addr);
        self.banks[bank].tags.invalidate(local)
    }

    /// Reserves the timing resources for one access to `addr` starting no
    /// earlier than `now`; returns `(data_available_cycle, page_hit)`.
    /// `page_hit` is always `false` for the SRAM-like interface.
    pub fn reserve_detailed(&mut self, addr: u64, now: u64) -> (u64, bool) {
        let bank_idx = self.bank_of(addr);
        let local = self.local_addr(addr);
        let set = self.banks[bank_idx].tags.set_index(local);
        let sub = self.subbank_of(set);
        match self.iface {
            Interface::SramLike => {
                let bank = &mut self.banks[bank_idx];
                // Bank port accepts a new access every interleave cycle…
                let start = now.max(bank.port_ready);
                bank.port_ready = start + self.cfg.bank.interleave_cycles;
                // …but the same subbank recovers only after a full random
                // cycle.
                let start = start.max(bank.subbank_ready[sub]);
                bank.subbank_ready[sub] = start + self.cfg.bank.cycle_cycles;
                (start + self.cfg.bank.access_cycles, false)
            }
            Interface::PageMode(pt) => {
                // Main-memory-like operation: a row (page) per subbank can
                // stay open; hits pay only the column access, misses pay
                // precharge + activate + column.
                // One DRAM row covers the lines the set↔page mapping groups
                // together; within a subbank the row is identified by the
                // set-group plus the way bits above it.
                let row = (local / u64::from(self.cfg.bank.line_bytes))
                    / (self.cfg.bank.sets() / u64::from(self.cfg.bank.n_subbanks)).max(1);
                let bank = &mut self.banks[bank_idx];
                let start = now.max(bank.port_ready);
                bank.port_ready = start + self.cfg.bank.interleave_cycles;
                let start = start.max(bank.subbank_ready[sub]);
                let (done, hit) = if bank.open_row[sub] == Some(row) {
                    (start + pt.t_cas, true)
                } else {
                    let t = if bank.open_row[sub].is_some() {
                        pt.t_rp + pt.t_rcd + pt.t_cas
                    } else {
                        pt.t_rcd + pt.t_cas
                    };
                    bank.open_row[sub] = Some(row);
                    (start + t, false)
                };
                bank.subbank_ready[sub] = done;
                (done, hit)
            }
        }
    }

    /// Reserves the timing resources for one access to `addr` starting no
    /// earlier than `now`; returns the cycle at which data is available.
    pub fn reserve(&mut self, addr: u64, now: u64) -> u64 {
        self.reserve_detailed(addr, now).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheConfig, SystemConfig};

    fn dram_l3(mapping: SetMapping) -> L3 {
        L3::new(L3Config {
            bank: CacheConfig {
                capacity_bytes: 12 << 20,
                line_bytes: 64,
                associativity: 12,
                access_cycles: 16,
                cycle_cycles: 5,
                interleave_cycles: 1,
                n_subbanks: 64,
            },
            n_banks: 8,
            xbar_cycles: 2,
            is_dram: true,
            set_mapping: mapping,
            interface: L3Interface::SramLike,
            page_timing: None,
        })
    }

    fn page_mode_l3(mapping: SetMapping) -> L3 {
        let mut cfg = dram_l3(mapping).cfg;
        cfg.interface = L3Interface::PageMode;
        cfg.page_timing = Some(crate::config::L3PageTiming {
            t_rcd: 8,
            t_cas: 6,
            t_rp: 7,
        });
        L3::new(cfg)
    }

    #[test]
    fn line_interleaving_across_banks() {
        let l3 = dram_l3(SetMapping::SetsPerPage);
        assert_eq!(l3.bank_of(0), 0);
        assert_eq!(l3.bank_of(64), 1);
        assert_eq!(l3.bank_of(64 * 8), 0);
    }

    #[test]
    fn interleaved_accesses_beat_random_cycle() {
        let mut l3 = dram_l3(SetMapping::StripedWays);
        // Two back-to-back accesses to *different* subbanks of bank 0.
        let a = l3.reserve(0, 100);
        let b = l3.reserve(8 * 64, 100); // next set, different subbank
        assert_eq!(a, 100 + 16);
        assert_eq!(b, 101 + 16, "initiation limited by interleave only");
        // Same subbank: limited by the random cycle time.
        let c = l3.reserve(0, 100);
        assert!(c >= 100 + 5 + 16);
    }

    #[test]
    fn mappings_spread_sets_differently() {
        let striped = dram_l3(SetMapping::StripedWays);
        let paged = dram_l3(SetMapping::SetsPerPage);
        // Consecutive sets: striped → different subbanks, paged → same.
        assert_ne!(striped.subbank_of(0), striped.subbank_of(1));
        assert_eq!(paged.subbank_of(0), paged.subbank_of(1));
        // Both cover the full subbank range.
        let sets = paged.config().bank.sets();
        assert_eq!(paged.subbank_of(sets - 1), 63);
        assert_eq!(striped.subbank_of(63), 63);
    }

    #[test]
    fn page_mode_rows_hit_and_conflict() {
        let mut l3 = page_mode_l3(SetMapping::SetsPerPage);
        // First touch: activate + column.
        let (a, hit_a) = l3.reserve_detailed(0, 100);
        assert!(!hit_a);
        assert_eq!(a, 100 + 8 + 6);
        // Same row (consecutive set under SetsPerPage): open-row hit.
        let next_set_addr = 8 * 64; // next line in bank 0
        let (b, hit_b) = l3.reserve_detailed(next_set_addr, a);
        assert!(hit_b, "consecutive sets share a page under Fig 3(a)");
        assert_eq!(b, a + 6);
        // A far-away row in the same subbank: precharge + activate.
        let sets = l3.config().bank.sets();
        let sets_per_sub = sets / 64;
        let far = 8 * 64 * sets_per_sub * 40; // same subbank? pick stride past the row
        let (c, hit_c) = l3.reserve_detailed(far, b);
        assert!(!hit_c);
        assert!(c >= b);
    }

    #[test]
    fn sram_like_interface_never_reports_page_hits() {
        let mut l3 = dram_l3(SetMapping::SetsPerPage);
        for i in 0..20u64 {
            let (_, hit) = l3.reserve_detailed(i * 64 * 8, 100 + i);
            assert!(!hit);
        }
    }

    #[test]
    fn bank_local_indexing_uses_every_set() {
        // Regression: with global line addresses, a bank only ever saw
        // lines ≡ bank (mod n_banks), so 7/8 of its sets stayed empty and
        // the effective capacity was 1/8th.
        let mut l3 = dram_l3(SetMapping::StripedWays);
        // Insert enough consecutive lines to fill 1/4 of total capacity.
        let lines = (12u64 << 20) * 8 / 64 / 4;
        for i in 0..lines {
            l3.insert(i * 64, LineState::Shared);
        }
        for b in 0..8 {
            let valid = l3.bank_tags(b).valid_lines() as u64;
            assert_eq!(valid, lines / 8, "bank {b} holds all its share");
        }
        // And every line is still found.
        for i in 0..lines {
            assert!(l3.lookup(i * 64).is_some(), "line {i} lost");
        }
    }

    #[test]
    fn eviction_reports_global_addresses() {
        let mut l3 = dram_l3(SetMapping::StripedWays);
        // Overfill one set of bank 0: stride = sets × banks × line.
        let sets = l3.config().bank.sets();
        let stride = sets * 8 * 64;
        for w in 0..13u64 {
            // 12-way: the 13th insert evicts.
            let ev = l3.insert(w * stride, LineState::Shared);
            if w < 12 {
                assert!(ev.is_none());
            } else {
                let ev = ev.expect("full set evicts");
                assert_eq!(ev.addr % stride, 0, "global address restored");
                assert_eq!(l3.bank_of(ev.addr), 0);
            }
        }
    }

    #[test]
    fn page_mode_without_timing_is_a_config_error_not_a_panic() {
        // Regression: this configuration used to build fine and then panic
        // on the first access inside reserve_detailed.
        let mut cfg = dram_l3(SetMapping::SetsPerPage).cfg;
        cfg.interface = L3Interface::PageMode;
        cfg.page_timing = None;
        assert_eq!(cfg.validate(), Err(ConfigError::PageModeWithoutTiming));
        assert_eq!(
            L3::try_new(cfg).err(),
            Some(ConfigError::PageModeWithoutTiming)
        );
    }

    #[test]
    fn config_error_display_names_the_fix() {
        let msg = ConfigError::PageModeWithoutTiming.to_string();
        assert!(msg.contains("page_timing"));
        assert!(msg.contains("SRAM-like"));
    }

    #[test]
    fn sram_baseline_config_reserves_quickly() {
        let cfg = SystemConfig::with_sram_l3();
        let mut l3 = L3::new(cfg.l3.unwrap());
        let t = l3.reserve(0x1234_0000, 50);
        assert_eq!(t, 50 + 5);
    }
}
