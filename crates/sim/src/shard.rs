//! Sharded parallel simulator: deterministic epoch-synchronized actors.
//!
//! Each core (with its private L1/L2) is an actor owned by one shard; the
//! shared fabric — L3 banks, coherence directory, DRAM channels, locks and
//! the barrier — lives at the *boundary*. Shards advance in lock-step
//! epochs of a fixed cycle quantum over the hermetic
//! [`cactid_core::par::run_epochs`] pool:
//!
//! * **Phase A** (parallel): every actor simulates its own threads for the
//!   window `[t0, t0 + Q)` touching only shard-local state (L1/L2 hits,
//!   FP/other issue, round-robin arbitration). Anything that needs the
//!   shared fabric is appended to the actor's outbox as a message stamped
//!   `(cycle, core, seq)`.
//! * **Phase B** (single-threaded): the coordinator drains all outboxes in
//!   ascending `(cycle, core, seq)` order and applies them to the
//!   boundary — directory lookups, invalidations/updates, L3 and DRAM
//!   reservations, lock grants, barrier release.
//!
//! Because messages are processed in an order that is a pure function of
//! simulated time (never of host scheduling), the results are **bitwise
//! identical at any worker count** — 1, 2 or 8 shard workers produce the
//! same [`SimStats`] and the same per-thread instruction streams.
//!
//! The epoch quantum `Q` is chosen no larger than the minimum cross-shard
//! response latency (`l1 + l2 + 2×xbar` cycles): a request issued inside
//! an epoch cannot receive its answer before the epoch ends, so deferring
//! all fabric interaction to the boundary loses no simulated-time
//! precision for remote traffic. Shard-local activity still advances
//! cycle by cycle inside the window.
//!
//! This engine intentionally differs from the serial reference
//! [`crate::Simulator`] in *when* coherence actions land: the legacy loop
//! applies invalidations and fills instantly mid-cycle, while here they
//! land at epoch boundaries. Both are valid timing models; the legacy
//! loop remains the paper-study reference, and this engine is the one
//! that scales to 64–256 cores (and the only one implementing the Dragon
//! write-update protocol).

use crate::cache::{LineState, SetAssocCache};
use crate::coherence::{CoreSet, Directory, ReadSource};
use crate::config::{CoherenceProtocol, SystemConfig};
use crate::core::{Thread, ThreadState};
use crate::dram::DramChannel;
use crate::l3::L3;
use crate::stats::{SimStats, StallKind};
use crate::trace::{Instr, TraceSource};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Below this core count the epoch machinery is pure overhead: the auto
/// worker policy (`workers == 0`) falls back to the inline serial path.
const MIN_PARALLEL_CORES: usize = 16;
/// Runs shorter than this retire before the parallel pool amortizes its
/// barrier crossings; the auto policy stays serial below it.
const MIN_PARALLEL_INSTRUCTIONS: u64 = 200_000;

#[derive(Debug, Default)]
struct LockState {
    holder: Option<usize>,
    queue: VecDeque<usize>,
}

/// Where an L2 miss was ultimately serviced (boundary-side).
enum Source {
    RemoteL2,
    L3 { data_at: u64 },
    Memory { data_at: u64 },
}

/// A cross-shard request, recorded during phase A and applied in phase B.
///
/// The `(cycle, core, seq)` triple is the canonical drain order: `seq` is
/// a per-actor monotone counter, so messages from one core replay in
/// issue order and ties across cores break by core index — exactly the
/// order the serial reference visits cores within a cycle.
#[derive(Debug, Clone, Copy)]
struct Msg {
    cycle: u64,
    core: u32,
    seq: u64,
    /// Core-local hardware-thread index of the issuer.
    tid: usize,
    kind: MsgKind,
}

#[derive(Debug, Clone, Copy)]
enum MsgKind {
    /// Blocking load missed L1+L2; the thread is parked in
    /// [`ThreadState::WaitingMem`] until the boundary answers.
    LoadMiss(u64),
    /// Posted store missed L1+L2; the thread already continued.
    StoreMiss(u64),
    /// Store hit a non-Modified local line; peers must be invalidated
    /// (MESI) or updated (Dragon).
    Upgrade(u64),
    Lock(u32),
    Unlock(u32),
    BarrierArrive,
}

/// Per-actor progress digest computed at the end of each phase A window
/// (inside the lock the worker already holds), so the coordinator's
/// stop/fast-forward decision needs no second scan over every thread.
#[derive(Debug, Default, Clone, Copy)]
struct ActorSummary {
    any_ready: bool,
    min_stall: Option<u64>,
    instructions: u64,
}

/// One core plus its private caches and threads — owned by exactly one
/// shard worker during phase A, and by the coordinator during phase B.
struct CoreActor<T> {
    core: usize,
    trace: T,
    threads: Vec<Thread>,
    l1: SetAssocCache,
    l2: SetAssocCache,
    rr: usize,
    stats: SimStats,
    outbox: Vec<Msg>,
    seq: u64,
    summary: ActorSummary,
}

/// Shared-fabric state touched only in phase B.
struct Boundary {
    l3: Option<L3>,
    dir: Directory,
    channels: Vec<DramChannel>,
    locks: HashMap<u32, LockState>,
    barrier_count: usize,
    stats: SimStats,
}

/// Run counters exposed by [`ShardedSimulator::info`] (cumulative since
/// construction).
#[derive(Debug, Default, Clone)]
pub struct ShardInfo {
    /// Epochs executed (phase A + phase B pairs).
    pub epochs: u64,
    /// Cross-shard messages drained at epoch boundaries.
    pub messages: u64,
    /// Thread-cycles spent blocked on boundary-resolved events (remote
    /// loads, lock waits, barrier waits).
    pub stall_cycles: u64,
    /// Remote copies invalidated (MESI write-invalidate).
    pub invalidations: u64,
    /// Remote copies updated in place (Dragon write-update).
    pub updates: u64,
    /// Runs where the auto worker policy chose the serial inline path.
    pub serial_fallbacks: u64,
    /// Worker count used by the most recent [`ShardedSimulator::run`].
    pub last_workers: usize,
}

/// The epoch-synchronized parallel simulator. Construct with
/// [`ShardedSimulator::try_new`], then call [`ShardedSimulator::run`].
///
/// `T` must be [`Clone`] because each actor owns a clone of the trace
/// source and polls only its own threads; sources in this workspace
/// derive every thread's stream from `(seed, tid)` alone, so the clones
/// yield exactly the streams the serial engine would see.
pub struct ShardedSimulator<T> {
    cfg: SystemConfig,
    quantum: u64,
    /// Requested worker count; 0 = auto (host parallelism, with serial
    /// fallback for small configs/runs).
    workers: usize,
    actors: Vec<Mutex<CoreActor<T>>>,
    boundary: Boundary,
    cycle: u64,
    stats_epoch: u64,
    info: ShardInfo,
}

fn lock_actor<'a, T>(
    actors: &'a [Mutex<CoreActor<T>>],
    core: usize,
) -> MutexGuard<'a, CoreActor<T>> {
    actors[core].lock().unwrap_or_else(PoisonError::into_inner)
}

impl<T: TraceSource + Clone + Send> ShardedSimulator<T> {
    /// Builds an idle sharded system; see [`ShardedSimulator::try_new`].
    ///
    /// # Panics
    ///
    /// On an invalid configuration.
    pub fn new(cfg: SystemConfig, trace: T, workers: usize) -> ShardedSimulator<T> {
        ShardedSimulator::try_new(cfg, trace, workers)
            .unwrap_or_else(|e| panic!("invalid system configuration: {e}"))
    }

    /// Builds an idle sharded system. `workers` is the shard worker
    /// count: `0` selects automatically from
    /// [`cactid_core::par::host_parallelism`] (falling back to the serial
    /// inline path for small configs, short runs, or single-core hosts);
    /// any explicit value is honored, so tests can force the parallel
    /// drain path on any host.
    ///
    /// # Errors
    ///
    /// Any [`crate::config::ConfigError`] from
    /// [`SystemConfig::validate`]. Both coherence protocols (MESI and
    /// Dragon) are accepted here.
    pub fn try_new(
        cfg: SystemConfig,
        trace: T,
        workers: usize,
    ) -> Result<ShardedSimulator<T>, crate::config::ConfigError> {
        cfg.validate()?;
        let tpc = cfg.threads_per_core as usize;
        let actors = (0..cfg.n_cores as usize)
            .map(|core| {
                Mutex::new(CoreActor {
                    core,
                    trace: trace.clone(),
                    threads: (0..tpc).map(|_| Thread::new()).collect(),
                    l1: SetAssocCache::new(
                        cfg.l1.capacity_bytes,
                        cfg.l1.line_bytes,
                        cfg.l1.associativity,
                    ),
                    l2: SetAssocCache::new(
                        cfg.l2.capacity_bytes,
                        cfg.l2.line_bytes,
                        cfg.l2.associativity,
                    ),
                    rr: 0,
                    stats: SimStats::default(),
                    outbox: Vec::new(),
                    seq: 0,
                    summary: ActorSummary::default(),
                })
            })
            .collect();
        let boundary = Boundary {
            l3: cfg.l3.clone().map(L3::try_new).transpose()?,
            dir: Directory::new(),
            channels: (0..cfg.dram.channels)
                .map(|_| DramChannel::new(cfg.dram.clone()))
                .collect(),
            locks: HashMap::new(),
            barrier_count: 0,
            stats: SimStats::default(),
        };
        Ok(ShardedSimulator {
            quantum: epoch_quantum(&cfg),
            workers,
            actors,
            boundary,
            cycle: 0,
            stats_epoch: 0,
            info: ShardInfo::default(),
            cfg,
        })
    }

    /// The epoch quantum in cycles (diagnostics).
    pub fn quantum(&self) -> u64 {
        self.quantum
    }

    /// Current simulated cycle.
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Cumulative shard-engine counters.
    pub fn info(&self) -> &ShardInfo {
        &self.info
    }

    fn effective_workers(&self, target_instructions: u64) -> usize {
        let n = self.actors.len();
        match self.workers {
            0 => {
                let host = cactid_core::par::host_parallelism();
                if host < 2
                    || n < MIN_PARALLEL_CORES
                    || target_instructions < MIN_PARALLEL_INSTRUCTIONS
                {
                    1
                } else {
                    host.min(n)
                }
            }
            w => w.min(n),
        }
    }

    /// Runs until `target_instructions` have retired (or the same safety
    /// cap as the serial engine: 1000 cycles per requested instruction),
    /// returning the merged statistics. The result is independent of the
    /// worker count.
    pub fn run(&mut self, target_instructions: u64) -> SimStats {
        let _run = cactid_obs::span("sim.shard.run");
        let workers = self.effective_workers(target_instructions);
        if self.workers == 0 && workers == 1 {
            self.info.serial_fallbacks += 1;
            cactid_obs::counter!("sim.shard.serial_fallback").inc();
        }
        self.info.last_workers = workers;
        let pre = self.info.clone();

        let start_cycle = self.cycle;
        let cycle_cap = start_cycle + target_instructions.saturating_mul(1000).max(10_000);
        let start_instr: u64 = self
            .actors
            .iter_mut()
            .map(|a| {
                a.get_mut()
                    .unwrap_or_else(PoisonError::into_inner)
                    .stats
                    .instructions
            })
            .sum();
        let target = start_instr + target_instructions;

        let quantum = self.quantum;
        let cfg = &self.cfg;
        let actors = &self.actors[..];
        let n_actors = actors.len();
        let boundary = &mut self.boundary;
        let info = &mut self.info;
        // The current epoch window, published by the coordinator before
        // each phase A and read by every worker after the start barrier.
        let t0 = AtomicU64::new(start_cycle);
        let t1 = AtomicU64::new(start_cycle + quantum);
        let mut final_cycle = start_cycle;
        let mut msgs: Vec<Msg> = Vec::new();
        let mut last_tick = std::time::Instant::now();

        cactid_core::par::run_epochs(
            workers,
            |w, _epoch| {
                let (a, b) = (t0.load(Ordering::Acquire), t1.load(Ordering::Acquire));
                let mut i = w;
                while i < n_actors {
                    lock_actor(actors, i).run_window(cfg, a, b);
                    i += workers;
                }
            },
            |_epoch| {
                let t_end = t1.load(Ordering::Relaxed);
                // One pass per actor: take its outbox and fold in the
                // progress digest phase A left behind.
                msgs.clear();
                let mut total_instr = 0;
                let mut any_ready = false;
                let mut min_stall: Option<u64> = None;
                for a in actors {
                    let mut g = a.lock().unwrap_or_else(PoisonError::into_inner);
                    msgs.append(&mut g.outbox);
                    let s = g.summary;
                    total_instr += s.instructions;
                    any_ready |= s.any_ready;
                    if let Some(x) = s.min_stall {
                        min_stall = Some(min_stall.map_or(x, |m: u64| m.min(x)));
                    }
                }
                msgs.sort_unstable_by_key(|m| (m.cycle, m.core, m.seq));
                info.epochs += 1;
                info.messages += msgs.len() as u64;
                // Draining resolves blocked threads into StalledUntil;
                // each such wake folds into min_stall as it happens, so no
                // post-drain rescan is needed (drains never create Ready).
                for m in &msgs {
                    process(cfg, actors, boundary, info, m, t_end, &mut min_stall);
                }
                let now = std::time::Instant::now();
                cactid_obs::histogram!("sim.shard.epoch.ns")
                    .record(now.duration_since(last_tick).as_nanos() as u64);
                last_tick = now;

                if total_instr >= target || t_end >= cycle_cap {
                    final_cycle = t_end;
                    return false;
                }
                let next = if any_ready {
                    t_end
                } else {
                    match min_stall {
                        Some(w) if w > t_end => w,
                        Some(_) => t_end,
                        // Nothing will ever wake: synchronization deadlock.
                        None => {
                            final_cycle = t_end;
                            return false;
                        }
                    }
                };
                t0.store(next, Ordering::Release);
                t1.store(next + quantum, Ordering::Release);
                true
            },
        );

        self.cycle = final_cycle;
        cactid_obs::counter!("sim.shard.epochs").add(self.info.epochs - pre.epochs);
        cactid_obs::counter!("sim.shard.msgs").add(self.info.messages - pre.messages);
        cactid_obs::counter!("sim.shard.stall_cycles")
            .add(self.info.stall_cycles - pre.stall_cycles);
        cactid_obs::counter!("sim.coherence.invalidations")
            .add(self.info.invalidations - pre.invalidations);
        cactid_obs::counter!("sim.coherence.updates").add(self.info.updates - pre.updates);
        self.finalize()
    }

    /// Closes out attribution exactly like the serial engine: every
    /// unattributed thread-cycle was spent processing instructions.
    fn finalize(&mut self) -> SimStats {
        let mut s = self.boundary.stats.clone();
        for a in &mut self.actors {
            s.merge(&a.get_mut().unwrap_or_else(PoisonError::into_inner).stats);
        }
        s.cycles = self.cycle - self.stats_epoch;
        let total = s.cycles * self.cfg.n_threads() as u64;
        let other: u64 = StallKind::ALL
            .iter()
            .skip(1)
            .map(|&k| s.attributed(k))
            .sum();
        s.cycle_breakdown[0] = total.saturating_sub(other);
        s
    }

    /// Discards statistics gathered so far (cache/DRAM state is kept), so
    /// measurement can start after a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.boundary.stats = SimStats::default();
        for a in &mut self.actors {
            a.get_mut().unwrap_or_else(PoisonError::into_inner).stats = SimStats::default();
        }
        self.stats_epoch = self.cycle;
    }

    /// Consumes the simulator and hands back each actor's trace source in
    /// core order (e.g. [`crate::record::Recorder`] clones whose captures
    /// you want to splice per owning core).
    pub fn into_trace_sources(self) -> Vec<T> {
        self.actors
            .into_iter()
            .map(|a| a.into_inner().unwrap_or_else(PoisonError::into_inner).trace)
            .collect()
    }
}

/// The epoch quantum: the minimum latency of any cross-shard response.
///
/// A remote answer to a request issued at cycle `c` arrives no earlier
/// than `c + l1 + l2 + 2×xbar` (cache-to-cache is `l2_lat + 2×xbar + l2`;
/// L3 and memory paths reserve from `c + l2_lat + xbar` and add `xbar` on
/// the return). With `Q` no larger than that bound, a thread blocked on
/// the fabric can never need waking *inside* the epoch that issued the
/// request, so resolving all cross-shard traffic at the boundary is
/// timing-exact for remote requests.
fn epoch_quantum(cfg: &SystemConfig) -> u64 {
    let l2_lat = cfg.l1.access_cycles + cfg.l2.access_cycles;
    let xbar = cfg.l3.as_ref().map_or(2, |l| l.xbar_cycles);
    (l2_lat + 2 * xbar).max(1)
}

impl<T: TraceSource> CoreActor<T> {
    fn push(&mut self, cycle: u64, tid: usize, kind: MsgKind) {
        self.outbox.push(Msg {
            cycle,
            core: self.core as u32,
            seq: self.seq,
            tid,
            kind,
        });
        self.seq += 1;
    }

    /// Phase A: simulates this core's threads for cycles `[t0, t1)`.
    /// `true` when some thread in this shard can issue at `cycle`.
    fn any_issuable(&self, cycle: u64) -> bool {
        self.threads.iter().any(|t| match t.state {
            ThreadState::Ready => true,
            ThreadState::StalledUntil(x) => x <= cycle,
            _ => false,
        })
    }

    /// Earliest local `StalledUntil` expiry, if any. Threads parked on
    /// the boundary (`WaitingMem`/`WaitingLock`/`AtBarrier`) wake only at
    /// epoch edges and so never bound an in-window fast-forward.
    fn next_wake(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::StalledUntil(x) => Some(x),
                _ => None,
            })
            .min()
    }

    fn run_window(&mut self, cfg: &SystemConfig, t0: u64, t1: u64) {
        let tpc = self.threads.len();
        let mut cycle = t0;
        while cycle < t1 {
            // Fast-forward across stretches where every thread in this
            // shard is blocked, exactly like the serial loop — but
            // shard-locally. Within a window no cross-shard event can
            // wake a thread (the epoch quantum is bounded by the minimum
            // cross-shard latency), so the decision depends only on this
            // actor's state and is identical at every worker count.
            if !self.any_issuable(cycle) {
                match self.next_wake() {
                    Some(w) if w > cycle => {
                        cycle = w.min(t1);
                        if cycle >= t1 {
                            break;
                        }
                    }
                    Some(_) => {}
                    // Everything is parked on the boundary: nothing more
                    // can happen here until the epoch-edge drain.
                    None => break,
                }
            }
            for t in &mut self.threads {
                t.tick(cycle);
            }
            let mut fp_free = true;
            let mut other_free = true;
            let mut mem_free = true;
            for k in 0..tpc {
                let lt = (self.rr + k) % tpc;
                if !self.threads[lt].ready() {
                    continue;
                }
                if self.threads[lt].pending.is_none() {
                    let gtid = self.core * tpc + lt;
                    self.threads[lt].pending = Some(self.trace.next(gtid));
                }
                let Some(instr) = self.threads[lt].pending else {
                    unreachable!("a pending instruction was fetched just above")
                };
                let issued = match instr {
                    Instr::Fp if fp_free => {
                        fp_free = false;
                        true
                    }
                    Instr::Other if other_free => {
                        other_free = false;
                        self.threads[lt].state =
                            ThreadState::StalledUntil(cycle + cfg.other_instr_cycles);
                        true
                    }
                    Instr::Load(addr) if other_free && mem_free => {
                        other_free = false;
                        mem_free = false;
                        match self.local_access(cfg, lt, addr, false, cycle) {
                            Some((latency, kind)) => {
                                self.stats.loads += 1;
                                self.stats.load_latency_sum += latency;
                                let level = match kind {
                                    StallKind::Instruction => 0,
                                    _ => 1,
                                };
                                self.stats.load_level_hits[level] += 1;
                                let stall = latency.saturating_sub(cfg.l1.access_cycles);
                                if stall > 0 && kind != StallKind::Instruction {
                                    self.stats.attribute(kind, stall);
                                }
                                self.threads[lt].state = ThreadState::StalledUntil(cycle + latency);
                            }
                            None => {
                                self.push(cycle, lt, MsgKind::LoadMiss(addr));
                                self.threads[lt].state = ThreadState::WaitingMem(cycle);
                            }
                        }
                        true
                    }
                    Instr::Store(addr) if other_free && mem_free => {
                        other_free = false;
                        mem_free = false;
                        if self.local_access(cfg, lt, addr, true, cycle).is_none() {
                            self.push(cycle, lt, MsgKind::StoreMiss(addr));
                        }
                        // Posted store: the thread continues next cycle.
                        self.threads[lt].state = ThreadState::StalledUntil(cycle + 1);
                        true
                    }
                    Instr::Barrier => {
                        self.threads[lt].state = ThreadState::AtBarrier(cycle);
                        self.push(cycle, lt, MsgKind::BarrierArrive);
                        true
                    }
                    Instr::Lock(id) if other_free => {
                        other_free = false;
                        self.threads[lt].state = ThreadState::WaitingLock(id, cycle);
                        self.push(cycle, lt, MsgKind::Lock(id));
                        true
                    }
                    Instr::Unlock(id) if other_free => {
                        other_free = false;
                        self.threads[lt].state = ThreadState::StalledUntil(cycle + 1);
                        self.push(cycle, lt, MsgKind::Unlock(id));
                        true
                    }
                    _ => false,
                };
                if issued {
                    self.threads[lt].pending = None;
                    self.threads[lt].retired += 1;
                    self.stats.instructions += 1;
                    self.stats.counts.l1i_reads += 1;
                }
            }
            self.rr = (self.rr + 1) % tpc;
            cycle += 1;
        }
        // Digest this window's outcome for the coordinator. Stalls set
        // during the window that expire inside it were already cleared by
        // tick (the fast-forward never jumps past a pending expiry), so
        // every StalledUntil here is ≥ t1.
        let mut any_ready = false;
        let mut min_stall: Option<u64> = None;
        for t in &self.threads {
            match t.state {
                ThreadState::Ready => any_ready = true,
                ThreadState::StalledUntil(x) => {
                    min_stall = Some(min_stall.map_or(x, |m: u64| m.min(x)));
                }
                _ => {}
            }
        }
        self.summary = ActorSummary {
            any_ready,
            min_stall,
            instructions: self.stats.instructions,
        };
    }

    /// The shard-local slice of a memory access: L1 and L2 hits are
    /// serviced entirely here; `None` means the request must go to the
    /// boundary. Stores that hit a non-Modified line emit an Upgrade
    /// message for phase B.
    fn local_access(
        &mut self,
        cfg: &SystemConfig,
        lt: usize,
        addr: u64,
        is_store: bool,
        cycle: u64,
    ) -> Option<(u64, StallKind)> {
        self.stats.counts.l1_reads += 1;
        if let Some(state) = self.l1.lookup(addr) {
            if is_store {
                self.stats.counts.l1_writes += 1;
                if state != LineState::Modified {
                    self.push(cycle, lt, MsgKind::Upgrade(addr));
                    self.l1.set_state(addr, LineState::Modified);
                    self.l2.set_state(addr, LineState::Modified);
                }
            }
            return Some((cfg.l1.access_cycles, StallKind::Instruction));
        }
        self.stats.counts.l2_reads += 1;
        let l2_lat = cfg.l1.access_cycles + cfg.l2.access_cycles;
        if let Some(state) = self.l2.lookup(addr) {
            let new_state = if is_store {
                self.push(cycle, lt, MsgKind::Upgrade(addr));
                self.stats.counts.l2_writes += 1;
                LineState::Modified
            } else {
                state
            };
            self.l2.set_state(addr, new_state);
            self.fill_l1(addr, new_state);
            return Some((l2_lat, StallKind::L2Access));
        }
        None
    }

    fn fill_l1(&mut self, addr: u64, state: LineState) {
        self.stats.counts.l1_writes += 1;
        if let Some(ev) = self.l1.insert(addr, state) {
            if ev.state == LineState::Modified {
                // Write the dirty L1 victim back into the (inclusive) L2.
                self.stats.counts.l2_writes += 1;
                self.l2.set_state(ev.addr, LineState::Modified);
            }
        }
    }
}

impl Boundary {
    fn channel_of(&self, cfg: &SystemConfig, addr: u64) -> usize {
        ((addr / u64::from(cfg.l1.line_bytes)) % u64::from(cfg.dram.channels)) as usize
    }

    fn dram_read(&mut self, cfg: &SystemConfig, addr: u64, t_req: u64) -> u64 {
        let ch = self.channel_of(cfg, addr);
        let a = self.channels[ch].access(addr, t_req);
        self.stats.counts.mem_reads += 1;
        if a.activated {
            self.stats.counts.mem_activates += 1;
        }
        if a.page_hit {
            self.stats.counts.mem_page_hits += 1;
        }
        a.done_at
    }

    fn dram_write(&mut self, cfg: &SystemConfig, addr: u64, now: u64) {
        let ch = self.channel_of(cfg, addr);
        let a = self.channels[ch].access(addr, now);
        self.stats.counts.mem_writes += 1;
        if a.activated {
            self.stats.counts.mem_activates += 1;
        }
        if a.page_hit {
            self.stats.counts.mem_page_hits += 1;
        }
    }

    /// Writes a (dirty) line into the L3, or to memory when there is none.
    fn writeback_below(&mut self, cfg: &SystemConfig, addr: u64, now: u64) {
        if self.l3.is_some() {
            self.stats.counts.xbar_transfers += 1;
            self.fill_l3(cfg, addr, LineState::Modified, now);
            self.stats.counts.l3_writes += 1;
        } else {
            self.dram_write(cfg, addr, now);
        }
    }

    fn fill_l3(&mut self, cfg: &SystemConfig, addr: u64, state: LineState, now: u64) {
        let Some(l3) = self.l3.as_mut() else { return };
        self.stats.counts.l3_writes += 1;
        if let Some(ev) = l3.insert(addr, state) {
            if ev.state == LineState::Modified {
                self.dram_write(cfg, ev.addr, now);
            }
        }
    }

    /// Fetches a line from the L3 (if present and hit) or main memory;
    /// reserves timing resources from `t_req` onward.
    fn fetch_below(&mut self, cfg: &SystemConfig, addr: u64, t_req: u64) -> Source {
        if let Some(l3) = self.l3.as_mut() {
            self.stats.counts.l3_reads += 1;
            if l3.lookup(addr).is_some() {
                let data_at = l3.reserve(addr, t_req);
                return Source::L3 { data_at };
            }
            // L3 miss: tag check occupied the bank, then go to memory.
            let t_mem = l3.reserve(addr, t_req);
            let done = self.dram_read(cfg, addr, t_mem);
            self.fill_l3(cfg, addr, LineState::Shared, t_req);
            Source::Memory { data_at: done }
        } else {
            let done = self.dram_read(cfg, addr, t_req);
            Source::Memory { data_at: done }
        }
    }
}

/// Invalidates `mask` cores' copies (MESI); returns whether one of them
/// held the line dirty (cache-to-cache source).
fn invalidate_remotes<T>(
    actors: &[Mutex<CoreActor<T>>],
    b: &mut Boundary,
    info: &mut ShardInfo,
    mask: CoreSet,
    addr: u64,
    requester: usize,
) -> bool {
    let mut dirty = false;
    for other in mask.iter() {
        if other == requester {
            continue;
        }
        b.stats.counts.l2_reads += 1; // probe
        info.invalidations += 1;
        let mut a = lock_actor(actors, other);
        if a.l2.invalidate(addr) == Some(LineState::Modified) {
            dirty = true;
        }
        if a.l1.invalidate(addr) == Some(LineState::Modified) {
            dirty = true;
        }
    }
    dirty
}

/// Pushes the written line into `peers`' caches in place (Dragon): their
/// copies stay valid in Shared state instead of being invalidated.
fn update_remotes<T>(
    actors: &[Mutex<CoreActor<T>>],
    b: &mut Boundary,
    info: &mut ShardInfo,
    peers: CoreSet,
    addr: u64,
    requester: usize,
) {
    for other in peers.iter() {
        if other == requester {
            continue;
        }
        info.updates += 1;
        b.stats.counts.l2_writes += 1; // the update lands in the peer's L2
        b.stats.counts.xbar_transfers += 1;
        let mut a = lock_actor(actors, other);
        a.l2.set_state(addr, LineState::Shared);
        a.l1.set_state(addr, LineState::Shared);
    }
}

/// Downgrades a dirty remote owner to Shared and pushes its data below.
fn downgrade_remote<T>(
    cfg: &SystemConfig,
    actors: &[Mutex<CoreActor<T>>],
    b: &mut Boundary,
    owner: usize,
    addr: u64,
    now: u64,
) {
    b.stats.counts.l2_reads += 1;
    {
        let mut a = lock_actor(actors, owner);
        a.l2.set_state(addr, LineState::Shared);
        a.l1.set_state(addr, LineState::Shared);
    }
    b.writeback_below(cfg, addr, now);
}

fn fold_wake(min_stall: &mut Option<u64>, x: u64) {
    *min_stall = Some(min_stall.map_or(x, |m| m.min(x)));
}

/// Phase B: applies one drained message to the boundary. Every thread it
/// resolves into [`ThreadState::StalledUntil`] is folded into
/// `min_stall`, keeping the coordinator's fast-forward bound exact
/// without a post-drain rescan.
#[allow(clippy::too_many_arguments)]
fn process<T: TraceSource>(
    cfg: &SystemConfig,
    actors: &[Mutex<CoreActor<T>>],
    b: &mut Boundary,
    info: &mut ShardInfo,
    m: &Msg,
    t_end: u64,
    min_stall: &mut Option<u64>,
) {
    let core = m.core as usize;
    let tpc = cfg.threads_per_core as usize;
    match m.kind {
        MsgKind::Upgrade(addr) => {
            let line = addr / u64::from(cfg.l1.line_bytes);
            match cfg.protocol {
                CoherenceProtocol::Mesi => {
                    let mask = b.dir.write(line, core);
                    invalidate_remotes(actors, b, info, mask, addr, core);
                }
                CoherenceProtocol::Dragon => {
                    let (peers, _) = b.dir.write_update(line, core);
                    update_remotes(actors, b, info, peers, addr, core);
                }
            }
        }
        MsgKind::LoadMiss(addr) => miss(cfg, actors, b, info, m, addr, false, min_stall),
        MsgKind::StoreMiss(addr) => miss(cfg, actors, b, info, m, addr, true, min_stall),
        MsgKind::Lock(id) => {
            let gtid = core * tpc + m.tid;
            let lock = b.locks.entry(id).or_default();
            if lock.holder.is_none() {
                lock.holder = Some(gtid);
                let wait = t_end - m.cycle;
                b.stats.attribute(StallKind::Lock, wait);
                info.stall_cycles += wait;
                lock_actor(actors, core).threads[m.tid].state =
                    ThreadState::StalledUntil(t_end + 1);
                fold_wake(min_stall, t_end + 1);
            } else {
                lock.queue.push_back(gtid);
            }
        }
        MsgKind::Unlock(id) => {
            let gtid = core * tpc + m.tid;
            let lock = b.locks.entry(id).or_default();
            debug_assert_eq!(lock.holder, Some(gtid), "unlock by non-holder");
            lock.holder = None;
            if let Some(next) = lock.queue.pop_front() {
                lock.holder = Some(next);
                let mut a = lock_actor(actors, next / tpc);
                if let ThreadState::WaitingLock(_, since) = a.threads[next % tpc].state {
                    let wait = t_end - since;
                    b.stats.attribute(StallKind::Lock, wait);
                    info.stall_cycles += wait;
                }
                a.threads[next % tpc].state = ThreadState::StalledUntil(t_end + 1);
                fold_wake(min_stall, t_end + 1);
            }
        }
        MsgKind::BarrierArrive => {
            b.barrier_count += 1;
            if b.barrier_count == cfg.n_threads() {
                for actor in actors {
                    let mut a = actor.lock().unwrap_or_else(PoisonError::into_inner);
                    for t in &mut a.threads {
                        if let ThreadState::AtBarrier(since) = t.state {
                            let wait = t_end - since;
                            b.stats.attribute(StallKind::Barrier, wait);
                            info.stall_cycles += wait;
                            t.state = ThreadState::StalledUntil(t_end + 1);
                            fold_wake(min_stall, t_end + 1);
                        }
                    }
                }
                b.barrier_count = 0;
            }
        }
    }
}

/// Phase B handling of an L2 miss — the boundary-side tail of the serial
/// engine's `mem_access`, anchored at the message's issue cycle.
#[allow(clippy::too_many_arguments)]
fn miss<T: TraceSource>(
    cfg: &SystemConfig,
    actors: &[Mutex<CoreActor<T>>],
    b: &mut Boundary,
    info: &mut ShardInfo,
    m: &Msg,
    addr: u64,
    is_store: bool,
    min_stall: &mut Option<u64>,
) {
    let core = m.core as usize;
    let now = m.cycle;
    let line = addr / u64::from(cfg.l1.line_bytes);
    let l2_lat = cfg.l1.access_cycles + cfg.l2.access_cycles;

    // Re-probe: an earlier message this epoch (another thread on the same
    // core missing the same line) may already have filled the L2. Service
    // it as the L2 hit it now is — mirroring what the serial engine sees
    // when the first miss fills instantly.
    let refill = lock_actor(actors, core).l2.lookup(addr);
    if let Some(state) = refill {
        if is_store {
            match cfg.protocol {
                CoherenceProtocol::Mesi => {
                    let mask = b.dir.write(line, core);
                    invalidate_remotes(actors, b, info, mask, addr, core);
                }
                CoherenceProtocol::Dragon => {
                    let (peers, _) = b.dir.write_update(line, core);
                    update_remotes(actors, b, info, peers, addr, core);
                }
            }
            let mut a = lock_actor(actors, core);
            a.stats.counts.l2_writes += 1;
            a.l2.set_state(addr, LineState::Modified);
            a.fill_l1(addr, LineState::Modified);
        } else {
            let mut a = lock_actor(actors, core);
            a.l2.set_state(addr, state);
            a.fill_l1(addr, state);
            b.stats.loads += 1;
            b.stats.load_latency_sum += l2_lat;
            b.stats.load_level_hits[1] += 1;
            let stall = l2_lat.saturating_sub(cfg.l1.access_cycles);
            if stall > 0 {
                b.stats.attribute(StallKind::L2Access, stall);
            }
            info.stall_cycles += l2_lat;
            a.threads[m.tid].state = ThreadState::StalledUntil(now + l2_lat);
            fold_wake(min_stall, now + l2_lat);
        }
        return;
    }

    let (from_remote, shared) = if is_store {
        match cfg.protocol {
            CoherenceProtocol::Mesi => {
                let mask = b.dir.write(line, core);
                let dirty = invalidate_remotes(actors, b, info, mask, addr, core);
                (dirty, false)
            }
            CoherenceProtocol::Dragon => {
                let (peers, prev) = b.dir.write_update(line, core);
                update_remotes(actors, b, info, peers, addr, core);
                (prev.is_some_and(|o| o != core), false)
            }
        }
    } else {
        let src = match cfg.protocol {
            CoherenceProtocol::Mesi => b.dir.read(line, core),
            CoherenceProtocol::Dragon => b.dir.read_keep_owner(line, core),
        };
        match src {
            ReadSource::RemoteOwner(owner) => {
                match cfg.protocol {
                    CoherenceProtocol::Mesi => {
                        downgrade_remote(cfg, actors, b, owner, addr, now);
                    }
                    // Dragon: the owner supplies data cache-to-cache but
                    // keeps ownership — no downgrade, no writeback.
                    CoherenceProtocol::Dragon => {
                        b.stats.counts.l2_reads += 1;
                    }
                }
                (true, true)
            }
            ReadSource::SharedClean => (false, true),
            ReadSource::Below => (false, false),
        }
    };

    let xbar = cfg.l3.as_ref().map_or(2, |l| l.xbar_cycles);
    let source = if from_remote {
        Source::RemoteL2
    } else {
        b.fetch_below(cfg, addr, now + l2_lat + xbar)
    };
    let (latency, kind) = match source {
        Source::RemoteL2 => {
            // Cache-to-cache transfer over the crossbar.
            b.stats.counts.l2_reads += 1;
            b.stats.counts.xbar_transfers += 2;
            (
                l2_lat + 2 * xbar + cfg.l2.access_cycles,
                StallKind::L2Access,
            )
        }
        Source::L3 { data_at } => {
            b.stats.counts.xbar_transfers += 2;
            (data_at.saturating_sub(now) + xbar, StallKind::L3Access)
        }
        Source::Memory { data_at } => {
            if b.l3.is_some() {
                b.stats.counts.xbar_transfers += 2;
            }
            (data_at.saturating_sub(now) + xbar, StallKind::MemoryAccess)
        }
    };

    let fill_state = if is_store {
        LineState::Modified
    } else if shared {
        LineState::Shared
    } else {
        LineState::Exclusive
    };
    fill_l2_boundary(cfg, actors, b, core, addr, fill_state, now);
    lock_actor(actors, core).fill_l1(addr, fill_state);
    if is_store {
        b.stats.counts.l2_writes += 1;
    } else {
        b.stats.loads += 1;
        b.stats.load_latency_sum += latency;
        let level = match kind {
            StallKind::L2Access => 1,
            StallKind::L3Access => 2,
            _ => 3,
        };
        b.stats.load_level_hits[level] += 1;
        let stall = latency.saturating_sub(cfg.l1.access_cycles);
        if stall > 0 {
            b.stats.attribute(kind, stall);
        }
        info.stall_cycles += latency;
        let mut a = lock_actor(actors, core);
        debug_assert!(
            matches!(a.threads[m.tid].state, ThreadState::WaitingMem(_)),
            "a load-miss message must find its thread parked"
        );
        a.threads[m.tid].state = ThreadState::StalledUntil(now + latency);
        fold_wake(min_stall, now + latency);
    }
}

/// Inserts into the requester's L2, handling the eviction against the
/// directory and the inclusive L1 exactly like the serial engine.
fn fill_l2_boundary<T: TraceSource>(
    cfg: &SystemConfig,
    actors: &[Mutex<CoreActor<T>>],
    b: &mut Boundary,
    core: usize,
    addr: u64,
    state: LineState,
    now: u64,
) {
    let ev = {
        let mut a = lock_actor(actors, core);
        a.stats.counts.l2_writes += 1;
        a.l2.insert(addr, state)
    };
    if let Some(ev) = ev {
        let ev_line = ev.addr / u64::from(cfg.l1.line_bytes);
        let was_owner = b.dir.evict(ev_line, core);
        // Inclusion: the L1 copy must go too.
        let l1_state = lock_actor(actors, core).l1.invalidate(ev.addr);
        let dirty =
            ev.state == LineState::Modified || was_owner || l1_state == Some(LineState::Modified);
        if dirty {
            b.writeback_below(cfg, ev.addr, now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::StridedSource;

    #[test]
    fn quantum_is_the_min_cross_shard_latency() {
        let no_l3 = SystemConfig::baseline_no_l3();
        assert_eq!(
            epoch_quantum(&no_l3),
            no_l3.l1.access_cycles + no_l3.l2.access_cycles + 4
        );
        let with_l3 = SystemConfig::with_sram_l3();
        let xbar = with_l3.l3.as_ref().unwrap().xbar_cycles;
        assert_eq!(
            epoch_quantum(&with_l3),
            with_l3.l1.access_cycles + with_l3.l2.access_cycles + 2 * xbar
        );
    }

    #[test]
    fn explicit_worker_counts_are_honored_and_capped() {
        let cfg = SystemConfig::with_sram_l3();
        let trace = StridedSource::new(32, 0.2, 1 << 16);
        let sim = ShardedSimulator::new(cfg, trace, 64);
        // 8 cores: an explicit request of 64 workers is capped at 8.
        assert_eq!(sim.effective_workers(1_000_000), 8);
        assert_eq!(sim.effective_workers(10), 8);
    }

    #[test]
    fn auto_policy_falls_back_to_serial_for_small_configs() {
        let cfg = SystemConfig::with_sram_l3(); // 8 cores < MIN_PARALLEL_CORES
        let trace = StridedSource::new(32, 0.2, 1 << 16);
        let mut sim = ShardedSimulator::new(cfg, trace, 0);
        assert_eq!(sim.effective_workers(1_000_000), 1);
        sim.run(1_000);
        assert_eq!(sim.info().serial_fallbacks, 1);
        assert_eq!(sim.info().last_workers, 1);
    }

    #[test]
    fn run_makes_progress_and_reports_epochs() {
        let cfg = SystemConfig::with_sram_l3();
        let trace = StridedSource::new(32, 0.3, 1 << 16);
        let mut sim = ShardedSimulator::new(cfg, trace, 1);
        let stats = sim.run(20_000);
        assert!(stats.instructions >= 20_000);
        assert!(sim.info().epochs > 0);
        assert!(sim.cycle() > 0);
        let total: u64 = stats.cycle_breakdown.iter().sum();
        assert_eq!(total, stats.cycles * 32);
    }

    #[test]
    fn reset_stats_starts_a_fresh_measurement_window() {
        let cfg = SystemConfig::with_sram_l3();
        let trace = StridedSource::new(32, 0.3, 1 << 16);
        let mut sim = ShardedSimulator::new(cfg, trace, 1);
        sim.run(5_000);
        sim.reset_stats();
        let stats = sim.run(5_000);
        assert!(stats.instructions >= 5_000);
        assert!(stats.instructions < 11_000, "warm-up must be discarded");
    }
}
