//! System configuration: geometry and timing of every hierarchy level.
//!
//! All timings are in CPU cycles. The LLC study derives them from CACTI-D
//! solutions (Table 3); the defaults here correspond to the paper's values
//! at 2 GHz.

/// A structurally invalid [`SystemConfig`], caught at construction instead
/// of mid-simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// The L3 interface is [`L3Interface::PageMode`] but `page_timing` is
    /// `None`, so row hits/misses have no tRCD/CAS/tRP to charge.
    PageModeWithoutTiming,
    /// `n_cores` is zero or exceeds the 256-core ceiling of the coherence
    /// directory's sharer sets ([`crate::coherence::MAX_CORES`]).
    UnsupportedCoreCount(u32),
    /// The selected [`CoherenceProtocol`] is not implemented by the engine
    /// the configuration was handed to (the legacy serial loop speaks MESI
    /// only; write-update needs the sharded engine's epoch boundary).
    ProtocolNeedsShardedEngine,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::PageModeWithoutTiming => write!(
                f,
                "page-mode L3 requires page_timing (tRCD/CAS/tRP); \
                 set L3Config::page_timing or use the SRAM-like interface"
            ),
            ConfigError::UnsupportedCoreCount(n) => write!(
                f,
                "n_cores = {n} is outside the supported 1..=256 range \
                 of the coherence directory's sharer sets"
            ),
            ConfigError::ProtocolNeedsShardedEngine => write!(
                f,
                "the Dragon write-update protocol is only implemented by \
                 the sharded engine (memsim::shard::ShardedSimulator); the \
                 legacy serial Simulator speaks MESI only"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// Geometry + timing of one cache level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes (per instance for L1/L2; per bank for L3).
    pub capacity_bytes: u64,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Associativity.
    pub associativity: u32,
    /// Load-to-use access latency [CPU cycles].
    pub access_cycles: u64,
    /// Random (same-subbank) cycle time [CPU cycles].
    pub cycle_cycles: u64,
    /// Initiation interval for accesses to *different* subbanks
    /// [CPU cycles] (multisubbank interleaving, paper §2.3.4).
    pub interleave_cycles: u64,
    /// Number of interleavable subbanks per instance.
    pub n_subbanks: u32,
}

impl CacheConfig {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.line_bytes) * u64::from(self.associativity))
    }
}

/// How cache sets map onto DRAM pages in a DRAM L3 (paper Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SetMapping {
    /// Multiple consecutive sets per DRAM page (Figure 3(a) generalized) —
    /// the choice the paper makes for its study (§3.4).
    #[default]
    SetsPerPage,
    /// Sets striped across pages: one way of consecutive sets per page
    /// (Figure 3(b)).
    StripedWays,
}

/// How a DRAM L3 is operated (paper §2.3.4): with a vanilla SRAM-like
/// interface plus multisubbank interleaving (the paper's choice, §3.4), or
/// with a main-memory-like ACTIVATE/READ/WRITE/PRECHARGE interface that
/// keeps pages open hoping for row-buffer hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum L3Interface {
    /// READ/WRITE only; activate+precharge hidden; multisubbank
    /// interleaving governs back-to-back accesses.
    #[default]
    SramLike,
    /// Open-page main-memory-like operation with explicit row timing.
    PageMode,
}

/// Row timing for a page-mode DRAM L3 [CPU cycles].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L3PageTiming {
    /// Row activation (decode + wordline + bitline + sense).
    pub t_rcd: u64,
    /// Column access from an open row to data out.
    pub t_cas: u64,
    /// Precharge (+ restore) before a different row may open.
    pub t_rp: u64,
}

/// Shared L3 configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct L3Config {
    /// Per-bank cache parameters.
    pub bank: CacheConfig,
    /// Number of banks (the paper uses 8, one per core).
    pub n_banks: u32,
    /// One-way crossbar traversal between an L2 and an L3 bank \[cycles\].
    pub xbar_cycles: u64,
    /// Is this a DRAM L3 (needs refresh accounting and set mapping)?
    pub is_dram: bool,
    /// Cache-set ↔ DRAM-page mapping (DRAM L3s only).
    pub set_mapping: SetMapping,
    /// Operational interface (DRAM L3s only; SRAM is always SRAM-like).
    pub interface: L3Interface,
    /// Row timing when `interface` is [`L3Interface::PageMode`].
    pub page_timing: Option<L3PageTiming>,
}

impl L3Config {
    /// Checks the configuration is self-consistent.
    ///
    /// # Errors
    ///
    /// [`ConfigError::PageModeWithoutTiming`] when the interface is
    /// [`L3Interface::PageMode`] but no [`L3PageTiming`] is given.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.interface == L3Interface::PageMode && self.page_timing.is_none() {
            return Err(ConfigError::PageModeWithoutTiming);
        }
        Ok(())
    }
}

/// Main-memory page policy (paper §2.3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PagePolicy {
    /// Close the page (precharge) after every access.
    #[default]
    Closed,
    /// Keep the page open hoping for row-buffer hits.
    Open,
}

/// DDR-style main memory configuration (timings in CPU cycles).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DramConfig {
    /// Independent channels (the study uses 2).
    pub channels: u32,
    /// Banks per channel (single-ranked DIMM of 8-bank devices → 8).
    pub banks: u32,
    /// Row (page) size per bank in bytes, across the rank.
    pub page_bytes: u64,
    /// Activate-to-column delay tRCD.
    pub t_rcd: u64,
    /// CAS latency.
    pub t_cl: u64,
    /// Precharge time tRP.
    pub t_rp: u64,
    /// Row cycle time tRC (≥ tRCD + tRP).
    pub t_rc: u64,
    /// Activate-to-activate (different banks) tRRD.
    pub t_rrd: u64,
    /// Data-bus occupancy of one line burst.
    pub t_burst: u64,
    /// Page policy.
    pub page_policy: PagePolicy,
}

/// Cache-coherence protocol run between the private L2s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoherenceProtocol {
    /// MESI write-invalidate (the paper's system; both engines).
    #[default]
    Mesi,
    /// Dragon-style write-update: stores push data to the other sharers
    /// instead of invalidating them (sharded engine only).
    Dragon,
}

/// Full system description.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub n_cores: u32,
    /// Hardware threads per core.
    pub threads_per_core: u32,
    /// CPU clock \[Hz\] (used by the study to convert counts to power).
    pub clock_hz: f64,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// Optional shared L3.
    pub l3: Option<L3Config>,
    /// Main memory.
    pub dram: DramConfig,
    /// Non-FP instruction latency \[cycles\] (paper: 4).
    pub other_instr_cycles: u64,
    /// Coherence protocol between the private L2s.
    pub protocol: CoherenceProtocol,
}

impl SystemConfig {
    /// Total hardware threads.
    pub fn n_threads(&self) -> usize {
        (self.n_cores * self.threads_per_core) as usize
    }

    /// Checks the whole system description is self-consistent.
    ///
    /// # Errors
    ///
    /// Any [`ConfigError`] from the configured levels (currently the L3;
    /// see [`L3Config::validate`]).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.n_cores == 0 || self.n_cores as usize > crate::coherence::MAX_CORES {
            return Err(ConfigError::UnsupportedCoreCount(self.n_cores));
        }
        if let Some(l3) = &self.l3 {
            l3.validate()?;
        }
        Ok(())
    }

    /// The paper's system with no L3 (`nol3` configuration): 8 Niagara-like
    /// cores × 4 threads at 2 GHz, 32 KB 8-way L1s, 1 MB 8-way L2s, two
    /// DDR4-3200-class channels.
    pub fn baseline_no_l3() -> SystemConfig {
        SystemConfig {
            n_cores: 8,
            threads_per_core: 4,
            clock_hz: 2.0e9,
            l1: CacheConfig {
                capacity_bytes: 32 << 10,
                line_bytes: 64,
                associativity: 8,
                access_cycles: 2,
                cycle_cycles: 1,
                interleave_cycles: 1,
                n_subbanks: 1,
            },
            l2: CacheConfig {
                capacity_bytes: 1 << 20,
                line_bytes: 64,
                associativity: 8,
                access_cycles: 3,
                cycle_cycles: 1,
                interleave_cycles: 1,
                n_subbanks: 4,
            },
            l3: None,
            dram: DramConfig {
                channels: 2,
                banks: 8,
                page_bytes: 8 << 10,
                t_rcd: 31,
                t_cl: 27,
                t_rp: 22,
                t_rc: 109,
                t_rrd: 16,
                t_burst: 4,
                page_policy: PagePolicy::Closed,
            },
            other_instr_cycles: 4,
            protocol: CoherenceProtocol::Mesi,
        }
    }

    /// Baseline plus an SRAM L3 shaped like the paper's 24 MB
    /// configuration (Table 3 values).
    pub fn with_sram_l3() -> SystemConfig {
        let mut c = SystemConfig::baseline_no_l3();
        c.l3 = Some(L3Config {
            bank: CacheConfig {
                capacity_bytes: 3 << 20,
                line_bytes: 64,
                associativity: 12,
                access_cycles: 5,
                cycle_cycles: 1,
                interleave_cycles: 1,
                n_subbanks: 4,
            },
            n_banks: 8,
            xbar_cycles: 2,
            is_dram: false,
            set_mapping: SetMapping::default(),
            interface: L3Interface::SramLike,
            page_timing: None,
        });
        c
    }

    /// A scaled-up chip for the sharded simulator's 64–256-core studies:
    /// [`SystemConfig::with_sram_l3`] geometry per core, one L3 bank per
    /// core, crossbar latency growing logarithmically with the core count
    /// (2 cycles at the paper's 8 cores, +2 per doubling), and one DRAM
    /// channel per 4 cores. `many_core(8)` reproduces `with_sram_l3()`
    /// exactly.
    ///
    /// # Panics
    ///
    /// Panics if `n_cores` is 0 or above 256 (the directory's sharer-set
    /// width) — use [`SystemConfig::validate`] for a typed error.
    pub fn many_core(n_cores: u32) -> SystemConfig {
        assert!(
            n_cores >= 1 && n_cores as usize <= crate::coherence::MAX_CORES,
            "n_cores = {n_cores} outside 1..=256"
        );
        let mut c = SystemConfig::with_sram_l3();
        c.n_cores = n_cores;
        let Some(l3) = c.l3.as_mut() else {
            unreachable!("with_sram_l3 always has an L3")
        };
        l3.n_banks = n_cores;
        l3.xbar_cycles = 2 + 2 * u64::from((n_cores.max(8) / 8).ilog2());
        c.dram.channels = (n_cores / 4).max(2);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_geometry() {
        let c = SystemConfig::baseline_no_l3();
        assert_eq!(c.n_threads(), 32);
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 2048);
        assert!(c.l3.is_none());
        assert!(c.dram.t_rc >= c.dram.t_rcd + c.dram.t_rp);
    }

    #[test]
    fn validate_bounds_the_core_count() {
        let mut c = SystemConfig::baseline_no_l3();
        assert_eq!(c.validate(), Ok(()));
        c.n_cores = 0;
        assert_eq!(c.validate(), Err(ConfigError::UnsupportedCoreCount(0)));
        c.n_cores = 257;
        assert_eq!(c.validate(), Err(ConfigError::UnsupportedCoreCount(257)));
        c.n_cores = 256;
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn many_core_scales_the_fabric_with_the_core_count() {
        assert_eq!(SystemConfig::many_core(8), SystemConfig::with_sram_l3());
        let c = SystemConfig::many_core(64);
        assert_eq!(c.n_threads(), 256);
        let l3 = c.l3.as_ref().unwrap();
        assert_eq!(l3.n_banks, 64);
        assert_eq!(l3.xbar_cycles, 2 + 2 * 3, "three doublings past 8 cores");
        assert_eq!(c.dram.channels, 16);
        assert_eq!(c.validate(), Ok(()));
        let c = SystemConfig::many_core(256);
        assert_eq!(c.l3.as_ref().unwrap().xbar_cycles, 2 + 2 * 5);
        assert_eq!(c.dram.channels, 64);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn sram_l3_config_has_eight_banks() {
        let c = SystemConfig::with_sram_l3();
        let l3 = c.l3.unwrap();
        assert_eq!(l3.n_banks, 8);
        assert_eq!(l3.bank.capacity_bytes * u64::from(l3.n_banks), 24 << 20);
        assert_eq!(l3.bank.sets(), 4096);
    }
}
