//! Simulation statistics: cycle attribution (paper Figure 4(b) categories),
//! access counters for the power model (Figure 5), and latency tracking.

/// Where a stalled thread's cycles are attributed — the execution-cycle
/// breakdown categories of the paper's Figure 4(b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallKind {
    /// Executing instructions (not waiting for memory).
    Instruction,
    /// Stalled while an L2 (local or remote) services the request.
    L2Access,
    /// Stalled while the shared L3 services the request.
    L3Access,
    /// Stalled while main memory services the request.
    MemoryAccess,
    /// Idle at a barrier.
    Barrier,
    /// Spinning on a lock.
    Lock,
}

impl StallKind {
    /// All categories in the paper's plotting order.
    pub const ALL: &'static [StallKind] = &[
        StallKind::Instruction,
        StallKind::L2Access,
        StallKind::L3Access,
        StallKind::MemoryAccess,
        StallKind::Barrier,
        StallKind::Lock,
    ];

    fn index(self) -> usize {
        match self {
            StallKind::Instruction => 0,
            StallKind::L2Access => 1,
            StallKind::L3Access => 2,
            StallKind::MemoryAccess => 3,
            StallKind::Barrier => 4,
            StallKind::Lock => 5,
        }
    }
}

/// Per-level access counters consumed by the study's power model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AccessCounts {
    /// L1 reads (loads + instruction fetches are counted separately).
    pub l1_reads: u64,
    /// L1 writes (stores + fills).
    pub l1_writes: u64,
    /// Instruction-fetch L1I accesses.
    pub l1i_reads: u64,
    /// L2 reads.
    pub l2_reads: u64,
    /// L2 writes (stores-through, fills, writebacks received).
    pub l2_writes: u64,
    /// L3 reads (lookups).
    pub l3_reads: u64,
    /// L3 writes (fills + writebacks).
    pub l3_writes: u64,
    /// L3 open-row (page) hits — page-mode interface only.
    pub l3_page_hits: u64,
    /// Crossbar line transfers (either direction).
    pub xbar_transfers: u64,
    /// Main-memory row activations.
    pub mem_activates: u64,
    /// Main-memory read bursts.
    pub mem_reads: u64,
    /// Main-memory write bursts.
    pub mem_writes: u64,
    /// Main-memory open-page row-buffer hits (no activate needed).
    pub mem_page_hits: u64,
}

/// Aggregate results of one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimStats {
    /// Total cycles simulated.
    pub cycles: u64,
    /// Instructions retired (all threads).
    pub instructions: u64,
    /// Thread-cycles attributed to each [`StallKind`] (sums to
    /// `cycles × n_threads`).
    pub cycle_breakdown: [u64; 6],
    /// Access counters.
    pub counts: AccessCounts,
    /// Sum of load latencies \[cycles\] (for average read latency).
    pub load_latency_sum: u64,
    /// Number of loads.
    pub loads: u64,
    /// Loads that hit each level: [L1, L2, L3, memory].
    pub load_level_hits: [u64; 4],
}

impl SimStats {
    /// Instructions per cycle across the whole chip.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.instructions as f64 / self.cycles as f64
    }

    /// Average load (read) latency in cycles — Figure 4(a)'s second series.
    pub fn avg_read_latency(&self) -> f64 {
        if self.loads == 0 {
            return 0.0;
        }
        self.load_latency_sum as f64 / self.loads as f64
    }

    /// Attributes `n` thread-cycles to `kind`.
    pub fn attribute(&mut self, kind: StallKind, n: u64) {
        self.cycle_breakdown[kind.index()] += n;
    }

    /// Thread-cycles attributed to `kind`.
    pub fn attributed(&self, kind: StallKind) -> u64 {
        self.cycle_breakdown[kind.index()]
    }

    /// Normalized cycle breakdown (fractions summing to 1, if any cycles
    /// were attributed).
    pub fn breakdown_fractions(&self) -> [f64; 6] {
        let total: u64 = self.cycle_breakdown.iter().sum();
        let mut out = [0.0; 6];
        if total > 0 {
            for (o, &c) in out.iter_mut().zip(&self.cycle_breakdown) {
                *o = c as f64 / total as f64;
            }
        }
        out
    }

    /// Publishes this run's aggregate counts into the process-wide
    /// [`cactid_obs`] registry (the `sim.*` counters of the trace sidecar).
    ///
    /// Call once per *measured* run — typically after the warm-up phase is
    /// discarded — since repeated calls accumulate. Per-event quantities
    /// that aggregate awkwardly (refresh stalls, coherence invalidations)
    /// are counted at their event sites instead and cover the whole
    /// process lifetime including warm-up.
    pub fn publish_obs(&self) {
        let pairs: [(&str, u64); 16] = [
            ("sim.cycles", self.cycles),
            ("sim.instructions", self.instructions),
            ("sim.loads", self.loads),
            ("sim.l1.hits", self.load_level_hits[0]),
            ("sim.l2.hits", self.load_level_hits[1]),
            ("sim.l3.hits", self.load_level_hits[2]),
            ("sim.mem.hits", self.load_level_hits[3]),
            ("sim.l1.reads", self.counts.l1_reads),
            ("sim.l1.writes", self.counts.l1_writes),
            ("sim.l2.reads", self.counts.l2_reads),
            ("sim.l2.writes", self.counts.l2_writes),
            ("sim.l3.reads", self.counts.l3_reads),
            ("sim.l3.writes", self.counts.l3_writes),
            ("sim.l3.page_hits", self.counts.l3_page_hits),
            ("sim.mem.activates", self.counts.mem_activates),
            ("sim.mem.page_hits", self.counts.mem_page_hits),
        ];
        for (name, v) in pairs {
            cactid_obs::counter(name).add(v);
        }
    }

    /// Accumulates `other` into `self`, field by field — used by the
    /// sharded simulator to combine per-shard statistics with the
    /// boundary-side statistics. `cycles` is *not* summed (it is wall
    /// simulated time, identical across shards, not additive); the caller
    /// sets it from the engine clock.
    pub fn merge(&mut self, other: &SimStats) {
        self.instructions += other.instructions;
        for (a, b) in self.cycle_breakdown.iter_mut().zip(&other.cycle_breakdown) {
            *a += b;
        }
        self.load_latency_sum += other.load_latency_sum;
        self.loads += other.loads;
        for (a, b) in self.load_level_hits.iter_mut().zip(&other.load_level_hits) {
            *a += b;
        }
        let (c, o) = (&mut self.counts, &other.counts);
        c.l1_reads += o.l1_reads;
        c.l1_writes += o.l1_writes;
        c.l1i_reads += o.l1i_reads;
        c.l2_reads += o.l2_reads;
        c.l2_writes += o.l2_writes;
        c.l3_reads += o.l3_reads;
        c.l3_writes += o.l3_writes;
        c.l3_page_hits += o.l3_page_hits;
        c.xbar_transfers += o.xbar_transfers;
        c.mem_activates += o.mem_activates;
        c.mem_reads += o.mem_reads;
        c.mem_writes += o.mem_writes;
        c.mem_page_hits += o.mem_page_hits;
    }

    /// FNV-1a digest over every field — a compact checksum for asserting
    /// bitwise equality of runs (e.g. the sharded engine at different
    /// worker counts) without printing the whole struct.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(PRIME);
            }
        };
        mix(self.cycles);
        mix(self.instructions);
        for &v in &self.cycle_breakdown {
            mix(v);
        }
        let c = &self.counts;
        for v in [
            c.l1_reads,
            c.l1_writes,
            c.l1i_reads,
            c.l2_reads,
            c.l2_writes,
            c.l3_reads,
            c.l3_writes,
            c.l3_page_hits,
            c.xbar_transfers,
            c.mem_activates,
            c.mem_reads,
            c.mem_writes,
            c.mem_page_hits,
        ] {
            mix(v);
        }
        mix(self.load_latency_sum);
        mix(self.loads);
        for &v in &self.load_level_hits {
            mix(v);
        }
        h
    }

    /// L3 hit rate among loads that reached the L3.
    pub fn l3_hit_rate(&self) -> f64 {
        let reached = self.load_level_hits[2] + self.load_level_hits[3];
        if reached == 0 {
            return 0.0;
        }
        self.load_level_hits[2] as f64 / reached as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_and_fractions() {
        let mut s = SimStats::default();
        s.attribute(StallKind::Instruction, 60);
        s.attribute(StallKind::MemoryAccess, 40);
        let f = s.breakdown_fractions();
        assert!((f[0] - 0.6).abs() < 1e-12);
        assert!((f[3] - 0.4).abs() < 1e-12);
        assert_eq!(s.attributed(StallKind::MemoryAccess), 40);
    }

    #[test]
    fn ipc_and_latency_guard_divide_by_zero() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.avg_read_latency(), 0.0);
        assert_eq!(s.l3_hit_rate(), 0.0);
    }

    #[test]
    fn publish_obs_adds_the_level_hit_counters() {
        let mut s = SimStats {
            loads: 10,
            load_level_hits: [5, 3, 1, 1],
            ..SimStats::default()
        };
        s.counts.l3_page_hits = 4;
        let before = cactid_obs::snapshot();
        let loads0 = before.counter("sim.loads").unwrap_or(0);
        let l1_0 = before.counter("sim.l1.hits").unwrap_or(0);
        let pg0 = before.counter("sim.l3.page_hits").unwrap_or(0);
        s.publish_obs();
        let after = cactid_obs::snapshot();
        assert!(after.counter("sim.loads").unwrap() >= loads0 + 10);
        assert!(after.counter("sim.l1.hits").unwrap() >= l1_0 + 5);
        assert!(after.counter("sim.l3.page_hits").unwrap() >= pg0 + 4);
    }

    #[test]
    fn merge_sums_everything_but_cycles() {
        let mut a = SimStats {
            cycles: 100,
            instructions: 10,
            loads: 3,
            load_latency_sum: 30,
            load_level_hits: [1, 1, 1, 0],
            ..SimStats::default()
        };
        a.counts.l1_reads = 5;
        a.attribute(StallKind::L2Access, 7);
        let mut b = SimStats {
            cycles: 999,
            instructions: 4,
            loads: 2,
            load_latency_sum: 8,
            load_level_hits: [2, 0, 0, 0],
            ..SimStats::default()
        };
        b.counts.l1_reads = 9;
        b.attribute(StallKind::L2Access, 3);
        a.merge(&b);
        assert_eq!(a.cycles, 100, "cycles must not be summed");
        assert_eq!(a.instructions, 14);
        assert_eq!(a.loads, 5);
        assert_eq!(a.load_latency_sum, 38);
        assert_eq!(a.load_level_hits, [3, 1, 1, 0]);
        assert_eq!(a.counts.l1_reads, 14);
        assert_eq!(a.attributed(StallKind::L2Access), 10);
    }

    #[test]
    fn digest_is_sensitive_to_each_field() {
        let base = SimStats::default();
        let mut x = base.clone();
        x.counts.mem_page_hits = 1;
        let mut y = base.clone();
        y.load_level_hits[3] = 1;
        assert_ne!(base.digest(), x.digest());
        assert_ne!(base.digest(), y.digest());
        assert_ne!(x.digest(), y.digest());
        assert_eq!(base.digest(), SimStats::default().digest());
    }

    #[test]
    fn all_kinds_have_distinct_indices() {
        let mut seen = std::collections::HashSet::new();
        for &k in StallKind::ALL {
            assert!(seen.insert(k.index()));
        }
        assert_eq!(seen.len(), 6);
    }
}
