//! Trace recording and replay.
//!
//! Wraps any [`TraceSource`] to capture the per-thread instruction streams
//! it produces, and replays captures deterministically. Useful for
//! regression-pinning a workload, for cross-configuration studies that
//! must see *identical* instruction streams, and for exporting traces to
//! other tools.

use crate::trace::{Instr, TraceSource};

/// Records everything an inner source produces.
#[derive(Debug, Clone)]
pub struct Recorder<T> {
    inner: T,
    streams: Vec<Vec<Instr>>,
}

impl<T: TraceSource> Recorder<T> {
    /// Wraps `inner`, recording `n_threads` streams.
    pub fn new(inner: T, n_threads: usize) -> Recorder<T> {
        Recorder {
            inner,
            streams: vec![Vec::new(); n_threads],
        }
    }

    /// Finishes recording and returns the capture.
    pub fn into_trace(self) -> RecordedTrace {
        RecordedTrace {
            streams: self.streams,
            cursors: Vec::new(),
        }
    }

    /// Instructions recorded so far for thread `tid`.
    pub fn recorded(&self, tid: usize) -> usize {
        self.streams[tid].len()
    }
}

impl<T: TraceSource> TraceSource for Recorder<T> {
    fn next(&mut self, tid: usize) -> Instr {
        let i = self.inner.next(tid);
        self.streams[tid].push(i);
        i
    }
}

/// A captured set of per-thread instruction streams, replayable as a
/// [`TraceSource`]. When a stream is exhausted the replay pads with
/// [`Instr::Other`] (and reports it via [`RecordedTrace::exhausted`]).
#[derive(Debug, Clone, Default)]
pub struct RecordedTrace {
    streams: Vec<Vec<Instr>>,
    cursors: Vec<usize>,
}

impl RecordedTrace {
    /// Builds a trace directly from per-thread streams.
    pub fn from_streams(streams: Vec<Vec<Instr>>) -> RecordedTrace {
        RecordedTrace {
            streams,
            cursors: Vec::new(),
        }
    }

    /// Number of threads captured.
    pub fn n_threads(&self) -> usize {
        self.streams.len()
    }

    /// Total instructions captured across threads.
    pub fn len(&self) -> usize {
        self.streams.iter().map(Vec::len).sum()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` once any thread has replayed past its captured stream.
    pub fn exhausted(&self) -> bool {
        self.cursors
            .iter()
            .zip(&self.streams)
            .any(|(&c, s)| c > s.len())
    }

    /// Rewinds the replay to the beginning.
    pub fn rewind(&mut self) {
        self.cursors.clear();
    }
}

impl TraceSource for RecordedTrace {
    fn next(&mut self, tid: usize) -> Instr {
        if self.cursors.len() < self.streams.len() {
            self.cursors.resize(self.streams.len(), 0);
        }
        let cur = &mut self.cursors[tid];
        let out = self.streams[tid].get(*cur).copied().unwrap_or(Instr::Other);
        *cur += 1;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::sim::Simulator;
    use crate::trace::StridedSource;

    #[test]
    fn record_then_replay_is_identical() {
        let mut rec = Recorder::new(StridedSource::new(4, 0.4, 1 << 20), 4);
        let mut reference = Vec::new();
        for tid in 0..4 {
            for _ in 0..500 {
                reference.push((tid, rec.next(tid)));
            }
        }
        let mut replay = rec.into_trace();
        assert_eq!(replay.len(), 2000);
        for &(tid, instr) in &reference {
            assert_eq!(replay.next(tid), instr);
        }
        assert!(!replay.exhausted());
        // Past the end: pads with Other and reports exhaustion.
        assert_eq!(replay.next(0), Instr::Other);
        assert!(replay.exhausted());
        // Rewind restores the stream.
        replay.rewind();
        assert_eq!(replay.next(0), reference[0].1);
    }

    #[test]
    fn recorded_simulation_reproduces_the_original() {
        let cfg = SystemConfig::baseline_no_l3();
        let rec = Recorder::new(StridedSource::new(32, 0.3, 1 << 20), 32);
        let mut sim = Simulator::new(cfg.clone(), rec);
        let first = sim.run(100_000);
        let mut replay = sim.into_trace_source().into_trace();
        replay.rewind();
        let mut sim2 = Simulator::new(cfg, replay);
        let second = sim2.run(100_000);
        assert_eq!(first.instructions, second.instructions);
        assert_eq!(first.cycles, second.cycles);
        assert_eq!(first.counts, second.counts);
    }
}
