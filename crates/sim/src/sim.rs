//! The simulator: fine-grained multithreaded cores driving the coherent
//! memory hierarchy.

use crate::cache::{LineState, SetAssocCache};
use crate::coherence::{CoreSet, Directory, ReadSource};
use crate::config::SystemConfig;
use crate::core::{Thread, ThreadState};
use crate::dram::DramChannel;
use crate::l3::L3;
use crate::stats::{SimStats, StallKind};
use crate::trace::{Instr, TraceSource};
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Default)]
struct LockState {
    holder: Option<usize>,
    queue: VecDeque<usize>,
}

/// Where an L2 miss was ultimately serviced.
enum Source {
    RemoteL2,
    L3 { data_at: u64 },
    Memory { data_at: u64 },
}

/// The chip-level simulator. Construct with a [`SystemConfig`] and a
/// [`TraceSource`], then call [`Simulator::run`].
pub struct Simulator<T> {
    cfg: SystemConfig,
    trace: T,
    threads: Vec<Thread>,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    l3: Option<L3>,
    dir: Directory,
    channels: Vec<DramChannel>,
    locks: HashMap<u32, LockState>,
    barrier_count: usize,
    rr: Vec<usize>,
    cycle: u64,
    stats_epoch: u64,
    stats: SimStats,
}

impl<T: TraceSource> Simulator<T> {
    /// Builds an idle system.
    ///
    /// # Panics
    ///
    /// On an invalid configuration; use [`Simulator::try_new`] to get the
    /// typed [`crate::config::ConfigError`] instead.
    pub fn new(cfg: SystemConfig, trace: T) -> Simulator<T> {
        Simulator::try_new(cfg, trace)
            .unwrap_or_else(|e| panic!("invalid system configuration: {e}"))
    }

    /// Builds an idle system, validating the configuration.
    ///
    /// # Errors
    ///
    /// Any [`crate::config::ConfigError`] from
    /// [`SystemConfig::validate`] — e.g. a page-mode L3 without row
    /// timing, which previously panicked mid-simulation — plus
    /// [`crate::config::ConfigError::ProtocolNeedsShardedEngine`] for a
    /// non-MESI protocol: this serial loop resolves coherence actions
    /// instantly and only implements write-invalidate; write-update lives
    /// in [`crate::shard::ShardedSimulator`].
    pub fn try_new(
        cfg: SystemConfig,
        trace: T,
    ) -> Result<Simulator<T>, crate::config::ConfigError> {
        cfg.validate()?;
        if cfg.protocol != crate::config::CoherenceProtocol::Mesi {
            return Err(crate::config::ConfigError::ProtocolNeedsShardedEngine);
        }
        let n_cores = cfg.n_cores as usize;
        let l1 = (0..n_cores)
            .map(|_| {
                SetAssocCache::new(
                    cfg.l1.capacity_bytes,
                    cfg.l1.line_bytes,
                    cfg.l1.associativity,
                )
            })
            .collect();
        let l2 = (0..n_cores)
            .map(|_| {
                SetAssocCache::new(
                    cfg.l2.capacity_bytes,
                    cfg.l2.line_bytes,
                    cfg.l2.associativity,
                )
            })
            .collect();
        let l3 = cfg.l3.clone().map(L3::try_new).transpose()?;
        let channels = (0..cfg.dram.channels)
            .map(|_| DramChannel::new(cfg.dram.clone()))
            .collect();
        let threads = (0..cfg.n_threads()).map(|_| Thread::new()).collect();
        Ok(Simulator {
            rr: vec![0; n_cores],
            threads,
            l1,
            l2,
            l3,
            dir: Directory::new(),
            channels,
            locks: HashMap::new(),
            barrier_count: 0,
            cycle: 0,
            stats_epoch: 0,
            stats: SimStats::default(),
            cfg,
            trace,
        })
    }

    /// Runs until `target_instructions` have retired (or a safety cap of
    /// 1000 cycles per requested instruction is hit), returning the
    /// statistics.
    pub fn run(&mut self, target_instructions: u64) -> SimStats {
        let cycle_cap = self.cycle + target_instructions.saturating_mul(1000).max(10_000);
        let target = self.stats.instructions + target_instructions;
        while self.stats.instructions < target && self.cycle < cycle_cap {
            // Fast-forward across stretches where every thread is blocked.
            if !self.any_issuable() {
                match self.next_wake() {
                    Some(w) if w > self.cycle => self.cycle = w,
                    Some(_) => {}
                    // Nothing will ever wake: synchronization deadlock in
                    // the trace — stop rather than spin to the cycle cap.
                    None => break,
                }
            }
            self.step();
        }
        self.finalize()
    }

    fn any_issuable(&self) -> bool {
        self.threads.iter().any(|t| match t.state {
            ThreadState::Ready => true,
            ThreadState::StalledUntil(x) => x <= self.cycle,
            _ => false,
        })
    }

    fn next_wake(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::StalledUntil(x) => Some(x),
                _ => None,
            })
            .min()
    }

    /// Advances one cycle.
    fn step(&mut self) {
        let cycle = self.cycle;
        for t in &mut self.threads {
            t.tick(cycle);
        }
        let tpc = self.cfg.threads_per_core as usize;
        for core in 0..self.cfg.n_cores as usize {
            let mut fp_free = true;
            let mut other_free = true;
            let mut mem_free = true;
            for k in 0..tpc {
                let tid = core * tpc + (self.rr[core] + k) % tpc;
                if !self.threads[tid].ready() {
                    continue;
                }
                if self.threads[tid].pending.is_none() {
                    self.threads[tid].pending = Some(self.trace.next(tid));
                }
                let Some(instr) = self.threads[tid].pending else {
                    unreachable!("a pending instruction was fetched just above")
                };
                let issued = match instr {
                    Instr::Fp if fp_free => {
                        fp_free = false;
                        true
                    }
                    Instr::Other if other_free => {
                        other_free = false;
                        self.threads[tid].state =
                            ThreadState::StalledUntil(cycle + self.cfg.other_instr_cycles);
                        true
                    }
                    Instr::Load(addr) if other_free && mem_free => {
                        other_free = false;
                        mem_free = false;
                        let (latency, kind) = self.mem_access(core, addr, false);
                        self.stats.loads += 1;
                        self.stats.load_latency_sum += latency;
                        let level = match kind {
                            StallKind::Instruction => 0,
                            StallKind::L2Access => 1,
                            StallKind::L3Access => 2,
                            _ => 3,
                        };
                        self.stats.load_level_hits[level] += 1;
                        let stall = latency.saturating_sub(self.cfg.l1.access_cycles);
                        if stall > 0 && kind != StallKind::Instruction {
                            self.stats.attribute(kind, stall);
                        }
                        self.threads[tid].state = ThreadState::StalledUntil(cycle + latency);
                        true
                    }
                    Instr::Store(addr) if other_free && mem_free => {
                        other_free = false;
                        mem_free = false;
                        // Posted store: resources are reserved and state is
                        // updated, but the thread continues next cycle.
                        let _ = self.mem_access(core, addr, true);
                        self.threads[tid].state = ThreadState::StalledUntil(cycle + 1);
                        true
                    }
                    Instr::Barrier => {
                        self.threads[tid].state = ThreadState::AtBarrier(cycle);
                        self.barrier_count += 1;
                        if self.barrier_count == self.threads.len() {
                            self.release_barrier();
                        }
                        true
                    }
                    Instr::Lock(id) if other_free => {
                        other_free = false;
                        let lock = self.locks.entry(id).or_default();
                        if lock.holder.is_none() {
                            lock.holder = Some(tid);
                            self.threads[tid].state = ThreadState::StalledUntil(cycle + 1);
                        } else {
                            lock.queue.push_back(tid);
                            self.threads[tid].state = ThreadState::WaitingLock(id, cycle);
                        }
                        true
                    }
                    Instr::Unlock(id) if other_free => {
                        other_free = false;
                        self.unlock(id, tid);
                        self.threads[tid].state = ThreadState::StalledUntil(cycle + 1);
                        true
                    }
                    _ => false,
                };
                if issued {
                    self.threads[tid].pending = None;
                    self.threads[tid].retired += 1;
                    self.stats.instructions += 1;
                    self.stats.counts.l1i_reads += 1;
                }
            }
            self.rr[core] = (self.rr[core] + 1) % tpc;
        }
        self.cycle += 1;
    }

    fn release_barrier(&mut self) {
        let cycle = self.cycle;
        for t in &mut self.threads {
            if let ThreadState::AtBarrier(since) = t.state {
                self.stats.attribute(StallKind::Barrier, cycle - since);
                t.state = ThreadState::StalledUntil(cycle + 1);
            }
        }
        self.barrier_count = 0;
    }

    fn unlock(&mut self, id: u32, tid: usize) {
        let cycle = self.cycle;
        let lock = self.locks.entry(id).or_default();
        debug_assert_eq!(lock.holder, Some(tid), "unlock by non-holder");
        lock.holder = None;
        if let Some(next) = lock.queue.pop_front() {
            lock.holder = Some(next);
            if let ThreadState::WaitingLock(_, since) = self.threads[next].state {
                self.stats.attribute(StallKind::Lock, cycle - since);
            }
            self.threads[next].state = ThreadState::StalledUntil(cycle + 1);
        }
    }

    /// One memory operation through the hierarchy; returns the load-to-use
    /// latency and the level that serviced it.
    fn mem_access(&mut self, core: usize, addr: u64, is_store: bool) -> (u64, StallKind) {
        let now = self.cycle;
        let line = addr / u64::from(self.cfg.l1.line_bytes);
        self.stats.counts.l1_reads += 1;

        // ---- L1 ----
        if let Some(state) = self.l1[core].lookup(addr) {
            if is_store {
                self.stats.counts.l1_writes += 1;
                if state != LineState::Modified {
                    let mask = self.dir.write(line, core);
                    self.invalidate_remotes(mask, addr, core);
                    self.l1[core].set_state(addr, LineState::Modified);
                    self.l2[core].set_state(addr, LineState::Modified);
                }
            }
            return (self.cfg.l1.access_cycles, StallKind::Instruction);
        }

        // ---- L2 ----
        self.stats.counts.l2_reads += 1;
        let l2_lat = self.cfg.l1.access_cycles + self.cfg.l2.access_cycles;
        if let Some(state) = self.l2[core].lookup(addr) {
            let new_state = if is_store {
                let mask = self.dir.write(line, core);
                self.invalidate_remotes(mask, addr, core);
                self.stats.counts.l2_writes += 1;
                LineState::Modified
            } else {
                state
            };
            self.l2[core].set_state(addr, new_state);
            self.fill_l1(core, addr, new_state);
            return (l2_lat, StallKind::L2Access);
        }

        // ---- L2 miss: consult the directory ----
        let (from_remote, shared) = if is_store {
            let mask = self.dir.write(line, core);
            let dirty = self.invalidate_remotes(mask, addr, core);
            (dirty, false)
        } else {
            match self.dir.read(line, core) {
                ReadSource::RemoteOwner(owner) => {
                    self.downgrade_remote(owner, addr);
                    (true, true)
                }
                ReadSource::SharedClean => (false, true),
                ReadSource::Below => (false, false),
            }
        };

        let xbar = self.cfg.l3.as_ref().map_or(2, |l| l.xbar_cycles);
        let source = if from_remote {
            Source::RemoteL2
        } else {
            self.fetch_below(addr, now + l2_lat + xbar)
        };

        let (latency, kind) = match source {
            Source::RemoteL2 => {
                // Cache-to-cache transfer over the crossbar.
                self.stats.counts.l2_reads += 1;
                self.stats.counts.xbar_transfers += 2;
                (
                    l2_lat + 2 * xbar + self.cfg.l2.access_cycles,
                    StallKind::L2Access,
                )
            }
            Source::L3 { data_at } => {
                self.stats.counts.xbar_transfers += 2;
                (data_at.saturating_sub(now) + xbar, StallKind::L3Access)
            }
            Source::Memory { data_at } => {
                if self.l3.is_some() {
                    self.stats.counts.xbar_transfers += 2;
                }
                (data_at.saturating_sub(now) + xbar, StallKind::MemoryAccess)
            }
        };

        let fill_state = if is_store {
            LineState::Modified
        } else if shared {
            LineState::Shared
        } else {
            LineState::Exclusive
        };
        self.fill_l2(core, addr, fill_state);
        self.fill_l1(core, addr, fill_state);
        if is_store {
            self.stats.counts.l2_writes += 1;
        }
        (latency, kind)
    }

    /// Fetches a line from the L3 (if present and hit) or main memory;
    /// reserves timing resources from `t_req` onward.
    fn fetch_below(&mut self, addr: u64, t_req: u64) -> Source {
        if let Some(l3) = self.l3.as_mut() {
            self.stats.counts.l3_reads += 1;
            if l3.lookup(addr).is_some() {
                let data_at = l3.reserve(addr, t_req);
                return Source::L3 { data_at };
            }
            // L3 miss: tag check occupied the bank, then go to memory.
            let t_mem = l3.reserve(addr, t_req);
            let done = self.dram_read(addr, t_mem);
            self.fill_l3(addr, LineState::Shared);
            Source::Memory { data_at: done }
        } else {
            let done = self.dram_read(addr, t_req);
            Source::Memory { data_at: done }
        }
    }

    fn channel_of(&self, addr: u64) -> usize {
        ((addr / u64::from(self.cfg.l1.line_bytes)) % u64::from(self.cfg.dram.channels)) as usize
    }

    fn dram_read(&mut self, addr: u64, t_req: u64) -> u64 {
        let ch = self.channel_of(addr);
        let a = self.channels[ch].access(addr, t_req);
        self.stats.counts.mem_reads += 1;
        if a.activated {
            self.stats.counts.mem_activates += 1;
        }
        if a.page_hit {
            self.stats.counts.mem_page_hits += 1;
        }
        a.done_at
    }

    fn dram_write(&mut self, addr: u64) {
        let ch = self.channel_of(addr);
        let t = self.cycle;
        let a = self.channels[ch].access(addr, t);
        self.stats.counts.mem_writes += 1;
        if a.activated {
            self.stats.counts.mem_activates += 1;
        }
        if a.page_hit {
            self.stats.counts.mem_page_hits += 1;
        }
    }

    /// Writes a (dirty) line into the L3, or to memory when there is none.
    fn writeback_below(&mut self, addr: u64) {
        if self.l3.is_some() {
            self.stats.counts.xbar_transfers += 1;
            self.fill_l3(addr, LineState::Modified);
            self.stats.counts.l3_writes += 1;
        } else {
            self.dram_write(addr);
        }
    }

    fn fill_l3(&mut self, addr: u64, state: LineState) {
        let Some(l3) = self.l3.as_mut() else { return };
        self.stats.counts.l3_writes += 1;
        if let Some(ev) = l3.insert(addr, state) {
            if ev.state == LineState::Modified {
                self.dram_write(ev.addr);
            }
        }
    }

    fn fill_l1(&mut self, core: usize, addr: u64, state: LineState) {
        self.stats.counts.l1_writes += 1;
        if let Some(ev) = self.l1[core].insert(addr, state) {
            if ev.state == LineState::Modified {
                // Write the dirty L1 victim back into the (inclusive) L2.
                self.stats.counts.l2_writes += 1;
                self.l2[core].set_state(ev.addr, LineState::Modified);
            }
        }
    }

    fn fill_l2(&mut self, core: usize, addr: u64, state: LineState) {
        self.stats.counts.l2_writes += 1;
        if let Some(ev) = self.l2[core].insert(addr, state) {
            let ev_line = ev.addr / u64::from(self.cfg.l1.line_bytes);
            let was_owner = self.dir.evict(ev_line, core);
            // Inclusion: the L1 copy must go too.
            let l1_state = self.l1[core].invalidate(ev.addr);
            let dirty = ev.state == LineState::Modified
                || was_owner
                || l1_state == Some(LineState::Modified);
            if dirty {
                self.writeback_below(ev.addr);
            }
        }
    }

    /// Invalidates `mask` cores' copies; returns whether one of them held
    /// the line dirty (cache-to-cache source).
    fn invalidate_remotes(&mut self, mask: CoreSet, addr: u64, requester: usize) -> bool {
        let mut dirty = false;
        for other in mask.iter() {
            if other == requester {
                continue;
            }
            self.stats.counts.l2_reads += 1; // probe
            cactid_obs::counter!("sim.coherence.invalidations").inc();
            if self.l2[other].invalidate(addr) == Some(LineState::Modified) {
                dirty = true;
            }
            if self.l1[other].invalidate(addr) == Some(LineState::Modified) {
                dirty = true;
            }
        }
        dirty
    }

    /// Downgrades a dirty remote owner to Shared and pushes its data below.
    fn downgrade_remote(&mut self, owner: usize, addr: u64) {
        self.stats.counts.l2_reads += 1;
        self.l2[owner].set_state(addr, LineState::Shared);
        self.l1[owner].set_state(addr, LineState::Shared);
        self.writeback_below(addr);
    }

    /// Closes out attribution: every unattributed thread-cycle was spent
    /// processing instructions.
    fn finalize(&mut self) -> SimStats {
        let mut s = self.stats.clone();
        s.cycles = self.cycle - self.stats_epoch;
        let total = s.cycles * self.threads.len() as u64;
        let other: u64 = StallKind::ALL
            .iter()
            .skip(1)
            .map(|&k| s.attributed(k))
            .sum();
        s.cycle_breakdown[0] = total.saturating_sub(other);
        s
    }

    /// Discards statistics gathered so far (cache/DRAM state is kept),
    /// so measurement can start after a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
        self.stats_epoch = self.cycle;
    }

    /// Current cycle (diagnostics).
    pub fn cycle(&self) -> u64 {
        self.cycle
    }

    /// Statistics so far without finalization (diagnostics).
    pub fn raw_stats(&self) -> &SimStats {
        &self.stats
    }

    /// Consumes the simulator and hands back its trace source (e.g. a
    /// [`crate::record::Recorder`] whose capture you want).
    pub fn into_trace_source(self) -> T {
        self.trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::trace::StridedSource;

    #[test]
    fn try_new_rejects_page_mode_l3_without_timing() {
        // Regression: Simulator::new accepted this config and the first L3
        // access panicked inside reserve_detailed.
        let mut cfg = SystemConfig::with_sram_l3();
        cfg.l3.as_mut().unwrap().interface = crate::config::L3Interface::PageMode;
        let trace = StridedSource::new(32, 0.3, 1 << 20);
        let err = Simulator::try_new(cfg, trace).err();
        assert_eq!(err, Some(crate::config::ConfigError::PageModeWithoutTiming));
    }

    #[test]
    fn compute_only_workload_hits_peak_issue() {
        // No memory ops: every thread alternates FP/Other; the chip should
        // sustain a healthy IPC and attribute everything to Instruction.
        let cfg = SystemConfig::baseline_no_l3();
        let trace = StridedSource::new(32, 0.0, 1 << 20);
        let mut sim = Simulator::new(cfg, trace);
        let stats = sim.run(100_000);
        assert!(stats.ipc() > 4.0, "ipc = {}", stats.ipc());
        let f = stats.breakdown_fractions();
        assert!(f[0] > 0.9, "instruction fraction {}", f[0]);
        assert_eq!(stats.counts.mem_reads, 0);
    }

    #[test]
    fn small_working_set_stays_in_l1() {
        let cfg = SystemConfig::baseline_no_l3();
        // 16 KB per thread × 4 threads = 64 KB per core… exceeds a 32 KB
        // L1 but fits L2 easily; most accesses should be L1/L2 hits.
        let trace = StridedSource::new(32, 0.3, 16 << 10);
        let mut sim = Simulator::new(cfg, trace);
        // Long enough to amortize the cold misses over the 16 KB regions.
        let stats = sim.run(1_500_000);
        let to_mem = stats.counts.mem_reads as f64 / stats.loads.max(1) as f64;
        assert!(to_mem < 0.05, "memory rate {to_mem}");
        // Steady state is L1/L2 hits (2–5 cycles); the average carries the
        // cold-start burst, where 8192 compulsory misses hammer a handful
        // of DRAM banks at full tRC each — so allow generous headroom.
        assert!(
            stats.avg_read_latency() < 35.0,
            "avg {}",
            stats.avg_read_latency()
        );
        assert!(stats.load_level_hits[0] + stats.load_level_hits[1] > stats.loads * 9 / 10);
    }

    #[test]
    fn huge_working_set_goes_to_memory_and_l3_filters_it() {
        // 64 MB per thread: misses everywhere without an L3.
        let mk = |cfg| {
            let trace = StridedSource::new(32, 0.3, 64 << 20);
            let mut sim = Simulator::new(cfg, trace);
            sim.run(150_000)
        };
        let no_l3 = mk(SystemConfig::baseline_no_l3());
        let with_l3 = mk(SystemConfig::with_sram_l3());
        assert!(no_l3.counts.mem_reads > 0);
        assert!(no_l3.avg_read_latency() > 20.0);
        // The 24 MB L3 can hold a fraction of the 2 GB working set only —
        // but reuse is random, so *some* hits occur and latency improves
        // at least marginally; mostly this checks the L3 path end-to-end.
        assert!(with_l3.counts.l3_reads > 0);
        assert!(with_l3.counts.mem_reads <= no_l3.counts.mem_reads * 11 / 10);
    }

    #[test]
    fn barrier_synchronizes_all_threads() {
        struct BarrierEvery(u64, Vec<u64>);
        impl TraceSource for BarrierEvery {
            fn next(&mut self, tid: usize) -> Instr {
                self.1[tid] += 1;
                if self.1[tid].is_multiple_of(self.0) {
                    Instr::Barrier
                } else {
                    Instr::Fp
                }
            }
        }
        let cfg = SystemConfig::baseline_no_l3();
        let mut sim = Simulator::new(cfg, BarrierEvery(50, vec![0; 32]));
        let stats = sim.run(50_000);
        assert!(stats.attributed(StallKind::Barrier) > 0);
    }

    #[test]
    fn locks_serialize_and_attribute_wait() {
        struct LockLoop(Vec<u32>);
        impl TraceSource for LockLoop {
            fn next(&mut self, tid: usize) -> Instr {
                self.0[tid] += 1;
                match self.0[tid] % 8 {
                    1 => Instr::Lock(0),
                    5 => Instr::Unlock(0),
                    _ => Instr::Other,
                }
            }
        }
        let cfg = SystemConfig::baseline_no_l3();
        let mut sim = Simulator::new(cfg, LockLoop(vec![0; 32]));
        let stats = sim.run(50_000);
        assert!(stats.attributed(StallKind::Lock) > 0);
    }

    #[test]
    fn shared_data_exercises_coherence() {
        // All threads hammer the same small region with stores: the
        // directory must bounce ownership around without deadlock.
        struct SharedWrites(u64);
        impl TraceSource for SharedWrites {
            fn next(&mut self, tid: usize) -> Instr {
                self.0 = self
                    .0
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(tid as u64);
                let addr = (self.0 >> 8) % (8 << 10);
                if self.0 & 1 == 0 {
                    Instr::Store(addr & !63)
                } else {
                    Instr::Load(addr & !63)
                }
            }
        }
        let cfg = SystemConfig::baseline_no_l3();
        let mut sim = Simulator::new(cfg, SharedWrites(1));
        let stats = sim.run(100_000);
        assert!(stats.instructions >= 100_000);
        assert!(stats.counts.l2_reads > 0);
    }

    #[test]
    fn cycle_breakdown_conserves_thread_cycles() {
        let cfg = SystemConfig::with_sram_l3();
        let trace = StridedSource::new(32, 0.4, 8 << 20);
        let mut sim = Simulator::new(cfg, trace);
        let stats = sim.run(100_000);
        let total: u64 = stats.cycle_breakdown.iter().sum();
        assert_eq!(total, stats.cycles * 32);
    }

    #[test]
    fn determinism() {
        let run = || {
            let cfg = SystemConfig::with_sram_l3();
            let trace = StridedSource::new(32, 0.4, 4 << 20);
            let mut sim = Simulator::new(cfg, trace);
            sim.run(50_000)
        };
        assert_eq!(run(), run());
    }
}
