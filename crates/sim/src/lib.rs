//! # memsim — cycle-level CMP memory-hierarchy simulator
//!
//! The architectural-simulation substrate for the CACTI-D stacked
//! last-level-cache study (paper §3), built from scratch as a substitute
//! for HP Labs' COTSon infrastructure.
//!
//! It models the paper's target system: a 2 GHz chip multiprocessor with
//! in-order fine-grained-multithreaded cores (4 hardware threads each, one
//! 4-wide SIMD FPU per core — an FP instruction can issue every cycle,
//! other instructions take 4 cycles, at most one memory request per core
//! per cycle), private SRAM L1 and L2 caches kept coherent with a MESI
//! protocol, an optional shared banked L3 reached through an 8×8 crossbar,
//! and a DDR-style main memory with channels, banks, and
//! tRCD/CL/tRP/tRC/tRRD timing under an open- or closed-page policy.
//!
//! Timing is resource-reservation based: a memory request's latency is
//! resolved at issue by walking the hierarchy and reserving bank/bus slots
//! (multisubbank-interleave initiation intervals, DRAM bank cycles, burst
//! slots), which keeps simulation fast while modeling contention. Threads
//! block on loads, synchronize at barriers and locks, and every stall
//! cycle is attributed to the level that serviced the miss — exactly the
//! categories of the paper's Figure 4(b).
//!
//! # Example
//!
//! ```
//! use memsim::{SystemConfig, Simulator, trace::StridedSource};
//!
//! let config = SystemConfig::baseline_no_l3();
//! let trace = StridedSource::new(32, 0.3, 1 << 30);
//! let mut sim = Simulator::new(config, trace);
//! let stats = sim.run(100_000);
//! assert!(stats.ipc() > 0.0);
//! ```

pub mod cache;
pub mod coherence;
pub mod config;
pub mod core;
pub mod dram;
pub mod l3;
pub mod record;
pub mod rng;
pub mod shard;
pub mod sim;
pub mod stats;
pub mod trace;

pub use config::{
    CacheConfig, CoherenceProtocol, ConfigError, DramConfig, L3Config, PagePolicy, SystemConfig,
};
pub use shard::{ShardInfo, ShardedSimulator};
pub use sim::Simulator;
pub use stats::{SimStats, StallKind};
pub use trace::{Instr, TraceSource};
