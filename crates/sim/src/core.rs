//! Hardware-thread state for the fine-grained multithreaded cores.

use crate::trace::Instr;

/// What a hardware thread is doing right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Ready to issue its pending instruction.
    Ready,
    /// Blocked until the given cycle (instruction latency or a load miss).
    StalledUntil(u64),
    /// Parked at the global barrier since the given cycle.
    AtBarrier(u64),
    /// Queued on a lock since the given cycle.
    WaitingLock(u32, u64),
    /// Blocked on a cross-shard memory response issued at the given cycle
    /// (sharded engine only; resolved into [`ThreadState::StalledUntil`]
    /// at the next epoch boundary, never woken by [`Thread::tick`]).
    WaitingMem(u64),
}

/// One hardware thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Current state.
    pub state: ThreadState,
    /// The next instruction to issue, if already fetched.
    pub pending: Option<Instr>,
    /// Instructions retired by this thread.
    pub retired: u64,
}

impl Thread {
    /// A fresh, ready thread.
    pub fn new() -> Thread {
        Thread {
            state: ThreadState::Ready,
            pending: None,
            retired: 0,
        }
    }

    /// Wakes the thread if its stall has expired at `cycle`.
    pub fn tick(&mut self, cycle: u64) {
        if let ThreadState::StalledUntil(t) = self.state {
            if cycle >= t {
                self.state = ThreadState::Ready;
            }
        }
    }

    /// `true` when the thread can issue this cycle.
    pub fn ready(&self) -> bool {
        self.state == ThreadState::Ready
    }
}

impl Default for Thread {
    fn default() -> Self {
        Thread::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stall_expires_exactly_on_time() {
        let mut t = Thread::new();
        t.state = ThreadState::StalledUntil(10);
        t.tick(9);
        assert!(!t.ready());
        t.tick(10);
        assert!(t.ready());
    }

    #[test]
    fn barrier_state_is_not_woken_by_tick() {
        let mut t = Thread::new();
        t.state = ThreadState::AtBarrier(5);
        t.tick(100);
        assert!(!t.ready());
    }
}
