//! DDR-style main memory timing: channels, banks, page policy, refresh.
//!
//! Resource-reservation model: each request computes its completion time
//! from the bank's and data bus's next-free times plus the DRAM timing
//! parameters, then reserves those resources.

use crate::config::{DramConfig, PagePolicy};

/// Default refresh interval (tREFI) in CPU cycles at 2 GHz (7.8 µs).
const T_REFI: u64 = 15_600;
/// Refresh cycle time (tRFC) in CPU cycles at 2 GHz (~350 ns, 8 Gb-class).
const T_RFC: u64 = 700;

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    /// Cycle when a new activate may start.
    ready_at: u64,
    /// Open row, if any (open-page policy).
    open_row: Option<u64>,
}

/// Result of one DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Cycle at which the data burst completes.
    pub done_at: u64,
    /// Whether a row activation was required.
    pub activated: bool,
    /// Whether it hit an open row buffer.
    pub page_hit: bool,
}

/// One memory channel with its banks and shared data bus.
///
/// The shared resources (ACT issue slots under tRRD, data-bus burst slots)
/// are modeled as rate limiters anchored at the *request* time rather than
/// as strict in-order reservations: a request whose bank is busy far in the
/// future must not head-of-line-block other banks' commands, because real
/// controllers reorder (FR-FCFS).
#[derive(Debug, Clone)]
pub struct DramChannel {
    cfg: DramConfig,
    banks: Vec<Bank>,
    bus_slot_at: u64,
    act_slot_at: u64,
}

impl DramChannel {
    /// Creates an idle channel.
    pub fn new(cfg: DramConfig) -> DramChannel {
        let banks = vec![Bank::default(); cfg.banks as usize];
        DramChannel {
            cfg,
            banks,
            bus_slot_at: 0,
            act_slot_at: 0,
        }
    }

    /// Claims the next ACT issue slot no earlier than `now` (tRRD pacing).
    fn claim_act_slot(&mut self, now: u64) -> u64 {
        let slot = self.act_slot_at.max(now);
        self.act_slot_at = slot + self.cfg.t_rrd;
        slot
    }

    /// Claims a data-bus burst slot no earlier than `now`.
    fn claim_bus_slot(&mut self, now: u64) -> u64 {
        let slot = self.bus_slot_at.max(now);
        self.bus_slot_at = slot + self.cfg.t_burst;
        slot
    }

    /// Which bank an address maps to within this channel.
    pub fn bank_of(&self, addr: u64) -> usize {
        // Interleave banks on page-sized granularity for row locality.
        ((addr / self.cfg.page_bytes) % u64::from(self.cfg.banks)) as usize
    }

    fn row_of(&self, addr: u64) -> u64 {
        addr / (self.cfg.page_bytes * u64::from(self.cfg.banks))
    }

    /// Pushes `t` past any refresh window it lands in (all banks refresh
    /// together every tREFI for tRFC).
    fn after_refresh(&self, t: u64) -> u64 {
        let phase = t % T_REFI;
        if phase < T_RFC {
            t - phase + T_RFC
        } else {
            t
        }
    }

    /// Issues an access at cycle `now`; returns its completion time and
    /// what it cost. Reserves the bank and bus.
    pub fn access(&mut self, addr: u64, now: u64) -> DramAccess {
        let bank_idx = self.bank_of(addr);
        let row = self.row_of(addr);
        let cfg = self.cfg.clone();
        let bank_ready = self.banks[bank_idx].ready_at;
        let open_row = self.banks[bank_idx].open_row;

        let base = now.max(bank_ready);
        let mut t = self.after_refresh(base);
        if t != base {
            cactid_obs::counter!("sim.mem.refresh_stalls").inc();
        }
        let (activated, page_hit);
        match (cfg.page_policy, open_row) {
            (PagePolicy::Open, Some(open)) if open == row => {
                // Row-buffer hit: column access only.
                activated = false;
                page_hit = true;
            }
            (PagePolicy::Open, Some(_)) => {
                // Conflict: precharge, then activate.
                t += cfg.t_rp;
                t = t.max(self.claim_act_slot(now));
                t += cfg.t_rcd;
                activated = true;
                page_hit = false;
            }
            _ => {
                // Closed page (or first touch): activate.
                t = t.max(self.claim_act_slot(now));
                t += cfg.t_rcd;
                activated = true;
                page_hit = false;
            }
        }
        // Column access + burst on the shared data bus.
        let data_start = (t + cfg.t_cl).max(self.claim_bus_slot(now));
        let done_at = data_start + cfg.t_burst;

        // Bank availability for the *next* activate.
        let bank = &mut self.banks[bank_idx];
        match cfg.page_policy {
            PagePolicy::Closed => {
                if activated {
                    // Full row cycle from this activate.
                    bank.ready_at = (t - cfg.t_rcd) + cfg.t_rc;
                } else {
                    bank.ready_at = done_at;
                }
                bank.open_row = None;
            }
            PagePolicy::Open => {
                bank.ready_at = done_at;
                bank.open_row = Some(row);
            }
        }

        DramAccess {
            done_at,
            activated,
            page_hit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;

    fn cfg(policy: PagePolicy) -> DramConfig {
        let mut d = SystemConfig::baseline_no_l3().dram;
        d.page_policy = policy;
        d
    }

    #[test]
    fn closed_page_latency_is_rcd_cl_burst() {
        let mut ch = DramChannel::new(cfg(PagePolicy::Closed));
        let c = cfg(PagePolicy::Closed);
        let a = ch.access(0x10_0000, 1000);
        assert!(a.activated && !a.page_hit);
        assert_eq!(a.done_at, 1000 + c.t_rcd + c.t_cl + c.t_burst);
    }

    #[test]
    fn same_bank_back_to_back_pays_trc() {
        let mut ch = DramChannel::new(cfg(PagePolicy::Closed));
        let c = cfg(PagePolicy::Closed);
        let first = ch.access(0x10_0000, 1000);
        // Same page → same bank; the bank is busy for tRC from the activate.
        let second = ch.access(0x10_0040, first.done_at);
        assert!(second.done_at >= 1000 + c.t_rc + c.t_cl, "tRC enforced");
    }

    #[test]
    fn different_banks_interleave_at_trrd() {
        let mut ch = DramChannel::new(cfg(PagePolicy::Closed));
        let c = cfg(PagePolicy::Closed);
        let a = ch.access(0, 2000);
        let b = ch.access(c.page_bytes, 2000); // next bank
        assert!(a.activated && b.activated);
        // The second activate waits only tRRD, not tRC.
        assert!(b.done_at < 2000 + c.t_rc);
        assert!(b.done_at >= 2000 + c.t_rrd + c.t_rcd + c.t_cl + c.t_burst);
    }

    #[test]
    fn open_page_hits_skip_activation() {
        let mut ch = DramChannel::new(cfg(PagePolicy::Open));
        let c = cfg(PagePolicy::Open);
        let a = ch.access(0x40, 3000);
        let b = ch.access(0x80, a.done_at); // same row
        assert!(b.page_hit && !b.activated);
        assert_eq!(b.done_at, a.done_at + c.t_cl + c.t_burst);
        // A different row in the same bank pays precharge + activate.
        let far = c.page_bytes * u64::from(c.banks) * 7;
        let conflict = ch.access(far, b.done_at);
        assert!(conflict.activated && !conflict.page_hit);
        assert!(conflict.done_at >= b.done_at + c.t_rp + c.t_rcd + c.t_cl);
    }

    #[test]
    fn requests_during_refresh_wait() {
        let mut ch = DramChannel::new(cfg(PagePolicy::Closed));
        let c = cfg(PagePolicy::Closed);
        // Land exactly inside a refresh window.
        let t = T_REFI * 5 + 10;
        let a = ch.access(0, t);
        assert!(a.done_at >= T_REFI * 5 + T_RFC + c.t_rcd + c.t_cl + c.t_burst);
    }
}
