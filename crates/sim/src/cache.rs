//! Set-associative cache tag array with true-LRU replacement and MESI
//! line states.

/// MESI coherence state of a cached line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineState {
    /// Not present.
    Invalid,
    /// Clean, possibly in other caches.
    Shared,
    /// Clean, only copy among peer caches.
    Exclusive,
    /// Dirty, only copy.
    Modified,
}

#[derive(Debug, Clone, Copy)]
struct Line {
    tag: u64,
    state: LineState,
    lru: u32,
}

/// A set-associative tag array. Addresses are byte addresses; the cache
/// derives line/set/tag internally.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    sets: u64,
    assoc: u32,
    line_bytes: u64,
    lines: Vec<Line>,
    lru_clock: u32,
}

/// Result of an insertion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Eviction {
    /// Byte address of the first byte of the evicted line.
    pub addr: u64,
    /// State the victim was in.
    pub state: LineState,
}

impl SetAssocCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if geometry is degenerate (zero sets/ways or non-power-of-two
    /// line size).
    pub fn new(capacity_bytes: u64, line_bytes: u32, associativity: u32) -> SetAssocCache {
        assert!(line_bytes.is_power_of_two() && line_bytes > 0);
        assert!(associativity > 0);
        let sets = capacity_bytes / (u64::from(line_bytes) * u64::from(associativity));
        assert!(sets > 0, "cache smaller than one set");
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        SetAssocCache {
            sets,
            assoc: associativity,
            line_bytes: u64::from(line_bytes),
            lines: vec![
                Line {
                    tag: 0,
                    state: LineState::Invalid,
                    lru: 0,
                };
                (sets * u64::from(associativity)) as usize
            ],
            lru_clock: 0,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr / self.line_bytes
    }

    fn set_of(&self, addr: u64) -> u64 {
        self.line_addr(addr) & (self.sets - 1)
    }

    fn tag_of(&self, addr: u64) -> u64 {
        self.line_addr(addr) >> self.sets.trailing_zeros()
    }

    /// Set index for an address — exposed for bank/subbank steering.
    pub fn set_index(&self, addr: u64) -> u64 {
        self.set_of(addr)
    }

    fn slot_range(&self, set: u64) -> std::ops::Range<usize> {
        let start = (set * u64::from(self.assoc)) as usize;
        start..start + self.assoc as usize
    }

    /// Looks up `addr`; on hit returns its state and refreshes LRU.
    pub fn lookup(&mut self, addr: u64) -> Option<LineState> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lru_clock = self.lru_clock.wrapping_add(1);
        let clock = self.lru_clock;
        let range = self.slot_range(set);
        for line in &mut self.lines[range] {
            if line.state != LineState::Invalid && line.tag == tag {
                line.lru = clock;
                return Some(line.state);
            }
        }
        None
    }

    /// Looks up without touching LRU (probe).
    pub fn probe(&self, addr: u64) -> Option<LineState> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lines[self.slot_range(set)]
            .iter()
            .find(|l| l.state != LineState::Invalid && l.tag == tag)
            .map(|l| l.state)
    }

    /// Inserts `addr` in `state`, evicting the LRU line of the set if
    /// needed. Returns the eviction, if any.
    pub fn insert(&mut self, addr: u64, state: LineState) -> Option<Eviction> {
        assert!(state != LineState::Invalid, "cannot insert an invalid line");
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        self.lru_clock = self.lru_clock.wrapping_add(1);
        let clock = self.lru_clock;
        let range = self.slot_range(set);

        // Already present: just update state.
        for line in &mut self.lines[range.clone()] {
            if line.state != LineState::Invalid && line.tag == tag {
                line.state = state;
                line.lru = clock;
                return None;
            }
        }
        // Free slot?
        for line in &mut self.lines[range.clone()] {
            if line.state == LineState::Invalid {
                *line = Line {
                    tag,
                    state,
                    lru: clock,
                };
                return None;
            }
        }
        // Evict the LRU line: the one with the greatest clock distance
        // (wrapping subtraction keeps this correct across clock wraps).
        let Some(victim_idx) = range.max_by_key(|&i| clock.wrapping_sub(self.lines[i].lru)) else {
            unreachable!("a set has at least one way")
        };
        let victim = self.lines[victim_idx];
        self.lines[victim_idx] = Line {
            tag,
            state,
            lru: clock,
        };
        let victim_line = (victim.tag << self.sets.trailing_zeros()) | set;
        Some(Eviction {
            addr: victim_line * self.line_bytes,
            state: victim.state,
        })
    }

    /// Changes the state of a present line; no-op if absent.
    pub fn set_state(&mut self, addr: u64, state: LineState) {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let range = self.slot_range(set);
        for line in &mut self.lines[range] {
            if line.state != LineState::Invalid && line.tag == tag {
                if state == LineState::Invalid {
                    line.state = LineState::Invalid;
                } else {
                    line.state = state;
                }
                return;
            }
        }
    }

    /// Invalidates a line if present; returns its previous state.
    pub fn invalidate(&mut self, addr: u64) -> Option<LineState> {
        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let range = self.slot_range(set);
        for line in &mut self.lines[range] {
            if line.state != LineState::Invalid && line.tag == tag {
                let prev = line.state;
                line.state = LineState::Invalid;
                return Some(prev);
            }
        }
        None
    }

    /// Number of valid lines (test/diagnostic helper).
    pub fn valid_lines(&self) -> usize {
        self.lines
            .iter()
            .filter(|l| l.state != LineState::Invalid)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        // 4 sets × 2 ways × 64 B lines = 512 B.
        SetAssocCache::new(512, 64, 2)
    }

    #[test]
    fn hit_after_insert() {
        let mut c = small();
        assert_eq!(c.lookup(0x1000), None);
        assert_eq!(c.insert(0x1000, LineState::Exclusive), None);
        assert_eq!(c.lookup(0x1000), Some(LineState::Exclusive));
        // Same line, different byte offset.
        assert_eq!(c.lookup(0x103F), Some(LineState::Exclusive));
        // Different line.
        assert_eq!(c.lookup(0x1040), None);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small();
        // Three lines mapping to set 0 (set stride = 4 sets × 64 B = 256 B).
        let (a, b, d) = (0x0000, 0x0100, 0x0200);
        c.insert(a, LineState::Shared);
        c.insert(b, LineState::Shared);
        c.lookup(a); // make `b` the LRU
        let ev = c.insert(d, LineState::Shared).expect("must evict");
        assert_eq!(ev.addr, b);
        assert_eq!(c.probe(a), Some(LineState::Shared));
        assert_eq!(c.probe(b), None);
    }

    #[test]
    fn eviction_reports_state_and_line_address() {
        let mut c = small();
        c.insert(0x0040, LineState::Modified);
        c.insert(0x0140, LineState::Shared);
        let ev = c.insert(0x0240, LineState::Shared).unwrap();
        assert_eq!(ev.addr, 0x0040);
        assert_eq!(ev.state, LineState::Modified);
    }

    #[test]
    fn insert_existing_updates_state_without_eviction() {
        let mut c = small();
        c.insert(0x2000, LineState::Shared);
        assert_eq!(c.insert(0x2000, LineState::Modified), None);
        assert_eq!(c.probe(0x2000), Some(LineState::Modified));
        assert_eq!(c.valid_lines(), 1);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = small();
        c.insert(0x3000, LineState::Exclusive);
        assert_eq!(c.invalidate(0x3000), Some(LineState::Exclusive));
        assert_eq!(c.probe(0x3000), None);
        assert_eq!(c.invalidate(0x3000), None);
    }

    #[test]
    #[should_panic(expected = "smaller than one set")]
    fn rejects_degenerate_geometry() {
        SetAssocCache::new(64, 64, 2);
    }
}
