//! Coherence directory tracking which private L2s hold each line.
//!
//! The directory covers only lines resident in some L2 (the L2s are small,
//! so the map stays bounded); it is consulted on every L2 miss and on every
//! store that needs ownership. Sharer sets are 256-bit [`CoreSet`]s, so the
//! same directory serves the paper's 8-core chip and the sharded
//! simulator's 64–256-core configurations.
//!
//! Two protocols share the directory state:
//! * **MESI** (write-invalidate) — [`Directory::read`] / [`Directory::write`],
//!   the legacy serial simulator's protocol.
//! * **Dragon-style write-update** — [`Directory::read_keep_owner`] /
//!   [`Directory::write_update`]: a write pushes the new data to the other
//!   sharers instead of invalidating them, and a read from a dirty owner
//!   does not downgrade it. Only the sharded engine speaks this dialect.

use std::collections::HashMap;

/// Maximum number of cores a sharer set can track.
pub const MAX_CORES: usize = 256;

/// A set of core ids, fixed 256-bit bitset — wide enough for the sharded
/// simulator's largest configuration, four words instead of a heap
/// allocation per directory entry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreSet([u64; 4]);

impl CoreSet {
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet([0; 4]);

    /// The set containing exactly `core`.
    pub fn only(core: usize) -> CoreSet {
        let mut s = CoreSet::EMPTY;
        s.insert(core);
        s
    }

    /// The set containing the listed cores (tests/diagnostics).
    pub fn of(cores: &[usize]) -> CoreSet {
        let mut s = CoreSet::EMPTY;
        for &c in cores {
            s.insert(c);
        }
        s
    }

    /// Adds `core`.
    ///
    /// # Panics
    ///
    /// Panics if `core >= MAX_CORES` (debug builds index-check anyway).
    pub fn insert(&mut self, core: usize) {
        self.0[core / 64] |= 1 << (core % 64);
    }

    /// Removes `core`.
    pub fn remove(&mut self, core: usize) {
        self.0[core / 64] &= !(1 << (core % 64));
    }

    /// Membership test.
    pub fn contains(&self, core: usize) -> bool {
        self.0[core / 64] & (1 << (core % 64)) != 0
    }

    /// `true` when no core is in the set.
    pub fn is_empty(&self) -> bool {
        self.0 == [0; 4]
    }

    /// Number of cores in the set.
    pub fn count(&self) -> u32 {
        self.0.iter().map(|w| w.count_ones()).sum()
    }

    /// This set minus `core`.
    pub fn without(mut self, core: usize) -> CoreSet {
        self.remove(core);
        self
    }

    /// Iterates the member core ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().flat_map(|(wi, &w)| {
            let mut bits = w;
            std::iter::from_fn(move || {
                if bits == 0 {
                    return None;
                }
                let b = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

/// Directory entry for one line: which cores' L2s hold it, and whether one
/// of them owns it dirty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Cores holding the line.
    pub sharers: CoreSet,
    /// Core owning the line in Modified state, if any.
    pub owner: Option<u16>,
}

/// Outcome of a directory read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// No L2 holds it — fetch from L3/memory.
    Below,
    /// A peer L2 holds it dirty; cache-to-cache transfer.
    RemoteOwner(usize),
    /// One or more peers hold it clean; data still comes from below, the
    /// requester joins the sharers.
    SharedClean,
}

/// The coherence directory.
#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Number of tracked lines (bounded by total L2 capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Core `core` reads `line` (L2 miss): updates sharers and reports
    /// where the data comes from. MESI semantics — a dirty remote owner
    /// downgrades to Shared.
    pub fn read(&mut self, line: u64, core: usize) -> ReadSource {
        let e = self.entries.entry(line).or_default();
        let src = if let Some(owner) = e.owner {
            if usize::from(owner) != core {
                e.owner = None; // owner downgrades to Shared
                ReadSource::RemoteOwner(usize::from(owner))
            } else {
                ReadSource::Below // shouldn't happen (owner re-reading)
            }
        } else if !e.sharers.without(core).is_empty() {
            ReadSource::SharedClean
        } else {
            ReadSource::Below
        };
        e.sharers.insert(core);
        src
    }

    /// Core `core` reads `line` under the write-update protocol: like
    /// [`Directory::read`] but a dirty owner keeps ownership — it supplies
    /// the data cache-to-cache without a downgrade or writeback.
    pub fn read_keep_owner(&mut self, line: u64, core: usize) -> ReadSource {
        let e = self.entries.entry(line).or_default();
        let src = if let Some(owner) = e.owner {
            if usize::from(owner) != core {
                ReadSource::RemoteOwner(usize::from(owner))
            } else {
                ReadSource::Below
            }
        } else if !e.sharers.without(core).is_empty() {
            ReadSource::SharedClean
        } else {
            ReadSource::Below
        };
        e.sharers.insert(core);
        src
    }

    /// Core `core` writes `line` (MESI): all other sharers must be
    /// invalidated. Returns the set of cores that need an invalidation
    /// probe.
    pub fn write(&mut self, line: u64, core: usize) -> CoreSet {
        let e = self.entries.entry(line).or_default();
        let invalidate = e.sharers.without(core);
        e.sharers = CoreSet::only(core);
        e.owner = Some(core as u16);
        invalidate
    }

    /// Core `core` writes `line` under the write-update protocol: the
    /// other sharers receive the new data and *stay* sharers. Returns
    /// `(peers_to_update, previous_dirty_owner)` — the previous owner (if
    /// any, and not the writer) sources the line cache-to-cache on a
    /// write miss.
    pub fn write_update(&mut self, line: u64, core: usize) -> (CoreSet, Option<usize>) {
        let e = self.entries.entry(line).or_default();
        let prev_owner = e.owner.map(usize::from).filter(|&o| o != core);
        let peers = e.sharers.without(core);
        e.sharers.insert(core);
        e.owner = Some(core as u16);
        (peers, prev_owner)
    }

    /// Core `core` evicted `line` from its L2: drop it from the sharers and
    /// forget the line when nobody holds it. Returns `true` if the evicting
    /// core was the dirty owner (writeback needed).
    pub fn evict(&mut self, line: u64, core: usize) -> bool {
        let mut was_owner = false;
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers.remove(core);
            if e.owner == Some(core as u16) {
                e.owner = None;
                was_owner = true;
            }
            if e.sharers.is_empty() {
                self.entries.remove(&line);
            }
        }
        was_owner
    }

    /// Current sharers of a line (diagnostics/tests).
    pub fn sharers(&self, line: u64) -> CoreSet {
        self.entries
            .get(&line)
            .map_or(CoreSet::EMPTY, |e| e.sharers)
    }

    /// Current owner, if dirty-owned.
    pub fn owner(&self, line: u64) -> Option<usize> {
        self.entries
            .get(&line)
            .and_then(|e| e.owner)
            .map(usize::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_writer_invariant() {
        let mut d = Directory::new();
        assert_eq!(d.read(10, 0), ReadSource::Below);
        assert_eq!(d.read(10, 1), ReadSource::SharedClean);
        // Core 2 writes: both sharers must be invalidated.
        let inval = d.write(10, 2);
        assert_eq!(inval, CoreSet::of(&[0, 1]));
        assert_eq!(d.owner(10), Some(2));
        assert_eq!(d.sharers(10), CoreSet::only(2));
    }

    #[test]
    fn dirty_owner_services_reads() {
        let mut d = Directory::new();
        d.write(42, 3);
        assert_eq!(d.read(42, 0), ReadSource::RemoteOwner(3));
        // After the transfer both share it cleanly.
        assert_eq!(d.owner(42), None);
        assert_eq!(d.sharers(42), CoreSet::of(&[0, 3]));
    }

    #[test]
    fn eviction_cleans_up() {
        let mut d = Directory::new();
        d.read(7, 0);
        d.read(7, 1);
        assert!(!d.evict(7, 0), "clean eviction");
        assert_eq!(d.sharers(7), CoreSet::only(1));
        assert!(!d.is_empty());
        d.evict(7, 1);
        assert!(d.is_empty(), "last sharer gone → entry dropped");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut d = Directory::new();
        d.write(9, 5);
        assert!(d.evict(9, 5));
        assert!(d.is_empty());
    }

    #[test]
    fn write_by_sole_sharer_invalidates_nobody() {
        let mut d = Directory::new();
        d.read(1, 4);
        assert!(d.write(1, 4).is_empty());
    }

    #[test]
    fn cores_beyond_word_boundaries_are_tracked() {
        // Regression guard for the u32 mask this replaced: core ids 32+
        // silently aliased (1u32 << 33 panics or wraps). The widened set
        // must hold the full 0..256 range.
        let mut d = Directory::new();
        for core in [0usize, 31, 32, 63, 64, 127, 128, 255] {
            d.read(99, core);
        }
        assert_eq!(d.sharers(99).count(), 8);
        let inval = d.write(99, 255);
        assert_eq!(inval.count(), 7);
        assert!(inval.contains(64) && inval.contains(128) && !inval.contains(255));
        assert_eq!(
            inval.iter().collect::<Vec<_>>(),
            vec![0, 31, 32, 63, 64, 127, 128]
        );
        assert_eq!(d.owner(99), Some(255));
    }

    #[test]
    fn write_update_keeps_sharers_and_transfers_ownership() {
        let mut d = Directory::new();
        d.read(5, 0);
        d.read(5, 1);
        let (peers, prev) = d.write_update(5, 2);
        assert_eq!(
            peers,
            CoreSet::of(&[0, 1]),
            "peers get updates, not invalidations"
        );
        assert_eq!(prev, None, "no dirty owner yet");
        assert_eq!(d.sharers(5), CoreSet::of(&[0, 1, 2]));
        assert_eq!(d.owner(5), Some(2));
        // A second writer: previous owner sources the data, everyone stays.
        let (peers, prev) = d.write_update(5, 0);
        assert_eq!(peers, CoreSet::of(&[1, 2]));
        assert_eq!(prev, Some(2));
        assert_eq!(d.sharers(5).count(), 3);
    }

    #[test]
    fn read_keep_owner_does_not_downgrade() {
        let mut d = Directory::new();
        d.write(6, 3);
        assert_eq!(d.read_keep_owner(6, 1), ReadSource::RemoteOwner(3));
        assert_eq!(d.owner(6), Some(3), "owner keeps the dirty line");
        assert_eq!(d.sharers(6), CoreSet::of(&[1, 3]));
    }
}
