//! MESI directory tracking which private L2s hold each line.
//!
//! The directory covers only lines resident in some L2 (the L2s are small,
//! so the map stays bounded); it is consulted on every L2 miss and on every
//! store that needs ownership.

use std::collections::HashMap;

/// Directory entry for one line: which cores' L2s hold it, and whether one
/// of them owns it dirty.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirEntry {
    /// Bitmask of cores holding the line.
    pub sharers: u32,
    /// Core owning the line in Modified state, if any.
    pub owner: Option<u8>,
}

/// Outcome of a directory read request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadSource {
    /// No L2 holds it — fetch from L3/memory.
    Below,
    /// A peer L2 holds it dirty; cache-to-cache transfer (and the owner
    /// downgrades to Shared).
    RemoteOwner(u8),
    /// One or more peers hold it clean; data still comes from below, the
    /// requester joins the sharers.
    SharedClean,
}

/// The MESI directory.
#[derive(Debug, Default)]
pub struct Directory {
    entries: HashMap<u64, DirEntry>,
}

impl Directory {
    /// Creates an empty directory.
    pub fn new() -> Directory {
        Directory::default()
    }

    /// Number of tracked lines (bounded by total L2 capacity).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no lines are tracked.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Core `core` reads `line` (L2 miss): updates sharers and reports
    /// where the data comes from.
    pub fn read(&mut self, line: u64, core: u8) -> ReadSource {
        let e = self.entries.entry(line).or_default();
        let src = if let Some(owner) = e.owner {
            if owner != core {
                e.owner = None; // owner downgrades to Shared
                ReadSource::RemoteOwner(owner)
            } else {
                ReadSource::Below // shouldn't happen (owner re-reading)
            }
        } else if e.sharers & !(1 << core) != 0 {
            ReadSource::SharedClean
        } else {
            ReadSource::Below
        };
        e.sharers |= 1 << core;
        src
    }

    /// Core `core` writes `line`: all other sharers must be invalidated.
    /// Returns the bitmask of cores that need an invalidation probe.
    pub fn write(&mut self, line: u64, core: u8) -> u32 {
        let e = self.entries.entry(line).or_default();
        let invalidate = e.sharers & !(1 << core);
        e.sharers = 1 << core;
        e.owner = Some(core);
        invalidate
    }

    /// Core `core` evicted `line` from its L2: drop it from the sharers and
    /// forget the line when nobody holds it. Returns `true` if the evicting
    /// core was the dirty owner (writeback needed).
    pub fn evict(&mut self, line: u64, core: u8) -> bool {
        let mut was_owner = false;
        if let Some(e) = self.entries.get_mut(&line) {
            e.sharers &= !(1 << core);
            if e.owner == Some(core) {
                e.owner = None;
                was_owner = true;
            }
            if e.sharers == 0 {
                self.entries.remove(&line);
            }
        }
        was_owner
    }

    /// Current sharers of a line (diagnostics/tests).
    pub fn sharers(&self, line: u64) -> u32 {
        self.entries.get(&line).map_or(0, |e| e.sharers)
    }

    /// Current owner, if dirty-owned.
    pub fn owner(&self, line: u64) -> Option<u8> {
        self.entries.get(&line).and_then(|e| e.owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_writer_invariant() {
        let mut d = Directory::new();
        assert_eq!(d.read(10, 0), ReadSource::Below);
        assert_eq!(d.read(10, 1), ReadSource::SharedClean);
        // Core 2 writes: both sharers must be invalidated.
        let inval = d.write(10, 2);
        assert_eq!(inval, 0b011);
        assert_eq!(d.owner(10), Some(2));
        assert_eq!(d.sharers(10), 0b100);
    }

    #[test]
    fn dirty_owner_services_reads() {
        let mut d = Directory::new();
        d.write(42, 3);
        assert_eq!(d.read(42, 0), ReadSource::RemoteOwner(3));
        // After the transfer both share it cleanly.
        assert_eq!(d.owner(42), None);
        assert_eq!(d.sharers(42), 0b1001);
    }

    #[test]
    fn eviction_cleans_up() {
        let mut d = Directory::new();
        d.read(7, 0);
        d.read(7, 1);
        assert!(!d.evict(7, 0), "clean eviction");
        assert_eq!(d.sharers(7), 0b10);
        assert!(!d.is_empty());
        d.evict(7, 1);
        assert!(d.is_empty(), "last sharer gone → entry dropped");
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut d = Directory::new();
        d.write(9, 5);
        assert!(d.evict(9, 5));
        assert!(d.is_empty());
    }

    #[test]
    fn write_by_sole_sharer_invalidates_nobody() {
        let mut d = Directory::new();
        d.read(1, 4);
        assert_eq!(d.write(1, 4), 0);
    }
}
