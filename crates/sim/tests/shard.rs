//! Integration tests for the sharded epoch-synchronized simulator:
//! worker-count invariance (the determinism contract), trace-stream
//! invariance, protocol selection, and synchronization under sharding.

use memsim::record::Recorder;
use memsim::trace::{Instr, StridedSource, TraceSource};
use memsim::{
    CoherenceProtocol, ConfigError, ShardedSimulator, SimStats, Simulator, StallKind, SystemConfig,
};

fn run_sharded<T: TraceSource + Clone + Send>(
    cfg: &SystemConfig,
    trace: T,
    workers: usize,
    instructions: u64,
) -> SimStats {
    let mut sim = ShardedSimulator::new(cfg.clone(), trace, workers);
    sim.run(instructions)
}

#[test]
fn worker_count_invariance_is_bitwise() {
    // The headline determinism contract: 1, 2 and 8 shard workers produce
    // the same SimStats bit for bit. Explicit worker counts are honored
    // regardless of host parallelism, so this exercises the real parallel
    // drain path even on a single-CPU host.
    let cfg = SystemConfig::many_core(16);
    let mk = || StridedSource::with_seed(cfg.n_threads(), 0.3, 256 << 10, 42);
    let s1 = run_sharded(&cfg, mk(), 1, 30_000);
    let s2 = run_sharded(&cfg, mk(), 2, 30_000);
    let s8 = run_sharded(&cfg, mk(), 8, 30_000);
    assert_eq!(s1, s2);
    assert_eq!(s1, s8);
    assert_eq!(s1.digest(), s8.digest());
    assert!(s1.instructions >= 30_000);
    assert!(s1.counts.mem_reads > 0, "workload must reach memory");
}

#[test]
fn worker_count_invariance_holds_on_small_configs_too() {
    // 8 cores is below the auto-parallel threshold, but explicit worker
    // counts still shard it — and must still agree with the inline path.
    let cfg = SystemConfig::with_sram_l3();
    let mk = || StridedSource::with_seed(cfg.n_threads(), 0.4, 64 << 10, 7);
    let s1 = run_sharded(&cfg, mk(), 1, 20_000);
    let s4 = run_sharded(&cfg, mk(), 4, 20_000);
    assert_eq!(s1, s4);
}

#[test]
fn recorded_streams_match_across_worker_counts() {
    // Satellite regression for per-core rng streams: every thread's
    // *instruction stream* (not just the aggregate stats) is identical at
    // 1 and 8 shards. Each actor clones the Recorder, so core c's clone
    // captures exactly the streams of core c's threads.
    let cfg = SystemConfig::many_core(16);
    let n = cfg.n_threads();
    let tpc = n / 16;
    let mk = || Recorder::new(StridedSource::with_seed(n, 0.3, 64 << 10, 9), n);
    let mut sim1 = ShardedSimulator::new(cfg.clone(), mk(), 1);
    sim1.run(20_000);
    let mut sim8 = ShardedSimulator::new(cfg.clone(), mk(), 8);
    sim8.run(20_000);
    let rec1 = sim1.into_trace_sources();
    let rec8 = sim8.into_trace_sources();
    assert_eq!(rec1.len(), 16);
    let mut compared = 0usize;
    for core in 0..16 {
        let lens: Vec<usize> = (0..n).map(|tid| rec1[core].recorded(tid)).collect();
        for (tid, &len) in lens.iter().enumerate() {
            assert_eq!(
                len,
                rec8[core].recorded(tid),
                "stream length diverged for core {core} tid {tid}"
            );
            // Only the owning core's threads are ever polled.
            if tid / tpc != core {
                assert_eq!(len, 0, "core {core} polled foreign tid {tid}");
            }
        }
        let mut t1 = rec1[core].clone().into_trace();
        let mut t8 = rec8[core].clone().into_trace();
        for lt in 0..tpc {
            let tid = core * tpc + lt;
            for i in 0..lens[tid] {
                assert_eq!(
                    t1.next(tid),
                    t8.next(tid),
                    "instruction {i} diverged for tid {tid}"
                );
                compared += 1;
            }
        }
    }
    assert!(compared > 10_000, "compared only {compared} instructions");
}

/// All threads hammer a small shared region — maximal cross-core
/// coherence traffic. Per-thread state only, so clones replay each
/// thread's stream identically regardless of sharding.
#[derive(Clone)]
struct SharedTrace {
    state: Vec<u64>,
}

impl SharedTrace {
    fn new(n_threads: usize) -> SharedTrace {
        SharedTrace {
            state: (0..n_threads as u64)
                .map(|t| memsim::rng::splitmix64(t ^ 0xD1A6_0000) | 1)
                .collect(),
        }
    }
}

impl TraceSource for SharedTrace {
    fn next(&mut self, tid: usize) -> Instr {
        let s = &mut self.state[tid];
        *s ^= *s << 13;
        *s ^= *s >> 7;
        *s ^= *s << 17;
        let r = *s;
        let addr = ((r >> 8) % (8 << 10)) & !63;
        match r % 4 {
            0 => Instr::Store(addr),
            1 => Instr::Load(addr),
            _ => Instr::Fp,
        }
    }
}

#[test]
fn dragon_updates_where_mesi_invalidates() {
    // Protocol smoke: the same sharing-heavy workload drives write-update
    // traffic under Dragon and write-invalidate traffic under MESI.
    let mut mesi = SystemConfig::many_core(16);
    mesi.protocol = CoherenceProtocol::Mesi;
    let mut dragon = SystemConfig::many_core(16);
    dragon.protocol = CoherenceProtocol::Dragon;
    let n = mesi.n_threads();

    let mut sim_m = ShardedSimulator::new(mesi, SharedTrace::new(n), 2);
    sim_m.run(20_000);
    assert!(sim_m.info().invalidations > 0, "MESI must invalidate");
    assert_eq!(sim_m.info().updates, 0, "MESI must never update in place");

    let mut sim_d = ShardedSimulator::new(dragon, SharedTrace::new(n), 2);
    sim_d.run(20_000);
    assert!(sim_d.info().updates > 0, "Dragon must push updates");
    assert_eq!(sim_d.info().invalidations, 0, "Dragon must not invalidate");
}

#[test]
fn dragon_is_also_worker_count_invariant() {
    let mut cfg = SystemConfig::many_core(16);
    cfg.protocol = CoherenceProtocol::Dragon;
    let n = cfg.n_threads();
    let s1 = run_sharded(&cfg, SharedTrace::new(n), 1, 15_000);
    let s4 = run_sharded(&cfg, SharedTrace::new(n), 4, 15_000);
    assert_eq!(s1, s4);
}

#[test]
fn serial_engine_rejects_dragon_sharded_accepts_it() {
    let mut cfg = SystemConfig::with_sram_l3();
    cfg.protocol = CoherenceProtocol::Dragon;
    let n = cfg.n_threads();
    let err = Simulator::try_new(cfg.clone(), StridedSource::new(n, 0.3, 1 << 20)).err();
    assert_eq!(err, Some(ConfigError::ProtocolNeedsShardedEngine));
    assert!(ShardedSimulator::try_new(cfg, StridedSource::new(n, 0.3, 1 << 20), 1).is_ok());
}

#[test]
fn sharded_tracks_the_serial_reference_on_compute_only_work() {
    // With no memory operations there is no cross-shard traffic at all:
    // phase A is cycle-for-cycle the serial engine's issue logic, so IPC
    // must land within a whisker of the reference (stopping granularity —
    // epoch boundary vs. cycle — accounts for the slack).
    let cfg = SystemConfig::with_sram_l3();
    let n = cfg.n_threads();
    let mut legacy = Simulator::new(cfg.clone(), StridedSource::new(n, 0.0, 1 << 20));
    let ref_stats = legacy.run(100_000);
    let stats = run_sharded(&cfg, StridedSource::new(n, 0.0, 1 << 20), 2, 100_000);
    assert_eq!(stats.counts.mem_reads, 0);
    let (a, b) = (stats.ipc(), ref_stats.ipc());
    assert!(
        (a - b).abs() / b < 0.05,
        "sharded ipc {a} vs serial ipc {b}"
    );
}

/// Every thread hits the global barrier every 40 instructions.
#[derive(Clone)]
struct BarrierEvery(Vec<u64>);

impl TraceSource for BarrierEvery {
    fn next(&mut self, tid: usize) -> Instr {
        self.0[tid] += 1;
        if self.0[tid].is_multiple_of(40) {
            Instr::Barrier
        } else {
            Instr::Fp
        }
    }
}

#[test]
fn barriers_synchronize_across_shards() {
    let cfg = SystemConfig::many_core(16);
    let n = cfg.n_threads();
    let s1 = run_sharded(&cfg, BarrierEvery(vec![0; n]), 1, 20_000);
    let s4 = run_sharded(&cfg, BarrierEvery(vec![0; n]), 4, 20_000);
    assert_eq!(s1, s4);
    assert!(s1.attributed(StallKind::Barrier) > 0);
    assert!(s1.instructions >= 20_000);
}

/// Threads take a global lock, hold it for a few instructions, release.
#[derive(Clone)]
struct LockLoop(Vec<u64>);

impl TraceSource for LockLoop {
    fn next(&mut self, tid: usize) -> Instr {
        self.0[tid] += 1;
        match self.0[tid] % 16 {
            1 => Instr::Lock(0),
            5 => Instr::Unlock(0),
            _ => Instr::Other,
        }
    }
}

#[test]
fn locks_serialize_across_shards() {
    let cfg = SystemConfig::many_core(16);
    let n = cfg.n_threads();
    let s1 = run_sharded(&cfg, LockLoop(vec![0; n]), 1, 10_000);
    let s4 = run_sharded(&cfg, LockLoop(vec![0; n]), 4, 10_000);
    assert_eq!(s1, s4);
    assert!(s1.attributed(StallKind::Lock) > 0);
}

#[test]
fn many_core_configs_run_at_scale() {
    // 64 cores (256 threads), briefly, at 2 workers: the engine holds up
    // at the scale the config constructor targets.
    let cfg = SystemConfig::many_core(64);
    let n = cfg.n_threads();
    let trace = StridedSource::with_seed(n, 0.2, 32 << 10, 3);
    let mut sim = ShardedSimulator::new(cfg, trace, 2);
    let stats = sim.run(50_000);
    assert!(stats.instructions >= 50_000);
    assert!(sim.info().epochs > 0);
    assert!(sim.info().messages > 0);
}
