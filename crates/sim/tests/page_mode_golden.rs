//! Golden timing test for the page-mode DRAM L3 interface.
//!
//! Pins the tRCD / CAS / tRP decomposition of every row-buffer outcome so a
//! timing regression shows up as an exact cycle diff, not a drifting
//! average:
//!
//! * cold bank (no open row): activate + column        → tRCD + CAS
//! * open-row hit:            column only              → CAS
//! * row conflict:            precharge + activate + column → tRP + tRCD + CAS

use memsim::config::{CacheConfig, L3Config, L3Interface, L3PageTiming, SetMapping};
use memsim::l3::L3;

const T_RCD: u64 = 8;
const T_CAS: u64 = 6;
const T_RP: u64 = 7;

fn page_mode_cfg() -> L3Config {
    L3Config {
        bank: CacheConfig {
            capacity_bytes: 12 << 20,
            line_bytes: 64,
            associativity: 12,
            access_cycles: 16,
            cycle_cycles: 5,
            interleave_cycles: 1,
            n_subbanks: 64,
        },
        n_banks: 8,
        xbar_cycles: 2,
        is_dram: true,
        set_mapping: SetMapping::SetsPerPage,
        interface: L3Interface::PageMode,
        page_timing: Some(L3PageTiming {
            t_rcd: T_RCD,
            t_cas: T_CAS,
            t_rp: T_RP,
        }),
    }
}

/// Address of the n-th consecutive line that maps to bank 0 (lines are
/// interleaved across the 8 banks at line granularity).
fn bank0_line(n: u64) -> u64 {
    n * 8 * 64
}

#[test]
fn cold_access_pays_activate_plus_column() {
    let mut l3 = L3::try_new(page_mode_cfg()).unwrap();
    let (done, page_hit) = l3.reserve_detailed(bank0_line(0), 1_000);
    assert!(!page_hit, "first touch cannot hit an open row");
    assert_eq!(done, 1_000 + T_RCD + T_CAS);
}

#[test]
fn open_row_hit_pays_column_only() {
    let mut l3 = L3::try_new(page_mode_cfg()).unwrap();
    let (a, _) = l3.reserve_detailed(bank0_line(0), 1_000);
    // Consecutive sets share a page under SetsPerPage (Figure 3(a)), so the
    // next line in the same bank lands in the same open row.
    let (b, hit) = l3.reserve_detailed(bank0_line(1), a);
    assert!(hit, "consecutive set must be an open-row hit");
    assert_eq!(b, a + T_CAS, "open-row hit pays exactly CAS");
}

#[test]
fn row_conflict_pays_precharge_activate_column() {
    let cfg = page_mode_cfg();
    let sets = cfg.bank.sets();
    let sets_per_subbank = sets / u64::from(cfg.bank.n_subbanks);
    let mut l3 = L3::try_new(cfg).unwrap();
    let (a, _) = l3.reserve_detailed(bank0_line(0), 1_000);
    // A line one full subbank-row-group further up wraps back to the same
    // subbank (way aliasing) with a different row id: a row conflict.
    let conflict_line = bank0_line(sets_per_subbank * sets);
    let (c, hit) = l3.reserve_detailed(conflict_line, a);
    assert!(!hit);
    assert_eq!(
        c,
        a + T_RP + T_RCD + T_CAS,
        "conflict pays precharge + activate + column"
    );
}

#[test]
fn hit_miss_sequence_matches_golden_schedule() {
    // One deterministic interleaving exercising all three outcomes
    // back-to-back on a single subbank, with the exact completion cycle of
    // every step pinned.
    let cfg = page_mode_cfg();
    let sets = cfg.bank.sets();
    let sets_per_subbank = sets / u64::from(cfg.bank.n_subbanks);
    let conflict_stride = sets_per_subbank * sets;
    let mut l3 = L3::try_new(cfg).unwrap();

    let mut now = 10_000;
    // (line index, expected page_hit, expected incremental latency)
    let steps = [
        (0, false, T_RCD + T_CAS), // subbank 0 cold: activate + column
        (sets_per_subbank, false, T_RCD + T_CAS), // subbank 1, cold
        (0, true, T_CAS),          // subbank 0 row 0 still open: hit
        (conflict_stride, false, T_RP + T_RCD + T_CAS), // conflict
        (conflict_stride, true, T_CAS), // new row now open: hit
        (0, false, T_RP + T_RCD + T_CAS), // conflict back to row 0
    ];
    for (i, (line, want_hit, want_lat)) in steps.into_iter().enumerate() {
        let (done, hit) = l3.reserve_detailed(bank0_line(line), now);
        assert_eq!(hit, want_hit, "step {i} hit/miss");
        assert_eq!(done, now + want_lat, "step {i} latency decomposition");
        now = done;
    }
}
