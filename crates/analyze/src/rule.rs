//! The lint-rule abstraction: every diagnostic the engine can emit comes
//! from a [`Rule`] or [`RunRule`] registered in
//! [`crate::registry::RuleRegistry`].

use crate::context::LintContext;
use crate::run::RunContext;
use cactid_core::lint::{Report, Severity};

/// The validation stage a rule belongs to.
///
/// The object stages form a pipeline: spec rules need only a
/// [`cactid_core::MemorySpec`] (and the Table-1 cell parameters it resolves
/// to), organization rules additionally need an [`cactid_core::OrgParams`],
/// and solution rules an assembled [`cactid_core::Solution`]. The `Run`
/// stage sits outside that pipeline: its rules ([`RunRule`]) analyze a
/// completed batch run — a whole JSONL record set — rather than one object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Checks on the input specification and its resolved cell technology.
    Spec,
    /// Checks on one candidate array organization.
    Organization,
    /// Checks on one assembled solution.
    Solution,
    /// Cross-record checks on a completed batch run (`CD01xx`).
    Run,
}

impl Stage {
    /// The object stages, in pipeline order (excludes [`Stage::Run`],
    /// which operates on record sets, not objects).
    pub const OBJECT: &'static [Stage] = &[Stage::Spec, Stage::Organization, Stage::Solution];

    /// All stages, object pipeline first.
    pub const ALL: &'static [Stage] = &[
        Stage::Spec,
        Stage::Organization,
        Stage::Solution,
        Stage::Run,
    ];

    /// Stable lowercase name used in the JSON diagnostics schema and the
    /// registry listing.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Spec => "spec",
            Stage::Organization => "organization",
            Stage::Solution => "solution",
            Stage::Run => "run",
        }
    }
}

/// One lint rule: a stable code, the invariant it enforces, and a check.
///
/// A rule must be *total*: `check` never panics, even on wildly
/// inconsistent inputs (that is the point — the engine is what reports
/// inconsistencies). When the data a rule needs is absent from the context
/// (e.g. a solution rule run without a solution), the rule emits nothing.
///
/// Rules are `Send + Sync` so one [`crate::Analyzer`] can be shared across
/// the worker threads of a batch sweep (the `cactid-explore` engine lints
/// candidates from every thread through a single shared reference).
pub trait Rule: Send + Sync {
    /// Stable diagnostic code, `CD0001`–`CD0022`.
    fn code(&self) -> &'static str;

    /// The stage whose data this rule examines.
    fn stage(&self) -> Stage;

    /// One-line statement of the invariant the rule enforces.
    fn summary(&self) -> &'static str;

    /// The paper section (or table) the invariant comes from, e.g.
    /// `"§2.3.2"`.
    fn paper_ref(&self) -> &'static str;

    /// The severity the rule's primary finding carries before any
    /// `--allow`/`--warn`/`--deny` override. Rules may emit secondary
    /// findings below this level (never above it).
    fn default_severity(&self) -> Severity;

    /// Checks the invariant, appending any findings to `report`.
    fn check(&self, ctx: &LintContext<'_>, report: &mut Report);
}

/// A cross-record rule over a completed batch run (`CD01xx`): same
/// metadata contract as [`Rule`], but the check sees the whole parsed
/// record set ([`RunContext`]) instead of one object. Run rules always
/// report at [`Stage::Run`].
pub trait RunRule: Send + Sync {
    /// Stable diagnostic code, `CD0101` and up.
    fn code(&self) -> &'static str;

    /// One-line statement of the invariant the rule enforces.
    fn summary(&self) -> &'static str;

    /// The paper section the invariant comes from.
    fn paper_ref(&self) -> &'static str;

    /// The severity the rule's primary finding carries by default.
    fn default_severity(&self) -> Severity;

    /// Checks the record set, appending any findings to `report`.
    fn check(&self, run: &RunContext, report: &mut Report);
}
