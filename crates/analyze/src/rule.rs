//! The lint-rule abstraction: every diagnostic the engine can emit comes
//! from a [`Rule`] registered in [`crate::rules::all`].

use crate::context::LintContext;
use cactid_core::lint::Report;

/// The validation stage a rule belongs to.
///
/// Stages form a pipeline: spec rules need only a [`cactid_core::MemorySpec`]
/// (and the Table-1 cell parameters it resolves to), organization rules
/// additionally need an [`cactid_core::OrgParams`], and solution rules an
/// assembled [`cactid_core::Solution`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Checks on the input specification and its resolved cell technology.
    Spec,
    /// Checks on one candidate array organization.
    Organization,
    /// Checks on one assembled solution.
    Solution,
}

impl Stage {
    /// All stages, in pipeline order.
    pub const ALL: &'static [Stage] = &[Stage::Spec, Stage::Organization, Stage::Solution];
}

/// One lint rule: a stable code, the invariant it enforces, and a check.
///
/// A rule must be *total*: `check` never panics, even on wildly
/// inconsistent inputs (that is the point — the engine is what reports
/// inconsistencies). When the data a rule needs is absent from the context
/// (e.g. a solution rule run without a solution), the rule emits nothing.
///
/// Rules are `Send + Sync` so one [`crate::Analyzer`] can be shared across
/// the worker threads of a batch sweep (the `cactid-explore` engine lints
/// candidates from every thread through a single shared reference).
pub trait Rule: Send + Sync {
    /// Stable diagnostic code, `CD0001`–`CD0020`.
    fn code(&self) -> &'static str;

    /// The stage whose data this rule examines.
    fn stage(&self) -> Stage;

    /// One-line statement of the invariant the rule enforces.
    fn summary(&self) -> &'static str;

    /// The paper section (or table) the invariant comes from, e.g.
    /// `"§2.3.2"`.
    fn paper_ref(&self) -> &'static str;

    /// Checks the invariant, appending any findings to `report`.
    fn check(&self, ctx: &LintContext<'_>, report: &mut Report);
}
