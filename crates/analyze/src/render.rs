//! Rustc-style text rendering of diagnostic reports.
//!
//! ```text
//! error[CD0015]: tRCD (13.10 ns) + CAS (15.90 ns) = 29.00 ns exceeds ...
//!   --> solution.main_memory.timing.cas_latency
//!   = note: invariant: tRCD + CAS ≤ access, tRC = tRAS + tRP, ... (paper §2.3.2)
//!   = help: set solution.access_time = 2.9000e-8
//! ```

use crate::analyzer::Analyzer;
use cactid_core::lint::Report;
use std::fmt::Write as _;

/// Renders a full report in rustc style; rule summaries and paper
/// references are looked up in `analyzer`'s registry. Ends with a summary
/// line; returns an empty string for an empty report.
pub fn render(analyzer: &Analyzer, report: &Report) -> String {
    let mut out = String::new();
    for d in report {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        let _ = writeln!(out, "  --> {}", d.location);
        if let Some(rule) = analyzer.rule(d.code) {
            let _ = writeln!(
                out,
                "  = note: invariant: {} (paper {})",
                rule.summary(),
                rule.paper_ref()
            );
        }
        if let Some(s) = &d.suggestion {
            let _ = writeln!(out, "  = help: {s}");
        }
        out.push('\n');
    }
    if !report.is_empty() {
        let _ = writeln!(out, "{}", summary_line(report));
    }
    out
}

/// The one-line verdict: `error: 2 errors, 1 warning emitted` or
/// `lint: no errors, 1 warning emitted` or `lint: clean`.
pub fn summary_line(report: &Report) -> String {
    let errors = report.error_count();
    let warns = report.warn_count();
    let plural = |n: usize, word: &str| {
        if n == 1 {
            format!("1 {word}")
        } else {
            format!("{n} {word}s")
        }
    };
    if errors > 0 {
        let mut s = format!("error: {} ", plural(errors, "error"));
        if warns > 0 {
            let _ = write!(s, "and {} ", plural(warns, "warning"));
        }
        s.push_str("emitted");
        s
    } else if warns > 0 {
        format!("lint: no errors, {} emitted", plural(warns, "warning"))
    } else {
        "lint: clean".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::lint::{Diagnostic, Location};

    #[test]
    fn renders_code_location_note_and_help() {
        let analyzer = Analyzer::new();
        let mut report = Report::new();
        report.push(
            Diagnostic::error(
                "CD0007",
                Location::spec("kind.prefetch"),
                "prefetch of 4 bits per pin cannot sustain a burst of 8 beats",
            )
            .with_suggestion(Location::spec("kind.prefetch"), "8"),
        );
        let text = render(&analyzer, &report);
        assert!(text.contains("error[CD0007]:"), "{text}");
        assert!(text.contains("--> spec.kind.prefetch"), "{text}");
        assert!(text.contains("= note: invariant:"), "{text}");
        assert!(text.contains("(paper §2.1)"), "{text}");
        assert!(
            text.contains("= help: set spec.kind.prefetch = 8"),
            "{text}"
        );
        assert!(text.contains("error: 1 error emitted"), "{text}");
    }

    #[test]
    fn summary_lines_cover_all_cases() {
        let mut r = Report::new();
        assert_eq!(summary_line(&r), "lint: clean");
        r.push(Diagnostic::warn(
            "CD0002",
            Location::spec("block_bytes"),
            "m",
        ));
        assert_eq!(summary_line(&r), "lint: no errors, 1 warning emitted");
        r.push(Diagnostic::error(
            "CD0001",
            Location::spec("capacity_bytes"),
            "m",
        ));
        r.push(Diagnostic::error("CD0003", Location::spec("n_banks"), "m"));
        assert_eq!(summary_line(&r), "error: 2 errors and 1 warning emitted");
    }

    #[test]
    fn empty_report_renders_empty() {
        assert!(render(&Analyzer::new(), &Report::new()).is_empty());
    }
}
