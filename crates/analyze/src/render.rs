//! Rendering of diagnostic reports: rustc-style text and machine-readable
//! JSON.
//!
//! ```text
//! error[CD0015]: tRCD (13.10 ns) + CAS (15.90 ns) = 29.00 ns exceeds ...
//!   --> solution.main_memory.timing.cas_latency
//!   = note: invariant: tRCD + CAS ≤ access, tRC = tRAS + tRP, ... (paper §2.3.2)
//!   = help: set solution.access_time = 2.9000e-8
//! ```
//!
//! [`render_json`] emits the same information as JSONL — one object per
//! diagnostic, schema documented on the function — for consumption by
//! scripts and CI gates.

use crate::analyzer::Analyzer;
use crate::json::escape;
use cactid_core::lint::{Diagnostic, Location, Report};
use std::fmt::Write as _;

/// Renders a full report in rustc style; rule summaries and paper
/// references are looked up in `analyzer`'s registry. Ends with a summary
/// line; returns an empty string for an empty report.
pub fn render(analyzer: &Analyzer, report: &Report) -> String {
    let mut out = String::new();
    for d in report {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        let _ = writeln!(out, "  --> {}", d.location);
        if let Some(meta) = analyzer.registry().meta(d.code) {
            let _ = writeln!(
                out,
                "  = note: invariant: {} (paper {})",
                meta.summary, meta.paper_ref
            );
        }
        if let Some(s) = &d.suggestion {
            let _ = writeln!(out, "  = help: {s}");
        }
        out.push('\n');
    }
    if !report.is_empty() {
        let _ = writeln!(out, "{}", summary_line(report));
    }
    out
}

fn location_json(loc: &Location) -> String {
    format!(
        "{{\"object\":\"{}\",\"field\":\"{}\",\"path\":\"{}\"}}",
        loc.object.as_str(),
        escape(loc.field),
        loc
    )
}

fn diagnostic_json(analyzer: &Analyzer, d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"location\":{},\"message\":\"{}\"",
        d.code,
        d.severity.as_str(),
        location_json(&d.location),
        escape(&d.message),
    );
    match &d.suggestion {
        Some(s) => {
            let _ = write!(
                out,
                ",\"suggestion\":{{\"field\":\"{}\",\"value\":\"{}\"}}",
                s.field,
                escape(&s.value)
            );
        }
        None => out.push_str(",\"suggestion\":null"),
    }
    match analyzer.registry().meta(d.code) {
        Some(m) => {
            let _ = write!(
                out,
                ",\"rule\":{{\"stage\":\"{}\",\"default_severity\":\"{}\",\
                 \"summary\":\"{}\",\"paper\":\"{}\"}}",
                m.stage.name(),
                m.default_severity.as_str(),
                escape(m.summary),
                escape(m.paper_ref)
            );
        }
        None => out.push_str(",\"rule\":null"),
    }
    out.push('}');
    out
}

/// Renders a report as machine-readable JSONL: one JSON object per
/// diagnostic, in report order, newline-terminated. An empty report
/// renders as an empty string.
///
/// Schema (stable; additions only):
///
/// ```json
/// {"code":"CD0001",
///  "severity":"error",
///  "location":{"object":"spec","field":"capacity_bytes","path":"spec.capacity_bytes"},
///  "message":"...",
///  "suggestion":{"field":"spec.capacity_bytes","value":"1048576"} | null,
///  "rule":{"stage":"spec","default_severity":"error","summary":"...","paper":"§2.1"} | null}
/// ```
///
/// `severity` and `rule.default_severity` take the
/// [`cactid_core::Severity`] names (`info`/`warning`/`error`);
/// `location.object` the [`cactid_core::lint::LintObject`] names
/// (`spec`/`organization`/`solution`/`run`); `rule` is `null` only for
/// diagnostics whose code is absent from the registry.
pub fn render_json(analyzer: &Analyzer, report: &Report) -> String {
    let mut out = String::new();
    for d in report {
        let _ = writeln!(out, "{}", diagnostic_json(analyzer, d));
    }
    out
}

/// The one-line verdict: `error: 2 errors, 1 warning emitted` or
/// `lint: no errors, 1 warning emitted` or `lint: clean`.
pub fn summary_line(report: &Report) -> String {
    let errors = report.error_count();
    let warns = report.warn_count();
    let plural = |n: usize, word: &str| {
        if n == 1 {
            format!("1 {word}")
        } else {
            format!("{n} {word}s")
        }
    };
    if errors > 0 {
        let mut s = format!("error: {} ", plural(errors, "error"));
        if warns > 0 {
            let _ = write!(s, "and {} ", plural(warns, "warning"));
        }
        s.push_str("emitted");
        s
    } else if warns > 0 {
        format!("lint: no errors, {} emitted", plural(warns, "warning"))
    } else {
        "lint: clean".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;
    use cactid_core::lint::{Diagnostic, Location};

    #[test]
    fn renders_code_location_note_and_help() {
        let analyzer = Analyzer::new();
        let mut report = Report::new();
        report.push(
            Diagnostic::error(
                "CD0007",
                Location::spec("kind.prefetch"),
                "prefetch of 4 bits per pin cannot sustain a burst of 8 beats",
            )
            .with_suggestion(Location::spec("kind.prefetch"), "8"),
        );
        let text = render(&analyzer, &report);
        assert!(text.contains("error[CD0007]:"), "{text}");
        assert!(text.contains("--> spec.kind.prefetch"), "{text}");
        assert!(text.contains("= note: invariant:"), "{text}");
        assert!(text.contains("(paper §2.1)"), "{text}");
        assert!(
            text.contains("= help: set spec.kind.prefetch = 8"),
            "{text}"
        );
        assert!(text.contains("error: 1 error emitted"), "{text}");
    }

    #[test]
    fn run_rule_diagnostics_also_get_notes() {
        let analyzer = Analyzer::new();
        let mut report = Report::new();
        report.push(Diagnostic::error(
            "CD0105",
            Location::run("idx"),
            "idx 3 appears twice",
        ));
        let text = render(&analyzer, &report);
        assert!(text.contains("= note: invariant:"), "{text}");
        assert!(text.contains("--> run.idx"), "{text}");
    }

    #[test]
    fn json_rendering_parses_back_with_full_schema() {
        let analyzer = Analyzer::new();
        let mut report = Report::new();
        report.push(
            Diagnostic::error(
                "CD0007",
                Location::spec("kind.prefetch"),
                "a \"quoted\" message",
            )
            .with_suggestion(Location::spec("kind.prefetch"), "8"),
        );
        report.push(Diagnostic::warn("CD0104", Location::run("access_ns"), "m"));
        let text = render_json(&analyzer, &report);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let v = json::parse(lines[0]).unwrap();
        assert_eq!(v.get("code").unwrap().as_str(), Some("CD0007"));
        assert_eq!(v.get("severity").unwrap().as_str(), Some("error"));
        let loc = v.get("location").unwrap();
        assert_eq!(loc.get("object").unwrap().as_str(), Some("spec"));
        assert_eq!(
            loc.get("path").unwrap().as_str(),
            Some("spec.kind.prefetch")
        );
        assert_eq!(
            v.get("message").unwrap().as_str(),
            Some("a \"quoted\" message")
        );
        let sug = v.get("suggestion").unwrap();
        assert_eq!(sug.get("value").unwrap().as_str(), Some("8"));
        let rule = v.get("rule").unwrap();
        assert_eq!(rule.get("stage").unwrap().as_str(), Some("spec"));
        assert_eq!(
            rule.get("default_severity").unwrap().as_str(),
            Some("error")
        );
        let v = json::parse(lines[1]).unwrap();
        assert_eq!(v.get("severity").unwrap().as_str(), Some("warning"));
        assert_eq!(v.get("suggestion"), Some(&json::JsonValue::Null));
        assert_eq!(
            v.get("rule").unwrap().get("stage").unwrap().as_str(),
            Some("run")
        );
    }

    #[test]
    fn unregistered_codes_render_null_rule() {
        let analyzer = Analyzer::new();
        let mut report = Report::new();
        report.push(Diagnostic::info("CD9999", Location::spec("x"), "m"));
        let text = render_json(&analyzer, &report);
        let v = json::parse(text.trim()).unwrap();
        assert_eq!(v.get("rule"), Some(&json::JsonValue::Null));
        assert_eq!(v.get("severity").unwrap().as_str(), Some("info"));
    }

    #[test]
    fn summary_lines_cover_all_cases() {
        let mut r = Report::new();
        assert_eq!(summary_line(&r), "lint: clean");
        r.push(Diagnostic::warn(
            "CD0002",
            Location::spec("block_bytes"),
            "m",
        ));
        assert_eq!(summary_line(&r), "lint: no errors, 1 warning emitted");
        r.push(Diagnostic::error(
            "CD0001",
            Location::spec("capacity_bytes"),
            "m",
        ));
        r.push(Diagnostic::error("CD0003", Location::spec("n_banks"), "m"));
        assert_eq!(summary_line(&r), "error: 2 errors and 1 warning emitted");
    }

    #[test]
    fn empty_report_renders_empty() {
        assert!(render(&Analyzer::new(), &Report::new()).is_empty());
        assert!(render_json(&Analyzer::new(), &Report::new()).is_empty());
    }
}
