//! Prover rules `CD0201`–`CD0204`: metadata carriers for the findings of
//! the `cactid-prove` interval-arithmetic certifier.
//!
//! The prover itself lives in the sibling `cactid-prove` crate — both it
//! and this crate depend only on `cactid-core`, so the certificates cannot
//! be computed *inside* a rule without a dependency cycle. These rules are
//! therefore deliberately no-ops on the run context: the `cactid prove`
//! command produces the diagnostics out-of-band and tags them with these
//! codes, while the registry entries below give each code its stage,
//! summary, paper reference, and default severity — which is what the
//! renderers, the severity-override machinery, and the JSON schema's
//! `rule` object need (an unregistered code would render `rule: null`).

use crate::rule::RunRule;
use crate::run::RunContext;
use cactid_core::lint::{Report, Severity};

/// All prover rules, ordered by code.
pub fn all() -> Vec<Box<dyn RunRule>> {
    vec![
        Box::new(CertificateSoundness),
        Box::new(WindowSatisfiability),
        Box::new(DeadRuleEdge),
        Box::new(CertifiedBoundsEmitted),
    ]
}

/// `CD0201`: a soundness cross-check contradicted a definite abstract
/// verdict, voiding the certificate.
pub struct CertificateSoundness;

impl RunRule for CertificateSoundness {
    fn code(&self) -> &'static str {
        "CD0201"
    }
    fn summary(&self) -> &'static str {
        "every definite abstract prescreen verdict agrees with the concrete \
         closed form at every sampled node of the domain"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, _run: &RunContext, _report: &mut Report) {}
}

/// `CD0202`: a plausibility window is vacuous or clips the whole certified
/// reachable range.
pub struct WindowSatisfiability;

impl RunRule for WindowSatisfiability {
    fn code(&self) -> &'static str {
        "CD0202"
    }
    fn summary(&self) -> &'static str {
        "plausibility windows are satisfiable: non-empty, and not wholly \
         below the certified floor of the reachable metric range"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, _run: &RunContext, _report: &mut Report) {}
}

/// `CD0203`: a window edge is dead — certified unreachable for the spec.
pub struct DeadRuleEdge;

impl RunRule for DeadRuleEdge {
    fn code(&self) -> &'static str {
        "CD0203"
    }
    fn summary(&self) -> &'static str {
        "window edges certified unreachable for a spec are reported, so \
         dead checks are visible instead of silently never firing"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn check(&self, _run: &RunContext, _report: &mut Report) {}
}

/// `CD0204`: certified prescreen bounds were established for the spec's
/// technology domain.
pub struct CertifiedBoundsEmitted;

impl RunRule for CertifiedBoundsEmitted {
    fn code(&self) -> &'static str {
        "CD0204"
    }
    fn summary(&self) -> &'static str {
        "certified prescreen cutoffs (wordline and sense-margin pass/reject \
         regions) established by the interval scan, with cross-check counts"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Info
    }
    fn check(&self, _run: &RunContext, _report: &mut Report) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prover_rules_are_metadata_only() {
        let run = RunContext::parse("");
        let mut report = Report::new();
        for rule in all() {
            rule.check(&run, &mut report);
            assert!(rule.code().starts_with("CD02"));
            assert!(!rule.summary().is_empty());
        }
        assert!(report.is_empty(), "prover rules must not emit inline");
    }

    #[test]
    fn prover_severities_match_the_prover_contract() {
        let expected = [
            ("CD0201", Severity::Error),
            ("CD0202", Severity::Warn),
            ("CD0203", Severity::Info),
            ("CD0204", Severity::Info),
        ];
        let rules = all();
        assert_eq!(rules.len(), expected.len());
        for (rule, (code, sev)) in rules.iter().zip(expected) {
            assert_eq!(rule.code(), code);
            assert_eq!(rule.default_severity(), sev);
        }
    }
}
