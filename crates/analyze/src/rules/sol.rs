//! Solution-stage rules `CD0015`–`CD0022`: DRAM command-timing
//! inequalities, metric sanity, refresh/structure consistency, sense
//! margins, and physical-plausibility windows on assembled solutions.

use crate::context::LintContext;
use crate::rule::{Rule, Stage};
use crate::rules::{approx_eq, approx_ge};
use cactid_core::lint::{Diagnostic, Location, Report, Severity};
use cactid_core::{main_memory, MemoryKind};
use cactid_units::{Joules, Seconds, Watts};

/// All eight solution-stage rules, ordered by code.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DramTimingInequalities),
        Box::new(FiniteMetrics),
        Box::new(RefreshConsistency),
        Box::new(AreaEfficiency),
        Box::new(EnergyOrdering),
        Box::new(SenseMargin),
        Box::new(AccessTimePlausibility),
        Box::new(EnergyPlausibility),
    ]
}

/// `CD0015`: the §2.3.2 DRAM command timings obey their defining
/// inequalities — `tRCD + CAS ≤ access`, `tRC = tRAS + tRP`,
/// `tRAS ≥ tRCD` (the row must stay open through restore), and
/// `0 < tRRD ≤ tRC`.
pub struct DramTimingInequalities;

impl Rule for DramTimingInequalities {
    fn code(&self) -> &'static str {
        "CD0015"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "tRCD + CAS ≤ access, tRC = tRAS + tRP, tRAS ≥ tRCD, 0 < tRRD ≤ tRC"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3.2"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        let Some(mm) = &sol.main_memory else { return };
        let t = &mm.timing;
        for (field, v) in [
            ("timing.t_rcd", t.t_rcd.value()),
            ("timing.cas_latency", t.cas_latency.value()),
            ("timing.t_ras", t.t_ras.value()),
            ("timing.t_rp", t.t_rp.value()),
            ("timing.t_rc", t.t_rc.value()),
        ] {
            if !(v.is_finite() && v > 0.0) {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::main_memory(field),
                    format!("{field} = {v:.3e} s must be positive and finite"),
                ));
                return;
            }
        }
        let readout = t.t_rcd + t.cas_latency;
        if !approx_ge(sol.access_time.value(), readout.value()) {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::main_memory("timing.cas_latency"),
                    format!(
                        "tRCD ({:.2} ns) + CAS ({:.2} ns) = {:.2} ns exceeds the reported \
                         access time of {:.2} ns — data cannot be out before the column \
                         path finishes",
                        t.t_rcd.value() * 1e9,
                        t.cas_latency.value() * 1e9,
                        readout.value() * 1e9,
                        sol.access_time.value() * 1e9
                    ),
                )
                .with_suggestion(
                    Location::solution("access_time"),
                    format!("{:.4e}", readout.value()),
                ),
            );
        }
        if !approx_eq(t.t_rc.value(), (t.t_ras + t.t_rp).value()) {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::main_memory("timing.t_rc"),
                    format!(
                        "tRC ({:.2} ns) ≠ tRAS + tRP ({:.2} ns): the row cycle is the \
                         restore window plus precharge by definition",
                        t.t_rc.value() * 1e9,
                        (t.t_ras + t.t_rp).value() * 1e9
                    ),
                )
                .with_suggestion(
                    Location::main_memory("timing.t_rc"),
                    format!("{:.4e}", (t.t_ras + t.t_rp).value()),
                ),
            );
        }
        if !approx_ge(t.t_ras.value(), t.t_rcd.value()) {
            report.push(Diagnostic::error(
                self.code(),
                Location::main_memory("timing.t_ras"),
                format!(
                    "tRAS ({:.2} ns) is below tRCD ({:.2} ns): the row would close before \
                     its cells finish restoring",
                    t.t_ras.value() * 1e9,
                    t.t_rcd.value() * 1e9
                ),
            ));
        }
        if !(t.t_rrd.is_finite() && t.t_rrd.value() > 0.0) {
            report.push(Diagnostic::error(
                self.code(),
                Location::main_memory("timing.t_rrd"),
                format!(
                    "tRRD = {:.3e} s must be positive — back-to-back activates are \
                     rate-limited by peak current",
                    t.t_rrd.value()
                ),
            ));
        } else if !approx_ge(t.t_rc.value(), t.t_rrd.value()) {
            report.push(Diagnostic::error(
                self.code(),
                Location::main_memory("timing.t_rrd"),
                format!(
                    "tRRD ({:.2} ns) exceeds tRC ({:.2} ns): bank interleaving would be \
                     slower than reusing one bank",
                    t.t_rrd.value() * 1e9,
                    t.t_rc.value() * 1e9
                ),
            ));
        }
    }
}

/// `CD0016`: every solution-level metric is finite, times/energies/area
/// strictly positive, powers non-negative.
pub struct FiniteMetrics;

impl Rule for FiniteMetrics {
    fn code(&self) -> &'static str {
        "CD0016"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "times, energies and area positive and finite; powers non-negative"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        let strict = [
            ("access_time", sol.access_time.value()),
            ("random_cycle", sol.random_cycle.value()),
            ("interleave_cycle", sol.interleave_cycle.value()),
            ("area", sol.area.value()),
            ("read_energy", sol.read_energy.value()),
            ("write_energy", sol.write_energy.value()),
        ];
        for (field, v) in strict {
            if !(v.is_finite() && v > 0.0) {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::solution(field),
                    format!("{field} = {v:.3e} must be positive and finite"),
                ));
            }
        }
        for (field, v) in [
            ("leakage_power", sol.leakage_power.value()),
            ("refresh_power", sol.refresh_power.value()),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::solution(field),
                    format!("{field} = {v:.3e} W must be non-negative and finite"),
                ));
            }
        }
    }
}

/// `CD0017`: structural consistency — caches carry a tag array, main
/// memory carries a chip-level result, and refresh power is present
/// exactly when the cells are DRAM.
pub struct RefreshConsistency;

impl Rule for RefreshConsistency {
    fn code(&self) -> &'static str {
        "CD0017"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "DRAM solutions must pay refresh power; SRAM must not (and structure matches kind)"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        let spec = ctx.spec;
        if spec.kind.is_cache() != sol.tag.is_some() {
            report.push(Diagnostic::error(
                self.code(),
                Location::solution("tag"),
                if spec.kind.is_cache() {
                    "a cache solution is missing its tag array"
                } else {
                    "a non-cache solution carries a tag array"
                },
            ));
        }
        let is_mm = matches!(spec.kind, MemoryKind::MainMemory { .. });
        if is_mm != sol.main_memory.is_some() {
            report.push(Diagnostic::error(
                self.code(),
                Location::solution("main_memory"),
                if is_mm {
                    "a main-memory solution is missing its chip-level result"
                } else {
                    "a non-main-memory solution carries a chip-level DRAM result"
                },
            ));
        }
        if spec.cell_tech.is_dram() {
            if sol.refresh_power <= Watts::ZERO {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::solution("refresh_power"),
                    format!(
                        "{} cells leak their storage charge (retention {:.2e} s) but the \
                         solution pays no refresh power",
                        spec.cell_tech,
                        ctx.cell.retention_time.value()
                    ),
                ));
            }
        } else if sol.refresh_power != Watts::ZERO {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::solution("refresh_power"),
                    format!(
                        "an SRAM solution reports {:.3e} W of refresh power; static cells \
                         never refresh",
                        sol.refresh_power.value()
                    ),
                )
                .with_suggestion(Location::solution("refresh_power"), "0.0"),
            );
        }
    }
}

/// `CD0018`: area efficiency is a physical fraction.
pub struct AreaEfficiency;

impl Rule for AreaEfficiency {
    fn code(&self) -> &'static str {
        "CD0018"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "area efficiency must lie in (0, 1]; below 2% the organization is degenerate"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        let e = sol.area_efficiency;
        if !(e.is_finite() && e > 0.0 && e <= 1.0 + 1e-9) {
            report.push(Diagnostic::error(
                self.code(),
                Location::solution("area_efficiency"),
                format!(
                    "area efficiency {e:.3} is not a physical fraction — cells cannot \
                     occupy less than nothing or more than the whole die"
                ),
            ));
        } else if e < 0.02 {
            report.push(Diagnostic::warn(
                self.code(),
                Location::solution("area_efficiency"),
                format!(
                    "area efficiency {:.1}% — periphery dwarfs the cells; the organization \
                     is close to degenerate",
                    e * 100.0
                ),
            ));
        }
    }
}

/// `CD0019`: main-memory command energies are ordered as the model
/// dictates and the standby power includes the always-on interface floor.
pub struct EnergyOrdering;

impl Rule for EnergyOrdering {
    fn code(&self) -> &'static str {
        "CD0019"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "WRITE ≥ READ energy, ACTIVATE dominates READ, standby ≥ interface floor"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3.5"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        let Some(mm) = &sol.main_memory else { return };
        let e = &mm.energies;
        for (field, v) in [
            ("energies.activate", e.activate.value()),
            ("energies.read", e.read.value()),
            ("energies.write", e.write.value()),
        ] {
            if !(v.is_finite() && v > 0.0) {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::main_memory(field),
                    format!("{field} = {v:.3e} J must be positive and finite"),
                ));
                return;
            }
        }
        if !approx_ge(e.write.value(), e.read.value()) {
            report.push(Diagnostic::error(
                self.code(),
                Location::main_memory("energies.write"),
                format!(
                    "WRITE energy ({:.3e} J) is below READ ({:.3e} J): a write drives the \
                     same column path and restores cells on top",
                    e.write.value(),
                    e.read.value()
                ),
            ));
        }
        if !approx_ge(e.activate.value(), e.read.value()) {
            report.push(Diagnostic::warn(
                self.code(),
                Location::main_memory("energies.activate"),
                format!(
                    "ACTIVATE energy ({:.3e} J) does not dominate READ ({:.3e} J) — \
                     unusual for a page-based DRAM, where sensing the row is the \
                     expensive step",
                    e.activate.value(),
                    e.read.value()
                ),
            ));
        }
        if !approx_ge(
            e.standby_power.value(),
            main_memory::cal::STANDBY_IO_POWER.value(),
        ) {
            report.push(Diagnostic::error(
                self.code(),
                Location::main_memory("energies.standby_power"),
                format!(
                    "standby power {:.3} W is below the always-on interface floor of \
                     {:.3} W (DLL, input buffers, charge pumps)",
                    e.standby_power.value(),
                    main_memory::cal::STANDBY_IO_POWER.value()
                ),
            ));
        }
    }
}

/// `CD0020`: the sense amplifiers actually get the differential they
/// need — the developed bitline signal meets the cell's sense margin.
pub struct SenseMargin;

impl Rule for SenseMargin {
    fn code(&self) -> &'static str {
        "CD0020"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "developed bitline signal must meet the cell's sense margin"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        let signal = sol.data.sense_signal.value();
        if !(signal.is_finite() && signal > 0.0) {
            report.push(Diagnostic::error(
                self.code(),
                Location::solution("data.sense_signal"),
                format!("sense signal {signal:.3e} V must be positive and finite"),
            ));
        } else if !approx_ge(signal, ctx.cell.v_sense_margin.value()) {
            report.push(Diagnostic::error(
                self.code(),
                Location::solution("data.sense_signal"),
                format!(
                    "bitline develops {:.0} mV but the {} sense amplifier needs \
                     {:.0} mV — reads would be nondeterministic",
                    signal * 1e3,
                    ctx.spec.cell_tech,
                    ctx.cell.v_sense_margin.value() * 1e3
                ),
            ));
        }
        if let Some(tag) = &sol.tag {
            let tag_signal = tag.array.sense_signal.value();
            if !(tag_signal.is_finite() && tag_signal > 0.0) {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::solution("tag.array.sense_signal"),
                    format!(
                        "tag array sense signal {tag_signal:.3e} V must be positive and finite"
                    ),
                ));
            }
        }
    }
}

/// `CD0021`: the reported access and cycle times land inside the window
/// any on-chip memory at these nodes can physically occupy — [1 ps, 1 ms].
/// Values outside it are dimensionally valid `Seconds` but betray a unit
/// mix-up at a `from_si`/`value` boundary (e.g. nanoseconds fed as
/// seconds), which the typed algebra alone cannot catch.
pub struct AccessTimePlausibility;

/// Fastest plausible access for any array the model can build: 1 ps.
/// Public so the `cactid prove` window analysis can reason about the edge.
pub const ACCESS_TIME_MIN: Seconds = Seconds::from_si(1.0e-12);
/// Slowest plausible access before the design is nonsense: 1 ms.
/// Public so the `cactid prove` window analysis can reason about the edge.
pub const ACCESS_TIME_MAX: Seconds = Seconds::from_si(1.0e-3);

impl Rule for AccessTimePlausibility {
    fn code(&self) -> &'static str {
        "CD0021"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "access and cycle times must land in the physically plausible [1 ps, 1 ms] window"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        for (field, t) in [
            ("access_time", sol.access_time),
            ("random_cycle", sol.random_cycle),
            ("interleave_cycle", sol.interleave_cycle),
        ] {
            if !t.is_finite() {
                // CD0016 reports the error; this warning additionally marks
                // the consequence on the exploration side: a non-finite
                // objective is excluded from Pareto-frontier extraction.
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::solution(field),
                    format!(
                        "{field} = {:?} s is not a finite time — the point is \
                         excluded from Pareto-frontier extraction",
                        t.value()
                    ),
                ));
                continue;
            }
            // Non-positive values are CD0016's to report.
            if t <= Seconds::ZERO {
                continue;
            }
            if t < ACCESS_TIME_MIN || t > ACCESS_TIME_MAX {
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::solution(field),
                    format!(
                        "{field} = {:.3e} s lies outside the plausible [1 ps, 1 ms] \
                         window — a time this far out usually means a value crossed a \
                         `from_si`/`value` boundary in the wrong unit",
                        t.value()
                    ),
                ));
            }
        }
    }
}

/// `CD0022`: per-access dynamic energies land inside [1 fJ, 1 µJ] — the
/// window spanning a single minimum-geometry gate toggle up to the largest
/// monolithic array the model can produce. Like `CD0021`, this guards the
/// raw-`f64` escape hatches, not the algebra.
pub struct EnergyPlausibility;

/// Least plausible per-access dynamic energy: 1 fJ.
/// Public so the `cactid prove` window analysis can reason about the edge.
pub const DYN_ENERGY_MIN: Joules = Joules::from_si(1.0e-15);
/// Greatest plausible per-access dynamic energy: 1 µJ.
/// Public so the `cactid prove` window analysis can reason about the edge.
pub const DYN_ENERGY_MAX: Joules = Joules::from_si(1.0e-6);

impl Rule for EnergyPlausibility {
    fn code(&self) -> &'static str {
        "CD0022"
    }
    fn stage(&self) -> Stage {
        Stage::Solution
    }
    fn summary(&self) -> &'static str {
        "per-access dynamic energies must land in the plausible [1 fJ, 1 µJ] window"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(sol) = ctx.solution else { return };
        let mut energies = vec![
            ("read_energy", sol.read_energy),
            ("write_energy", sol.write_energy),
        ];
        if let Some(mm) = &sol.main_memory {
            energies.push(("main_memory.energies.activate", mm.energies.activate));
            energies.push(("main_memory.energies.read", mm.energies.read));
            energies.push(("main_memory.energies.write", mm.energies.write));
        }
        for (field, e) in energies {
            if !e.is_finite() {
                // As in CD0021: CD0016/CD0019 carry the error; this marks
                // the Pareto-exclusion consequence.
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::solution(field),
                    format!(
                        "{field} = {:?} J is not a finite energy — the point is \
                         excluded from Pareto-frontier extraction",
                        e.value()
                    ),
                ));
                continue;
            }
            // Non-positive values are CD0016/CD0019 material.
            if e <= Joules::ZERO {
                continue;
            }
            if e < DYN_ENERGY_MIN || e > DYN_ENERGY_MAX {
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::solution(field),
                    format!(
                        "{field} = {:.3e} J lies outside the plausible [1 fJ, 1 µJ] \
                         window — check for a pJ/nJ scale slip at a serialization \
                         boundary",
                        e.value()
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::{AccessMode, MemorySpec, Solution};
    use cactid_tech::{CellTechnology, TechNode};
    use cactid_units::{Seconds, SquareMeters};

    fn cache_solution(cell: CellTechnology) -> (MemorySpec, Solution) {
        let spec = MemorySpec::builder()
            .capacity_bytes(256 << 10)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let sol = cactid_core::optimize(&spec).unwrap();
        (spec, sol)
    }

    fn mm_solution() -> (MemorySpec, Solution) {
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 27) // 1 Gb chip
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N32)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8 << 10,
            })
            .build()
            .unwrap();
        let sol = cactid_core::optimize(&spec).unwrap();
        (spec, sol)
    }

    fn run(rule: &dyn Rule, spec: &MemorySpec, sol: &Solution) -> Report {
        let ctx = LintContext::for_spec(spec).with_solution(sol);
        let mut report = Report::new();
        rule.check(&ctx, &mut report);
        report
    }

    #[test]
    fn real_solutions_pass_all_solution_rules() {
        let (sram_spec, sram_sol) = cache_solution(CellTechnology::Sram);
        let (mm_spec, mm_sol) = mm_solution();
        for rule in all() {
            for (spec, sol) in [(&sram_spec, &sram_sol), (&mm_spec, &mm_sol)] {
                let r = run(rule.as_ref(), spec, sol);
                assert!(
                    r.is_clean(),
                    "{} on {:?}: {:?}",
                    rule.code(),
                    spec.kind,
                    r.as_slice()
                );
            }
        }
    }

    #[test]
    fn cd0015_triggers_when_cas_plus_trcd_exceeds_access() {
        let (spec, mut sol) = mm_solution();
        let mm = sol.main_memory.as_mut().unwrap();
        mm.timing.cas_latency = sol.access_time; // tRCD + CAS > access now
        let r = run(&DramTimingInequalities, &spec, &sol);
        assert!(!r.is_clean());
        let d = r.iter().find(|d| d.code == "CD0015").unwrap();
        assert_eq!(
            d.location.to_string(),
            "solution.main_memory.timing.cas_latency"
        );
        assert!(d.suggestion.is_some(), "suggests the correct access time");
    }

    #[test]
    fn cd0015_triggers_on_broken_trc_identity_and_trrd() {
        let (spec, mut sol) = mm_solution();
        {
            let mm = sol.main_memory.as_mut().unwrap();
            mm.timing.t_rc = mm.timing.t_ras; // drops tRP
            mm.timing.t_rrd = Seconds::from_si(-1e-9);
        }
        let r = run(&DramTimingInequalities, &spec, &sol);
        assert!(r.error_count() >= 2, "{:?}", r.as_slice());
    }

    #[test]
    fn cd0016_triggers_on_nan_access_time() {
        let (spec, mut sol) = cache_solution(CellTechnology::Sram);
        sol.access_time = Seconds::from_si(f64::NAN);
        sol.area = SquareMeters::from_si(-1.0);
        let r = run(&FiniteMetrics, &spec, &sol);
        assert_eq!(r.error_count(), 2);
    }

    #[test]
    fn cd0017_triggers_on_missing_refresh_and_on_sram_refresh() {
        let (lp_spec, mut lp_sol) = cache_solution(CellTechnology::LpDram);
        lp_sol.refresh_power = Watts::ZERO;
        assert!(!run(&RefreshConsistency, &lp_spec, &lp_sol).is_clean());
        let (sram_spec, mut sram_sol) = cache_solution(CellTechnology::Sram);
        sram_sol.refresh_power = Watts::from_si(0.5);
        let r = run(&RefreshConsistency, &sram_spec, &sram_sol);
        assert!(!r.is_clean());
        assert_eq!(
            r.iter().next().unwrap().suggestion.as_ref().unwrap().value,
            "0.0"
        );
    }

    #[test]
    fn cd0017_triggers_on_structural_mismatch() {
        let (spec, mut sol) = cache_solution(CellTechnology::Sram);
        sol.tag = None;
        assert!(!run(&RefreshConsistency, &spec, &sol).is_clean());
    }

    #[test]
    fn cd0018_triggers_on_impossible_efficiency() {
        let (spec, mut sol) = cache_solution(CellTechnology::Sram);
        sol.area_efficiency = 1.7;
        assert_eq!(run(&AreaEfficiency, &spec, &sol).error_count(), 1);
        sol.area_efficiency = 0.01;
        let r = run(&AreaEfficiency, &spec, &sol);
        assert!(r.is_clean() && r.warn_count() == 1);
    }

    #[test]
    fn cd0019_triggers_on_cheap_write_and_missing_interface_floor() {
        let (spec, mut sol) = mm_solution();
        {
            let mm = sol.main_memory.as_mut().unwrap();
            mm.energies.write = mm.energies.read / 2.0;
            mm.energies.standby_power = Watts::ZERO;
        }
        let r = run(&EnergyOrdering, &spec, &sol);
        assert_eq!(r.error_count(), 2, "{:?}", r.as_slice());
    }

    #[test]
    fn cd0021_triggers_on_implausible_access_time() {
        let (spec, mut sol) = cache_solution(CellTechnology::Sram);
        // A nanosecond value accidentally recorded as whole seconds.
        sol.access_time = Seconds::from_si(3.2);
        let r = run(&AccessTimePlausibility, &spec, &sol);
        assert_eq!(r.warn_count(), 1, "{:?}", r.as_slice());
        assert!(r.iter().next().unwrap().message.contains("1 ps"));
        // Sub-picosecond is equally implausible.
        sol.access_time = Seconds::from_si(1.0e-14);
        assert_eq!(run(&AccessTimePlausibility, &spec, &sol).warn_count(), 1);
    }

    #[test]
    fn cd0021_warns_on_nonfinite_times_with_pareto_consequence() {
        let (spec, mut sol) = cache_solution(CellTechnology::Sram);
        sol.access_time = Seconds::from_si(f64::NAN);
        let r = run(&AccessTimePlausibility, &spec, &sol);
        assert_eq!(r.warn_count(), 1, "{:?}", r.as_slice());
        assert!(r.iter().next().unwrap().message.contains("Pareto"));
        // Zero/negative stay CD0016's alone — no duplicate warning here.
        sol.access_time = Seconds::ZERO;
        assert!(run(&AccessTimePlausibility, &spec, &sol).is_empty());
    }

    #[test]
    fn cd0022_warns_on_nonfinite_energies_with_pareto_consequence() {
        let (spec, mut sol) = mm_solution();
        sol.read_energy = Joules::from_si(f64::INFINITY);
        let r = run(&EnergyPlausibility, &spec, &sol);
        assert_eq!(r.warn_count(), 1, "{:?}", r.as_slice());
        assert!(r.iter().next().unwrap().message.contains("Pareto"));
    }

    #[test]
    fn cd0022_triggers_on_implausible_energy() {
        let (spec, mut sol) = mm_solution();
        // A nanojoule value accidentally recorded as whole joules.
        sol.read_energy = Joules::from_si(2.0);
        {
            let mm = sol.main_memory.as_mut().unwrap();
            mm.energies.activate = Joules::from_si(1.0e-17); // below 1 fJ
        }
        let r = run(&EnergyPlausibility, &spec, &sol);
        assert_eq!(r.warn_count(), 2, "{:?}", r.as_slice());
    }

    #[test]
    fn cd0020_triggers_when_signal_misses_margin() {
        let (spec, mut sol) = cache_solution(CellTechnology::LpDram);
        sol.data.sense_signal /= 100.0;
        let r = run(&SenseMargin, &spec, &sol);
        assert!(!r.is_clean());
        assert!(r.iter().next().unwrap().message.contains("mV"));
    }
}
