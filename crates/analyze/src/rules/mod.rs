//! The rule implementations: twenty-two object rules over three pipeline
//! stages, plus nine cross-record run rules.
//!
//! | Codes            | Stage        | Module     |
//! |------------------|--------------|------------|
//! | `CD0001`–`CD0009`| Spec         | [`spec`]   |
//! | `CD0010`–`CD0014`| Organization | [`org`]    |
//! | `CD0015`–`CD0022`| Solution     | [`sol`]    |
//! | `CD0101`–`CD0105`| Run          | [`run`]    |
//! | `CD0201`–`CD0204`| Run          | [`prove`]  |

pub mod org;
pub mod prove;
pub mod run;
pub mod sol;
pub mod spec;

use crate::rule::{Rule, RunRule};

/// Builds the full object-rule set, ordered by rule code.
pub fn all() -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = Vec::new();
    rules.extend(spec::all());
    rules.extend(org::all());
    rules.extend(sol::all());
    rules
}

/// Builds the full run-rule set, ordered by rule code.
pub fn all_run() -> Vec<Box<dyn RunRule>> {
    let mut rules = run::all();
    rules.extend(prove::all());
    rules
}

/// `a ≥ b` up to floating-point noise (relative 1 ppb plus an absolute
/// floor), the tolerance used by inequality rules on computed timings.
pub(crate) fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - (b.abs() * 1e-9 + 1e-15)
}

/// `a == b` up to the same floating-point tolerance as [`approx_ge`].
pub(crate) fn approx_eq(a: f64, b: f64) -> bool {
    approx_ge(a, b) && approx_ge(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::lint::Severity;
    use std::collections::BTreeSet;

    #[test]
    fn registry_has_twenty_two_object_rules_with_unique_sorted_codes() {
        let rules = all();
        assert_eq!(rules.len(), 22);
        let codes: Vec<&str> = rules.iter().map(|r| r.code()).collect();
        let unique: BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(unique.len(), 22, "duplicate rule codes");
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted, "registry must be ordered by code");
        assert_eq!(codes[0], "CD0001");
        assert_eq!(codes[21], "CD0022");
    }

    #[test]
    fn run_rules_have_unique_sorted_cd01xx_and_cd02xx_codes() {
        let rules = all_run();
        assert_eq!(rules.len(), 9);
        let codes: Vec<&str> = rules.iter().map(|r| r.code()).collect();
        let unique: BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(unique.len(), codes.len(), "duplicate run-rule codes");
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted, "run rules must be ordered by code");
        assert!(codes
            .iter()
            .all(|c| c.starts_with("CD01") || c.starts_with("CD02")));
    }

    #[test]
    fn every_rule_documents_itself() {
        for rule in all() {
            assert!(!rule.summary().is_empty(), "{} has no summary", rule.code());
            assert!(
                rule.paper_ref().starts_with('§') || rule.paper_ref().starts_with("Table"),
                "{} paper ref {:?}",
                rule.code(),
                rule.paper_ref()
            );
        }
    }

    #[test]
    fn default_severities_match_the_documented_split() {
        // CD0021/CD0022 are plausibility windows (warn-only); everything
        // else defaults to error.
        for rule in all() {
            let expected = if matches!(rule.code(), "CD0021" | "CD0022") {
                Severity::Warn
            } else {
                Severity::Error
            };
            assert_eq!(rule.default_severity(), expected, "{}", rule.code());
        }
        for rule in all_run() {
            let expected = match rule.code() {
                "CD0103" | "CD0105" | "CD0201" => Severity::Error,
                "CD0203" | "CD0204" => Severity::Info,
                _ => Severity::Warn,
            };
            assert_eq!(rule.default_severity(), expected, "{}", rule.code());
        }
    }

    #[test]
    fn tolerances_behave() {
        assert!(approx_ge(1.0, 1.0));
        assert!(approx_ge(1.0, 1.0 + 1e-12));
        assert!(!approx_ge(1.0, 1.1));
        assert!(approx_eq(2.0e-9, 2.0e-9));
        assert!(!approx_eq(2.0e-9, 2.1e-9));
    }
}
