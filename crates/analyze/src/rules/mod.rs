//! The rule registry: twenty-two rules over three stages.
//!
//! | Codes            | Stage        | Module     |
//! |------------------|--------------|------------|
//! | `CD0001`–`CD0009`| Spec         | [`spec`]   |
//! | `CD0010`–`CD0014`| Organization | [`org`]    |
//! | `CD0015`–`CD0022`| Solution     | [`sol`]    |

pub mod org;
pub mod sol;
pub mod spec;

use crate::rule::Rule;

/// Builds the full registry, ordered by rule code.
pub fn all() -> Vec<Box<dyn Rule>> {
    let mut rules: Vec<Box<dyn Rule>> = Vec::new();
    rules.extend(spec::all());
    rules.extend(org::all());
    rules.extend(sol::all());
    rules
}

/// `a ≥ b` up to floating-point noise (relative 1 ppb plus an absolute
/// floor), the tolerance used by inequality rules on computed timings.
pub(crate) fn approx_ge(a: f64, b: f64) -> bool {
    a >= b - (b.abs() * 1e-9 + 1e-15)
}

/// `a == b` up to the same floating-point tolerance as [`approx_ge`].
pub(crate) fn approx_eq(a: f64, b: f64) -> bool {
    approx_ge(a, b) && approx_ge(b, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_has_twenty_two_rules_with_unique_sorted_codes() {
        let rules = all();
        assert_eq!(rules.len(), 22);
        let codes: Vec<&str> = rules.iter().map(|r| r.code()).collect();
        let unique: BTreeSet<&str> = codes.iter().copied().collect();
        assert_eq!(unique.len(), 22, "duplicate rule codes");
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        assert_eq!(codes, sorted, "registry must be ordered by code");
        assert_eq!(codes[0], "CD0001");
        assert_eq!(codes[21], "CD0022");
    }

    #[test]
    fn every_rule_documents_itself() {
        for rule in all() {
            assert!(!rule.summary().is_empty(), "{} has no summary", rule.code());
            assert!(
                rule.paper_ref().starts_with('§') || rule.paper_ref().starts_with("Table"),
                "{} paper ref {:?}",
                rule.code(),
                rule.paper_ref()
            );
        }
    }

    #[test]
    fn tolerances_behave() {
        assert!(approx_ge(1.0, 1.0));
        assert!(approx_ge(1.0, 1.0 + 1e-12));
        assert!(!approx_ge(1.0, 1.1));
        assert!(approx_eq(2.0e-9, 2.0e-9));
        assert!(!approx_eq(2.0e-9, 2.1e-9));
    }
}
