//! Run-stage rules `CD0101`–`CD0105`: cross-record analysis of a completed
//! `cactid-explore` JSONL run.
//!
//! Where the object stages check one spec/organization/solution at a time,
//! these rules look *across* records: physical trends that must hold over a
//! capacity sweep, the consistency of the engine's Pareto annotations, the
//! `CD0021`/`CD0022` plausibility windows applied over the whole record
//! set, and the structural integrity of the record set itself.

use crate::rule::RunRule;
use crate::rules::approx_ge;
use crate::run::{RunContext, RunRecord};
use cactid_core::lint::{Diagnostic, Location, Report, Severity};
use std::collections::BTreeMap;

/// All run-stage rules, ordered by code.
pub fn all() -> Vec<Box<dyn RunRule>> {
    vec![
        Box::new(AccessMonotonicity),
        Box::new(AreaMonotonicity),
        Box::new(ParetoDominance),
        Box::new(MetricRangeDrift),
        Box::new(RecordIntegrity),
    ]
}

/// A record's identity in messages: the grid index when present, else the
/// line number.
fn ident(r: &RunRecord) -> String {
    match r.idx {
        Some(idx) => format!("record idx {idx}"),
        None => format!("record at line {}", r.line_no),
    }
}

/// Groups the solved records into capacity-sweep families: records that
/// differ only in capacity (same block, associativity, banks, node, cell,
/// mode and opt variant), each family sorted by capacity.
fn families(run: &RunContext) -> Vec<Vec<&RunRecord>> {
    type Key = (
        Option<u64>,
        Option<u64>,
        Option<u64>,
        Option<u64>,
        Option<String>,
        Option<String>,
        Option<String>,
    );
    let mut map: BTreeMap<Key, Vec<&RunRecord>> = BTreeMap::new();
    for r in run.ok_records() {
        if r.capacity_bytes.is_none() {
            continue;
        }
        let key = (
            r.block_bytes,
            r.associativity,
            r.banks,
            r.node_nm.map(f64::to_bits),
            r.cell.clone(),
            r.mode.clone(),
            r.opt.clone(),
        );
        map.entry(key).or_default().push(r);
    }
    let mut out: Vec<Vec<&RunRecord>> = map.into_values().collect();
    for family in &mut out {
        family.sort_by_key(|r| (r.capacity_bytes, r.idx, r.line_no));
    }
    out
}

/// `CD0101`: within a capacity-sweep family, access time must not shrink
/// as capacity grows.
pub struct AccessMonotonicity;

impl RunRule for AccessMonotonicity {
    fn code(&self) -> &'static str {
        "CD0101"
    }
    fn summary(&self) -> &'static str {
        "access time is monotonically non-decreasing over a capacity sweep \
         holding every other axis fixed"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, run: &RunContext, report: &mut Report) {
        for family in families(run) {
            for pair in family.windows(2) {
                let (small, big) = (pair[0], pair[1]);
                if small.capacity_bytes == big.capacity_bytes {
                    continue;
                }
                let (Some(t_small), Some(t_big)) = (small.access_ns, big.access_ns) else {
                    continue;
                };
                if t_small.is_finite() && t_big.is_finite() && !approx_ge(t_big, t_small) {
                    report.push(Diagnostic::warn(
                        self.code(),
                        Location::run("access_ns"),
                        format!(
                            "{} ({} B) reports {t_big:.4} ns access, faster than the \
                             {t_small:.4} ns of the smaller {} ({} B) on the same axes",
                            ident(big),
                            big.capacity_bytes.unwrap_or(0),
                            ident(small),
                            small.capacity_bytes.unwrap_or(0),
                        ),
                    ));
                }
            }
        }
    }
}

/// `CD0102`: within a capacity-sweep family, area must grow with capacity.
pub struct AreaMonotonicity;

impl RunRule for AreaMonotonicity {
    fn code(&self) -> &'static str {
        "CD0102"
    }
    fn summary(&self) -> &'static str {
        "area is monotonically non-decreasing over a capacity sweep holding \
         every other axis fixed"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, run: &RunContext, report: &mut Report) {
        for family in families(run) {
            for pair in family.windows(2) {
                let (small, big) = (pair[0], pair[1]);
                if small.capacity_bytes == big.capacity_bytes {
                    continue;
                }
                let (Some(a_small), Some(a_big)) = (small.area_mm2, big.area_mm2) else {
                    continue;
                };
                if a_small.is_finite() && a_big.is_finite() && !approx_ge(a_big, a_small) {
                    report.push(Diagnostic::warn(
                        self.code(),
                        Location::run("area_mm2"),
                        format!(
                            "{} ({} B) occupies {a_big:.4} mm², less than the {a_small:.4} mm² \
                             of the smaller {} ({} B) on the same axes",
                            ident(big),
                            big.capacity_bytes.unwrap_or(0),
                            ident(small),
                            small.capacity_bytes.unwrap_or(0),
                        ),
                    ));
                }
            }
        }
    }
}

/// `a ≤ b` up to the same floating-point slack as [`approx_ge`].
fn approx_le(a: f64, b: f64) -> bool {
    approx_ge(b, a)
}

/// `o` dominates `r` with a clear margin: no objective worse beyond noise,
/// at least one better by more than one part per million (so re-deriving
/// dominance from the rounded record fields cannot flip a knife-edge tie).
fn clearly_dominates(o: &[f64; 4], r: &[f64; 4]) -> bool {
    o.iter().zip(r).all(|(&a, &b)| approx_le(a, b))
        && o.iter().zip(r).any(|(&a, &b)| a < b - b.abs() * 1e-6)
}

/// `o` dominates `r` when `r` is given every benefit of the doubt.
fn weakly_dominates(o: &[f64; 4], r: &[f64; 4]) -> bool {
    o.iter().zip(r).all(|(&a, &b)| approx_le(a, b)) && o.iter().zip(r).any(|(&a, &b)| a < b)
}

/// `CD0103`: the run's Pareto annotations agree with dominance recomputed
/// from the record metrics.
pub struct ParetoDominance;

impl RunRule for ParetoDominance {
    fn code(&self) -> &'static str {
        "CD0103"
    }
    fn summary(&self) -> &'static str {
        "pareto annotations are consistent: no frontier member is dominated, \
         and every non-member is dominated by someone"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, run: &RunContext, report: &mut Report) {
        let pool: Vec<(&RunRecord, [f64; 4])> = run
            .ok_records()
            .filter_map(|r| r.objectives().map(|m| (r, m)))
            .filter(|(_, m)| m.iter().all(|v| v.is_finite()))
            .collect();
        for (r, m) in &pool {
            let Some(pareto) = r.pareto else { continue };
            if pareto.frontier {
                if let Some((o, _)) = pool
                    .iter()
                    .find(|(o, om)| o.line_no != r.line_no && clearly_dominates(om, m))
                {
                    report.push(Diagnostic::error(
                        self.code(),
                        Location::run("pareto.frontier"),
                        format!(
                            "{} is annotated as a frontier member but {} dominates it \
                             on all four objectives",
                            ident(r),
                            ident(o),
                        ),
                    ));
                }
            } else if !pool
                .iter()
                .any(|(o, om)| o.line_no != r.line_no && weakly_dominates(om, m))
            {
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::run("pareto.frontier"),
                    format!(
                        "{} is annotated as dominated but no record in the run \
                         dominates it",
                        ident(r),
                    ),
                ));
            }
        }
    }
}

/// `CD0104`: the `CD0021`/`CD0022` plausibility windows applied across the
/// whole record set — times within \[1 ps, 1 ms\], dynamic energies within
/// \[1 fJ, 1 µJ\], and every metric finite.
pub struct MetricRangeDrift;

/// The `CD0021` access-time window, in the records' ns unit.
const TIME_NS: (f64, f64) = (1e-3, 1e6);
/// The `CD0022` dynamic-energy window, in the records' nJ unit.
const ENERGY_NJ: (f64, f64) = (1e-6, 1e3);

impl RunRule for MetricRangeDrift {
    fn code(&self) -> &'static str {
        "CD0104"
    }
    fn summary(&self) -> &'static str {
        "every solved record's times sit in [1 ps, 1 ms], its dynamic \
         energies in [1 fJ, 1 uJ], and all metrics are finite"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, run: &RunContext, report: &mut Report) {
        type Window = (
            &'static str,
            fn(&RunRecord) -> Option<f64>,
            (f64, f64),
            &'static str,
        );
        let windows: [Window; 4] = [
            ("access_ns", |r| r.access_ns, TIME_NS, "ns"),
            ("random_cycle_ns", |r| r.random_cycle_ns, TIME_NS, "ns"),
            ("read_nj", |r| r.read_nj, ENERGY_NJ, "nJ"),
            ("write_nj", |r| r.write_nj, ENERGY_NJ, "nJ"),
        ];
        for r in run.ok_records() {
            for &(field, get, (lo, hi), unit) in &windows {
                let Some(v) = get(r) else { continue };
                if !v.is_finite() {
                    report.push(Diagnostic::warn(
                        self.code(),
                        Location::run(field),
                        format!("{} has a non-finite {field} ({v})", ident(r)),
                    ));
                } else if v < lo || v > hi {
                    report.push(Diagnostic::warn(
                        self.code(),
                        Location::run(field),
                        format!(
                            "{} reports {field} = {v:.6} {unit}, outside the plausible \
                             [{lo:e}, {hi:e}] {unit} window",
                            ident(r),
                        ),
                    ));
                }
            }
        }
    }
}

/// `CD0105`: the record set itself is structurally sound.
pub struct RecordIntegrity;

impl RunRule for RecordIntegrity {
    fn code(&self) -> &'static str {
        "CD0105"
    }
    fn summary(&self) -> &'static str {
        "every line parses, indices are present and unique, statuses are \
         known, and solved records carry their metrics"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }
    fn check(&self, run: &RunContext, report: &mut Report) {
        for (line_no, err) in &run.malformed {
            report.push(Diagnostic::error(
                self.code(),
                Location::run("records"),
                format!("line {line_no} is not a JSON record: {err}"),
            ));
        }
        let mut seen: BTreeMap<u64, usize> = BTreeMap::new();
        for r in &run.records {
            match r.idx {
                None => report.push(Diagnostic::error(
                    self.code(),
                    Location::run("idx"),
                    format!("record at line {} has no idx field", r.line_no),
                )),
                Some(idx) => {
                    if let Some(first) = seen.insert(idx, r.line_no) {
                        report.push(Diagnostic::error(
                            self.code(),
                            Location::run("idx"),
                            format!(
                                "idx {idx} appears on line {} and again on line {}",
                                first, r.line_no
                            ),
                        ));
                    }
                }
            }
            match r.status.as_deref() {
                Some("ok") => {
                    if r.objectives().is_none() {
                        report.push(Diagnostic::error(
                            self.code(),
                            Location::run("status"),
                            format!(
                                "{} claims status \"ok\" but is missing solution metrics",
                                ident(r),
                            ),
                        ));
                    }
                }
                Some("infeasible" | "invalid") => {}
                Some(other) => report.push(Diagnostic::error(
                    self.code(),
                    Location::run("status"),
                    format!("{} has unknown status {other:?}", ident(r)),
                )),
                None => report.push(Diagnostic::error(
                    self.code(),
                    Location::run("status"),
                    format!("{} has no status field", ident(r)),
                )),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(idx: u64, capacity: u64, access: f64, area: f64) -> String {
        format!(
            "{{\"idx\":{idx},\"capacity_bytes\":{capacity},\"block_bytes\":64,\
             \"associativity\":8,\"banks\":1,\"node_nm\":32,\"cell\":\"sram\",\
             \"mode\":\"normal\",\"opt\":\"default\",\"status\":\"ok\",\
             \"access_ns\":{access},\"random_cycle_ns\":0.5,\"read_nj\":0.02,\
             \"write_nj\":0.02,\"area_mm2\":{area},\"leakage_mw\":10.0,\
             \"refresh_mw\":0}}"
        )
    }

    fn lint(text: &str) -> Report {
        let run = RunContext::parse(text);
        let mut report = Report::new();
        for rule in all() {
            rule.check(&run, &mut report);
        }
        report
    }

    fn codes(report: &Report) -> Vec<&'static str> {
        report.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_monotone_sweep_emits_nothing() {
        let text = [
            record(0, 64 << 10, 1.0, 0.2),
            record(1, 128 << 10, 1.4, 0.4),
            record(2, 256 << 10, 1.9, 0.8),
        ]
        .join("\n");
        assert!(lint(&text).is_empty(), "{:?}", lint(&text));
    }

    #[test]
    fn access_inversion_fires_cd0101() {
        let text = [
            record(0, 64 << 10, 2.0, 0.2),
            record(1, 128 << 10, 1.0, 0.4),
        ]
        .join("\n");
        let report = lint(&text);
        assert!(codes(&report).contains(&"CD0101"), "{report:?}");
        assert_eq!(report.error_count(), 0);
    }

    #[test]
    fn area_shrink_fires_cd0102() {
        let text = [
            record(0, 64 << 10, 1.0, 0.4),
            record(1, 128 << 10, 1.5, 0.2),
        ]
        .join("\n");
        assert!(codes(&lint(&text)).contains(&"CD0102"));
    }

    #[test]
    fn different_axes_are_not_compared() {
        // Same capacities ordering but different associativity: no family.
        let a = record(0, 64 << 10, 2.0, 0.2);
        let b =
            record(1, 128 << 10, 1.0, 0.4).replace("\"associativity\":8", "\"associativity\":4");
        assert!(lint(&format!("{a}\n{b}")).is_empty());
    }

    #[test]
    fn dominated_frontier_member_fires_cd0103_error() {
        let mut good = record(0, 64 << 10, 1.0, 0.2);
        good.insert(good.len() - 1, ',');
        good.insert_str(
            good.len() - 1,
            "\"pareto\":{\"frontier\":true,\"dominates\":1}",
        );
        // Strictly worse on every objective, yet annotated as a frontier
        // member; capacity differs so CD0101/02 stay quiet.
        let mut bad = record(1, 128 << 10, 2.0, 0.4);
        bad.insert(bad.len() - 1, ',');
        bad.insert_str(
            bad.len() - 1,
            "\"pareto\":{\"frontier\":true,\"dominates\":0}",
        );
        let report = lint(&format!("{good}\n{bad}"));
        assert!(codes(&report).contains(&"CD0103"), "{report:?}");
        assert!(report.error_count() >= 1);
    }

    #[test]
    fn undominated_nonmember_fires_cd0103_warning() {
        let mut a = record(0, 64 << 10, 1.0, 0.2);
        a.insert(a.len() - 1, ',');
        a.insert_str(
            a.len() - 1,
            "\"pareto\":{\"frontier\":true,\"dominates\":0}",
        );
        // Better access, worse area: incomparable, so "dominated" is wrong.
        let mut b = record(1, 128 << 10, 2.0, 0.1);
        b.insert(b.len() - 1, ',');
        b.insert_str(b.len() - 1, "\"pareto\":{\"frontier\":false}");
        let report = lint(&format!("{a}\n{b}"));
        let d = report
            .iter()
            .find(|d| d.code == "CD0103")
            .expect("fires CD0103");
        assert_eq!(d.severity, Severity::Warn);
    }

    #[test]
    fn out_of_window_metrics_fire_cd0104() {
        let text = record(0, 64 << 10, 2e6, 0.2); // 2 ms access
        let report = lint(&text);
        assert!(codes(&report).contains(&"CD0104"), "{report:?}");
        let nonfinite =
            record(1, 64 << 10, 1.0, 0.2).replace("\"read_nj\":0.02", "\"read_nj\":NaN");
        // NaN is not valid JSON, so this line lands in CD0105 instead.
        let report = lint(&nonfinite);
        assert!(codes(&report).contains(&"CD0105"));
    }

    #[test]
    fn integrity_violations_fire_cd0105() {
        let dup = format!(
            "{}\n{}\nnot json",
            record(0, 64 << 10, 1.0, 0.2),
            record(0, 64 << 10, 1.0, 0.2)
        );
        let report = lint(&dup);
        let cd0105: Vec<_> = report.iter().filter(|d| d.code == "CD0105").collect();
        assert!(cd0105.len() >= 2, "dup idx + malformed line: {report:?}");
        let missing = r#"{"status":"ok"}"#;
        let report = lint(missing);
        assert!(report.error_count() >= 2, "no idx + no metrics: {report:?}");
        let unknown = r#"{"idx":0,"status":"exploded"}"#;
        assert!(codes(&lint(unknown)).contains(&"CD0105"));
    }

    #[test]
    fn run_rules_document_themselves() {
        for rule in all() {
            assert!(rule.code().starts_with("CD01"));
            assert!(!rule.summary().is_empty());
            assert!(rule.paper_ref().starts_with('§') || rule.paper_ref().starts_with("Table"));
        }
    }
}
