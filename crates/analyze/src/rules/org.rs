//! Organization-stage rules `CD0010`–`CD0014`: partitioning legality,
//! capacity conservation, mux consistency, subarray dimensions in SI
//! units, and wordline RC sanity.

use crate::context::LintContext;
use crate::rule::{Rule, Stage};
use cactid_core::lint::{Diagnostic, Location, Report, Severity};
use cactid_core::MemoryKind;
use cactid_units::Seconds;

/// All five organization-stage rules, ordered by code.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(Partitioning),
        Box::new(CapacityConservation),
        Box::new(MuxLegality),
        Box::new(SubarrayDims),
        Box::new(WordlineRc),
    ]
}

/// The §2.4 sweep bounds, mirrored from `cactid_core::org` (private there;
/// exceeding them is a warning, not an error — the array model itself
/// judges electrical feasibility).
const MAX_NDWL: u32 = 64;
/// Upper sweep bound on `ndbl`.
const MAX_NDBL: u32 = 512;
/// Smallest subarray the sweep considers.
const MIN_ROWS: u64 = 16;
/// Column-count band of the sweep.
const COL_RANGE: std::ops::RangeInclusive<u64> = 32..=8192;

/// `CD0010`: `Ndwl`/`Ndbl` are powers of two within the sweep bounds and
/// `Nspd` is a positive (power-of-two-ish) stripe scale.
pub struct Partitioning;

impl Rule for Partitioning {
    fn code(&self) -> &'static str {
        "CD0010"
    }
    fn stage(&self) -> Stage {
        Stage::Organization
    }
    fn summary(&self) -> &'static str {
        "Ndwl and Ndbl must be nonzero powers of two; Nspd positive (1.0 for main memory)"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(org) = ctx.org else { return };
        for (field, v, cap) in [("ndwl", org.ndwl, MAX_NDWL), ("ndbl", org.ndbl, MAX_NDBL)] {
            if v == 0 || !v.is_power_of_two() {
                report.push(
                    Diagnostic::error(
                        self.code(),
                        Location::org(field),
                        format!("{field} = {v} is not a nonzero power of two"),
                    )
                    .with_suggestion(
                        Location::org(field),
                        v.max(1).next_power_of_two().to_string(),
                    ),
                );
            } else if v > cap {
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::org(field),
                    format!("{field} = {v} is beyond the §2.4 sweep bound of {cap}"),
                ));
            }
        }
        if !(org.nspd.is_finite() && org.nspd > 0.0) {
            report.push(Diagnostic::error(
                self.code(),
                Location::org("nspd"),
                format!("nspd = {} must be positive and finite", org.nspd),
            ));
        } else if matches!(ctx.spec.kind, MemoryKind::MainMemory { .. }) && org.nspd != 1.0 {
            report.push(Diagnostic::warn(
                self.code(),
                Location::org("nspd"),
                format!(
                    "nspd = {} is meaningless for main memory (the page size fixes the stripe)",
                    org.nspd
                ),
            ));
        }
    }
}

/// `CD0011`: the organization tiles the bank exactly —
/// `rows · cols · Ndwl · Ndbl` equals the bank's bit count.
pub struct CapacityConservation;

impl Rule for CapacityConservation {
    fn code(&self) -> &'static str {
        "CD0011"
    }
    fn stage(&self) -> Stage {
        Stage::Organization
    }
    fn summary(&self) -> &'static str {
        "rows × cols × Ndwl × Ndbl must equal the bank capacity in bits"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(org) = ctx.org else { return };
        if org.ndwl == 0 || org.ndbl == 0 || ctx.spec.n_banks == 0 {
            return; // CD0010 / CD0003 report the zero field.
        }
        let spec = ctx.spec;
        let bank_bits = spec.bank_bytes() * 8;
        let stripe = org.stripe_bits(spec);
        if stripe == 0 {
            report.push(Diagnostic::error(
                self.code(),
                Location::org("nspd"),
                "the organization's stripe holds zero bits",
            ));
            return;
        }
        if stripe % u64::from(org.ndwl) != 0 {
            report.push(Diagnostic::error(
                self.code(),
                Location::org("ndwl"),
                format!(
                    "stripe of {stripe} bits does not split across ndwl = {} subarrays",
                    org.ndwl
                ),
            ));
            return;
        }
        let rows = org.rows(spec);
        let cols = org.cols(spec);
        let tiled = rows * cols * u64::from(org.ndwl) * u64::from(org.ndbl);
        if tiled != bank_bits {
            report.push(Diagnostic::error(
                self.code(),
                Location::org("ndbl"),
                format!(
                    "organization tiles {tiled} bits but the bank holds {bank_bits} — \
                     capacity is not conserved"
                ),
            ));
        } else if !rows.is_power_of_two() {
            report.push(Diagnostic::warn(
                self.code(),
                Location::org("ndbl"),
                format!(
                    "{rows} rows per subarray is not a power of two; the row decoder wastes codes"
                ),
            ));
        }
    }
}

/// `CD0012`: column multiplexing exactly covers the stripe-to-output
/// ratio, and DRAM never muxes bitlines (destructive readout).
pub struct MuxLegality;

impl Rule for MuxLegality {
    fn code(&self) -> &'static str {
        "CD0012"
    }
    fn stage(&self) -> Stage {
        Stage::Organization
    }
    fn summary(&self) -> &'static str {
        "bl-mux × sa-mux must equal stripe/output bits; DRAM requires bl-mux = 1"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(org) = ctx.org else { return };
        let spec = ctx.spec;
        if spec.cell_tech.is_dram() && org.deg_bl_mux != 1 {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::org("deg_bl_mux"),
                    format!(
                        "DRAM readout is destructive: every bitline on the open row must be \
                         sensed, so deg_bl_mux = {} is physically impossible",
                        org.deg_bl_mux
                    ),
                )
                .with_suggestion(Location::org("deg_bl_mux"), "1"),
            );
        }
        if org.deg_bl_mux == 0 || org.deg_sa_mux == 0 {
            report.push(Diagnostic::error(
                self.code(),
                Location::org("deg_sa_mux"),
                "mux degrees must be nonzero",
            ));
            return;
        }
        let output = spec.output_bits();
        let stripe = org.stripe_bits(spec);
        if output == 0 || stripe == 0 {
            return; // spec/stripe rules report the root cause.
        }
        if stripe % output != 0 {
            report.push(Diagnostic::error(
                self.code(),
                Location::org("nspd"),
                format!("stripe of {stripe} bits is not a multiple of the {output}-bit output"),
            ));
            return;
        }
        let needed = stripe / output;
        if org.mux_factor() != needed {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::org("deg_sa_mux"),
                    format!(
                        "mux factor {} ≠ stripe/output = {needed}: the column path selects the \
                         wrong number of bits",
                        org.mux_factor()
                    ),
                )
                .with_suggestion(
                    Location::org("deg_sa_mux"),
                    (needed / u64::from(org.deg_bl_mux).max(1)).to_string(),
                ),
            );
        }
        if org.deg_bl_mux > 8 {
            report.push(Diagnostic::warn(
                self.code(),
                Location::org("deg_bl_mux"),
                format!(
                    "bitline mux of {} exceeds the modeled maximum of 8",
                    org.deg_bl_mux
                ),
            ));
        }
    }
}

/// `CD0013`: subarray dimensions are physical — rows within the cell
/// technology's limit, columns in the sweep band, and the subarray's SI
/// dimensions yield a buildable aspect ratio.
pub struct SubarrayDims;

impl Rule for SubarrayDims {
    fn code(&self) -> &'static str {
        "CD0013"
    }
    fn stage(&self) -> Stage {
        Stage::Organization
    }
    fn summary(&self) -> &'static str {
        "rows ≤ technology limit, cols in sweep band, subarray aspect ratio buildable"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(org) = ctx.org else { return };
        if org.ndwl == 0 || org.ndbl == 0 || ctx.spec.n_banks == 0 {
            return;
        }
        let rows = org.rows(ctx.spec);
        let cols = org.cols(ctx.spec);
        let max_rows = ctx.cell.max_rows_per_subarray as u64;
        if rows > max_rows {
            let total_rows = rows * u64::from(org.ndbl);
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::org("ndbl"),
                    format!(
                        "{rows} rows per subarray exceeds the {} limit of {max_rows} \
                         (signal margin / wordline RC)",
                        ctx.spec.cell_tech
                    ),
                )
                .with_suggestion(
                    Location::org("ndbl"),
                    total_rows
                        .div_ceil(max_rows)
                        .next_power_of_two()
                        .to_string(),
                ),
            );
        } else if rows < MIN_ROWS {
            report.push(Diagnostic::warn(
                self.code(),
                Location::org("ndbl"),
                format!(
                    "{rows} rows per subarray is below the sweep minimum of {MIN_ROWS}; \
                         decoder and sense-amp strips dominate the area"
                ),
            ));
        }
        if !COL_RANGE.contains(&cols) {
            report.push(Diagnostic::warn(
                self.code(),
                Location::org("ndwl"),
                format!(
                    "{cols} columns per subarray is outside the {}–{} sweep band",
                    COL_RANGE.start(),
                    COL_RANGE.end()
                ),
            ));
        }
        // Dimensional consistency in SI units: the subarray must have
        // positive physical extent and a buildable aspect ratio.
        let width_m = (cols as f64 * ctx.cell.width).value();
        let height_m = (rows as f64 * ctx.cell.height).value();
        if width_m <= 0.0 || height_m <= 0.0 {
            report.push(Diagnostic::error(
                self.code(),
                Location::org("ndwl"),
                format!("subarray has non-positive extent ({width_m:.3e} m × {height_m:.3e} m)"),
            ));
        } else {
            let aspect = width_m / height_m;
            if !(1.0 / 256.0..=256.0).contains(&aspect) {
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::org("ndwl"),
                    format!(
                        "subarray aspect ratio {aspect:.0} ({:.1} µm × {:.1} µm) is beyond \
                         anything a floorplan can absorb",
                        width_m * 1e6,
                        height_m * 1e6
                    ),
                ));
            }
        }
    }
}

/// `CD0014`: distributed wordline RC stays within the unrepeatered-wire
/// budget (wordlines cannot take repeaters — there is no room in the cell
/// pitch — so their RC delay bounds the subarray width).
pub struct WordlineRc;

/// Hard feasibility cap on `0.38·R·C` of the wordline, matching the array
/// model's gate.
const WL_RC_LIMIT: Seconds = Seconds::from_si(3.0e-9);

impl WordlineRc {
    /// Distributed-RC delay (`0.38·R·C`) of a wordline spanning `cols`
    /// cells.
    fn wl_rc(ctx: &LintContext<'_>, cols: u64) -> Seconds {
        0.38 * (ctx.cell.r_wordline_per_cell * cols as f64)
            * (ctx.cell.c_wordline_per_cell * cols as f64)
    }
}

impl Rule for WordlineRc {
    fn code(&self) -> &'static str {
        "CD0014"
    }
    fn stage(&self) -> Stage {
        Stage::Organization
    }
    fn summary(&self) -> &'static str {
        "unrepeatered wordline RC (0.38·R·C) must stay under 3 ns"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.3.3"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let Some(org) = ctx.org else { return };
        if org.ndwl == 0 || org.ndbl == 0 || ctx.spec.n_banks == 0 {
            return;
        }
        let cols = org.cols(ctx.spec);
        let rc = Self::wl_rc(ctx, cols);
        if rc > WL_RC_LIMIT {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::org("ndwl"),
                    format!(
                        "wordline RC of {:.2} ns over {cols} columns exceeds the {:.0} ns \
                         unrepeatered-wire budget; unlike the H-tree, a wordline cannot be \
                         repeatered at the cell pitch",
                        rc.value() * 1e9,
                        WL_RC_LIMIT.value() * 1e9
                    ),
                )
                .with_suggestion(Location::org("ndwl"), (org.ndwl.max(1) * 2).to_string()),
            );
        } else if rc > 0.8 * WL_RC_LIMIT {
            report.push(Diagnostic::warn(
                self.code(),
                Location::org("ndwl"),
                format!(
                    "wordline RC of {:.2} ns is within 20% of the {:.0} ns budget",
                    rc.value() * 1e9,
                    WL_RC_LIMIT.value() * 1e9
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::{AccessMode, MemorySpec, OrgParams};
    use cactid_tech::{CellTechnology, TechNode};

    fn cache_spec(cell: CellTechnology) -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    /// A legal organization for the 1 MB 8-way cache above: stripe = one
    /// set (4096 bits), 8 Mb bank → 2048 stripes; 512-column subarrays
    /// keep the wordline RC well inside the CD0014 budget.
    fn good_org() -> OrgParams {
        OrgParams {
            ndwl: 8,
            ndbl: 8,
            nspd: 1.0,
            deg_bl_mux: 2,
            deg_sa_mux: 4,
        }
    }

    fn run(rule: &dyn Rule, spec: &MemorySpec, org: &OrgParams) -> Report {
        let ctx = LintContext::for_spec(spec).with_org(org);
        let mut report = Report::new();
        rule.check(&ctx, &mut report);
        report
    }

    #[test]
    fn good_org_is_clean_under_all_org_rules() {
        let spec = cache_spec(CellTechnology::Sram);
        for rule in all() {
            let r = run(rule.as_ref(), &spec, &good_org());
            assert!(r.is_empty(), "{}: {:?}", rule.code(), r.as_slice());
        }
    }

    #[test]
    fn cd0010_triggers_on_non_pow2_ndwl() {
        let spec = cache_spec(CellTechnology::Sram);
        let mut bad = good_org();
        bad.ndwl = 3;
        let r = run(&Partitioning, &spec, &bad);
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.iter().next().unwrap().code, "CD0010");
    }

    #[test]
    fn cd0011_triggers_when_tiling_loses_capacity() {
        let spec = cache_spec(CellTechnology::Sram);
        let mut bad = good_org();
        bad.ndbl = 512; // 2048 stripes / 512 → 4 rows; 4·4096·... ≠ 8 Mb? still tiles
        bad.nspd = 3.0; // stripe 12288 bits: 8 Mb / 12288 truncates
        let r = run(&CapacityConservation, &spec, &bad);
        assert!(!r.is_clean(), "{:?}", r.as_slice());
    }

    #[test]
    fn cd0012_triggers_on_dram_bitline_mux() {
        let spec = cache_spec(CellTechnology::LpDram);
        let mut bad = good_org();
        bad.deg_bl_mux = 2;
        bad.deg_sa_mux = 4;
        let r = run(&MuxLegality, &spec, &bad);
        assert!(!r.is_clean());
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "CD0012");
        assert_eq!(d.suggestion.as_ref().unwrap().value, "1");
    }

    #[test]
    fn cd0012_triggers_on_wrong_mux_factor() {
        let spec = cache_spec(CellTechnology::Sram);
        let mut bad = good_org();
        bad.deg_sa_mux = 8; // mux factor 16 ≠ stripe/output = 8
        let r = run(&MuxLegality, &spec, &bad);
        assert_eq!(r.error_count(), 1);
        assert_eq!(
            r.iter().next().unwrap().suggestion.as_ref().unwrap().value,
            "4"
        );
    }

    #[test]
    fn cd0013_triggers_on_too_many_rows() {
        let spec = cache_spec(CellTechnology::LpDram);
        let org = OrgParams {
            ndwl: 64,
            ndbl: 1,
            nspd: 8.0, // stripe 32768 bits, 256 rows... make rows large instead
            deg_bl_mux: 1,
            deg_sa_mux: 64,
        };
        // 8 Mb bank / 32768-bit stripe = 256 rows → fine; shrink the stripe.
        let tall = OrgParams {
            ndwl: 1,
            ndbl: 1,
            nspd: 0.25, // stripe 1024 bits → 8192 rows per subarray
            deg_bl_mux: 1,
            deg_sa_mux: 2,
        };
        let r = run(&SubarrayDims, &spec, &tall);
        assert!(!r.is_clean(), "{:?}", r.as_slice());
        assert!(r.iter().next().unwrap().suggestion.is_some());
        let _ = org;
    }

    #[test]
    fn cd0014_triggers_on_wordline_past_budget() {
        // COMM-DRAM wordlines are polysilicon-class (high R); a very wide
        // subarray must blow the RC budget. Force cols = 65536 via a
        // synthetic context.
        let spec = cache_spec(CellTechnology::CommDram);
        let wide = OrgParams {
            ndwl: 1,
            ndbl: 1,
            nspd: 8.0, // stripe 32768 bits on one subarray
            deg_bl_mux: 1,
            deg_sa_mux: 64,
        };
        let ctx = LintContext::for_spec(&spec).with_org(&wide);
        let rc = WordlineRc::wl_rc(&ctx, wide.cols(&spec));
        let mut report = Report::new();
        WordlineRc.check(&ctx, &mut report);
        if rc > WL_RC_LIMIT {
            assert!(!report.is_clean());
        } else {
            // The 32 nm wire tables are mild; verify the rule's threshold
            // logic directly instead.
            assert!(report.error_count() == 0);
            assert!(WordlineRc::wl_rc(&ctx, wide.cols(&spec) * 100) > WL_RC_LIMIT);
        }
    }
}
