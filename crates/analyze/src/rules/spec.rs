//! Spec-stage rules `CD0001`–`CD0009`: capacity geometry, Table-1
//! parameter bounds, cell/node compatibility, and the main-memory
//! interface invariants.

use crate::context::LintContext;
use crate::rule::{Rule, Stage};
use cactid_core::lint::{Diagnostic, Location, Report, Severity};
use cactid_core::MemoryKind;
use cactid_tech::{CellTechnology, TechNode};
use cactid_units::{Amperes, Farads, Ohms, Seconds, Volts};

/// All nine spec-stage rules, ordered by code.
pub fn all() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(CapacityGeometry),
        Box::new(BlockSize),
        Box::new(BankCount),
        Box::new(Associativity),
        Box::new(CellNodeCompat),
        Box::new(CellTable1Bounds),
        Box::new(DramInterface),
        Box::new(AddressBits),
        Box::new(OptimizationKnobs),
    ]
}

/// `CD0001`: capacity decomposes into a power-of-two number of sets, and
/// divides evenly across banks.
pub struct CapacityGeometry;

impl Rule for CapacityGeometry {
    fn code(&self) -> &'static str {
        "CD0001"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "capacity must be a power-of-two number of sets, split evenly across banks"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let s = ctx.spec;
        if s.capacity_bytes == 0 {
            report.push(Diagnostic::error(
                self.code(),
                Location::spec("capacity_bytes"),
                "capacity is zero",
            ));
            return;
        }
        let set_bytes = u64::from(s.block_bytes) * u64::from(s.associativity);
        if set_bytes == 0 {
            return; // CD0002 / CD0004 report the zero field.
        }
        if !s.capacity_bytes.is_multiple_of(set_bytes) {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::spec("capacity_bytes"),
                    format!(
                        "capacity {} B is not a whole number of {set_bytes} B sets",
                        s.capacity_bytes
                    ),
                )
                .with_suggestion(
                    Location::spec("capacity_bytes"),
                    (s.capacity_bytes / set_bytes * set_bytes)
                        .max(set_bytes)
                        .to_string(),
                ),
            );
            return;
        }
        let sets = s.capacity_bytes / set_bytes;
        if !sets.is_power_of_two() {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::spec("capacity_bytes"),
                    format!("capacity implies {sets} sets, which is not a power of two"),
                )
                .with_suggestion(
                    Location::spec("capacity_bytes"),
                    (sets.next_power_of_two() * set_bytes).to_string(),
                ),
            );
            return;
        }
        if s.n_banks == 0 {
            return; // CD0003 reports it.
        }
        if !sets.is_multiple_of(u64::from(s.n_banks))
            || !(sets / u64::from(s.n_banks)).is_power_of_two()
        {
            report.push(Diagnostic::error(
                self.code(),
                Location::spec("n_banks"),
                format!(
                    "{sets} sets do not split into a power of two per bank across {} banks",
                    s.n_banks
                ),
            ));
        }
    }
}

/// `CD0002`: block size is a power of two within the modeled range.
pub struct BlockSize;

impl Rule for BlockSize {
    fn code(&self) -> &'static str {
        "CD0002"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "block size must be a nonzero power of two (16–256 B typical for caches)"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let b = ctx.spec.block_bytes;
        if b == 0 || !b.is_power_of_two() {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::spec("block_bytes"),
                    format!("block size {b} B is not a nonzero power of two"),
                )
                .with_suggestion(
                    Location::spec("block_bytes"),
                    b.max(1).next_power_of_two().to_string(),
                ),
            );
        } else if ctx.spec.kind.is_cache() && !(16..=256).contains(&b) {
            report.push(Diagnostic::warn(
                self.code(),
                Location::spec("block_bytes"),
                format!("cache line of {b} B is outside the typical 16–256 B range"),
            ));
        }
    }
}

/// `CD0003`: bank count is a power of two and not implausibly large.
pub struct BankCount;

impl Rule for BankCount {
    fn code(&self) -> &'static str {
        "CD0003"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "bank count must be a nonzero power of two (≤ 64 plausible)"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let n = ctx.spec.n_banks;
        if n == 0 || !n.is_power_of_two() {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::spec("n_banks"),
                    format!("bank count {n} is not a nonzero power of two"),
                )
                .with_suggestion(
                    Location::spec("n_banks"),
                    n.max(1).next_power_of_two().to_string(),
                ),
            );
        } else if n > 64 {
            report.push(Diagnostic::warn(
                self.code(),
                Location::spec("n_banks"),
                format!("{n} banks is beyond the bank counts the paper studies (≤ 64)"),
            ));
        }
    }
}

/// `CD0004`: associativity matches the memory kind (1 for RAM / main
/// memory, ≤ 32 for caches).
pub struct Associativity;

impl Rule for Associativity {
    fn code(&self) -> &'static str {
        "CD0004"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "associativity must be 1 for RAM/main memory and 1–32 for caches"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let a = ctx.spec.associativity;
        let loc = Location::spec("associativity");
        if a == 0 {
            report.push(
                Diagnostic::error(self.code(), loc, "associativity is zero")
                    .with_suggestion(loc, "1"),
            );
            return;
        }
        match ctx.spec.kind {
            MemoryKind::Cache { .. } => {
                if a > 32 {
                    report.push(
                        Diagnostic::error(
                            self.code(),
                            loc,
                            format!("associativity {a} exceeds the modeled maximum of 32"),
                        )
                        .with_suggestion(loc, "32"),
                    );
                }
            }
            MemoryKind::Ram | MemoryKind::MainMemory { .. } => {
                if a != 1 {
                    report.push(
                        Diagnostic::error(
                            self.code(),
                            loc,
                            format!("non-cache memories are direct-addressed; associativity {a} is meaningless"),
                        )
                        .with_suggestion(loc, "1"),
                    );
                }
            }
        }
    }
}

/// `CD0005`: cell technology is compatible with the memory kind and node.
pub struct CellNodeCompat;

impl Rule for CellNodeCompat {
    fn code(&self) -> &'static str {
        "CD0005"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "main memory requires COMM-DRAM cells; 78 nm is a DRAM-process half node"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let s = ctx.spec;
        if matches!(s.kind, MemoryKind::MainMemory { .. })
            && s.cell_tech != CellTechnology::CommDram
        {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::spec("cell_tech"),
                    format!(
                        "a commodity main-memory chip cannot be built from {} cells",
                        s.cell_tech
                    ),
                )
                .with_suggestion(Location::spec("cell_tech"), "comm-dram"),
            );
        }
        if s.node == TechNode::N78 && s.cell_tech == CellTechnology::Sram {
            report.push(Diagnostic::warn(
                self.code(),
                Location::spec("node"),
                "78 nm is the DRAM-process half node used for Table 2 validation; \
                 SRAM parameters there are interpolated, not ITRS anchors",
            ));
        }
    }
}

/// `CD0006`: the resolved Table-1 cell parameters are within physical
/// bounds for the technology.
pub struct CellTable1Bounds;

impl Rule for CellTable1Bounds {
    fn code(&self) -> &'static str {
        "CD0006"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "resolved cell parameters must lie in their Table-1 physical bounds"
    }
    fn paper_ref(&self) -> &'static str {
        "Table 1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let c = &ctx.cell;
        if !(0.3..=3.0).contains(&c.vdd_cell.value()) {
            report.push(Diagnostic::error(
                self.code(),
                Location::cell("vdd_cell"),
                format!(
                    "cell VDD {:.2} V is outside the plausible 0.3–3.0 V band",
                    c.vdd_cell.value()
                ),
            ));
        }
        if c.vpp < c.vdd_cell {
            report.push(Diagnostic::error(
                self.code(),
                Location::cell("vpp"),
                format!(
                    "boosted wordline voltage {:.2} V is below the cell VDD {:.2} V",
                    c.vpp.value(),
                    c.vdd_cell.value()
                ),
            ));
        }
        if !(c.v_sense_margin > Volts::ZERO && c.v_sense_margin <= c.vdd_cell / 2.0) {
            report.push(Diagnostic::error(
                self.code(),
                Location::cell("v_sense_margin"),
                format!(
                    "sense margin {:.0} mV must be positive and at most VDD/2 = {:.0} mV",
                    c.v_sense_margin.value() * 1e3,
                    c.vdd_cell.value() / 2.0 * 1e3
                ),
            ));
        }
        if c.technology.is_dram() {
            if !(c.c_storage > Farads::ZERO
                && c.retention_time.is_finite()
                && c.retention_time > Seconds::ZERO)
            {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::cell("retention_time"),
                    "a DRAM cell needs a positive storage capacitance and a finite retention time",
                ));
            } else if !(5e-15..=100e-15).contains(&c.c_storage.value()) {
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::cell("c_storage"),
                    format!(
                        "storage capacitance {:.1} fF is outside the 5–100 fF Table-1 band",
                        c.c_storage.value() * 1e15
                    ),
                ));
            }
            if c.r_access_on <= Ohms::ZERO {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::cell("r_access_on"),
                    "DRAM access-transistor on-resistance must be positive",
                ));
            }
        } else {
            if c.i_cell_read <= Amperes::ZERO {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::cell("i_cell_read"),
                    "an SRAM cell must sink a positive read current",
                ));
            }
            if c.retention_time.is_finite() {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::cell("retention_time"),
                    "SRAM is static: retention time must be infinite (no refresh)",
                ));
            }
        }
    }
}

/// `CD0007`: the main-memory interface timing invariants — the internal
/// prefetch must be able to sustain the external burst, and a burst must
/// fit in the sensed page.
pub struct DramInterface;

impl Rule for DramInterface {
    fn code(&self) -> &'static str {
        "CD0007"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "prefetch ≥ burst length, and one burst (io·prefetch bits) must fit in the page"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let MemoryKind::MainMemory {
            io_bits,
            burst_length,
            prefetch,
            page_bits,
        } = ctx.spec.kind
        else {
            return;
        };
        if !io_bits.is_power_of_two() || io_bits > 32 {
            report.push(Diagnostic::error(
                self.code(),
                Location::spec("kind.io_bits"),
                format!("io width {io_bits} must be a power of two of at most 32 (x4/x8/x16)"),
            ));
        }
        if !burst_length.is_power_of_two() || burst_length > 16 {
            report.push(Diagnostic::error(
                self.code(),
                Location::spec("kind.burst_length"),
                format!("burst length {burst_length} must be a power of two of at most 16"),
            ));
        }
        if !prefetch.is_power_of_two() || prefetch < burst_length {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::spec("kind.prefetch"),
                    format!(
                        "internal prefetch of {prefetch} bits per pin cannot sustain a burst of \
                         {burst_length} beats — the data pins would starve mid-burst"
                    ),
                )
                .with_suggestion(
                    Location::spec("kind.prefetch"),
                    burst_length.max(1).next_power_of_two().to_string(),
                ),
            );
        }
        if page_bits == 0 || !page_bits.is_power_of_two() {
            report.push(Diagnostic::error(
                self.code(),
                Location::spec("kind.page_bits"),
                format!("page size {page_bits} bits must be a nonzero power of two"),
            ));
            return;
        }
        let burst_bits = u64::from(io_bits) * u64::from(prefetch);
        if burst_bits > page_bits {
            report.push(Diagnostic::error(
                self.code(),
                Location::spec("kind.page_bits"),
                format!(
                    "one access fetches {burst_bits} bits but the open page holds only \
                     {page_bits} — a burst cannot span pages"
                ),
            ));
        }
        if ctx.spec.n_banks > 0 && page_bits * 2 > ctx.spec.bank_bytes() * 8 {
            report.push(Diagnostic::error(
                self.code(),
                Location::spec("kind.page_bits"),
                format!(
                    "page of {page_bits} bits exceeds half a bank ({} bits) — the folded \
                     bitline array needs at least two pages per bank",
                    ctx.spec.bank_bytes() * 8
                ),
            ));
        }
    }
}

/// `CD0008`: the physical address width covers the capacity.
pub struct AddressBits;

impl Rule for AddressBits {
    fn code(&self) -> &'static str {
        "CD0008"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "address width must cover the capacity and stay within 64 bits"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.1"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let s = ctx.spec;
        let loc = Location::spec("address_bits");
        if s.address_bits == 0 || s.address_bits > 64 {
            report.push(Diagnostic::error(
                self.code(),
                loc,
                format!("address width {} bits is outside 1–64", s.address_bits),
            ));
            return;
        }
        let needed = 64
            - s.capacity_bytes.max(1).leading_zeros()
            - u32::from(s.capacity_bytes.is_power_of_two());
        if s.address_bits < needed {
            report.push(
                Diagnostic::error(
                    self.code(),
                    loc,
                    format!(
                        "{} address bits cannot even index the {} B capacity ({needed} bits \
                         needed) — the tag field underflows",
                        s.address_bits, s.capacity_bytes
                    ),
                )
                .with_suggestion(loc, needed.to_string()),
            );
        } else if s.address_bits > 52 {
            report.push(Diagnostic::warn(
                self.code(),
                loc,
                format!(
                    "{} address bits exceeds today's physical address spaces (≤ 52); \
                     tags will be oversized",
                    s.address_bits
                ),
            ));
        }
    }
}

/// `CD0009`: the §2.4 optimization knobs are self-consistent.
pub struct OptimizationKnobs;

impl Rule for OptimizationKnobs {
    fn code(&self) -> &'static str {
        "CD0009"
    }
    fn stage(&self) -> Stage {
        Stage::Spec
    }
    fn summary(&self) -> &'static str {
        "objective weights non-negative (one positive), repeater relax ≥ 1, overheads ≥ 0"
    }
    fn paper_ref(&self) -> &'static str {
        "§2.4"
    }
    fn default_severity(&self) -> Severity {
        Severity::Error
    }

    fn check(&self, ctx: &LintContext<'_>, report: &mut Report) {
        let o = &ctx.spec.opt;
        let weights = [
            ("opt.weight_dynamic", o.weight_dynamic),
            ("opt.weight_leakage", o.weight_leakage),
            ("opt.weight_cycle", o.weight_cycle),
            ("opt.weight_interleave", o.weight_interleave),
        ];
        for (field, w) in weights {
            if !(w.is_finite() && w >= 0.0) {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::spec(field),
                    format!("objective weight {w} must be finite and non-negative"),
                ));
            }
        }
        if weights.iter().all(|&(_, w)| w == 0.0) {
            report.push(Diagnostic::warn(
                self.code(),
                Location::spec("opt.weight_dynamic"),
                "all objective weights are zero — stage 3 of the §2.4 optimization \
                 degenerates to an arbitrary pick",
            ));
        }
        if o.repeater_relax.is_nan() || o.repeater_relax < 1.0 {
            report.push(
                Diagnostic::error(
                    self.code(),
                    Location::spec("opt.repeater_relax"),
                    format!(
                        "repeater relaxation {} is below 1.0 — H-tree repeaters cannot be \
                         faster than delay-optimal",
                        o.repeater_relax
                    ),
                )
                .with_suggestion(Location::spec("opt.repeater_relax"), "1.0"),
            );
        } else if o.repeater_relax > 4.0 {
            report.push(Diagnostic::warn(
                self.code(),
                Location::spec("opt.repeater_relax"),
                format!(
                    "repeater relaxation {} is beyond the knob's useful range (≤ 4): \
                     wire delay dominates and energy savings saturate",
                    o.repeater_relax
                ),
            ));
        }
        for (field, v) in [
            ("opt.max_area_overhead", o.max_area_overhead),
            ("opt.max_access_time_overhead", o.max_access_time_overhead),
        ] {
            if !(v.is_finite() && v >= 0.0) {
                report.push(Diagnostic::error(
                    self.code(),
                    Location::spec(field),
                    format!("optimization overhead {v} must be finite and non-negative"),
                ));
            } else if v > 10.0 {
                report.push(Diagnostic::warn(
                    self.code(),
                    Location::spec(field),
                    format!(
                        "overhead cap {v} (+{:.0}%) effectively disables the filter",
                        v * 100.0
                    ),
                ));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::{AccessMode, MemorySpec, OptimizationOptions};

    fn cache_spec() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    fn mm_spec() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 30)
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N32)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8 << 10,
            })
            .build()
            .unwrap()
    }

    fn run(rule: &dyn Rule, spec: &MemorySpec) -> Report {
        let ctx = LintContext::for_spec(spec);
        let mut report = Report::new();
        rule.check(&ctx, &mut report);
        report
    }

    #[test]
    fn cd0001_triggers_on_non_pow2_sets_and_passes_valid() {
        let mut bad = cache_spec();
        bad.capacity_bytes = 3 << 19; // 1.5 MB → 3072 sets
        let r = run(&CapacityGeometry, &bad);
        assert!(!r.is_clean());
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "CD0001");
        assert!(d.suggestion.is_some(), "suggests the next power of two");
        assert!(run(&CapacityGeometry, &cache_spec()).is_empty());
    }

    #[test]
    fn cd0001_triggers_on_bad_bank_split() {
        let mut bad = cache_spec();
        bad.n_banks = 4096; // more banks than the 2048 sets
        assert!(!run(&CapacityGeometry, &bad).is_clean());
    }

    #[test]
    fn cd0002_triggers_on_odd_block_and_passes_valid() {
        let mut bad = cache_spec();
        bad.block_bytes = 48;
        let r = run(&BlockSize, &bad);
        assert_eq!(r.error_count(), 1);
        assert_eq!(
            r.iter().next().unwrap().suggestion.as_ref().unwrap().value,
            "64"
        );
        assert!(run(&BlockSize, &cache_spec()).is_empty());
        // Tiny cache lines only warn.
        let mut tiny = cache_spec();
        tiny.block_bytes = 8;
        let r = run(&BlockSize, &tiny);
        assert!(r.is_clean() && r.warn_count() == 1);
    }

    #[test]
    fn cd0003_triggers_on_three_banks_and_passes_valid() {
        let mut bad = cache_spec();
        bad.n_banks = 3;
        assert_eq!(run(&BankCount, &bad).error_count(), 1);
        assert!(run(&BankCount, &cache_spec()).is_empty());
    }

    #[test]
    fn cd0004_triggers_on_associative_ram_and_passes_valid() {
        let mut bad = cache_spec();
        bad.kind = MemoryKind::Ram;
        let r = run(&Associativity, &bad);
        assert_eq!(r.error_count(), 1);
        assert_eq!(
            r.iter().next().unwrap().suggestion.as_ref().unwrap().value,
            "1"
        );
        let mut wide = cache_spec();
        wide.associativity = 64;
        assert_eq!(run(&Associativity, &wide).error_count(), 1);
        assert!(run(&Associativity, &cache_spec()).is_empty());
    }

    #[test]
    fn cd0005_triggers_on_sram_main_memory_and_passes_valid() {
        let mut bad = mm_spec();
        bad.cell_tech = CellTechnology::Sram;
        let r = run(&CellNodeCompat, &bad);
        assert!(!r.is_clean());
        assert_eq!(
            r.iter().next().unwrap().suggestion.as_ref().unwrap().value,
            "comm-dram"
        );
        assert!(run(&CellNodeCompat, &mm_spec()).is_empty());
        // SRAM at the 78 nm half node warns.
        let mut half = cache_spec();
        half.node = TechNode::N78;
        let r = run(&CellNodeCompat, &half);
        assert!(r.is_clean() && r.warn_count() == 1);
    }

    #[test]
    fn cd0006_triggers_on_corrupted_cell_and_passes_all_real_cells() {
        // Every real technology × node combination must be in bounds.
        for &node in TechNode::ALL {
            for &cell in CellTechnology::ALL {
                let mut s = cache_spec();
                s.cell_tech = cell;
                s.node = node;
                let r = run(&CellTable1Bounds, &s);
                assert!(r.is_empty(), "{cell} at {node:?}: {:?}", r.as_slice());
            }
        }
        // A corrupted context (vpp below vdd) triggers.
        let spec = cache_spec();
        let mut ctx = LintContext::for_spec(&spec);
        ctx.cell.vpp = ctx.cell.vdd_cell - Volts::from_si(0.2);
        let mut report = Report::new();
        CellTable1Bounds.check(&ctx, &mut report);
        assert!(!report.is_clean());
    }

    #[test]
    fn cd0007_triggers_on_prefetch_underrun_and_passes_valid() {
        let mut bad = mm_spec();
        bad.kind = MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 4, // cannot sustain the burst
            page_bits: 8 << 10,
        };
        let r = run(&DramInterface, &bad);
        assert_eq!(r.error_count(), 1);
        let d = r.iter().next().unwrap();
        assert_eq!(d.code, "CD0007");
        assert_eq!(d.suggestion.as_ref().unwrap().value, "8");
        assert!(run(&DramInterface, &mm_spec()).is_empty());
        assert!(
            run(&DramInterface, &cache_spec()).is_empty(),
            "cache exempt"
        );
    }

    #[test]
    fn cd0007_triggers_on_burst_wider_than_page() {
        let mut bad = mm_spec();
        bad.kind = MemoryKind::MainMemory {
            io_bits: 32,
            burst_length: 8,
            prefetch: 8,
            page_bits: 128, // 256-bit burst > 128-bit page
        };
        assert!(!run(&DramInterface, &bad).is_clean());
    }

    #[test]
    fn cd0008_triggers_on_narrow_address_and_passes_valid() {
        let mut bad = cache_spec();
        bad.address_bits = 16; // 1 MB needs 20
        let r = run(&AddressBits, &bad);
        assert_eq!(r.error_count(), 1);
        assert_eq!(
            r.iter().next().unwrap().suggestion.as_ref().unwrap().value,
            "20"
        );
        assert!(run(&AddressBits, &cache_spec()).is_empty());
    }

    #[test]
    fn cd0009_triggers_on_negative_weight_and_passes_valid() {
        let mut bad = cache_spec();
        bad.opt.weight_leakage = -1.0;
        assert_eq!(run(&OptimizationKnobs, &bad).error_count(), 1);
        let mut tight = cache_spec();
        tight.opt.repeater_relax = 0.5;
        assert_eq!(run(&OptimizationKnobs, &tight).error_count(), 1);
        let mut zeroed = cache_spec();
        zeroed.opt = OptimizationOptions {
            weight_dynamic: 0.0,
            weight_leakage: 0.0,
            weight_cycle: 0.0,
            weight_interleave: 0.0,
            ..OptimizationOptions::default()
        };
        let r = run(&OptimizationKnobs, &zeroed);
        assert!(r.is_clean() && r.warn_count() == 1);
        assert!(run(&OptimizationKnobs, &cache_spec()).is_empty());
    }
}
