//! Minimal JSON support for the analyze crate: string escaping for the
//! machine-readable diagnostics emitter ([`crate::render::render_json`])
//! and a small recursive-descent parser for reading back the JSONL records
//! the `cactid-explore` engine writes.
//!
//! Hand-rolled on purpose — the workspace is hermetic (no registry
//! dependencies), and the subset of JSON the engine emits is tiny: objects,
//! arrays, strings, finite numbers, booleans and null.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Escapes `s` as the contents of a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; keys keep first-wins semantics on duplicates.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects; `None` elsewhere.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an integer, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }
}

/// Parses one complete JSON value from `text` (surrounding whitespace
/// allowed, trailing garbage rejected).
///
/// # Errors
///
/// A short human-readable message naming the byte offset of the problem.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.entry(key).or_insert(val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            // Surrogate pairs are absent from the engine's
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| "invalid utf-8".to_string())?;
                    let Some(c) = s.chars().next() else {
                        unreachable!("peek() saw a byte, so the remainder is non-empty")
                    };
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let Ok(s) = std::str::from_utf8(&self.bytes[start..self.pos]) else {
            unreachable!("the number scanner consumes ASCII bytes only")
        };
        s.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("line\nbreak\ttab"), "line\\nbreak\\ttab");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn parses_engine_shaped_records() {
        let line = r#"{"idx":3,"cell":"comm-dram","access_ns":2.75,"ok":true,"pareto":{"frontier":false},"none":null,"list":[1,2]}"#;
        let v = parse(line).unwrap();
        assert_eq!(v.get("idx").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("cell").unwrap().as_str(), Some("comm-dram"));
        assert_eq!(v.get("access_ns").unwrap().as_f64(), Some(2.75));
        assert_eq!(v.get("ok").unwrap().as_bool(), Some(true));
        assert_eq!(
            v.get("pareto").unwrap().get("frontier").unwrap().as_bool(),
            Some(false)
        );
        assert_eq!(v.get("none"), Some(&JsonValue::Null));
        assert_eq!(
            v.get("list"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.0)
            ]))
        );
    }

    #[test]
    fn escape_and_parse_round_trip() {
        for s in ["a\"b", "tab\there", "uni→code", "back\\slash", "nl\n"] {
            let doc = format!("{{\"k\":\"{}\"}}", escape(s));
            let v = parse(&doc).unwrap();
            assert_eq!(v.get("k").unwrap().as_str(), Some(s), "{doc}");
        }
    }

    #[test]
    fn malformed_inputs_error_with_position() {
        for bad in ["", "{", "{\"a\":}", "[1,]", "{\"a\":1} x", "nul", "\"open"] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        assert!(parse("1e999").unwrap().as_f64().unwrap().is_infinite());
    }

    #[test]
    fn numbers_parse_exactly() {
        assert_eq!(parse("-0.5").unwrap().as_f64(), Some(-0.5));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }
}
