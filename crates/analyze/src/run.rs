//! Parsed view of a completed `cactid-explore` run: one [`RunRecord`] per
//! JSONL line, collected into the [`RunContext`] the cross-record `CD01xx`
//! rules ([`crate::rule::RunRule`]) analyze.
//!
//! Parsing is deliberately forgiving — every field is optional and
//! malformed lines are collected rather than fatal — because the whole
//! point of the run stage is to diagnose record sets that are *not* in
//! perfect shape. The `CD0105` integrity rule reports what the parser
//! tolerated.

use crate::json::{self, JsonValue};

/// The Pareto annotation of an `ok` record, when present.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ParetoFlag {
    /// `true` for frontier members.
    pub frontier: bool,
    /// Number of records this one dominates (frontier members only).
    pub dominates: Option<u64>,
}

/// One JSONL record of a batch run, with every engine-emitted field
/// optional so partially-written or hand-edited lines still parse.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRecord {
    /// 1-based line number in the source text.
    pub line_no: usize,
    /// Grid-point index.
    pub idx: Option<u64>,
    /// Capacity axis value \[bytes\].
    pub capacity_bytes: Option<u64>,
    /// Block-size axis value \[bytes\].
    pub block_bytes: Option<u64>,
    /// Associativity axis value.
    pub associativity: Option<u64>,
    /// Bank-count axis value.
    pub banks: Option<u64>,
    /// Technology node \[nm\].
    pub node_nm: Option<f64>,
    /// Cell-technology label.
    pub cell: Option<String>,
    /// Access-mode label.
    pub mode: Option<String>,
    /// Optimization-variant label.
    pub opt: Option<String>,
    /// Point status: `"ok"`, `"infeasible"`, or `"invalid"`.
    pub status: Option<String>,
    /// Access time \[ns\].
    pub access_ns: Option<f64>,
    /// Random cycle time \[ns\].
    pub random_cycle_ns: Option<f64>,
    /// Dynamic read energy \[nJ\].
    pub read_nj: Option<f64>,
    /// Dynamic write energy \[nJ\].
    pub write_nj: Option<f64>,
    /// Area \[mm²\].
    pub area_mm2: Option<f64>,
    /// Leakage power \[mW\].
    pub leakage_mw: Option<f64>,
    /// Refresh power \[mW\].
    pub refresh_mw: Option<f64>,
    /// Pareto annotation, when the run extracted a frontier.
    pub pareto: Option<ParetoFlag>,
}

impl RunRecord {
    /// `true` when the record is a solved point (`status == "ok"`).
    pub fn is_ok(&self) -> bool {
        self.status.as_deref() == Some("ok")
    }

    /// The four Pareto objectives in record units
    /// (ns, nJ, mm², mW), when all are present.
    pub fn objectives(&self) -> Option<[f64; 4]> {
        Some([
            self.access_ns?,
            self.read_nj?,
            self.area_mm2?,
            self.leakage_mw? + self.refresh_mw.unwrap_or(0.0),
        ])
    }

    fn from_value(line_no: usize, v: &JsonValue) -> RunRecord {
        let num = |k: &str| v.get(k).and_then(JsonValue::as_f64);
        let int = |k: &str| v.get(k).and_then(JsonValue::as_u64);
        let s = |k: &str| v.get(k).and_then(JsonValue::as_str).map(str::to_string);
        let pareto = v.get("pareto").and_then(|p| {
            Some(ParetoFlag {
                frontier: p.get("frontier")?.as_bool()?,
                dominates: p.get("dominates").and_then(JsonValue::as_u64),
            })
        });
        RunRecord {
            line_no,
            idx: int("idx"),
            capacity_bytes: int("capacity_bytes"),
            block_bytes: int("block_bytes"),
            associativity: int("associativity"),
            banks: int("banks"),
            node_nm: num("node_nm"),
            cell: s("cell"),
            mode: s("mode"),
            opt: s("opt"),
            status: s("status"),
            access_ns: num("access_ns"),
            random_cycle_ns: num("random_cycle_ns"),
            read_nj: num("read_nj"),
            write_nj: num("write_nj"),
            area_mm2: num("area_mm2"),
            leakage_mw: num("leakage_mw"),
            refresh_mw: num("refresh_mw"),
            pareto,
        }
    }
}

/// A parsed run: the records plus whatever failed to parse, ready for
/// [`crate::Analyzer::lint_run`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunContext {
    /// Records in file order.
    pub records: Vec<RunRecord>,
    /// `(line_no, parse error)` for lines that were not valid JSON
    /// objects; `CD0105` turns these into diagnostics.
    pub malformed: Vec<(usize, String)>,
}

impl RunContext {
    /// Parses a JSONL document (blank lines skipped, one record per line).
    pub fn parse(text: &str) -> RunContext {
        let mut ctx = RunContext::default();
        for (i, line) in text.lines().enumerate() {
            let line_no = i + 1;
            if line.trim().is_empty() {
                continue;
            }
            match json::parse(line) {
                Ok(v @ JsonValue::Obj(_)) => ctx.records.push(RunRecord::from_value(line_no, &v)),
                Ok(_) => ctx
                    .malformed
                    .push((line_no, "not a JSON object".to_string())),
                Err(e) => ctx.malformed.push((line_no, e)),
            }
        }
        ctx
    }

    /// Iterates over the solved (`ok`) records.
    pub fn ok_records(&self) -> impl Iterator<Item = &RunRecord> {
        self.records.iter().filter(|r| r.is_ok())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OK: &str = r#"{"idx":0,"capacity_bytes":65536,"block_bytes":64,"associativity":4,"banks":1,"node_nm":32,"cell":"sram","mode":"normal","opt":"default","status":"ok","access_ns":0.9,"random_cycle_ns":0.5,"read_nj":0.02,"write_nj":0.02,"area_mm2":0.3,"area_efficiency":0.6,"leakage_mw":12.5,"refresh_mw":0,"orgs_enumerated":200,"bound_pruned":10,"feasible":190,"lint_rejected":0,"pareto":{"frontier":true,"dominates":3}}"#;

    #[test]
    fn parses_an_engine_record() {
        let ctx = RunContext::parse(OK);
        assert!(ctx.malformed.is_empty());
        let r = &ctx.records[0];
        assert_eq!(r.line_no, 1);
        assert_eq!(r.idx, Some(0));
        assert_eq!(r.capacity_bytes, Some(65536));
        assert_eq!(r.cell.as_deref(), Some("sram"));
        assert!(r.is_ok());
        assert_eq!(r.objectives(), Some([0.9, 0.02, 0.3, 12.5]));
        assert_eq!(
            r.pareto,
            Some(ParetoFlag {
                frontier: true,
                dominates: Some(3)
            })
        );
    }

    #[test]
    fn malformed_and_blank_lines_are_tolerated() {
        let text = format!("{OK}\n\nnot json\n[1,2]\n");
        let ctx = RunContext::parse(&text);
        assert_eq!(ctx.records.len(), 1);
        assert_eq!(ctx.malformed.len(), 2);
        assert_eq!(ctx.malformed[0].0, 3);
        assert_eq!(ctx.malformed[1], (4, "not a JSON object".to_string()));
    }

    #[test]
    fn missing_fields_stay_none() {
        let ctx = RunContext::parse(r#"{"idx":7,"status":"infeasible","error":"no feasible"}"#);
        let r = &ctx.records[0];
        assert_eq!(r.idx, Some(7));
        assert!(!r.is_ok());
        assert_eq!(r.objectives(), None);
        assert_eq!(r.pareto, None);
    }
}
