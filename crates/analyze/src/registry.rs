//! The central rule registry: every rule the analyzer can run, with its
//! per-rule metadata, plus the `--allow`/`--warn`/`--deny` severity
//! override machinery.
//!
//! The registry is the single source of truth for "which rules exist".
//! The CLI lists it, the renderers look up rule notes through it, severity
//! overrides are validated against it, and a meta-lint test cross-checks
//! it against both the `rules/` source tree and the DESIGN.md rule tables.

use crate::rule::{Rule, RunRule, Stage};
use cactid_core::lint::{Diagnostic, Severity};
use std::collections::BTreeMap;

/// Per-rule metadata, identical in shape for object and run rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleMeta {
    /// Stable diagnostic code (`CD0001`…).
    pub code: &'static str,
    /// The stage the rule runs at.
    pub stage: Stage,
    /// The severity of the rule's primary finding before overrides.
    pub default_severity: Severity,
    /// One-line statement of the invariant.
    pub summary: &'static str,
    /// Paper section or table the invariant comes from.
    pub paper_ref: &'static str,
}

/// Every rule the analyzer knows, object and run stages together.
pub struct RuleRegistry {
    object_rules: Vec<Box<dyn Rule>>,
    run_rules: Vec<Box<dyn RunRule>>,
}

impl RuleRegistry {
    /// The standard registry: all built-in rules.
    pub fn standard() -> RuleRegistry {
        RuleRegistry {
            object_rules: crate::rules::all(),
            run_rules: crate::rules::all_run(),
        }
    }

    /// A registry with only the given object rules (no run rules); used to
    /// build analyzers with a custom rule set.
    pub fn from_object_rules(object_rules: Vec<Box<dyn Rule>>) -> RuleRegistry {
        RuleRegistry {
            object_rules,
            run_rules: Vec::new(),
        }
    }

    /// The object-stage rules, in code order.
    pub fn object_rules(&self) -> &[Box<dyn Rule>] {
        &self.object_rules
    }

    /// The run-stage rules, in code order.
    pub fn run_rules(&self) -> &[Box<dyn RunRule>] {
        &self.run_rules
    }

    /// Metadata for every registered rule, in code order.
    pub fn metas(&self) -> Vec<RuleMeta> {
        let mut metas: Vec<RuleMeta> = self
            .object_rules
            .iter()
            .map(|r| RuleMeta {
                code: r.code(),
                stage: r.stage(),
                default_severity: r.default_severity(),
                summary: r.summary(),
                paper_ref: r.paper_ref(),
            })
            .chain(self.run_rules.iter().map(|r| RuleMeta {
                code: r.code(),
                stage: Stage::Run,
                default_severity: r.default_severity(),
                summary: r.summary(),
                paper_ref: r.paper_ref(),
            }))
            .collect();
        metas.sort_by_key(|m| m.code);
        metas
    }

    /// Metadata for one rule code, if registered.
    pub fn meta(&self, code: &str) -> Option<RuleMeta> {
        self.metas().into_iter().find(|m| m.code == code)
    }

    /// `true` when `code` names a registered rule.
    pub fn contains(&self, code: &str) -> bool {
        self.meta(code).is_some()
    }
}

impl Default for RuleRegistry {
    fn default() -> Self {
        RuleRegistry::standard()
    }
}

impl std::fmt::Debug for RuleRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuleRegistry")
            .field("object_rules", &self.object_rules.len())
            .field("run_rules", &self.run_rules.len())
            .finish()
    }
}

/// What a severity override does to a rule's diagnostics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeverityAction {
    /// Drop the rule's diagnostics entirely.
    Allow,
    /// Demote (or promote) the rule's diagnostics to warnings.
    Warn,
    /// Promote the rule's diagnostics to errors.
    Deny,
}

/// A set of per-rule severity overrides (`--allow`/`--warn`/`--deny`).
///
/// Overrides apply to every diagnostic a rule emits, wherever the rule
/// runs — including the engine-side candidate linting a
/// [`crate::Analyzer`] performs during `solve`, so `--allow CD0016` (for
/// example) really does let non-finite solutions through.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SeverityOverrides {
    actions: BTreeMap<String, SeverityAction>,
}

impl SeverityOverrides {
    /// An empty override set.
    pub fn new() -> SeverityOverrides {
        SeverityOverrides::default()
    }

    /// Sets the action for one rule code (last write wins).
    pub fn set(&mut self, code: impl Into<String>, action: SeverityAction) {
        self.actions.insert(code.into(), action);
    }

    /// `true` when no overrides are set.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// The action for a rule code, if overridden.
    pub fn action(&self, code: &str) -> Option<SeverityAction> {
        self.actions.get(code).copied()
    }

    /// Checks every overridden code against the registry.
    ///
    /// # Errors
    ///
    /// The first code that does not name a registered rule.
    pub fn validate(&self, registry: &RuleRegistry) -> Result<(), String> {
        for code in self.actions.keys() {
            if !registry.contains(code) {
                return Err(format!("unknown rule code {code:?}"));
            }
        }
        Ok(())
    }

    /// Applies the overrides to one diagnostic: `None` when an `Allow`
    /// drops it, otherwise the (possibly re-severitied) diagnostic.
    pub fn apply(&self, mut d: Diagnostic) -> Option<Diagnostic> {
        match self.action(d.code) {
            Some(SeverityAction::Allow) => None,
            Some(SeverityAction::Warn) => {
                d.severity = Severity::Warn;
                Some(d)
            }
            Some(SeverityAction::Deny) => {
                d.severity = Severity::Error;
                Some(d)
            }
            None => Some(d),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::lint::Location;

    #[test]
    fn standard_registry_lists_every_rule_once() {
        let reg = RuleRegistry::standard();
        let metas = reg.metas();
        assert_eq!(metas.len(), 31, "22 object rules + 9 run rules");
        let codes: Vec<&str> = metas.iter().map(|m| m.code).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes, sorted, "metas must be unique and code-ordered");
        assert!(reg.contains("CD0001"));
        assert!(reg.contains("CD0105"));
        assert!(reg.contains("CD0204"));
        assert!(!reg.contains("CD9999"));
    }

    #[test]
    fn meta_carries_stage_and_severity() {
        let reg = RuleRegistry::standard();
        let m = reg.meta("CD0014").expect("wordline rule");
        assert_eq!(m.stage, Stage::Organization);
        assert_eq!(m.default_severity, Severity::Error);
        let m = reg.meta("CD0021").expect("plausibility rule");
        assert_eq!(m.default_severity, Severity::Warn);
        let m = reg.meta("CD0101").expect("run rule");
        assert_eq!(m.stage, Stage::Run);
        let m = reg.meta("CD0201").expect("prover soundness rule");
        assert_eq!(m.stage, Stage::Run);
        assert_eq!(m.default_severity, Severity::Error);
    }

    #[test]
    fn overrides_apply_per_diagnostic() {
        let mut ov = SeverityOverrides::new();
        ov.set("CD0001", SeverityAction::Allow);
        ov.set("CD0002", SeverityAction::Deny);
        ov.set("CD0003", SeverityAction::Warn);
        let d = |code| Diagnostic::warn(code, Location::spec("x"), "m");
        assert_eq!(ov.apply(d("CD0001")), None);
        assert_eq!(ov.apply(d("CD0002")).unwrap().severity, Severity::Error);
        assert_eq!(ov.apply(d("CD0003")).unwrap().severity, Severity::Warn);
        assert_eq!(ov.apply(d("CD0004")).unwrap().severity, Severity::Warn);
    }

    #[test]
    fn validate_rejects_unknown_codes() {
        let reg = RuleRegistry::standard();
        let mut ov = SeverityOverrides::new();
        ov.set("CD0016", SeverityAction::Allow);
        assert!(ov.validate(&reg).is_ok());
        ov.set("CD4242", SeverityAction::Deny);
        let err = ov.validate(&reg).unwrap_err();
        assert!(err.contains("CD4242"), "{err}");
    }
}
