//! The data a lint pass runs over: the spec, its resolved Table-1 cell
//! parameters, and (for later stages) an organization and a solution.

use cactid_core::{MemorySpec, OrgParams, Solution};
use cactid_tech::{CellParams, Technology};

/// Everything a [`crate::rule::Rule`] may look at.
///
/// Spec-stage rules use `spec` and `cell`; organization rules additionally
/// use `org`; solution rules use `solution` (whose `org` field is also
/// mirrored into `org`). Fields for stages that have not run yet are
/// `None`, and rules must tolerate that by emitting nothing.
#[derive(Debug, Clone)]
pub struct LintContext<'a> {
    /// The specification under analysis.
    pub spec: &'a MemorySpec,
    /// Table-1 cell parameters resolved for `spec.cell_tech` at `spec.node`.
    pub cell: CellParams,
    /// The candidate organization, for organization- and solution-stage
    /// passes.
    pub org: Option<&'a OrgParams>,
    /// The assembled solution, for solution-stage passes.
    pub solution: Option<&'a Solution>,
}

impl<'a> LintContext<'a> {
    /// Builds a spec-stage context, resolving the cell technology tables.
    pub fn for_spec(spec: &'a MemorySpec) -> Self {
        let tech = Technology::cached(spec.node);
        LintContext {
            spec,
            cell: tech.cell(spec.cell_tech),
            org: None,
            solution: None,
        }
    }

    /// Extends the context with a candidate organization.
    #[must_use]
    pub fn with_org(mut self, org: &'a OrgParams) -> Self {
        self.org = Some(org);
        self
    }

    /// Extends the context with an assembled solution (and its
    /// organization).
    #[must_use]
    pub fn with_solution(mut self, solution: &'a Solution) -> Self {
        self.org = Some(&solution.org);
        self.solution = Some(solution);
        self
    }
}
