//! The [`Analyzer`]: the rule registry plus staged lint passes, and the
//! linted solve/optimize entry points.

use crate::context::LintContext;
use crate::rule::{Rule, Stage};
use crate::rules;
use cactid_core::lint::{Diagnostic, Report, SolutionLinter};
use cactid_core::{CactiError, MemorySpec, OrgParams, Solution};

/// The diagnostics engine: all twenty-two registered rules, runnable per
/// stage over specs, organizations, and solutions.
///
/// `Analyzer` implements [`SolutionLinter`], so it can be plugged into
/// the optimizer via [`cactid_core::solve_with`] /
/// [`cactid_core::optimize_with`] — or more conveniently through this
/// crate's [`solve`] / [`optimize`], which also lint the spec first.
pub struct Analyzer {
    rules: Vec<Box<dyn Rule>>,
}

impl Analyzer {
    /// Builds the engine with the full `CD0001`–`CD0022` registry.
    pub fn new() -> Self {
        Analyzer {
            rules: rules::all(),
        }
    }

    /// Iterates over the registered rules in code order.
    pub fn rules(&self) -> impl Iterator<Item = &dyn Rule> {
        self.rules.iter().map(Box::as_ref)
    }

    /// Looks a rule up by its code (`"CD0015"`).
    pub fn rule(&self, code: &str) -> Option<&dyn Rule> {
        self.rules().find(|r| r.code() == code)
    }

    fn run(&self, ctx: &LintContext<'_>, stages: &[Stage]) -> Report {
        let mut report = Report::new();
        for rule in self.rules() {
            if stages.contains(&rule.stage()) {
                rule.check(ctx, &mut report);
            }
        }
        report
    }

    /// Runs the spec-stage rules over a specification.
    ///
    /// Works on *any* `MemorySpec`, including ones assembled by hand that
    /// bypass the builder's validation — that is the point: the linter
    /// names the violated invariant (`CD` code, field, suggested fix)
    /// where the builder would only return the first error message.
    pub fn lint_spec(&self, spec: &MemorySpec) -> Report {
        self.run(&LintContext::for_spec(spec), &[Stage::Spec])
    }

    /// Runs the spec- and organization-stage rules over one candidate
    /// organization.
    pub fn lint_org(&self, spec: &MemorySpec, org: &OrgParams) -> Report {
        self.run(
            &LintContext::for_spec(spec).with_org(org),
            &[Stage::Spec, Stage::Organization],
        )
    }

    /// Runs all three stages over an assembled solution.
    pub fn lint_solution(&self, spec: &MemorySpec, solution: &Solution) -> Report {
        self.run(
            &LintContext::for_spec(spec).with_solution(solution),
            Stage::ALL,
        )
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl SolutionLinter for Analyzer {
    /// Lints one candidate inside the optimizer sweep: organization- and
    /// solution-stage rules only (the spec is constant across the sweep
    /// and is linted once by [`solve`] / [`optimize`]).
    fn lint_candidate(&self, spec: &MemorySpec, solution: &Solution) -> Vec<Diagnostic> {
        self.run(
            &LintContext::for_spec(spec).with_solution(solution),
            &[Stage::Organization, Stage::Solution],
        )
        .into_vec()
    }
}

fn reject_spec_errors(analyzer: &Analyzer, spec: &MemorySpec) -> Result<(), CactiError> {
    let report = analyzer.lint_spec(spec);
    if report.is_clean() {
        return Ok(());
    }
    let first = report
        .iter()
        .find(|d| d.severity == cactid_core::Severity::Error)
        .expect("non-clean report has an error");
    Err(CactiError::InvalidSpec(format!(
        "[{}] {} (at {})",
        first.code, first.message, first.location
    )))
}

/// Linted [`cactid_core::solve`]: lints the spec (erroring out on any
/// `Error`-severity finding), then sweeps organizations with the engine
/// attached — candidates violating an `Error` rule are rejected, and the
/// survivors carry their warnings in [`Solution::warnings`].
///
/// # Errors
///
/// [`CactiError::InvalidSpec`] when a spec rule fires at `Error` severity
/// (the message carries the rule code and location);
/// [`CactiError::NoFeasibleSolution`] / [`CactiError::LintRejected`] from
/// the sweep.
pub fn solve(spec: &MemorySpec) -> Result<Vec<Solution>, CactiError> {
    let analyzer = Analyzer::new();
    reject_spec_errors(&analyzer, spec)?;
    cactid_core::solve_with(spec, &analyzer)
}

/// Linted [`cactid_core::optimize`]: like [`solve`] but returns the §2.4
/// staged-optimization winner, guaranteed free of `Error`-severity
/// diagnostics.
///
/// # Errors
///
/// Same as [`solve`].
pub fn optimize(spec: &MemorySpec) -> Result<Solution, CactiError> {
    let analyzer = Analyzer::new();
    reject_spec_errors(&analyzer, spec)?;
    cactid_core::optimize_with(spec, &analyzer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_core::{AccessMode, MemoryKind};
    use cactid_tech::{CellTechnology, TechNode};

    fn l2() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(512 << 10)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn valid_spec_lints_clean_and_solves() {
        let spec = l2();
        assert!(Analyzer::new().lint_spec(&spec).is_empty());
        let sol = optimize(&spec).unwrap();
        assert!(sol.warnings.is_empty(), "{:?}", sol.warnings);
    }

    #[test]
    fn hand_built_broken_spec_is_rejected_with_rule_code() {
        let mut spec = l2();
        spec.capacity_bytes = 3 << 19; // bypasses the builder: 3072 sets
        let err = optimize(&spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("CD0001"), "{msg}");
        assert!(msg.contains("spec.capacity_bytes"), "{msg}");
    }

    #[test]
    fn winner_agrees_with_unlinted_optimizer_on_valid_specs() {
        let spec = l2();
        let linted = optimize(&spec).unwrap();
        let plain = cactid_core::optimize(&spec).unwrap();
        assert_eq!(linted.org, plain.org);
    }

    #[test]
    fn lint_org_runs_spec_and_org_stages() {
        let spec = l2();
        let bad = OrgParams {
            ndwl: 3, // CD0010
            ndbl: 8,
            nspd: 1.0,
            deg_bl_mux: 1,
            deg_sa_mux: 8,
        };
        let report = Analyzer::new().lint_org(&spec, &bad);
        assert!(report.iter().any(|d| d.code == "CD0010"));
    }

    #[test]
    fn rule_lookup_finds_every_code() {
        let a = Analyzer::new();
        for rule in a.rules() {
            assert!(a.rule(rule.code()).is_some());
        }
        assert!(a.rule("CD9999").is_none());
    }
}
