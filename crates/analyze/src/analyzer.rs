//! The [`Analyzer`]: the rule registry plus staged lint passes, severity
//! overrides, and the linted solve/optimize entry points.

use crate::context::LintContext;
use crate::registry::{RuleRegistry, SeverityOverrides};
use crate::rule::{Rule, Stage};
use crate::run::RunContext;
use cactid_core::lint::{Diagnostic, Report, SolutionLinter};
use cactid_core::{CactiError, MemorySpec, OrgParams, Solution};

/// The diagnostics engine: a [`RuleRegistry`] plus a set of
/// [`SeverityOverrides`], runnable per stage over specs, organizations,
/// solutions, and completed batch runs.
///
/// `Analyzer` implements [`SolutionLinter`], so it can be plugged into
/// the optimizer via [`cactid_core::solve_with`] /
/// [`cactid_core::optimize_with`] — or more conveniently through this
/// crate's [`solve`] / [`optimize`], which also lint the spec first.
/// Severity overrides apply to *every* diagnostic the analyzer emits,
/// including engine-side candidate linting, so `--allow`ing a rule really
/// does let offending candidates through the sweep.
#[derive(Debug)]
pub struct Analyzer {
    registry: RuleRegistry,
    overrides: SeverityOverrides,
}

impl Analyzer {
    /// Builds the engine with the full standard registry and no overrides.
    pub fn new() -> Self {
        Analyzer {
            registry: RuleRegistry::standard(),
            overrides: SeverityOverrides::new(),
        }
    }

    /// Builds the engine with the standard registry and the given severity
    /// overrides.
    ///
    /// # Errors
    ///
    /// When an override names a rule code the registry does not contain.
    pub fn with_overrides(overrides: SeverityOverrides) -> Result<Self, String> {
        let registry = RuleRegistry::standard();
        overrides.validate(&registry)?;
        Ok(Analyzer {
            registry,
            overrides,
        })
    }

    /// The underlying registry.
    pub fn registry(&self) -> &RuleRegistry {
        &self.registry
    }

    /// Iterates over the registered object rules in code order.
    pub fn rules(&self) -> impl Iterator<Item = &dyn Rule> {
        self.registry.object_rules().iter().map(Box::as_ref)
    }

    /// Looks an object rule up by its code (`"CD0015"`).
    pub fn rule(&self, code: &str) -> Option<&dyn Rule> {
        self.rules().find(|r| r.code() == code)
    }

    fn apply_overrides(&self, raw: Report) -> Report {
        if self.overrides.is_empty() {
            return raw;
        }
        raw.into_vec()
            .into_iter()
            .filter_map(|d| self.overrides.apply(d))
            .collect()
    }

    fn run(&self, ctx: &LintContext<'_>, stages: &[Stage]) -> Report {
        let mut report = Report::new();
        for rule in self.rules() {
            if stages.contains(&rule.stage()) {
                rule.check(ctx, &mut report);
            }
        }
        self.apply_overrides(report)
    }

    /// Runs the spec-stage rules over a specification.
    ///
    /// Works on *any* `MemorySpec`, including ones assembled by hand that
    /// bypass the builder's validation — that is the point: the linter
    /// names the violated invariant (`CD` code, field, suggested fix)
    /// where the builder would only return the first error message.
    pub fn lint_spec(&self, spec: &MemorySpec) -> Report {
        self.run(&LintContext::for_spec(spec), &[Stage::Spec])
    }

    /// Runs the spec- and organization-stage rules over one candidate
    /// organization.
    pub fn lint_org(&self, spec: &MemorySpec, org: &OrgParams) -> Report {
        self.run(
            &LintContext::for_spec(spec).with_org(org),
            &[Stage::Spec, Stage::Organization],
        )
    }

    /// Runs the three object stages over an assembled solution.
    pub fn lint_solution(&self, spec: &MemorySpec, solution: &Solution) -> Report {
        self.run(
            &LintContext::for_spec(spec).with_solution(solution),
            Stage::OBJECT,
        )
    }

    /// Runs the `CD01xx` cross-record rules over a completed batch run.
    pub fn lint_run(&self, run: &RunContext) -> Report {
        let mut report = Report::new();
        for rule in self.registry.run_rules() {
            rule.check(run, &mut report);
        }
        self.apply_overrides(report)
    }
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl SolutionLinter for Analyzer {
    /// Lints one candidate inside the optimizer sweep: organization- and
    /// solution-stage rules only (the spec is constant across the sweep
    /// and is linted once by [`solve`] / [`optimize`]).
    fn lint_candidate(&self, spec: &MemorySpec, solution: &Solution) -> Vec<Diagnostic> {
        self.run(
            &LintContext::for_spec(spec).with_solution(solution),
            &[Stage::Organization, Stage::Solution],
        )
        .into_vec()
    }
}

fn reject_spec_errors(analyzer: &Analyzer, spec: &MemorySpec) -> Result<(), CactiError> {
    let report = analyzer.lint_spec(spec);
    if report.is_clean() {
        return Ok(());
    }
    let Some(first) = report
        .iter()
        .find(|d| d.severity == cactid_core::Severity::Error)
    else {
        unreachable!("a non-clean report contains an error diagnostic")
    };
    Err(CactiError::InvalidSpec(format!(
        "[{}] {} (at {})",
        first.code, first.message, first.location
    )))
}

/// Linted [`cactid_core::solve`]: lints the spec (erroring out on any
/// `Error`-severity finding), then sweeps organizations with the engine
/// attached — candidates violating an `Error` rule are rejected, and the
/// survivors carry their warnings in [`Solution::warnings`].
///
/// # Errors
///
/// [`CactiError::InvalidSpec`] when a spec rule fires at `Error` severity
/// (the message carries the rule code and location);
/// [`CactiError::NoFeasibleSolution`] / [`CactiError::LintRejected`] from
/// the sweep.
pub fn solve(spec: &MemorySpec) -> Result<Vec<Solution>, CactiError> {
    let analyzer = Analyzer::new();
    reject_spec_errors(&analyzer, spec)?;
    cactid_core::solve_with(spec, &analyzer)
}

/// Linted [`cactid_core::optimize`]: like [`solve`] but returns the §2.4
/// staged-optimization winner, guaranteed free of `Error`-severity
/// diagnostics.
///
/// # Errors
///
/// Same as [`solve`].
pub fn optimize(spec: &MemorySpec) -> Result<Solution, CactiError> {
    let analyzer = Analyzer::new();
    reject_spec_errors(&analyzer, spec)?;
    cactid_core::optimize_with(spec, &analyzer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::SeverityAction;
    use cactid_core::{AccessMode, MemoryKind, Severity};
    use cactid_tech::{CellTechnology, TechNode};

    fn l2() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(512 << 10)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn valid_spec_lints_clean_and_solves() {
        let spec = l2();
        assert!(Analyzer::new().lint_spec(&spec).is_empty());
        let sol = optimize(&spec).unwrap();
        assert!(sol.warnings.is_empty(), "{:?}", sol.warnings);
    }

    #[test]
    fn hand_built_broken_spec_is_rejected_with_rule_code() {
        let mut spec = l2();
        spec.capacity_bytes = 3 << 19; // bypasses the builder: 3072 sets
        let err = optimize(&spec).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("CD0001"), "{msg}");
        assert!(msg.contains("spec.capacity_bytes"), "{msg}");
    }

    #[test]
    fn winner_agrees_with_unlinted_optimizer_on_valid_specs() {
        let spec = l2();
        let linted = optimize(&spec).unwrap();
        let plain = cactid_core::optimize(&spec).unwrap();
        assert_eq!(linted.org, plain.org);
    }

    #[test]
    fn lint_org_runs_spec_and_org_stages() {
        let spec = l2();
        let bad = OrgParams {
            ndwl: 3, // CD0010
            ndbl: 8,
            nspd: 1.0,
            deg_bl_mux: 1,
            deg_sa_mux: 8,
        };
        let report = Analyzer::new().lint_org(&spec, &bad);
        assert!(report.iter().any(|d| d.code == "CD0010"));
    }

    #[test]
    fn rule_lookup_finds_every_code() {
        let a = Analyzer::new();
        for rule in a.rules() {
            assert!(a.rule(rule.code()).is_some());
        }
        assert!(a.rule("CD9999").is_none());
    }

    #[test]
    fn overrides_reshape_lint_spec_output() {
        let mut spec = l2();
        spec.capacity_bytes = 3 << 19; // CD0001 at Error by default

        let mut allow = SeverityOverrides::new();
        allow.set("CD0001", SeverityAction::Allow);
        let report = Analyzer::with_overrides(allow).unwrap().lint_spec(&spec);
        assert!(!report.iter().any(|d| d.code == "CD0001"), "{report:?}");

        let mut demote = SeverityOverrides::new();
        demote.set("CD0001", SeverityAction::Warn);
        let report = Analyzer::with_overrides(demote).unwrap().lint_spec(&spec);
        let d = report.iter().find(|d| d.code == "CD0001").unwrap();
        assert_eq!(d.severity, Severity::Warn);
    }

    #[test]
    fn with_overrides_rejects_unknown_codes() {
        let mut ov = SeverityOverrides::new();
        ov.set("CD7777", SeverityAction::Deny);
        let err = Analyzer::with_overrides(ov).unwrap_err();
        assert!(err.contains("CD7777"), "{err}");
    }

    #[test]
    fn demoting_a_spec_error_lets_optimize_proceed() {
        let mut spec = l2();
        spec.capacity_bytes = 3 << 19;
        let mut ov = SeverityOverrides::new();
        ov.set("CD0001", SeverityAction::Allow);
        let analyzer = Analyzer::with_overrides(ov).unwrap();
        // The spec gate sees no error; the sweep itself decides.
        assert!(analyzer.lint_spec(&spec).is_clean());
    }

    #[test]
    fn lint_run_applies_run_rules_and_overrides() {
        let text = r#"{"idx":0,"status":"exploded"}"#;
        let run = RunContext::parse(text);
        let report = Analyzer::new().lint_run(&run);
        assert!(report.iter().any(|d| d.code == "CD0105"));
        assert!(report.error_count() >= 1);

        let mut ov = SeverityOverrides::new();
        ov.set("CD0105", SeverityAction::Warn);
        let report = Analyzer::with_overrides(ov).unwrap().lint_run(&run);
        assert_eq!(report.error_count(), 0);
        assert!(report.warn_count() >= 1);
    }
}
