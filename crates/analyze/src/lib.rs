//! # cactid-analyze — diagnostics and static validation for CACTI-D
//!
//! A lint engine over the three kinds of objects the CACTI-D model
//! handles — input **specs**, candidate array **organizations**, and
//! assembled **solutions** — plus a fourth, cross-record **run** stage
//! over completed `cactid-explore` JSONL runs. Twenty-two object rules
//! (`CD0001`–`CD0022`) each enforce one invariant from the paper:
//! power-of-two geometry and Table-1 parameter bounds at the spec stage,
//! `Ndwl`/`Ndbl`/mux legality and wordline-RC sanity at the organization
//! stage, and the §2.3.2 DRAM command-timing inequalities
//! (`tRCD + CAS ≤ access`, `tRC = tRAS + tRP`, `tRRD > 0`), refresh
//! consistency, and sense margins at the solution stage. Nine run rules
//! check capacity-sweep monotonicity, Pareto annotation consistency,
//! metric plausibility windows, and record-set integrity across a whole
//! run (`CD0101`–`CD0105`), plus the `cactid prove` interval-certifier
//! findings (`CD0201`–`CD0204`: certificate soundness, window
//! satisfiability, dead window edges, and certified prescreen bounds —
//! computed out-of-band by the sibling `cactid-prove` crate).
//!
//! Every rule is registered in the central [`RuleRegistry`] with its
//! metadata (code, stage, default severity, one-line invariant, paper
//! reference). Severities can be reshaped per rule with
//! [`SeverityOverrides`] (`--allow`/`--warn`/`--deny` on the CLI).
//!
//! Findings are structured [`Diagnostic`] records — stable rule code,
//! [`Severity`], a [`Location`] naming the offending field, a message
//! with the actual numbers, and a machine-readable suggested fix — and
//! can be rendered rustc-style with [`render::render`].
//!
//! The engine plugs into the optimizer: [`optimize`] (or
//! [`cactid_core::optimize_with`] with an [`Analyzer`]) never returns a
//! solution that fails an `Error`-severity rule; surviving warnings ride
//! along in [`Solution::warnings`](cactid_core::Solution).
//!
//! # Example
//!
//! ```
//! use cactid_analyze::{Analyzer, render};
//! use cactid_core::{MemorySpec, MemoryKind, AccessMode};
//! use cactid_tech::{CellTechnology, TechNode};
//!
//! // A hand-assembled spec that bypasses the builder's validation:
//! let mut spec = MemorySpec::builder()
//!     .capacity_bytes(1 << 20)
//!     .block_bytes(64)
//!     .associativity(8)
//!     .banks(1)
//!     .cell_tech(CellTechnology::Sram)
//!     .node(TechNode::N32)
//!     .kind(MemoryKind::Cache { access_mode: AccessMode::Normal })
//!     .build()
//!     .unwrap();
//! spec.capacity_bytes = 3 << 19; // 1.5 MB → 3072 sets: not a power of two
//!
//! let analyzer = Analyzer::new();
//! let report = analyzer.lint_spec(&spec);
//! assert!(!report.is_clean());
//! assert!(render::render(&analyzer, &report).contains("error[CD0001]"));
//! ```

pub mod analyzer;
pub mod context;
pub mod json;
pub mod registry;
pub mod render;
pub mod rule;
pub mod rules;
pub mod run;

pub use analyzer::{optimize, solve, Analyzer};
pub use context::LintContext;
pub use registry::{RuleMeta, RuleRegistry, SeverityAction, SeverityOverrides};
pub use render::{render_json, summary_line};
pub use rule::{Rule, RunRule, Stage};
pub use run::{RunContext, RunRecord};

// The record types live in cactid-core (so the optimizer can consume
// diagnostics without a dependency cycle); re-export them as this crate's
// public vocabulary.
pub use cactid_core::lint::{
    Diagnostic, LintObject, Location, Report, Severity, SolutionLinter, Suggestion,
};
