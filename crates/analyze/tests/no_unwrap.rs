//! Panic-hygiene meta-lint over the whole workspace's library sources:
//! no `.unwrap()` or `.expect(` outside `#[cfg(test)]` code. Library code
//! either propagates errors, recovers (`unwrap_or_else`, poison
//! recovery), or states the impossibility explicitly with
//! `unreachable!`/`panic!` and a reason — a bare unwrap hides which of
//! those three the author meant. Like the rule meta-lints, this reads the
//! repository sources at test time, so a new offender is a test failure,
//! not a review hazard.

use std::path::{Path, PathBuf};

/// The workspace `crates/` directory, resolved from this crate.
fn crates_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../crates")
}

/// Every `.rs` file under `dir`, recursively.
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
    for entry in entries {
        let path = entry.unwrap().path();
        if path.is_dir() {
            rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// One line with `//` comments, string-literal contents, and char
/// literals removed, so brace counting and pattern matching see only
/// code. Lifetimes (`'a`) are kept; escapes inside literals are skipped.
fn strip_literals_and_comments(line: &str) -> String {
    let mut out = String::new();
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '/' if chars.peek() == Some(&'/') => break,
            '"' => {
                while let Some(c2) = chars.next() {
                    match c2 {
                        '\\' => {
                            chars.next();
                        }
                        '"' => break,
                        _ => {}
                    }
                }
                out.push_str("\"\"");
            }
            '\'' => {
                // A char literal closes within a few chars; a lifetime
                // never closes — keep what was consumed in that case.
                let mut buf = String::new();
                let mut closed = false;
                for _ in 0..3 {
                    match chars.next() {
                        Some('\\') => {
                            if let Some(e) = chars.next() {
                                buf.push('\\');
                                buf.push(e);
                            }
                        }
                        Some('\'') => {
                            closed = true;
                            break;
                        }
                        Some(other) => buf.push(other),
                        None => break,
                    }
                }
                if !closed {
                    out.push_str(&buf);
                }
            }
            other => out.push(other),
        }
    }
    out
}

/// The non-test, non-comment lines of one source file, 1-indexed.
///
/// `#[cfg(test)]` blocks are skipped by brace counting from the attribute
/// to the matching close, over comment- and literal-stripped lines so
/// braces in strings or char literals cannot miscount.
fn non_test_code(text: &str) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth: i64 = 0;
    let mut skip_above: i64 = -1; // depth the cfg(test) block returns to
    let mut armed = false; // saw #[cfg(test)], block not yet opened
    for (i, line) in text.lines().enumerate() {
        let code = strip_literals_and_comments(line);
        if code.trim_start().starts_with("#[cfg(test)]") {
            armed = true;
            continue;
        }
        let opens = code.matches('{').count() as i64;
        let closes = code.matches('}').count() as i64;
        if armed {
            if opens == 0 {
                // A braceless gated item (a `use`, a one-line fn signature
                // continues below — treat the next braced line as the body).
                if code.trim_end().ends_with(';') {
                    armed = false;
                }
                continue;
            }
            skip_above = depth;
            armed = false;
        }
        depth += opens - closes;
        if skip_above >= 0 {
            if depth <= skip_above {
                skip_above = -1;
            }
            continue;
        }
        out.push((i + 1, code.clone()));
    }
    out
}

#[test]
fn library_sources_never_unwrap_or_expect_outside_tests() {
    let mut files = Vec::new();
    let crates = crates_dir();
    let entries =
        std::fs::read_dir(&crates).unwrap_or_else(|e| panic!("{}: {e}", crates.display()));
    for entry in entries {
        let src = entry.unwrap().path().join("src");
        if src.is_dir() {
            rs_files(&src, &mut files);
        }
    }
    assert!(files.len() > 10, "crate scan found too few sources");

    let mut offenders = Vec::new();
    for path in &files {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("reading {}: {e}", path.display()));
        for (lineno, code) in non_test_code(&text) {
            if code.contains(".unwrap()") || code.contains(".expect(") {
                offenders.push(format!("{}:{lineno}: {}", path.display(), code.trim()));
            }
        }
    }
    assert!(
        offenders.is_empty(),
        "bare .unwrap()/.expect( in library (non-test) code — propagate the \
         error, recover, or use unreachable!/panic! with a reason:\n{}",
        offenders.join("\n")
    );
}

#[test]
fn the_test_block_skipper_skips_and_restores() {
    let src = "\
fn a() {
    x.unwrap_or_else(|e| e);
}
#[cfg(test)]
mod tests {
    fn b() {
        y.unwrap();
    }
}
fn c() {
    z.unwrap();
}
";
    let kept = non_test_code(src);
    let text: String = kept.iter().map(|(_, l)| l.as_str()).collect();
    assert!(!text.contains("y.unwrap"), "cfg(test) body must be skipped");
    assert!(
        text.contains("z.unwrap"),
        "code after the block must return"
    );
    assert!(text.contains("unwrap_or_else"), "prefix must be kept");
}

#[test]
fn comments_and_gated_use_lines_are_ignored() {
    let src = "\
// a comment saying .unwrap() is fine here
#[cfg(test)]
use std::fmt::Write as _;
fn d() {} // trailing .expect( note
";
    let kept = non_test_code(src);
    let text: String = kept.iter().map(|(_, l)| l.as_str()).collect();
    assert!(!text.contains(".unwrap()"));
    assert!(!text.contains(".expect("));
}
