//! Schema coverage for the `--format json` diagnostics emitter: a golden
//! file pins the exact bytes for a known-bad spec, and a round-trip test
//! proves every `Severity` and `LintObject` variant survives
//! `render_json` → `json::parse`.

use cactid_analyze::json::{self, JsonValue};
use cactid_analyze::{render_json, Analyzer, Diagnostic, Location, Report};
use cactid_core::{AccessMode, MemoryKind, MemorySpec};
use cactid_tech::{CellTechnology, TechNode};

/// 1.5 MB capacity, 48 B blocks, 3 banks: trips CD0001 (sets don't split
/// across banks), CD0002 (block size), and CD0003 (bank count), with both
/// null and non-null suggestions in one report.
fn bad_spec() -> MemorySpec {
    MemorySpec {
        capacity_bytes: 1536 << 10,
        block_bytes: 48,
        associativity: 8,
        n_banks: 3,
        kind: MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        },
        cell_tech: CellTechnology::Sram,
        node: TechNode::N32,
        address_bits: 40,
        opt: Default::default(),
    }
}

#[test]
fn known_bad_spec_matches_the_golden_jsonl() {
    let analyzer = Analyzer::new();
    let report = analyzer.lint_spec(&bad_spec());
    let expected = include_str!("goldens/bad_spec.jsonl");
    assert_eq!(
        render_json(&analyzer, &report),
        expected,
        "json emitter output drifted from tests/goldens/bad_spec.jsonl \
         (regenerate it deliberately if the schema changed)"
    );
}

#[test]
fn every_severity_and_location_variant_round_trips() {
    // One diagnostic per severity, spread across all four location
    // objects, plus an unregistered code to cover `rule: null` and a
    // suggestion to cover the non-null branch.
    let report: Report = [
        Diagnostic::error("CD0001", Location::spec("capacity_bytes"), "err \"quoted\"")
            .with_suggestion(Location::spec("capacity_bytes"), "2097152"),
        Diagnostic::warn("CD0101", Location::run("access_ns"), "warn msg"),
        Diagnostic::info("CD0010", Location::org("ndwl"), "info msg"),
        Diagnostic::error("CD9999", Location::solution("area"), "unregistered"),
    ]
    .into_iter()
    .collect();
    let analyzer = Analyzer::new();
    let out = render_json(&analyzer, &report);
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 4, "one JSON object per diagnostic:\n{out}");

    let expect = [
        ("CD0001", "error", "spec", true, true),
        ("CD0101", "warning", "run", false, true),
        ("CD0010", "info", "organization", false, true),
        ("CD9999", "error", "solution", false, false),
    ];
    for (line, (code, severity, object, has_suggestion, has_rule)) in lines.iter().zip(expect) {
        let v = json::parse(line).unwrap_or_else(|e| panic!("{line}: {e}"));
        let s = |k: &str| v.get(k).and_then(JsonValue::as_str).map(str::to_string);
        assert_eq!(s("code").as_deref(), Some(code));
        assert_eq!(s("severity").as_deref(), Some(severity));
        let loc = v.get("location").expect("location object");
        assert_eq!(
            loc.get("object").and_then(JsonValue::as_str),
            Some(object),
            "{line}"
        );
        let path = loc.get("path").and_then(JsonValue::as_str).unwrap();
        assert!(path.starts_with(object), "path {path} echoes the object");
        assert_eq!(
            v.get("suggestion")
                .is_some_and(|x| !matches!(x, JsonValue::Null)),
            has_suggestion,
            "{line}"
        );
        let rule = v.get("rule").expect("rule key always present");
        assert_eq!(!matches!(rule, JsonValue::Null), has_rule, "{line}");
        if has_rule {
            assert!(
                rule.get("default_severity")
                    .and_then(JsonValue::as_str)
                    .is_some(),
                "{line}"
            );
        }
        // The quoted-string escape must survive the round trip.
        if code == "CD0001" {
            assert_eq!(s("message").as_deref(), Some("err \"quoted\""));
        }
    }
}

#[test]
fn empty_reports_emit_nothing() {
    let analyzer = Analyzer::new();
    assert_eq!(render_json(&analyzer, &Report::new()), "");
}
