//! Integration tests: the diagnostics engine against the paper's own
//! configurations (Table 3 / §3.1) and against the optimizer hook.

use cactid_analyze::{Analyzer, Severity, SolutionLinter};
use cactid_core::{
    AccessMode, CactiError, Diagnostic, MemoryKind, MemorySpec, OptimizationOptions, Solution,
};
use cactid_tech::{CellTechnology, TechNode};
use llc_study::configs::{c_options, ed_options, main_memory_spec, LlcKind};

/// Rebuilds the study's cache spec exactly as `llc_study::configs::build`
/// does (its helper is private): 64 B blocks, 32 nm, normal access.
fn study_cache_spec(
    capacity: u64,
    assoc: u32,
    banks: u32,
    cell: CellTechnology,
    opt: OptimizationOptions,
) -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(capacity)
        .block_bytes(64)
        .associativity(assoc)
        .banks(banks)
        .cell_tech(cell)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .optimization(opt)
        .build()
        .expect("study cache specs are valid")
}

/// Every spec the Table 3 study solves: the L1, the L2, the five L3
/// variants, and the 8 Gb main-memory chip.
fn table3_specs() -> Vec<(String, MemorySpec)> {
    let mut specs = vec![
        (
            "L1 32K".to_string(),
            study_cache_spec(
                32 << 10,
                8,
                1,
                CellTechnology::Sram,
                OptimizationOptions::default(),
            ),
        ),
        (
            "L2 1M".to_string(),
            study_cache_spec(
                1 << 20,
                8,
                1,
                CellTechnology::Sram,
                OptimizationOptions::default(),
            ),
        ),
        ("main memory 8Gb".to_string(), main_memory_spec()),
    ];
    for kind in LlcKind::ALL {
        if let Some((cap, assoc, cell, cap_opt)) = kind.l3_shape() {
            let mut opt = if cap_opt { c_options() } else { ed_options() };
            opt.sleep_transistors = cell == CellTechnology::Sram;
            specs.push((
                format!("L3 {}", kind.label()),
                study_cache_spec(cap, assoc, 8, cell, opt),
            ));
        }
    }
    specs
}

#[test]
fn table3_specs_lint_clean() {
    let analyzer = Analyzer::new();
    for (name, spec) in table3_specs() {
        let report = analyzer.lint_spec(&spec);
        assert!(report.is_empty(), "{name}: {:?}", report.as_slice());
    }
}

#[test]
fn table3_solutions_lint_clean() {
    let analyzer = Analyzer::new();
    for (name, spec) in table3_specs() {
        let sol = cactid_analyze::optimize(&spec)
            .unwrap_or_else(|e| panic!("{name} does not solve: {e}"));
        assert!(sol.warnings.is_empty(), "{name}: {:?}", sol.warnings);
        let report = analyzer.lint_solution(&spec, &sol);
        assert!(report.is_empty(), "{name}: {:?}", report.as_slice());
    }
}

/// A linter that sabotages every candidate before judging it: it corrupts
/// the CAS latency so that `tRCD + CAS > access_time`, then runs the real
/// engine. Every candidate must therefore trip `CD0015` and be rejected,
/// and the optimizer must surface `CactiError::LintRejected` instead of
/// returning a solution that failed an Error-severity rule.
struct CorruptingLinter(Analyzer);

impl SolutionLinter for CorruptingLinter {
    fn lint_candidate(&self, spec: &MemorySpec, solution: &Solution) -> Vec<Diagnostic> {
        let mut corrupted = solution.clone();
        if let Some(mm) = &mut corrupted.main_memory {
            mm.timing.cas_latency = 2.0 * corrupted.access_time;
        }
        self.0.lint_candidate(spec, &corrupted)
    }
}

#[test]
fn corrupted_dram_timing_is_rejected_by_the_optimizer_hook() {
    let spec = main_memory_spec();
    let linter = CorruptingLinter(Analyzer::new());

    // Sanity: the corruption really does produce a CD0015 error.
    let good = cactid_core::optimize(&spec).expect("main memory solves");
    let diags = linter.lint_candidate(&spec, &good);
    assert!(
        diags
            .iter()
            .any(|d| d.code == "CD0015" && d.severity == Severity::Error),
        "{diags:?}"
    );

    let err = cactid_core::optimize_with(&spec, &linter).unwrap_err();
    assert!(
        matches!(err, CactiError::LintRejected(n) if n > 0),
        "expected LintRejected, got: {err}"
    );
}

#[test]
fn optimizer_never_returns_a_solution_failing_an_error_rule() {
    let analyzer = Analyzer::new();
    let spec = main_memory_spec();
    let sols = cactid_core::solve_with(&spec, &analyzer).expect("main memory solves");
    assert!(!sols.is_empty());
    for sol in &sols {
        let errors: Vec<_> = analyzer
            .lint_solution(&spec, sol)
            .into_vec()
            .into_iter()
            .filter(|d| d.severity == Severity::Error)
            .collect();
        assert!(errors.is_empty(), "{:?}: {errors:?}", sol.org);
    }
}
