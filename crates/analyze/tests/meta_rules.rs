//! Meta-lints over the rule set itself: every `CDxxxx` id that appears in
//! the rule sources must be registered in the `RuleRegistry`, and every
//! registered rule must be documented in DESIGN.md's rule tables. These
//! tests read the repository sources at test time, so adding a rule
//! without registering and documenting it is a test failure, not a
//! review hazard.

use cactid_analyze::RuleRegistry;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn rules_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("src/rules")
}

fn design_md() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../DESIGN.md");
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {}: {e}", path.display()))
}

/// Every `CD` followed by exactly four digits in `text`.
fn cd_codes(text: &str) -> BTreeSet<String> {
    let bytes = text.as_bytes();
    let mut out = BTreeSet::new();
    for i in 0..bytes.len().saturating_sub(5) {
        if &bytes[i..i + 2] == b"CD" && bytes[i + 2..i + 6].iter().all(u8::is_ascii_digit) {
            // Reject longer runs like CD00011 — rule codes are exactly
            // four digits.
            if bytes.get(i + 6).is_none_or(|b| !b.is_ascii_digit()) {
                out.insert(text[i..i + 6].to_string());
            }
        }
    }
    out
}

fn codes_in_sources() -> BTreeSet<String> {
    let dir = rules_dir();
    let mut out = BTreeSet::new();
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display())) {
        let path = entry.unwrap().path();
        if path.extension().is_some_and(|e| e == "rs") {
            out.extend(cd_codes(&std::fs::read_to_string(&path).unwrap()));
        }
    }
    out
}

#[test]
fn every_code_in_the_sources_is_registered_and_vice_versa() {
    let registry = RuleRegistry::standard();
    let registered: BTreeSet<String> = registry
        .metas()
        .iter()
        .map(|m| m.code.to_string())
        .collect();
    let in_sources = codes_in_sources();
    assert!(!in_sources.is_empty(), "rule sources mention no CD codes?");

    let unregistered: Vec<&String> = in_sources.difference(&registered).collect();
    assert!(
        unregistered.is_empty(),
        "codes in crates/analyze/src/rules/ missing from RuleRegistry: {unregistered:?}"
    );
    let unwritten: Vec<&String> = registered.difference(&in_sources).collect();
    assert!(
        unwritten.is_empty(),
        "registered codes with no rule source mentioning them: {unwritten:?}"
    );
}

#[test]
fn registered_codes_are_unique() {
    let registry = RuleRegistry::standard();
    let metas = registry.metas();
    let codes: BTreeSet<&str> = metas.iter().map(|m| m.code).collect();
    assert_eq!(
        codes.len(),
        metas.len(),
        "duplicate rule code in the registry"
    );
}

#[test]
fn every_registered_rule_is_documented_in_design_md() {
    let registry = RuleRegistry::standard();
    let doc = design_md();
    // Restrict the scan to table rows so a code mentioned in prose does
    // not count as documentation.
    let table_rows: String = doc
        .lines()
        .filter(|l| l.trim_start().starts_with("| CD"))
        .collect::<Vec<_>>()
        .join("\n");
    let documented = cd_codes(&table_rows);
    for meta in registry.metas() {
        assert!(
            documented.contains(meta.code),
            "{} is registered but has no DESIGN.md rule-table row",
            meta.code
        );
    }
}
