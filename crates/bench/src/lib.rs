//! # cactid-bench — benchmark & reproduction harness
//!
//! Each Criterion bench in `benches/` regenerates one table or figure of
//! the CACTI-D paper (printing the rows/series the paper reports) and then
//! measures the cost of producing it:
//!
//! * `table1` — technology-characteristics table.
//! * `table2` — Micron DDR3 validation (solve + staged select).
//! * `table3` — the full 32 nm hierarchy projection sweep.
//! * `figure1` — the Xeon-L3 knob sweep.
//! * `figure4` / `figure5` — the architectural study (IPC/latency/breakdown
//!   and power/energy-delay). Scale with `CACTID_BENCH_INSTR` (default
//!   2 000 000 instructions per app × config).
//! * `ablations` — design-choice studies DESIGN.md calls out: open- vs
//!   closed-page main memory, Figure 3 set↔page mappings, sequential vs
//!   normal cache access mode, repeater relaxation.
//! * `solver` — microbenchmarks of the organization sweep itself.

/// Instruction budget per (app, config) pair for the figure benches, from
/// `CACTID_BENCH_INSTR` (default 2 000 000).
pub fn bench_instructions() -> u64 {
    std::env::var("CACTID_BENCH_INSTR")
        .ok()
        .and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(2_000_000)
}
