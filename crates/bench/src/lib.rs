//! # cactid-bench — benchmark & reproduction harness
//!
//! Each Criterion bench in `benches/` regenerates one table or figure of
//! the CACTI-D paper (printing the rows/series the paper reports) and then
//! measures the cost of producing it:
//!
//! * `table1` — technology-characteristics table.
//! * `table2` — Micron DDR3 validation (solve + staged select).
//! * `table3` — the full 32 nm hierarchy projection sweep.
//! * `figure1` — the Xeon-L3 knob sweep.
//! * `figure4` / `figure5` — the architectural study (IPC/latency/breakdown
//!   and power/energy-delay). Scale with `CACTID_BENCH_INSTR` (default
//!   2 000 000 instructions per app × config).
//! * `ablations` — design-choice studies DESIGN.md calls out: open- vs
//!   closed-page main memory, Figure 3 set↔page mappings, sequential vs
//!   normal cache access mode, repeater relaxation.
//! * `solver` — microbenchmarks of the organization sweep itself.
//! * `throughput` — the cactid-explore batch engine's 1→N thread scaling
//!   (hermetic, no Criterion; always built).

/// Parses a `CACTID_BENCH_INSTR`-style instruction budget: decimal digits
/// with optional `_` separators (`2_000_000`).
pub fn parse_instructions(v: &str) -> Option<u64> {
    v.replace('_', "").parse().ok()
}

/// Instruction budget per (app, config) pair for the figure benches, from
/// `CACTID_BENCH_INSTR` (default 2 000 000).
///
/// A malformed value is *reported*, not silently swallowed: a typo like
/// `CACTID_BENCH_INSTR=2e6` used to fall back to the default without a
/// trace, making a 200× shorter-than-intended run look like a real result.
pub fn bench_instructions() -> u64 {
    instructions_or_default(std::env::var("CACTID_BENCH_INSTR").ok().as_deref())
}

/// The pure core of [`bench_instructions`]: `None` is an unset variable.
/// Split out so tests can exercise the fallback-with-warning path without
/// mutating the process environment (a data race under the parallel test
/// harness).
fn instructions_or_default(var: Option<&str>) -> u64 {
    const DEFAULT: u64 = 2_000_000;
    match var {
        Some(v) => parse_instructions(v).unwrap_or_else(|| {
            eprintln!(
                "warning: CACTID_BENCH_INSTR={v:?} is not a valid instruction \
                 count (expected digits, `_` separators allowed); \
                 using the default {DEFAULT}"
            );
            DEFAULT
        }),
        None => DEFAULT,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_and_separated_counts_parse() {
        assert_eq!(parse_instructions("2000000"), Some(2_000_000));
        assert_eq!(parse_instructions("2_000_000"), Some(2_000_000));
        assert_eq!(parse_instructions("1"), Some(1));
    }

    #[test]
    fn malformed_counts_are_rejected_not_mangled() {
        for bad in ["", "2e6", "2M", "-5", "1.5", "ten"] {
            assert_eq!(parse_instructions(bad), None, "{bad:?} should not parse");
        }
    }

    #[test]
    fn env_fallback_warns_instead_of_silently_defaulting() {
        // Feeds env-shaped values straight into the pure core rather than
        // calling set_var, which races other env readers under the
        // parallel test harness.
        assert_eq!(instructions_or_default(Some("4_000")), 4_000);
        assert_eq!(
            instructions_or_default(Some("not-a-number")),
            2_000_000,
            "falls back with a warning"
        );
        assert_eq!(instructions_or_default(None), 2_000_000);
    }
}
