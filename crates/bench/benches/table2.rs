//! Regenerates Table 2 (Micron 1 Gb DDR3-1066 validation) and measures the
//! main-memory solve.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;

    fn bench(c: &mut Criterion) {
        println!("{}", llc_study::table2::render());

        let spec = llc_study::table2::micron_spec();
        c.bench_function("table2/solve_micron_1gb", |b| {
            b.iter(|| cactid_core::solve(black_box(&spec)).expect("solves"))
        });
        c.bench_function("table2/optimize_micron_1gb", |b| {
            b.iter(|| cactid_core::optimize(black_box(&spec)).expect("solves"))
        });
    }

    criterion_group!(benches, bench);

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("table2: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
