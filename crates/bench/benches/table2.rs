//! Regenerates Table 2 (Micron 1 Gb DDR3-1066 validation) and measures the
//! main-memory solve.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!("{}", llc_study::table2::render());

    let spec = llc_study::table2::micron_spec();
    c.bench_function("table2/solve_micron_1gb", |b| {
        b.iter(|| cactid_core::solve(black_box(&spec)).expect("solves"))
    });
    c.bench_function("table2/optimize_micron_1gb", |b| {
        b.iter(|| cactid_core::optimize(black_box(&spec)).expect("solves"))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
