//! Regenerates Table 1 (technology characteristics) and measures the
//! technology-model lookup cost.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;

    fn bench(c: &mut Criterion) {
        // Print the reproduced table once.
        println!("{}", llc_study::table1::render(cactid_tech::TechNode::N32));

        c.bench_function("table1/render_32nm", |b| {
            b.iter(|| llc_study::table1::table1(black_box(cactid_tech::TechNode::N32)))
        });
        c.bench_function("table1/technology_lookup", |b| {
            let tech = cactid_tech::Technology::new(cactid_tech::TechNode::N32);
            b.iter(|| {
                for &ct in cactid_tech::CellTechnology::ALL {
                    black_box(tech.cell(ct));
                    black_box(tech.peripheral_device(ct));
                }
            })
        });
    }

    criterion_group!(benches, bench);

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("table1: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
