//! Regenerates Figure 4 (IPC, average read latency, cycle breakdown) at
//! `CACTID_BENCH_INSTR` instructions per (app, config) and measures one
//! representative simulation.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use cactid_bench::bench_instructions;
    use criterion::{criterion_group, Criterion, Throughput};
    use llc_study::configs::{build, LlcKind};
    use llc_study::figure4;
    use npbgen::NpbApp;

    fn bench(c: &mut Criterion) {
        let n = bench_instructions();
        eprintln!("figure4: running 8 apps x 6 configs x {n} instructions ...");
        let study = figure4::run_study(n);
        println!("{}", figure4::render_a(&study));
        println!("{}", figure4::render_b(&study));
        // Headline series: execution-time reduction vs nol3 (paper §6 reports
        // 39 % / 43 % average for the COMM-DRAM L3s at 10 B instructions).
        println!("average execution-time reduction vs nol3:");
        for &kind in LlcKind::ALL.iter().skip(1) {
            let avg: f64 = NpbApp::ALL
                .iter()
                .map(|&a| figure4::speedup_vs_nol3(&study, a, kind))
                .sum::<f64>()
                / NpbApp::ALL.len() as f64;
            println!("  {:11} {:+5.1}%", kind.label(), avg * 100.0);
        }

        let cfg = build(LlcKind::Sram24);
        let mut g = c.benchmark_group("figure4");
        g.sample_size(10);
        g.throughput(Throughput::Elements(200_000));
        g.bench_function("simulate_ft_b_sram24_200k", |b| {
            b.iter(|| figure4::run_one(&cfg, NpbApp::FtB, 200_000))
        });
        g.finish();
    }

    criterion_group!(benches, bench);

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("figure4: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
