//! Regenerates Figure 1 (Xeon L3 validation bubbles) and measures one
//! knob-sweep evaluation.

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    println!("{}", llc_study::figure1::render());

    c.bench_function("figure1/knob_sweep", |b| {
        b.iter(llc_study::figure1::figure1)
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);
