//! Regenerates Figure 1 (Xeon L3 validation bubbles) and measures one
//! knob-sweep evaluation.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, Criterion};

    fn bench(c: &mut Criterion) {
        println!("{}", llc_study::figure1::render());

        c.bench_function("figure1/knob_sweep", |b| {
            b.iter(llc_study::figure1::figure1)
        });
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = bench
    );

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("figure1: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
