//! Regenerates Figure 5 (memory-hierarchy power, system power,
//! energy-delay) at `CACTID_BENCH_INSTR` instructions per pair and measures
//! the power-model assembly.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use cactid_bench::bench_instructions;
    use criterion::{criterion_group, Criterion};
    use llc_study::configs::LlcKind;
    use llc_study::{figure4, figure5, MemoryHierarchyPower};
    use std::hint::black_box;

    fn bench(c: &mut Criterion) {
        let n = bench_instructions();
        eprintln!("figure5: running 8 apps x 6 configs x {n} instructions ...");
        let study = figure4::run_study(n);
        let rows = figure5::figure5(&study);
        println!("{}", figure5::render_a(&rows));
        println!("{}", figure5::render_b(&rows));

        // Bench the power-model assembly itself on a real run.
        let (cfg, runs) = &study[1]; // sram config
        let stats = runs[2].stats.clone(); // ft.B
        assert_eq!(cfg.kind, LlcKind::Sram24);
        c.bench_function("figure5/power_model_assembly", |b| {
            b.iter(|| MemoryHierarchyPower::from_run(black_box(cfg), black_box(&stats)))
        });
    }

    criterion_group!(benches, bench);

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("figure5: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
