//! Regenerates Figure 5 (memory-hierarchy power, system power,
//! energy-delay) at `CACTID_BENCH_INSTR` instructions per pair and measures
//! the power-model assembly.

use cactid_bench::bench_instructions;
use criterion::{criterion_group, criterion_main, Criterion};
use llc_study::configs::LlcKind;
use llc_study::{figure4, figure5, MemoryHierarchyPower};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let n = bench_instructions();
    eprintln!("figure5: running 8 apps x 6 configs x {n} instructions ...");
    let study = figure4::run_study(n);
    let rows = figure5::figure5(&study);
    println!("{}", figure5::render_a(&rows));
    println!("{}", figure5::render_b(&rows));

    // Bench the power-model assembly itself on a real run.
    let (cfg, runs) = &study[1]; // sram config
    let stats = runs[2].stats.clone(); // ft.B
    assert_eq!(cfg.kind, LlcKind::Sram24);
    c.bench_function("figure5/power_model_assembly", |b| {
        b.iter(|| MemoryHierarchyPower::from_run(black_box(cfg), black_box(&stats)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
