//! Regenerates Table 3 (32 nm hierarchy projections) and measures the cost
//! of the per-level optimizations.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use criterion::{criterion_group, Criterion};
    use llc_study::configs::{build, LlcKind};

    fn bench(c: &mut Criterion) {
        println!("{}", llc_study::table3::render());

        c.bench_function("table3/build_sram24_config", |b| {
            b.iter(|| build(LlcKind::Sram24))
        });
        c.bench_function("table3/build_cm_dram_c192_config", |b| {
            b.iter(|| build(LlcKind::CmDramC192))
        });
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = bench
    );

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("table3: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
