//! Regenerates Table 3 (32 nm hierarchy projections) and measures the cost
//! of the per-level optimizations.

use criterion::{criterion_group, criterion_main, Criterion};
use llc_study::configs::{build, LlcKind};

fn bench(c: &mut Criterion) {
    println!("{}", llc_study::table3::render());

    c.bench_function("table3/build_sram24_config", |b| {
        b.iter(|| build(LlcKind::Sram24))
    });
    c.bench_function("table3/build_cm_dram_c192_config", |b| {
        b.iter(|| build(LlcKind::CmDramC192))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
);
criterion_main!(benches);
