//! Simulator throughput: the serial reference loop vs. the sharded
//! epoch-synchronized engine, tracked in `BENCH_sim.json`.
//!
//! Fully hermetic (no criterion) and always built. Times an 8-core and a
//! 64-core configuration through three engines: the legacy serial
//! `Simulator`, and the `ShardedSimulator` at 1 and 8 shard workers. The
//! report carries simulated cycles/second for each, plus three gates
//! checkable from the artifact alone:
//!
//! * `sharded_matches_serial` — the sharded engine's stats digest is
//!   bitwise identical at 1, 2 and 8 workers on every benched config
//!   (the determinism contract; CPU-count independent).
//! * `serial_overhead_ok` — the sharded engine at 1 worker stays within
//!   0.9× of the legacy serial loop's throughput (the epoch machinery
//!   must be near-free when not parallelized; CPU-count independent).
//! * `sharded_speedup_ok` — 8 workers beat 1 worker by ≥2× in
//!   cycles/second on the 64-core config, *or* the host has fewer than 2
//!   CPUs (a single-CPU container timeshares the workers through the
//!   epoch barriers and cannot show wall-clock speedup; the value is
//!   still recorded honestly).
//!
//! Usage: `cargo bench -p cactid-bench --bench sim_throughput --
//! [--quick] [--out PATH]`. `--quick` shrinks the instruction counts for
//! CI smoke runs; `--out` chooses where the JSON lands (default
//! `BENCH_sim.json` in the working directory).

use cactid_explore::json::JsonObject;
use memsim::trace::StridedSource;
use memsim::{ShardedSimulator, SimStats, Simulator, SystemConfig};
use std::time::Instant;

struct BenchRow {
    name: &'static str,
    instructions: u64,
    legacy_cps: f64,
    sharded1_cps: f64,
    sharded8_cps: f64,
    digest: u64,
    matches_serial: bool,
}

fn trace_for(cfg: &SystemConfig) -> StridedSource {
    // 48 KB per thread: mostly L2 hits with a steady trickle of L2 misses,
    // so phase A dominates but the boundary path is exercised too.
    StridedSource::with_seed(cfg.n_threads(), 0.3, 48 << 10, 1)
}

/// Best-of-`batches` simulated-cycles-per-second for one engine closure.
/// Each batch constructs a fresh simulator so cache warm-up is identical.
fn cycles_per_sec<F: FnMut() -> u64>(mut run: F, batches: u32) -> f64 {
    let mut best = 0.0f64;
    for _ in 0..batches {
        let t = Instant::now();
        let cycles = run();
        let cps = cycles as f64 / t.elapsed().as_secs_f64();
        best = best.max(cps);
    }
    best
}

fn sharded_stats(cfg: &SystemConfig, workers: usize, n: u64) -> SimStats {
    let mut sim = ShardedSimulator::new(cfg.clone(), trace_for(cfg), workers);
    sim.run(n)
}

fn bench_config(name: &'static str, cfg: &SystemConfig, n: u64, batches: u32) -> BenchRow {
    // Determinism first (untimed): 1, 2 and 8 workers must agree bit for
    // bit before any throughput number means anything.
    let d1 = sharded_stats(cfg, 1, n).digest();
    let d2 = sharded_stats(cfg, 2, n).digest();
    let d8 = sharded_stats(cfg, 8, n).digest();
    let matches_serial = d1 == d2 && d1 == d8;

    let legacy_cps = cycles_per_sec(
        || {
            let mut sim = Simulator::new(cfg.clone(), trace_for(cfg));
            sim.run(n).cycles
        },
        batches,
    );
    let sharded1_cps = cycles_per_sec(
        || {
            let mut sim = ShardedSimulator::new(cfg.clone(), trace_for(cfg), 1);
            sim.run(n).cycles
        },
        batches,
    );
    let sharded8_cps = cycles_per_sec(
        || {
            let mut sim = ShardedSimulator::new(cfg.clone(), trace_for(cfg), 8);
            sim.run(n).cycles
        },
        batches,
    );
    BenchRow {
        name,
        instructions: n,
        legacy_cps,
        sharded1_cps,
        sharded8_cps,
        digest: d1,
        matches_serial,
    }
}

fn render(row: &BenchRow) -> String {
    let mut o = JsonObject::new();
    o.str("config", row.name)
        .u64("instructions", row.instructions)
        .f64("legacy_cycles_per_sec", row.legacy_cps)
        .f64("sharded1_cycles_per_sec", row.sharded1_cps)
        .f64("sharded8_cycles_per_sec", row.sharded8_cps)
        .f64(
            "serial_overhead_vs_legacy",
            row.sharded1_cps / row.legacy_cps,
        )
        .f64("sharded_speedup_8w", row.sharded8_cps / row.sharded1_cps)
        .str("stats_digest", &format!("{:016x}", row.digest))
        .bool("sharded_matches_serial", row.matches_serial);
    o.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sim.json".to_string());

    let (n_small, n_large, batches) = if quick {
        (30_000, 60_000, 2)
    } else {
        (300_000, 600_000, 3)
    };
    let rows = [
        bench_config(
            "8-core-sram-l3",
            &SystemConfig::with_sram_l3(),
            n_small,
            batches,
        ),
        bench_config("64-core", &SystemConfig::many_core(64), n_large, batches),
    ];

    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "sim throughput ({}), host parallelism {hw}:",
        if quick { "quick" } else { "full" }
    );
    let mut matches_all = true;
    let mut overhead_ok = true;
    let mut speedup_ok = true;
    for row in &rows {
        println!("  {}", render(row));
        matches_all &= row.matches_serial;
        overhead_ok &= row.sharded1_cps / row.legacy_cps >= 0.9;
        if row.name == "64-core" {
            speedup_ok = row.sharded8_cps / row.sharded1_cps >= 2.0 || hw < 2;
        }
    }

    let mut top = JsonObject::new();
    top.str("schema", "cactid-bench-sim-v1")
        .str("mode", if quick { "quick" } else { "full" })
        .u64("host_parallelism", hw as u64)
        .bool("sharded_matches_serial", matches_all)
        .bool("serial_overhead_ok", overhead_ok)
        .bool("sharded_speedup_ok", speedup_ok)
        .raw(
            "benches",
            &format!(
                "[\n  {}\n]",
                rows.iter().map(render).collect::<Vec<_>>().join(",\n  ")
            ),
        );
    let json = format!("{}\n", top.finish());
    std::fs::write(&out_path, &json).expect("write BENCH_sim.json");
    println!(
        "wrote {out_path} (sharded_matches_serial = {matches_all}, \
         serial_overhead_ok = {overhead_ok}, sharded_speedup_ok = {speedup_ok})"
    );
}
