//! Solver throughput: 1→N thread scaling of the cactid-explore engine.
//!
//! Unlike the Criterion benches this one is fully hermetic (no registry
//! dependencies) and always built: it expands a 240-point grid and runs it
//! through `cactid_explore::explore` at increasing thread counts,
//! reporting points/second and speedup over the single-threaded run.
//!
//! Every run uses a fresh engine (and the engine owns a fresh solve memo
//! per run), so each timing measures real solves. The shared per-node
//! `Technology` tables are warmed once up front — the bench measures the
//! sweep, not the one-time Table-1 derivation. On a multi-core host a
//! ≥200-point grid on ≥4 threads should clear 2.5× over one thread; the
//! report prints the machine's available parallelism so a flat curve on a
//! single-CPU container reads as what it is.

use cactid_core::OptimizationOptions;
use cactid_explore::{explore, pool, ExploreConfig, Grid, OptVariant};
use cactid_tech::{CellTechnology, Technology};
use std::time::Instant;

fn grid() -> Grid {
    let mut g = Grid::new();
    g.capacities = vec![32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10];
    g.associativities = vec![2, 4, 8, 16];
    g.blocks = vec![16, 32, 64];
    g.cells = vec![CellTechnology::Sram, CellTechnology::LpDram];
    g.opts = vec![
        OptVariant::default_variant(),
        OptVariant {
            label: "ed".to_string(),
            opt: OptimizationOptions {
                max_area_overhead: 0.60,
                max_access_time_overhead: 0.15,
                weight_dynamic: 1.5,
                weight_cycle: 2.0,
                ..OptimizationOptions::default()
            },
        },
    ];
    g
}

fn run(g: &Grid, threads: usize) -> (f64, usize) {
    let config = ExploreConfig {
        threads,
        ..ExploreConfig::default()
    };
    let t = Instant::now();
    let report = explore(g, &config).expect("grid explores");
    assert_eq!(report.stats.solved, report.stats.unique_specs);
    (t.elapsed().as_secs_f64(), report.stats.ok)
}

fn main() {
    let g = grid();
    let hw = pool::default_threads();
    println!(
        "explore throughput: {}-point grid, host parallelism {hw}",
        g.len()
    );

    // Warm the per-node Technology memo so every timed run pays the same
    // (zero) table-derivation cost.
    let _ = Technology::cached(cactid_tech::TechNode::N32);

    let mut counts = vec![1usize];
    for t in [2, 4, hw] {
        if t > 1 && Some(&t) != counts.last() {
            counts.push(t);
        }
    }

    let mut base = 0.0f64;
    for &threads in &counts {
        let (secs, ok) = run(&g, threads);
        if threads == 1 {
            base = secs;
        }
        println!(
            "  threads {threads:>2}: {:>8.1} ms, {:>7.1} points/s, speedup {:>5.2}x ({ok} ok)",
            secs * 1e3,
            g.len() as f64 / secs,
            base / secs
        );
    }
    if hw < 4 {
        println!(
            "  note: this host exposes only {hw} CPU(s); thread scaling is \
             measured honestly but cannot exceed the hardware parallelism"
        );
    }
}
