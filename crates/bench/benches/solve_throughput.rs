//! Single-solve throughput of the staged core pipeline, tracked in
//! `BENCH_solve.json`.
//!
//! Fully hermetic (no criterion) and always built. Times three
//! representative specs — an SRAM L2, an LP-DRAM L3 and a COMM-DRAM main
//! memory chip — through three solver paths: the debug-only unpruned
//! reference, the staged serial pipeline (lazy enumeration + closed-form
//! pre-screen + hoisted per-spec context), and the staged parallel
//! fan-out. The report carries candidates/second, prune rates, serial vs
//! parallel speedup, and the improvement over the pre-change baseline that
//! is baked in below. Two top-level gates stay checkable from the artifact
//! alone: `comm_dram_meets_2x` (the historical ≥2× bar of the
//! staged-pipeline PR, pinned to its own pre-staged baseline) and
//! `staged_beats_reference_all` (every spec's staged solve at least
//! matches the unpruned reference — the honesty gate of the
//! incremental-evaluation PR).
//!
//! Usage: `cargo bench -p cactid-bench --bench solve_throughput --
//! [--quick] [--out PATH]`. `--quick` shrinks the repetition counts for CI
//! smoke runs; `--out` chooses where the JSON lands (default
//! `BENCH_solve.json` in the working directory).

use cactid_core::{
    solve_with_stats, solve_with_stats_parallel, solve_with_stats_reference, AccessMode,
    MemoryKind, MemorySpec, SolveOutcome,
};
use cactid_explore::json::JsonObject;
use cactid_tech::{CellTechnology, TechNode, Technology};
use std::time::Instant;

/// Pre-change serial throughput (candidates/second) measured on the
/// commit immediately before the incremental-evaluation PR landed, same
/// specs, same best-of-5 protocol, single-CPU container.
/// `improvement_vs_prechange` compares against these numbers, so the
/// artifact always answers "what did the latest solver change buy?".
const PRECHANGE_CAND_PER_SEC: [(&str, f64); 3] = [
    ("sram-l2", 1_193_263.0),
    ("lp-dram-l3", 1_396_532.0),
    ("comm-dram-dimm", 3_244_535.0),
];

/// COMM-DRAM serial throughput before the *staged pipeline* PR (two
/// changes ago). The historical ≥2× acceptance bar of that PR is pinned
/// to this number, independent of the rolling pre-change baseline above.
const PRE_STAGED_COMM_DRAM_CAND_PER_SEC: f64 = 1_484_826.0;

fn sram_l2() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(1 << 20)
        .block_bytes(64)
        .associativity(8)
        .banks(1)
        .cell_tech(CellTechnology::Sram)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .build()
        .unwrap()
}

fn lp_dram_l3() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(8 << 20)
        .block_bytes(64)
        .associativity(16)
        .banks(1)
        .cell_tech(CellTechnology::LpDram)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .build()
        .unwrap()
}

fn comm_dram_dimm() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(1 << 30)
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(TechNode::N78)
        .kind(MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        })
        .build()
        .unwrap()
}

/// Best-of-`batches` average microseconds per call of `f` over `reps`
/// repetitions. Best-of filters scheduler noise on a shared container.
fn measure_us<F: FnMut()>(mut f: F, reps: u32, batches: u32) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..batches {
        let t = Instant::now();
        for _ in 0..reps {
            f();
        }
        let us = t.elapsed().as_secs_f64() * 1e6 / f64::from(reps);
        best = best.min(us);
    }
    best
}

struct BenchRow {
    name: &'static str,
    stats: cactid_core::SolveStats,
    reference_us: f64,
    staged_us: f64,
    parallel_us: f64,
}

fn expect_sols(out: &SolveOutcome, label: &str) {
    assert!(out.result.is_ok(), "{label}: spec must be solvable");
}

fn bench_spec(name: &'static str, spec: &MemorySpec, reps: u32, batches: u32) -> BenchRow {
    let staged = solve_with_stats(spec, None);
    expect_sols(&staged, name);
    let reference_us = measure_us(
        || expect_sols(&solve_with_stats_reference(spec, None), name),
        reps,
        batches,
    );
    let staged_us = measure_us(
        || expect_sols(&solve_with_stats(spec, None), name),
        reps,
        batches,
    );
    let parallel_us = measure_us(
        || expect_sols(&solve_with_stats_parallel(spec, None, 0), name),
        reps,
        batches,
    );
    BenchRow {
        name,
        stats: staged.stats,
        reference_us,
        staged_us,
        parallel_us,
    }
}

fn render(row: &BenchRow) -> String {
    let orgs = row.stats.orgs_enumerated as f64;
    let cand_per_sec = orgs / (row.staged_us * 1e-6);
    let prechange = PRECHANGE_CAND_PER_SEC
        .iter()
        .find(|(n, _)| *n == row.name)
        .map_or(f64::NAN, |(_, v)| *v);
    let mut o = JsonObject::new();
    o.str("spec", row.name)
        .u64("orgs_per_solve", row.stats.orgs_enumerated as u64)
        .u64("bound_pruned", row.stats.bound_pruned as u64)
        .u64("feasible", row.stats.feasible as u64)
        .f64("prune_rate", row.stats.bound_pruned as f64 / orgs)
        .f64("reference_us_per_solve", row.reference_us)
        .f64("staged_us_per_solve", row.staged_us)
        .f64("parallel_us_per_solve", row.parallel_us)
        .f64("staged_candidates_per_sec", cand_per_sec)
        .f64(
            "speedup_staged_vs_reference",
            row.reference_us / row.staged_us,
        )
        .f64(
            "speedup_parallel_vs_staged",
            row.staged_us / row.parallel_us,
        )
        .f64("prechange_candidates_per_sec", prechange)
        .f64("improvement_vs_prechange", cand_per_sec / prechange);
    o.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_solve.json".to_string());

    // Warm the per-node Technology memo so every timed path pays the same
    // (zero) table-derivation cost.
    let _ = Technology::cached(TechNode::N32);
    let _ = Technology::cached(TechNode::N78);

    let (reps_cache, reps_mm, batches) = if quick { (8, 64, 2) } else { (128, 2048, 5) };
    let rows = [
        bench_spec("sram-l2", &sram_l2(), reps_cache, batches),
        bench_spec("lp-dram-l3", &lp_dram_l3(), reps_cache, batches),
        bench_spec("comm-dram-dimm", &comm_dram_dimm(), reps_mm, batches),
    ];

    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "solve throughput ({}), host parallelism {hw}:",
        if quick { "quick" } else { "full" }
    );
    let mut meets_2x = false;
    let mut beats_reference_all = true;
    for row in &rows {
        let line = render(row);
        println!("  {line}");
        beats_reference_all &= row.reference_us / row.staged_us >= 1.0;
        if row.name == "comm-dram-dimm" {
            let orgs = row.stats.orgs_enumerated as f64;
            let cand = orgs / (row.staged_us * 1e-6);
            meets_2x = cand >= 2.0 * PRE_STAGED_COMM_DRAM_CAND_PER_SEC;
        }
    }

    let mut top = JsonObject::new();
    top.str("schema", "cactid-bench-solve-v1")
        .str("mode", if quick { "quick" } else { "full" })
        .u64("host_parallelism", hw as u64)
        .bool("comm_dram_meets_2x", meets_2x)
        .bool("staged_beats_reference_all", beats_reference_all)
        .raw(
            "benches",
            &format!(
                "[\n  {}\n]",
                rows.iter().map(render).collect::<Vec<_>>().join(",\n  ")
            ),
        );
    let json = format!("{}\n", top.finish());
    std::fs::write(&out_path, &json).expect("write BENCH_solve.json");
    println!(
        "wrote {out_path} (comm_dram_meets_2x = {meets_2x}, \
         staged_beats_reference_all = {beats_reference_all})"
    );
}
