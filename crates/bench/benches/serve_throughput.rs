//! Cold vs warm request latency of the `cactid-serve` service, tracked in
//! `BENCH_serve.json`.
//!
//! Fully hermetic (no criterion) and always built. Drives the same three
//! representative specs as the solve benchmark — an SRAM L2, an LP-DRAM
//! L3 and a COMM-DRAM main-memory chip — through the service's line
//! handler twice:
//!
//! * **cold** — a fresh service with an empty persistent store: the
//!   request pays the full organization sweep, then spills its record.
//! * **warm** — the store file reopened by a *new* service (a restart,
//!   not a memo hit): the duplicate request is answered from disk with no
//!   model evaluation, and the answer is asserted byte-identical to the
//!   cold one.
//!
//! The report carries per-spec cold latency, warm p50/p90/p99, warm
//! queries/second and the warm-vs-cold speedup; the serve PR's acceptance
//! bar (warm speedup > 5× on at least one spec) is baked in as a boolean
//! so it stays checkable from the artifact alone.
//!
//! Usage: `cargo bench -p cactid-bench --bench serve_throughput --
//! [--quick] [--out PATH]`. `--quick` shrinks repetition counts for CI
//! smoke runs; `--out` chooses where the JSON lands (default
//! `BENCH_serve.json` in the working directory).

use cactid_explore::json::JsonObject;
use cactid_serve::{ServeConfig, Service};
use cactid_tech::{TechNode, Technology};
use std::path::PathBuf;
use std::time::Instant;

struct BenchSpec {
    name: &'static str,
    request: &'static str,
}

const SPECS: [BenchSpec; 3] = [
    BenchSpec {
        name: "sram-l2",
        request: r#"{"id":1,"op":"solve","size":1048576,"assoc":8,"cell":"sram","node":32}"#,
    },
    BenchSpec {
        name: "lp-dram-l3",
        request: r#"{"id":2,"op":"solve","size":8388608,"assoc":16,"cell":"lp-dram","node":32}"#,
    },
    BenchSpec {
        name: "comm-dram-dimm",
        request: r#"{"id":3,"op":"solve","size":1073741824,"block":8,"banks":8,"cell":"comm-dram","node":78,"main_memory":{"io":8,"burst":8,"prefetch":8,"page":8192}}"#,
    },
];

fn answer(svc: &Service, request: &str) -> String {
    let (mut lines, _) = svc.handle_line(request);
    assert_eq!(lines.len(), 1, "solve requests answer with one record");
    let line = lines.remove(0);
    assert!(line.contains("\"status\":\"ok\""), "{line}");
    line
}

/// Exact sample quantile: sorted nearest-rank, `q` in [0, 1].
fn quantile_us(sorted: &[f64], q: f64) -> f64 {
    let rank = ((sorted.len() as f64 * q).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

struct BenchRow {
    name: &'static str,
    cold_us: f64,
    warm_p50_us: f64,
    warm_p90_us: f64,
    warm_p99_us: f64,
    warm_queries_per_sec: f64,
    warm_byte_identical: bool,
}

fn bench_spec(spec: &BenchSpec, store: &PathBuf, warm_reps: u32, batches: u32) -> BenchRow {
    // Cold: best-of-`batches`, each against a freshly created store file,
    // so every timed request pays the full sweep plus the store append.
    let mut cold_us = f64::INFINITY;
    let mut cold_line = String::new();
    for _ in 0..batches {
        std::fs::remove_file(store).ok();
        let svc = Service::new(&ServeConfig {
            threads: 1,
            store: Some(store.clone()),
        })
        .unwrap();
        let t = Instant::now();
        cold_line = answer(&svc, spec.request);
        cold_us = cold_us.min(t.elapsed().as_secs_f64() * 1e6);
    }

    // Warm: a *new* service reopens the populated store — a restart, so
    // the in-process memo is empty and every answer comes from disk.
    let svc = Service::new(&ServeConfig {
        threads: 1,
        store: Some(store.clone()),
    })
    .unwrap();
    let warm_line = answer(&svc, spec.request);
    let warm_byte_identical = warm_line == cold_line;
    assert!(svc.cache().is_empty(), "warm answers must not solve");

    let mut samples: Vec<f64> = (0..warm_reps)
        .map(|_| {
            let t = Instant::now();
            let _ = answer(&svc, spec.request);
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    let warm_p50_us = quantile_us(&samples, 0.50);
    BenchRow {
        name: spec.name,
        cold_us,
        warm_p50_us,
        warm_p90_us: quantile_us(&samples, 0.90),
        warm_p99_us: quantile_us(&samples, 0.99),
        warm_queries_per_sec: 1e6 / warm_p50_us,
        warm_byte_identical,
    }
}

fn render(row: &BenchRow) -> String {
    let mut o = JsonObject::new();
    o.str("spec", row.name)
        .f64("cold_us_per_request", row.cold_us)
        .f64("warm_p50_us", row.warm_p50_us)
        .f64("warm_p90_us", row.warm_p90_us)
        .f64("warm_p99_us", row.warm_p99_us)
        .f64("warm_queries_per_sec", row.warm_queries_per_sec)
        .f64("speedup_warm_vs_cold", row.cold_us / row.warm_p50_us)
        .bool("warm_byte_identical", row.warm_byte_identical);
    o.finish()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_serve.json".to_string());

    // Warm the per-node Technology memo so cold requests time the sweep,
    // not one-off technology table derivation.
    let _ = Technology::cached(TechNode::N32);
    let _ = Technology::cached(TechNode::N78);

    let dir = std::env::temp_dir().join(format!("cactid-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create bench store dir");

    let (warm_reps, batches) = if quick { (64, 2) } else { (4096, 5) };
    let rows: Vec<BenchRow> = SPECS
        .iter()
        .map(|s| {
            let store = dir.join(format!("{}.store", s.name));
            let row = bench_spec(s, &store, warm_reps, batches);
            std::fs::remove_file(&store).ok();
            row
        })
        .collect();
    std::fs::remove_dir_all(&dir).ok();

    let hw = std::thread::available_parallelism().map_or(1, usize::from);
    println!(
        "serve cold vs warm ({}), host parallelism {hw}:",
        if quick { "quick" } else { "full" }
    );
    for row in &rows {
        println!("  {}", render(row));
    }

    let over_5x = rows
        .iter()
        .any(|r| r.warm_byte_identical && r.cold_us / r.warm_p50_us > 5.0);
    let mut top = JsonObject::new();
    top.str("schema", "cactid-bench-serve-v1")
        .str("mode", if quick { "quick" } else { "full" })
        .u64("host_parallelism", hw as u64)
        .bool("warm_speedup_over_5x", over_5x)
        .raw(
            "benches",
            &format!(
                "[\n  {}\n]",
                rows.iter().map(render).collect::<Vec<_>>().join(",\n  ")
            ),
        );
    let json = format!("{}\n", top.finish());
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("wrote {out_path}");
    assert!(
        rows.iter().all(|r| r.warm_byte_identical),
        "warm answers must be byte-identical to cold solves"
    );
}
