//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. open- vs closed-page main memory (paper §2.3.4's policy discussion);
//! 2. the Figure 3 cache-set↔DRAM-page mappings;
//! 3. sequential vs normal cache access mode (§3.4's energy argument —
//!    and why it cannot help a DRAM cache);
//! 4. the §2.4 `max repeater delay` energy/delay knob.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use cactid_bench::bench_instructions;
    use cactid_core::{optimize, AccessMode, MemoryKind, MemorySpec, OptimizationOptions};
    use cactid_tech::{CellTechnology, TechNode};
    use criterion::{criterion_group, Criterion};
    use llc_study::configs::{build, LlcKind};
    use llc_study::figure4::run_one;
    use memsim::config::{L3Interface, PagePolicy, SetMapping};
    use npbgen::NpbApp;

    fn page_policy_ablation(c: &mut Criterion, n: u64) {
        println!("== ablation: main-memory page policy (mg.B, no L3) ==");
        let mut results = Vec::new();
        for policy in [PagePolicy::Open, PagePolicy::Closed] {
            let mut cfg = build(LlcKind::NoL3);
            cfg.system.dram.page_policy = policy;
            let r = run_one(&cfg, NpbApp::MgB, n);
            println!(
                "  {policy:?}: ipc {:.2}  lat {:.1}  page hits {}/{} activates",
                r.stats.ipc(),
                r.stats.avg_read_latency(),
                r.stats.counts.mem_page_hits,
                r.stats.counts.mem_activates,
            );
            results.push(r.stats.ipc());
        }
        println!(
            "  open-page speedup on streaming mg.B: {:+.1}%\n",
            (results[0] / results[1] - 1.0) * 100.0
        );

        let cfg = build(LlcKind::NoL3);
        c.bench_function("ablations/open_page_mg_b_100k", |b| {
            b.iter(|| run_one(&cfg, NpbApp::MgB, 100_000))
        });
    }

    fn set_mapping_ablation(n: u64) {
        println!("== ablation: Figure 3 set<->page mapping (ft.B, 96MB COMM L3) ==");
        for mapping in [SetMapping::SetsPerPage, SetMapping::StripedWays] {
            let mut cfg = build(LlcKind::CmDramEd96);
            if let Some(l3) = cfg.system.l3.as_mut() {
                l3.set_mapping = mapping;
            }
            let r = run_one(&cfg, NpbApp::FtB, n);
            println!(
                "  {mapping:?}: ipc {:.2}  lat {:.1}  l3 hit {:.2}",
                r.stats.ipc(),
                r.stats.avg_read_latency(),
                r.stats.l3_hit_rate(),
            );
        }
        println!();
    }

    fn l3_interface_ablation(n: u64) {
        println!("== ablation: DRAM-L3 operational interface (ft.B, 96MB COMM L3, paper §3.4) ==");
        for interface in [L3Interface::SramLike, L3Interface::PageMode] {
            let mut cfg = build(LlcKind::CmDramEd96);
            if let Some(l3) = cfg.system.l3.as_mut() {
                l3.interface = interface;
            }
            let r = run_one(&cfg, NpbApp::FtB, n);
            let hits = r.stats.counts.l3_page_hits;
            let reads = r.stats.counts.l3_reads.max(1);
            println!(
                "  {interface:?}: ipc {:.2}  lat {:.1}  row-hit rate {:.2}",
                r.stats.ipc(),
                r.stats.avg_read_latency(),
                hits as f64 / reads as f64,
            );
        }
        println!(
            "  (the paper argues the page-hit ratio of an LLC is too low for an open-page
   interface to win — SRAM-like + multisubbank interleaving is the right choice)
"
        );
    }

    fn access_mode_ablation() {
        println!("== ablation: cache access mode energy (8MB, 8-way, 32nm) ==");
        for cell in [CellTechnology::Sram, CellTechnology::LpDram] {
            for mode in [AccessMode::Normal, AccessMode::Sequential] {
                let spec = MemorySpec::builder()
                    .capacity_bytes(8 << 20)
                    .block_bytes(64)
                    .associativity(8)
                    .banks(1)
                    .cell_tech(cell)
                    .node(TechNode::N32)
                    .kind(MemoryKind::Cache { access_mode: mode })
                    .build()
                    .expect("valid");
                let sol = optimize(&spec).expect("solves");
                println!(
                    "  {cell} {mode:?}: access {:.2} ns  read {:.3} nJ",
                    sol.access_ns(),
                    sol.read_energy_nj(),
                );
            }
        }
        println!("  (sequential mode saves SRAM sense energy; DRAM must sense the full row)\n");
    }

    fn repeater_relax_ablation() {
        println!("== ablation: max-repeater-delay knob (24MB SRAM, 32nm) ==");
        for relax in [1.0, 1.5, 2.0, 3.0] {
            let spec = MemorySpec::builder()
                .capacity_bytes(24 << 20)
                .block_bytes(64)
                .associativity(12)
                .banks(8)
                .cell_tech(CellTechnology::Sram)
                .node(TechNode::N32)
                .kind(MemoryKind::Cache {
                    access_mode: AccessMode::Normal,
                })
                .optimization(OptimizationOptions {
                    repeater_relax: relax,
                    ..OptimizationOptions::default()
                })
                .build()
                .expect("valid");
            let sol = optimize(&spec).expect("solves");
            println!(
                "  relax {relax:.1}: access {:.2} ns  read {:.3} nJ  leakage {:.2} W",
                sol.access_ns(),
                sol.read_energy_nj(),
                sol.leakage_power,
            );
        }
        println!();
    }

    fn bench(c: &mut Criterion) {
        let n = bench_instructions().min(2_000_000);
        page_policy_ablation(c, n);
        set_mapping_ablation(n);
        l3_interface_ablation(n);
        access_mode_ablation();
        repeater_relax_ablation();
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(10);
        targets = bench
    );

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("ablations: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
