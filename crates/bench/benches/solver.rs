//! Microbenchmarks of the CACTI-D engine itself: organization enumeration,
//! single-array evaluation, full solve and staged selection.
//!
//! The criterion harness compiles only under the `criterion` feature so the
//! default workspace build stays free of registry dependencies; see
//! `crates/bench/Cargo.toml`.

#[cfg(feature = "criterion")]
mod real {
    use cactid_core::{solve, AccessMode, MemoryKind, MemorySpec};
    use cactid_tech::{CellTechnology, TechNode};
    use criterion::{criterion_group, Criterion};
    use std::hint::black_box;

    fn spec(capacity: u64, cell: CellTechnology) -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(capacity)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .expect("valid spec")
    }

    fn bench(c: &mut Criterion) {
        for (label, cell) in [
            ("sram", CellTechnology::Sram),
            ("lp_dram", CellTechnology::LpDram),
            ("comm_dram", CellTechnology::CommDram),
        ] {
            let s = spec(1 << 20, cell);
            c.bench_function(&format!("solver/solve_1mb_{label}"), |b| {
                b.iter(|| solve(black_box(&s)).expect("solves"))
            });
        }
        let big = spec(64 << 20, CellTechnology::CommDram);
        c.bench_function("solver/solve_64mb_comm_dram", |b| {
            b.iter(|| solve(black_box(&big)).expect("solves"))
        });
        let s = spec(1 << 20, CellTechnology::Sram);
        let sols = solve(&s).expect("solves");
        c.bench_function("solver/staged_select_1mb_sram", |b| {
            b.iter(|| cactid_core::select(black_box(&s), black_box(&sols)))
        });
    }

    criterion_group!(
        name = benches;
        config = Criterion::default().sample_size(20);
        targets = bench
    );

    pub fn run() {
        benches();
        Criterion::default().configure_from_args().final_summary();
    }
}

fn main() {
    #[cfg(feature = "criterion")]
    real::run();
    #[cfg(not(feature = "criterion"))]
    eprintln!("solver: built without the `criterion` feature; see crates/bench/Cargo.toml");
}
