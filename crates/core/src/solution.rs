//! Assembled solutions: one evaluated organization with cache-level (tag +
//! data) and chip-level (main-memory) metrics.

use crate::array::{ArrayInput, ArrayResult};
use crate::lint::Diagnostic;
use crate::main_memory::MainMemoryResult;
use crate::org::OrgParams;
use crate::spec::{AccessMode, MemoryKind, MemorySpec};
use crate::tag::TagResult;
use cactid_units::{Joules, Seconds, SquareMeters, Watts};
use std::sync::Arc;

/// One complete solution produced by the solver.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// The data-array organization this solution uses.
    pub org: OrgParams,
    /// Data-array evaluation (one bank).
    pub data: ArrayResult,
    /// Tag-array evaluation (one bank), for caches. One tag design serves
    /// every candidate of a solve, so the sweep shares it by `Arc` instead
    /// of cloning the full evaluation per candidate.
    pub tag: Option<Arc<TagResult>>,
    /// Chip-level main-memory result, for main-memory specs.
    pub main_memory: Option<MainMemoryResult>,
    /// End-to-end access time.
    pub access_time: Seconds,
    /// Random cycle time.
    pub random_cycle: Seconds,
    /// Multisubbank interleave cycle time.
    pub interleave_cycle: Seconds,
    /// Total area, all banks, tag + data (chip area for main memory).
    pub area: SquareMeters,
    /// Cell-area / total-area efficiency (0–1).
    pub area_efficiency: f64,
    /// Read energy per access.
    pub read_energy: Joules,
    /// Write energy per access.
    pub write_energy: Joules,
    /// Total standby leakage, all banks.
    pub leakage_power: Watts,
    /// Total refresh power, all banks (0 for SRAM).
    pub refresh_power: Watts,
    /// Non-error diagnostics attached by the lint engine when the solver
    /// runs with one (see `solve_with`); empty otherwise.
    pub warnings: Vec<Diagnostic>,
}

impl Solution {
    /// Builds a [`Solution`] from the evaluated parts.
    pub(crate) fn assemble(
        spec: &MemorySpec,
        org: OrgParams,
        input: &ArrayInput,
        data: ArrayResult,
        tag: Option<Arc<TagResult>>,
        main_memory: Option<MainMemoryResult>,
    ) -> Solution {
        let n_banks = f64::from(spec.n_banks);
        let cell = &input.cell;

        // ---- Access time assembly per access mode ----
        let data_access = data.access_time();
        let access_time = match spec.kind {
            MemoryKind::Cache { access_mode } => {
                let Some(t) = tag.as_ref() else {
                    unreachable!("a cache solution carries a tag array")
                };
                match access_mode {
                    // Way select must arrive before the output mux; the
                    // data array's mux+htree-out remain after the merge.
                    AccessMode::Normal => {
                        let late_select = t.access_time() + data.delay.mux + data.delay.htree_out;
                        data_access.max(late_select)
                    }
                    AccessMode::Sequential => t.access_time() + data_access,
                    AccessMode::Fast => data_access.max(t.access_time()),
                }
            }
            MemoryKind::Ram => data_access,
            MemoryKind::MainMemory { .. } => {
                let Some(mm) = main_memory.as_ref() else {
                    unreachable!("a main-memory solution carries the chip result")
                };
                mm.timing.t_rcd + mm.timing.cas_latency
            }
        };

        let random_cycle = match (&spec.kind, &main_memory) {
            (MemoryKind::MainMemory { .. }, Some(mm)) => mm.timing.t_rc,
            _ => {
                let tag_cycle = tag.as_ref().map_or(Seconds::ZERO, |t| t.array.random_cycle);
                data.random_cycle.max(tag_cycle)
            }
        };
        let interleave_cycle = data.interleave_cycle;

        // ---- Area ----
        let (area, area_efficiency) = if let Some(mm) = &main_memory {
            (mm.chip_area, mm.area_efficiency)
        } else {
            let tag_area = tag.as_ref().map_or(SquareMeters::ZERO, |t| t.array.area());
            let total = n_banks * (data.area() + tag_area);
            let tag_bits_total = tag.as_ref().map_or(0, |_| {
                spec.sets() * u64::from(spec.associativity) * u64::from(spec.tag_bits())
            });
            let cells = ((spec.capacity_bytes * 8 + tag_bits_total) as f64) * cell.area();
            (total, cells / total)
        };

        // ---- Energy / power ----
        let tag_read = tag.as_ref().map_or(Joules::ZERO, |t| t.read_energy());
        let tag_write = tag
            .as_ref()
            .map_or(Joules::ZERO, |t| t.array.write_energy + t.comparator_energy);
        let read_energy = data.read_energy() + tag_read;
        let write_energy = data.write_energy + tag_write;
        let tag_leak = tag.as_ref().map_or(Watts::ZERO, |t| t.array.leakage);
        let tag_refresh = tag.as_ref().map_or(Watts::ZERO, |t| t.array.refresh_power);
        let leakage_power = if let Some(mm) = &main_memory {
            mm.energies.standby_power
        } else {
            n_banks * (data.leakage + tag_leak)
        };
        let refresh_power = if let Some(mm) = &main_memory {
            mm.energies.refresh_power
        } else {
            n_banks * (data.refresh_power + tag_refresh)
        };

        Solution {
            org,
            data,
            tag,
            main_memory,
            access_time,
            random_cycle,
            interleave_cycle,
            area,
            area_efficiency,
            read_energy,
            write_energy,
            leakage_power,
            refresh_power,
            warnings: Vec::new(),
        }
    }

    /// Area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area / SquareMeters::mm2(1.0)
    }

    /// Access time in nanoseconds.
    pub fn access_ns(&self) -> f64 {
        self.access_time / Seconds::ns(1.0)
    }

    /// Read energy in nanojoules.
    pub fn read_energy_nj(&self) -> f64 {
        self.read_energy / Joules::nj(1.0)
    }
}

#[cfg(test)]
mod tests {
    use crate::spec::{AccessMode, MemoryKind, MemorySpec};
    use crate::{optimize, solve};
    use cactid_tech::{CellTechnology, TechNode};
    use cactid_units::Seconds;

    fn spec(kind: MemoryKind, cell: CellTechnology) -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(if matches!(kind, MemoryKind::Cache { .. }) {
                8
            } else {
                1
            })
            .banks(1)
            .cell_tech(cell)
            .node(TechNode::N32)
            .kind(kind)
            .build()
            .unwrap()
    }

    #[test]
    fn ram_kind_has_no_tag_array() {
        let sol = optimize(&spec(MemoryKind::Ram, CellTechnology::Sram)).unwrap();
        assert!(sol.tag.is_none());
        assert!(sol.main_memory.is_none());
        assert_eq!(sol.access_time, sol.data.access_time());
    }

    #[test]
    fn sequential_mode_serializes_tag_and_data() {
        let normal = optimize(&spec(
            MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            },
            CellTechnology::Sram,
        ))
        .unwrap();
        let sequential = optimize(&spec(
            MemoryKind::Cache {
                access_mode: AccessMode::Sequential,
            },
            CellTechnology::Sram,
        ))
        .unwrap();
        let fast = optimize(&spec(
            MemoryKind::Cache {
                access_mode: AccessMode::Fast,
            },
            CellTechnology::Sram,
        ))
        .unwrap();
        // Sequential = tag + data end to end; it must exceed both parallel
        // modes, and fast can never be slower than normal.
        assert!(sequential.access_time > normal.access_time);
        assert!(fast.access_time <= normal.access_time + Seconds::from_si(1e-12));
        let t = sequential.tag.as_ref().unwrap();
        assert!(
            sequential.access_time
                >= t.access_time() + sequential.data.access_time() - Seconds::from_si(1e-12)
        );
    }

    #[test]
    fn unit_helpers_are_consistent() {
        let sol = optimize(&spec(
            MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            },
            CellTechnology::LpDram,
        ))
        .unwrap();
        assert!((sol.area_mm2() - sol.area.value() / 1e-6).abs() < 1e-12);
        assert!((sol.access_ns() - sol.access_time.value() * 1e9).abs() < 1e-12);
        assert!((sol.read_energy_nj() - sol.read_energy.value() * 1e9).abs() < 1e-12);
    }

    #[test]
    fn cache_cycle_covers_tag_array_too() {
        let s = spec(
            MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            },
            CellTechnology::LpDram,
        );
        for sol in solve(&s).unwrap() {
            let tag_cycle = sol.tag.as_ref().unwrap().array.random_cycle;
            assert!(sol.random_cycle >= tag_cycle - Seconds::from_si(1e-15));
            assert!(sol.random_cycle >= sol.data.random_cycle - Seconds::from_si(1e-15));
        }
    }
}
