//! Main-memory DRAM chip organization (paper §2.1, §2.3.5): burst-mode
//! operation over a narrow external interface, page-size-constrained sense
//! amplifier stripes, the ACTIVATE / READ / WRITE / PRECHARGE command
//! timing set (tRCD, CAS latency, tRAS, tRP, tRC) and the multibank
//! interleave cycle time tRRD.

use crate::array::{ArrayInput, ArrayResult};
use crate::error::CactiError;
use crate::spec::{MemoryKind, MemorySpec};
use cactid_circuit::repeater::RepeatedWire;
use cactid_tech::{Technology, WireType};
use cactid_units::{Joules, Meters, Seconds, SquareMeters, Volts, Watts};

/// Calibration constants for the chip-level model (see EXPERIMENTS.md).
pub mod cal {
    use cactid_units::{Farads, Joules, Seconds, Watts};

    /// Fixed interface overhead added to the CAS latency: command decode,
    /// DLL/clock synchronization and output serialization.
    pub const IO_OVERHEAD: Seconds = Seconds::from_si(8.0e-9);
    /// Worst-case guard-banding multiplier applied to the row timings
    /// (tRCD / tRAS / tRP): JEDEC datasheet numbers are specified for the
    /// slowest cell at the worst voltage/temperature corner, not for the
    /// typical-case RC the array model computes.
    pub const MM_TIMING_MARGIN: f64 = 3.0;
    /// Additional guard band on the cell-restore and precharge phases: the
    /// datasheet must cover the weakest retention cell in the slowest
    /// corner, which takes far longer than the typical-case RC.
    pub const MM_CELL_MARGIN: f64 = 7.5;
    /// Per-command control overhead energy (command/address receivers,
    /// control logic, V_PP charge-pump inefficiency), referenced to 1.5 V
    /// and scaled by the cell voltage squared.
    pub const E_CMD_OVERHEAD: Joules = Joules::from_si(0.40e-9);
    /// Wordline-lower + equalization start overhead folded into tRP as a
    /// fraction of the decode path.
    pub const TRP_DECODE_FRACTION: f64 = 0.3;
    /// tRRD floor as a fraction of tRC (peak-current / charge-pump
    /// recovery constraint on back-to-back activates).
    pub const TRRD_TRC_FRACTION: f64 = 0.15;
    /// Effective pad/IO switched capacitance per data pin, including
    /// termination.
    pub const C_IO_PIN: Farads = Farads::from_si(6.0e-12);
    /// Chip-level floorplan overhead (spine, pads, charge pumps) as a
    /// fraction of summed bank area.
    pub const CHIP_OVERHEAD: f64 = 0.16;
    /// Always-on interface standby power (DLL, input buffers, charge
    /// pumps).
    pub const STANDBY_IO_POWER: Watts = Watts::from_si(0.050);
}

/// Chip-level timing parameters of a main-memory DRAM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramTiming {
    /// Activate-to-column command delay.
    pub t_rcd: Seconds,
    /// CAS (column) latency.
    pub cas_latency: Seconds,
    /// Activate-to-precharge minimum (row restore complete).
    pub t_ras: Seconds,
    /// Precharge time.
    pub t_rp: Seconds,
    /// Row cycle time, `tRAS + tRP`.
    pub t_rc: Seconds,
    /// Activate-to-activate (different bank) delay.
    pub t_rrd: Seconds,
    /// Burst transfer duration on the interface (interface-speed
    /// dependent; filled by the caller when a data rate is known).
    pub t_burst: Seconds,
}

/// Chip-level per-command energies and standby power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramEnergies {
    /// ACTIVATE (+ implied PRECHARGE) energy per command.
    pub activate: Joules,
    /// READ energy per burst.
    pub read: Joules,
    /// WRITE energy per burst.
    pub write: Joules,
    /// Refresh power, whole chip.
    pub refresh_power: Watts,
    /// Standby (leakage + interface) power, whole chip.
    pub standby_power: Watts,
}

/// Complete chip-level result for a main-memory specification.
#[derive(Debug, Clone, PartialEq)]
pub struct MainMemoryResult {
    /// Command timing.
    pub timing: DramTiming,
    /// Command energies.
    pub energies: DramEnergies,
    /// Chip area.
    pub chip_area: SquareMeters,
    /// Cell-area / chip-area efficiency (0–1).
    pub area_efficiency: f64,
}

/// Assembles the chip-level main-memory result from a bank evaluation.
///
/// `bank` is the per-bank [`ArrayResult`] and `input` the organization it
/// was evaluated for; `spec.kind` must be [`MemoryKind::MainMemory`].
///
/// # Errors
///
/// [`CactiError::InvalidSpec`] if `spec` is not a main-memory
/// specification.
pub fn assemble(
    tech: &Technology,
    spec: &MemorySpec,
    input: &ArrayInput,
    bank: &ArrayResult,
) -> Result<MainMemoryResult, CactiError> {
    let MemoryKind::MainMemory {
        io_bits,
        burst_length,
        ..
    } = spec.kind
    else {
        return Err(CactiError::InvalidSpec(
            "main-memory assembly requires a MainMemory spec".to_string(),
        ));
    };
    let n_banks = f64::from(spec.n_banks);
    let cell = &input.cell;

    // ---- Chip floorplan ----
    let bank_area = bank.area();
    let chip_area = bank_area * n_banks * (1.0 + cal::CHIP_OVERHEAD);
    let cell_area_total = (spec.capacity_bytes * 8) as f64 * cell.area();
    let area_efficiency = cell_area_total / chip_area;

    // ---- Chip-level data path: bank edge to the IO pads ----
    let chip_side = chip_area.sqrt();
    let wire = tech.wire(WireType::Global);
    let periph = &input.periph;
    let chip_wire =
        RepeatedWire::design(periph, &wire, (chip_side / 2.0).max(Meters::um(1.0)), 1.0);
    let chip_path = chip_wire.evaluate(periph, &wire, Seconds::ZERO);

    // ---- Timing (row timings carry the JEDEC-style guard band) ----
    let t_rcd = cal::MM_TIMING_MARGIN * bank.t_row_to_sense();
    // The CSL driver chain was already designed and timed by the array
    // evaluation; reuse it instead of re-deriving the chain per candidate.
    let t_col_dec = bank.column_select_delay;
    let cas_latency = t_col_dec + bank.t_column() + chip_path.delay + cal::IO_OVERHEAD;
    let t_ras = t_rcd + cal::MM_CELL_MARGIN * bank.delay.restore;
    let t_rp =
        cal::MM_CELL_MARGIN * (bank.delay.precharge + cal::TRP_DECODE_FRACTION * bank.delay.decode);
    let t_rc = t_ras + t_rp;
    let t_rrd = (cal::TRRD_TRC_FRACTION * t_rc).max(bank.interleave_cycle);

    // ---- Energies ----
    let burst_bits = spec.output_bits() as f64;
    let e_cmd = cal::E_CMD_OVERHEAD
        * (cell.vdd_cell / Volts::from_si(1.5))
        * (cell.vdd_cell / Volts::from_si(1.5));
    let activate = bank.energy.activate() + e_cmd;
    let e_io = burst_bits * cal::C_IO_PIN * cell.vdd_cell * cell.vdd_cell;
    let e_chip_wires = burst_bits * 0.5 * chip_path.energy;
    let read = bank.energy.column + e_chip_wires + e_io;
    let write = read * 1.1 + 0.1 * activate;

    let refresh_power = bank.refresh_power * n_banks;
    let standby_power = bank.leakage * n_banks + cal::STANDBY_IO_POWER;

    let _ = (io_bits, burst_length);

    Ok(MainMemoryResult {
        timing: DramTiming {
            t_rcd,
            cas_latency,
            t_ras,
            t_rp,
            t_rc,
            t_rrd,
            t_burst: Seconds::ZERO,
        },
        energies: DramEnergies {
            activate,
            read,
            write,
            refresh_power,
            standby_power,
        },
        chip_area,
        area_efficiency,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array;
    use cactid_tech::{CellTechnology, TechNode};

    fn micron_like() -> (Technology, MemorySpec) {
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 27) // 1 Gb
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N78)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8192,
            })
            .build()
            .unwrap();
        (Technology::new(TechNode::N78), spec)
    }

    fn eval(tech: &Technology, spec: &MemorySpec, ndwl: u32, ndbl: u32) -> MainMemoryResult {
        let input = ArrayInput {
            rows: spec.bank_bytes() * 8 / 8192 / u64::from(ndbl),
            cols: 8192 / u64::from(ndwl),
            ndwl,
            ndbl,
            deg_bl_mux: 1,
            deg_sa_mux: (8192 / spec.output_bits()) as u32,
            output_bits: spec.output_bits(),
            address_bits: spec.address_bits,
            cell: tech.cell(CellTechnology::CommDram),
            periph: tech.peripheral_device(CellTechnology::CommDram),
            repeater_relax: 1.0,
            sleep_transistors: false,
            sense_fraction: 1.0,
        };
        let bank = array::evaluate(tech, &input).unwrap();
        assemble(tech, spec, &input, &bank).unwrap()
    }

    #[test]
    fn timing_identities_hold() {
        let (tech, spec) = micron_like();
        let r = eval(&tech, &spec, 16, 64);
        assert!(r.timing.t_rc >= r.timing.t_ras);
        assert!((r.timing.t_rc - (r.timing.t_ras + r.timing.t_rp)).abs() < Seconds::from_si(1e-15));
        assert!(r.timing.t_ras >= r.timing.t_rcd);
        assert!(r.timing.t_rrd < r.timing.t_rc, "interleaving must help");
    }

    #[test]
    fn ballpark_ddr3_timing() {
        let (tech, spec) = micron_like();
        let r = eval(&tech, &spec, 16, 64);
        // DDR3-class: tRCD and CL around 10–20 ns, tRC around 35–70 ns.
        assert!(
            r.timing.t_rcd > Seconds::ns(5.0) && r.timing.t_rcd < Seconds::ns(25.0),
            "tRCD {}",
            r.timing.t_rcd
        );
        assert!(
            r.timing.t_rc > Seconds::ns(25.0) && r.timing.t_rc < Seconds::ns(90.0),
            "tRC {}",
            r.timing.t_rc
        );
    }

    #[test]
    fn energies_are_ordered_act_above_read() {
        let (tech, spec) = micron_like();
        let r = eval(&tech, &spec, 16, 64);
        assert!(r.energies.activate > r.energies.read);
        assert!(r.energies.write > r.energies.read);
        assert!(r.energies.refresh_power > Watts::ZERO);
        assert!(r.energies.standby_power >= cal::STANDBY_IO_POWER);
    }

    #[test]
    fn area_efficiency_in_plausible_band() {
        let (tech, spec) = micron_like();
        let r = eval(&tech, &spec, 16, 64);
        assert!(
            r.area_efficiency > 0.2 && r.area_efficiency < 0.9,
            "eff {}",
            r.area_efficiency
        );
    }
}
