//! Solution-space sweep and the staged optimization of paper §2.4:
//! max-area filter → max-access-time filter → weighted objective.

use crate::array::{self, ArrayInput};
use crate::error::CactiError;
use crate::lint::{Severity, SolutionLinter};
use crate::main_memory;
use crate::org::{self, OrgParams};
use crate::solution::Solution;
use crate::spec::{MemoryKind, MemorySpec};
use crate::tag;
use cactid_tech::Technology;

fn build_input(tech: &Technology, spec: &MemorySpec, org: &OrgParams) -> ArrayInput {
    ArrayInput {
        rows: org.rows(spec),
        cols: org.cols(spec),
        ndwl: org.ndwl,
        ndbl: org.ndbl,
        deg_bl_mux: org.deg_bl_mux,
        deg_sa_mux: org.deg_sa_mux,
        output_bits: spec.output_bits(),
        address_bits: spec.address_bits,
        cell: tech.cell(spec.cell_tech),
        periph: tech.peripheral_device(spec.cell_tech),
        repeater_relax: spec.opt.repeater_relax,
        sleep_transistors: spec.opt.sleep_transistors,
        sense_fraction: spec.sense_fraction(),
    }
}

fn solve_inner(
    spec: &MemorySpec,
    linter: Option<&dyn SolutionLinter>,
) -> Result<Vec<Solution>, CactiError> {
    let tech = Technology::new(spec.node);
    let tag_result = if spec.kind.is_cache() {
        Some(tag::design_tag(&tech, spec)?)
    } else {
        None
    };

    let mut out = Vec::new();
    let mut lint_rejected = 0usize;
    for org in org::enumerate(spec) {
        let input = build_input(&tech, spec, &org);
        let Ok(data) = array::evaluate(&tech, &input) else {
            continue;
        };
        let mm = match spec.kind {
            MemoryKind::MainMemory { .. } => {
                Some(main_memory::assemble(&tech, spec, &input, &data)?)
            }
            _ => None,
        };
        let mut sol = Solution::assemble(spec, org, &input, data, tag_result.clone(), mm);
        if let Some(linter) = linter {
            let diags = linter.lint_candidate(spec, &sol);
            if diags.iter().any(|d| d.severity == Severity::Error) {
                lint_rejected += 1;
                continue;
            }
            sol.warnings = diags;
        }
        out.push(sol);
    }
    if out.is_empty() {
        return Err(if lint_rejected > 0 {
            CactiError::LintRejected(lint_rejected)
        } else {
            CactiError::NoFeasibleSolution
        });
    }
    Ok(out)
}

/// Evaluates every feasible organization for `spec` and returns the full
/// solution set (unfiltered).
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] when nothing is feasible.
pub fn solve(spec: &MemorySpec) -> Result<Vec<Solution>, CactiError> {
    solve_inner(spec, None)
}

/// Like [`solve`], but consults a lint engine on every assembled candidate:
/// candidates with any `Error`-severity diagnostic are rejected from the
/// solution set, and the surviving candidates carry their non-error
/// diagnostics in [`Solution::warnings`].
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] when nothing is feasible, or
/// [`CactiError::LintRejected`] when candidates existed but the linter
/// rejected every one of them.
pub fn solve_with(
    spec: &MemorySpec,
    linter: &dyn SolutionLinter,
) -> Result<Vec<Solution>, CactiError> {
    solve_inner(spec, Some(linter))
}

/// Applies the staged optimization of §2.4 to a solution set and returns
/// the winner.
///
/// 1. keep solutions with `area ≤ (1 + max_area_overhead) · best_area`;
/// 2. of those, keep `access_time ≤ (1 + max_access_time_overhead) · best`;
/// 3. minimize the normalized weighted objective over dynamic energy,
///    leakage (+ refresh) power, random cycle time and interleave cycle
///    time.
///
/// # Errors
///
/// [`CactiError::NoFeasibleSolution`] if `solutions` is empty.
pub fn select(spec: &MemorySpec, solutions: &[Solution]) -> Result<Solution, CactiError> {
    if solutions.is_empty() {
        return Err(CactiError::NoFeasibleSolution);
    }
    let opt = &spec.opt;

    // The scoring below is the designated raw-f64 escape hatch: the
    // normalized weighted objective mixes energy, power and time ratios
    // into one dimensionless score, so the quantities drop to `.value()`
    // here and nowhere else in the solver.
    let best_area = solutions
        .iter()
        .map(|s| s.area.value())
        .fold(f64::INFINITY, f64::min);
    let area_cap = best_area * (1.0 + opt.max_area_overhead);
    let stage1: Vec<&Solution> = solutions
        .iter()
        .filter(|s| s.area.value() <= area_cap)
        .collect();

    let best_t = stage1
        .iter()
        .map(|s| s.access_time.value())
        .fold(f64::INFINITY, f64::min);
    let t_cap = best_t * (1.0 + opt.max_access_time_overhead);
    let stage2: Vec<&Solution> = stage1
        .iter()
        .copied()
        .filter(|s| s.access_time.value() <= t_cap)
        .collect();

    let min_of = |f: fn(&Solution) -> f64| {
        stage2
            .iter()
            .map(|s| f(s).max(1e-30))
            .fold(f64::INFINITY, f64::min)
    };
    let e_min = min_of(|s| s.read_energy.value());
    let l_min = min_of(|s| (s.leakage_power + s.refresh_power).value());
    let c_min = min_of(|s| s.random_cycle.value());
    let i_min = min_of(|s| s.interleave_cycle.value());

    Ok(stage2
        .into_iter()
        .min_by(|a, b| {
            let obj = |s: &Solution| {
                opt.weight_dynamic * s.read_energy.value().max(1e-30) / e_min
                    + opt.weight_leakage * (s.leakage_power + s.refresh_power).value().max(1e-30)
                        / l_min
                    + opt.weight_cycle * s.random_cycle.value().max(1e-30) / c_min
                    + opt.weight_interleave * s.interleave_cycle.value().max(1e-30) / i_min
            };
            obj(a).total_cmp(&obj(b))
        })
        .expect("stage2 is non-empty: the minimum-area solution survives both filters")
        .clone())
}

/// Convenience: [`solve`] then [`select`].
///
/// # Errors
///
/// Propagates [`CactiError::NoFeasibleSolution`] from the sweep.
pub fn optimize(spec: &MemorySpec) -> Result<Solution, CactiError> {
    let all = solve(spec)?;
    select(spec, &all)
}

/// Convenience: [`solve_with`] then [`select`] — the winner is guaranteed
/// free of `Error`-severity diagnostics from `linter`.
///
/// # Errors
///
/// Propagates [`CactiError::NoFeasibleSolution`] or
/// [`CactiError::LintRejected`] from the sweep.
pub fn optimize_with(
    spec: &MemorySpec,
    linter: &dyn SolutionLinter,
) -> Result<Solution, CactiError> {
    let all = solve_with(spec, linter)?;
    select(spec, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccessMode, OptimizationOptions};
    use cactid_tech::{CellTechnology, TechNode};
    use cactid_units::{Joules, Seconds, SquareMeters, Watts};

    fn l2() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn l2_solves_with_many_candidates() {
        let sols = solve(&l2()).unwrap();
        assert!(sols.len() > 10, "only {} candidates", sols.len());
        for s in &sols {
            assert!(s.access_time > Seconds::ZERO && s.access_time < Seconds::ns(50.0));
            assert!(s.area > SquareMeters::ZERO);
            assert!(s.read_energy > Joules::ZERO);
            assert!(s.leakage_power > Watts::ZERO);
        }
    }

    #[test]
    fn staged_filters_respect_caps() {
        let spec = l2();
        let sols = solve(&spec).unwrap();
        let chosen = select(&spec, &sols).unwrap();
        let best_area = sols
            .iter()
            .map(|s| s.area.value())
            .fold(f64::INFINITY, f64::min);
        assert!(chosen.area.value() <= best_area * (1.0 + spec.opt.max_area_overhead) + 1e-12);
    }

    #[test]
    fn energy_weighting_changes_the_pick() {
        let mut spec = l2();
        spec.opt = OptimizationOptions {
            weight_dynamic: 100.0,
            weight_leakage: 0.0,
            weight_cycle: 0.0,
            weight_interleave: 0.0,
            max_area_overhead: 1.0,
            max_access_time_overhead: 2.0,
            ..OptimizationOptions::default()
        };
        let sols = solve(&spec).unwrap();
        let energy_pick = select(&spec, &sols).unwrap();
        spec.opt.weight_dynamic = 0.0;
        spec.opt.weight_cycle = 100.0;
        let cycle_pick = select(&spec, &sols).unwrap();
        // The two objectives should not pick a strictly worse solution on
        // their own axis.
        assert!(energy_pick.read_energy <= cycle_pick.read_energy + Joules::from_si(1e-15));
        assert!(cycle_pick.random_cycle <= energy_pick.random_cycle + Seconds::from_si(1e-15));
    }

    #[test]
    fn optimize_is_deterministic() {
        let spec = l2();
        let a = optimize(&spec).unwrap();
        let b = optimize(&spec).unwrap();
        assert_eq!(a.org, b.org);
    }
}
