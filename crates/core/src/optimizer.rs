//! Solution-space sweep and the staged optimization of paper §2.4:
//! max-area filter → max-access-time filter → weighted objective.

use crate::array::{self, ArrayInput};
use crate::error::CactiError;
use crate::lint::{Severity, SolutionLinter};
use crate::main_memory;
use crate::org::{self, OrgParams};
use crate::solution::Solution;
use crate::spec::{MemoryKind, MemorySpec};
use crate::tag;
use cactid_tech::Technology;

fn build_input(tech: &Technology, spec: &MemorySpec, org: &OrgParams) -> ArrayInput {
    ArrayInput {
        rows: org.rows(spec),
        cols: org.cols(spec),
        ndwl: org.ndwl,
        ndbl: org.ndbl,
        deg_bl_mux: org.deg_bl_mux,
        deg_sa_mux: org.deg_sa_mux,
        output_bits: spec.output_bits(),
        address_bits: spec.address_bits,
        cell: tech.cell(spec.cell_tech),
        periph: tech.peripheral_device(spec.cell_tech),
        repeater_relax: spec.opt.repeater_relax,
        sleep_transistors: spec.opt.sleep_transistors,
        sense_fraction: spec.sense_fraction(),
    }
}

/// Counters describing the work one [`solve_with_stats`] call performed.
///
/// Batch drivers (the `cactid-explore` engine) aggregate these across a
/// sweep to report how much of the organization space was enumerated, how
/// much survived the electrical models, and how much the lint engine
/// rejected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Structurally feasible organizations enumerated for the spec.
    pub orgs_enumerated: usize,
    /// Organizations that survived the electrical models and (if a linter
    /// ran) the `Error`-severity rules — the size of the solution set.
    pub feasible: usize,
    /// Candidates dropped because an `Error`-severity diagnostic fired.
    pub lint_rejected: usize,
}

/// A solution set together with the [`SolveStats`] of producing it.
///
/// The stats are populated even when `result` is an error, so sweep
/// engines can account for exhausted or lint-rejected points.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The full feasible solution set, or why there is none.
    pub result: Result<Vec<Solution>, CactiError>,
    /// Work counters for this solve.
    pub stats: SolveStats,
}

fn solve_inner(spec: &MemorySpec, linter: Option<&dyn SolutionLinter>) -> SolveOutcome {
    let _span = cactid_obs::span("core.solve");
    cactid_obs::counter!("core.solve.calls").inc();
    let mut stats = SolveStats::default();
    let tech = Technology::cached(spec.node);
    let tag_result = if spec.kind.is_cache() {
        match tag::design_tag(tech, spec) {
            Ok(t) => Some(t),
            Err(e) => {
                return SolveOutcome {
                    result: Err(e),
                    stats,
                }
            }
        }
    } else {
        None
    };

    let orgs = org::enumerate(spec);
    stats.orgs_enumerated = orgs.len();
    cactid_obs::counter!("core.solve.orgs_enumerated").add(orgs.len() as u64);
    let mut out = Vec::new();
    for org in orgs {
        let input = build_input(tech, spec, &org);
        let Ok(data) = array::evaluate(tech, &input) else {
            cactid_obs::counter!("core.solve.electrical_pruned").inc();
            continue;
        };
        let mm = match spec.kind {
            MemoryKind::MainMemory { .. } => match main_memory::assemble(tech, spec, &input, &data)
            {
                Ok(mm) => Some(mm),
                Err(e) => {
                    return SolveOutcome {
                        result: Err(e),
                        stats,
                    }
                }
            },
            _ => None,
        };
        let mut sol = Solution::assemble(spec, org, &input, data, tag_result.clone(), mm);
        if let Some(linter) = linter {
            let diags = linter.lint_candidate(spec, &sol);
            if diags.iter().any(|d| d.severity == Severity::Error) {
                stats.lint_rejected += 1;
                cactid_obs::counter!("core.solve.lint_rejected").inc();
                continue;
            }
            sol.warnings = diags;
        }
        out.push(sol);
    }
    stats.feasible = out.len();
    cactid_obs::counter!("core.solve.feasible").add(out.len() as u64);
    if out.is_empty() {
        cactid_obs::counter!("core.solve.no_feasible").inc();
    }
    let result = if out.is_empty() {
        Err(if stats.lint_rejected > 0 {
            CactiError::LintRejected(stats.lint_rejected)
        } else {
            CactiError::NoFeasibleSolution
        })
    } else {
        Ok(out)
    };
    SolveOutcome { result, stats }
}

/// The batch-oriented solver entry point: like [`solve_with`] (or [`solve`]
/// when `linter` is `None`), but additionally returns the [`SolveStats`] of
/// the sweep, and never panics on infeasible specs.
///
/// Both [`MemorySpec`] and the returned [`SolveOutcome`] own all their data
/// (`Send`), so this is the function batch engines call from worker
/// threads.
pub fn solve_with_stats(spec: &MemorySpec, linter: Option<&dyn SolutionLinter>) -> SolveOutcome {
    solve_inner(spec, linter)
}

/// Evaluates every feasible organization for `spec` and returns the full
/// solution set (unfiltered).
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] when nothing is feasible.
pub fn solve(spec: &MemorySpec) -> Result<Vec<Solution>, CactiError> {
    solve_inner(spec, None).result
}

/// Like [`solve`], but consults a lint engine on every assembled candidate:
/// candidates with any `Error`-severity diagnostic are rejected from the
/// solution set, and the surviving candidates carry their non-error
/// diagnostics in [`Solution::warnings`].
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] when nothing is feasible, or
/// [`CactiError::LintRejected`] when candidates existed but the linter
/// rejected every one of them.
pub fn solve_with(
    spec: &MemorySpec,
    linter: &dyn SolutionLinter,
) -> Result<Vec<Solution>, CactiError> {
    solve_inner(spec, Some(linter)).result
}

/// Applies the staged optimization of §2.4 to a solution set and returns
/// the winner.
///
/// 1. keep solutions with `area ≤ (1 + max_area_overhead) · best_area`;
/// 2. of those, keep `access_time ≤ (1 + max_access_time_overhead) · best`;
/// 3. minimize the normalized weighted objective over dynamic energy,
///    leakage (+ refresh) power, random cycle time and interleave cycle
///    time.
///
/// # Errors
///
/// [`CactiError::NoFeasibleSolution`] if `solutions` is empty, or when no
/// candidate survives the staged filters — with well-formed metrics the
/// minimum-area solution always survives both screens, but non-finite
/// areas or access times (NaN propagated through a model escape hatch)
/// fail every `<=` comparison and can empty the stages.
pub fn select(spec: &MemorySpec, solutions: &[Solution]) -> Result<Solution, CactiError> {
    cactid_obs::counter!("core.select.calls").inc();
    if solutions.is_empty() {
        return Err(CactiError::NoFeasibleSolution);
    }
    let opt = &spec.opt;

    // The scoring below is the designated raw-f64 escape hatch: the
    // normalized weighted objective mixes energy, power and time ratios
    // into one dimensionless score, so the quantities drop to `.value()`
    // here and nowhere else in the solver.
    let best_area = solutions
        .iter()
        .map(|s| s.area.value())
        .fold(f64::INFINITY, f64::min);
    let area_cap = best_area * (1.0 + opt.max_area_overhead);
    let stage1: Vec<&Solution> = solutions
        .iter()
        .filter(|s| s.area.value() <= area_cap)
        .collect();

    let best_t = stage1
        .iter()
        .map(|s| s.access_time.value())
        .fold(f64::INFINITY, f64::min);
    let t_cap = best_t * (1.0 + opt.max_access_time_overhead);
    let stage2: Vec<&Solution> = stage1
        .iter()
        .copied()
        .filter(|s| s.access_time.value() <= t_cap)
        .collect();

    let min_of = |f: fn(&Solution) -> f64| {
        stage2
            .iter()
            .map(|s| f(s).max(1e-30))
            .fold(f64::INFINITY, f64::min)
    };
    cactid_obs::counter!("core.select.area_pruned").add((solutions.len() - stage1.len()) as u64);
    cactid_obs::counter!("core.select.time_pruned").add((stage1.len() - stage2.len()) as u64);

    let e_min = min_of(|s| s.read_energy.value());
    let l_min = min_of(|s| (s.leakage_power + s.refresh_power).value());
    let c_min = min_of(|s| s.random_cycle.value());
    let i_min = min_of(|s| s.interleave_cycle.value());

    stage2
        .into_iter()
        .min_by(|a, b| {
            let obj = |s: &Solution| {
                opt.weight_dynamic * s.read_energy.value().max(1e-30) / e_min
                    + opt.weight_leakage * (s.leakage_power + s.refresh_power).value().max(1e-30)
                        / l_min
                    + opt.weight_cycle * s.random_cycle.value().max(1e-30) / c_min
                    + opt.weight_interleave * s.interleave_cycle.value().max(1e-30) / i_min
            };
            obj(a).total_cmp(&obj(b))
        })
        .cloned()
        .ok_or_else(|| {
            cactid_obs::counter!("core.select.no_feasible").inc();
            CactiError::NoFeasibleSolution
        })
}

/// Convenience: [`solve`] then [`select`].
///
/// # Errors
///
/// Propagates [`CactiError::NoFeasibleSolution`] from the sweep.
pub fn optimize(spec: &MemorySpec) -> Result<Solution, CactiError> {
    let all = solve(spec)?;
    select(spec, &all)
}

/// Convenience: [`solve_with`] then [`select`] — the winner is guaranteed
/// free of `Error`-severity diagnostics from `linter`.
///
/// # Errors
///
/// Propagates [`CactiError::NoFeasibleSolution`] or
/// [`CactiError::LintRejected`] from the sweep.
pub fn optimize_with(
    spec: &MemorySpec,
    linter: &dyn SolutionLinter,
) -> Result<Solution, CactiError> {
    let all = solve_with(spec, linter)?;
    select(spec, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccessMode, OptimizationOptions};
    use cactid_tech::{CellTechnology, TechNode};
    use cactid_units::{Joules, Seconds, SquareMeters, Watts};

    fn l2() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn l2_solves_with_many_candidates() {
        let sols = solve(&l2()).unwrap();
        assert!(sols.len() > 10, "only {} candidates", sols.len());
        for s in &sols {
            assert!(s.access_time > Seconds::ZERO && s.access_time < Seconds::ns(50.0));
            assert!(s.area > SquareMeters::ZERO);
            assert!(s.read_energy > Joules::ZERO);
            assert!(s.leakage_power > Watts::ZERO);
        }
    }

    #[test]
    fn staged_filters_respect_caps() {
        let spec = l2();
        let sols = solve(&spec).unwrap();
        let chosen = select(&spec, &sols).unwrap();
        let best_area = sols
            .iter()
            .map(|s| s.area.value())
            .fold(f64::INFINITY, f64::min);
        assert!(chosen.area.value() <= best_area * (1.0 + spec.opt.max_area_overhead) + 1e-12);
    }

    #[test]
    fn energy_weighting_changes_the_pick() {
        let mut spec = l2();
        spec.opt = OptimizationOptions {
            weight_dynamic: 100.0,
            weight_leakage: 0.0,
            weight_cycle: 0.0,
            weight_interleave: 0.0,
            max_area_overhead: 1.0,
            max_access_time_overhead: 2.0,
            ..OptimizationOptions::default()
        };
        let sols = solve(&spec).unwrap();
        let energy_pick = select(&spec, &sols).unwrap();
        spec.opt.weight_dynamic = 0.0;
        spec.opt.weight_cycle = 100.0;
        let cycle_pick = select(&spec, &sols).unwrap();
        // The two objectives should not pick a strictly worse solution on
        // their own axis.
        assert!(energy_pick.read_energy <= cycle_pick.read_energy + Joules::from_si(1e-15));
        assert!(cycle_pick.random_cycle <= energy_pick.random_cycle + Seconds::from_si(1e-15));
    }

    #[test]
    fn solve_with_stats_counts_the_sweep() {
        let spec = l2();
        let out = solve_with_stats(&spec, None);
        let sols = out.result.unwrap();
        assert_eq!(out.stats.feasible, sols.len());
        assert!(out.stats.orgs_enumerated >= sols.len());
        assert_eq!(out.stats.lint_rejected, 0);
        assert_eq!(sols, solve(&spec).unwrap(), "stats path changes nothing");
    }

    #[test]
    fn solve_with_stats_reports_orgs_even_on_failure() {
        // A spec whose organizations all fail electrically is hard to build
        // via the builder; instead check the error path maps through.
        let mut spec = l2();
        spec.opt.repeater_relax = 1.0;
        let out = solve_with_stats(&spec, None);
        assert!(out.result.is_ok());
        assert!(out.stats.orgs_enumerated > 0);
    }

    #[test]
    fn select_with_nonfinite_areas_errors_instead_of_panicking() {
        // Regression: every candidate failing the area screen used to trip
        // the stage-2 `.expect`. NaN areas fail `area <= cap` for every
        // candidate (NaN comparisons are false), emptying both stages.
        let spec = l2();
        let mut sols = solve(&spec).unwrap();
        for s in &mut sols {
            s.area = SquareMeters::from_si(f64::NAN);
        }
        assert_eq!(
            select(&spec, &sols),
            Err(CactiError::NoFeasibleSolution),
            "non-finite areas must yield a typed error, not a panic"
        );
        // Same story when the access times are the poisoned axis.
        let mut sols = solve(&spec).unwrap();
        for s in &mut sols {
            s.access_time = Seconds::from_si(f64::NAN);
        }
        assert_eq!(select(&spec, &sols), Err(CactiError::NoFeasibleSolution));
    }

    #[test]
    fn solve_publishes_obs_counters() {
        let calls_before = cactid_obs::counter!("core.solve.calls").get();
        let orgs_before = cactid_obs::counter!("core.solve.orgs_enumerated").get();
        let out = solve_with_stats(&l2(), None);
        assert!(cactid_obs::counter!("core.solve.calls").get() > calls_before);
        assert!(
            cactid_obs::counter!("core.solve.orgs_enumerated").get()
                >= orgs_before + out.stats.orgs_enumerated as u64
        );
        let snap = cactid_obs::snapshot();
        let h = snap.histogram("span.core.solve.ns").expect("solve span");
        assert!(h.count >= 1);
    }

    #[test]
    fn optimize_is_deterministic() {
        let spec = l2();
        let a = optimize(&spec).unwrap();
        let b = optimize(&spec).unwrap();
        assert_eq!(a.org, b.org);
    }
}
