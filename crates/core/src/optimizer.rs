//! Solution-space sweep and the staged optimization of paper §2.4:
//! max-area filter → max-access-time filter → weighted objective.
//!
//! The sweep itself is a staged pipeline (DESIGN.md §14): organizations
//! stream out of [`org::enumerate_lazy`], a closed-form pre-screen
//! ([`array::prescreen`]) rejects electrically doomed candidates before the
//! full circuit models run, and per-spec invariants (technology parameters,
//! the tag design) are hoisted out of the per-candidate loop.

use crate::array::{self, ArrayInput};
use crate::error::CactiError;
use crate::lint::{Severity, SolutionLinter};
use crate::main_memory;
use crate::org::{self, OrgParams};
use crate::par;
use crate::solution::Solution;
use crate::spec::{MemoryKind, MemorySpec};
use crate::tag::{self, TagResult};
use cactid_tech::{CellParams, DeviceParams, Technology};
use std::sync::Arc;

/// Everything about a solve that is invariant across candidates, computed
/// once per spec: the interned technology, the cell/peripheral parameter
/// derivations (interpolated nodes re-blend anchor tables on every
/// `Technology::cell` call, which dominated the per-candidate cost on
/// small sweeps), and the single tag design shared by `Arc`.
struct SpecCtx<'a> {
    spec: &'a MemorySpec,
    tech: &'static Technology,
    cell: CellParams,
    periph: DeviceParams,
    output_bits: u64,
    sense_fraction: f64,
    tag: Option<Arc<TagResult>>,
}

impl<'a> SpecCtx<'a> {
    fn new(spec: &'a MemorySpec) -> Result<Self, CactiError> {
        let tech = Technology::cached(spec.node);
        let tag = if spec.kind.is_cache() {
            Some(Arc::new(tag::design_tag(tech, spec)?))
        } else {
            None
        };
        Ok(Self {
            spec,
            tech,
            cell: tech.cell(spec.cell_tech),
            periph: tech.peripheral_device(spec.cell_tech),
            output_bits: spec.output_bits(),
            sense_fraction: spec.sense_fraction(),
            tag,
        })
    }

    fn build_input(&self, org: &OrgParams) -> ArrayInput {
        ArrayInput {
            rows: org.rows(self.spec),
            cols: org.cols(self.spec),
            ndwl: org.ndwl,
            ndbl: org.ndbl,
            deg_bl_mux: org.deg_bl_mux,
            deg_sa_mux: org.deg_sa_mux,
            output_bits: self.output_bits,
            address_bits: self.spec.address_bits,
            cell: self.cell,
            periph: self.periph,
            repeater_relax: self.spec.opt.repeater_relax,
            sleep_transistors: self.spec.opt.sleep_transistors,
            sense_fraction: self.sense_fraction,
        }
    }
}

/// What the pipeline decided about one enumerated organization. Lint runs
/// later (serially, in index order), so it is not a candidate outcome.
enum CandidateOutcome {
    /// Rejected by the closed-form pre-screen without running the models.
    BoundPruned,
    /// Rejected by the full electrical models.
    ElectricalPruned,
    /// Survived the models; boxed so the enum stays small for the slots.
    Feasible(Box<Solution>),
    /// A model error that poisons the whole solve (bad main-memory spec).
    Fatal(CactiError),
}

/// Which pre-screen the staged pipeline runs before the full models.
#[derive(Clone, Copy)]
enum Screen<'b> {
    /// No pre-screen: the debug-only reference path.
    Off,
    /// The exact closed-form screen ([`array::prescreen_explain`]).
    Exact,
    /// The certified fast path ([`array::prescreen_verdict_with`]):
    /// identical verdicts, with the closed forms skipped wherever the
    /// certificate already decides them.
    Certified(&'b array::CertifiedBounds),
}

impl Screen<'_> {
    fn rejects(self, memo: &mut array::EvalMemo, cell: &CellParams, rows: u64, cols: u64) -> bool {
        match self {
            Screen::Off => false,
            // Memoized: the verdict (and the sense signal behind it) is
            // stored under (rows, cols), so the evaluation of a surviving
            // candidate reuses it instead of re-running the closed forms —
            // the staged path used to pay the pre-screen twice per
            // feasible candidate, which made it *slower* than the
            // unpruned reference on low-prune sweeps.
            Screen::Exact => memo.prescreen_cached(cell, rows, cols).is_err(),
            Screen::Certified(b) => array::prescreen_verdict_with(cell, rows, cols, b).is_err(),
        }
    }
}

/// Evaluates one candidate through the staged pipeline. With the screen on,
/// the closed-form bounds run first; they are the exact feasibility
/// conditions `array::evaluate` would check, so pruning here cannot change
/// the solution set — only skip doomed model evaluations.
///
/// `memo` is the per-solve (or per-worker) incremental-evaluation scratch:
/// screened paths evaluate through it so model slices keyed on unchanged
/// organization axes are reused across adjacent candidates. The unscreened
/// reference path deliberately bypasses it — `array::evaluate` runs every
/// candidate from scratch, keeping the debug oracle's cost and code path
/// independent of the memo machinery.
fn evaluate_candidate(
    ctx: &SpecCtx<'_>,
    org: OrgParams,
    screen: Screen<'_>,
    memo: &mut array::EvalMemo,
) -> CandidateOutcome {
    if screen.rejects(memo, &ctx.cell, org.rows(ctx.spec), org.cols(ctx.spec)) {
        return CandidateOutcome::BoundPruned;
    }
    let input = ctx.build_input(&org);
    let evaluated = match screen {
        Screen::Off => array::evaluate(ctx.tech, &input),
        Screen::Exact | Screen::Certified(_) => array::evaluate_incremental(ctx.tech, &input, memo),
    };
    let Ok(data) = evaluated else {
        return CandidateOutcome::ElectricalPruned;
    };
    let mm = match ctx.spec.kind {
        MemoryKind::MainMemory { .. } => {
            match main_memory::assemble(ctx.tech, ctx.spec, &input, &data) {
                Ok(mm) => Some(mm),
                Err(e) => return CandidateOutcome::Fatal(e),
            }
        }
        _ => None,
    };
    let sol = Solution::assemble(ctx.spec, org, &input, data, ctx.tag.clone(), mm);
    CandidateOutcome::Feasible(Box::new(sol))
}

/// Applies the lint stage to a surviving candidate; `None` means rejected.
fn admit(
    spec: &MemorySpec,
    linter: Option<&dyn SolutionLinter>,
    mut sol: Solution,
    stats: &mut SolveStats,
) -> Option<Solution> {
    if let Some(linter) = linter {
        let diags = linter.lint_candidate(spec, &sol);
        if diags.iter().any(|d| d.severity == Severity::Error) {
            stats.lint_rejected += 1;
            return None;
        }
        sol.warnings = diags;
    }
    Some(sol)
}

/// Counters describing the work one [`solve_with_stats`] call performed.
///
/// Batch drivers (the `cactid-explore` engine) aggregate these across a
/// sweep to report how much of the organization space was enumerated, how
/// much the cheap pre-screen rejected before the circuit models ran, how
/// much survived the electrical models, and how much the lint engine
/// rejected.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Structurally feasible organizations enumerated for the spec.
    pub orgs_enumerated: usize,
    /// Candidates rejected by the closed-form pre-screen bounds before the
    /// full electrical models ran. Zero on the unpruned reference path.
    pub bound_pruned: usize,
    /// Candidates rejected by the full electrical models. With the
    /// pre-screen on this is zero (the screen is exact); the reference
    /// path reports here what the staged path reports as `bound_pruned`.
    pub electrical_pruned: usize,
    /// Organizations that survived the electrical models and (if a linter
    /// ran) the `Error`-severity rules — the size of the solution set.
    pub feasible: usize,
    /// Candidates dropped because an `Error`-severity diagnostic fired.
    pub lint_rejected: usize,
}

/// A solution set together with the [`SolveStats`] of producing it.
///
/// The stats are populated even when `result` is an error, so sweep
/// engines can account for exhausted or lint-rejected points.
#[derive(Debug, Clone)]
pub struct SolveOutcome {
    /// The full feasible solution set, or why there is none.
    pub result: Result<Vec<Solution>, CactiError>,
    /// Work counters for this solve.
    pub stats: SolveStats,
}

/// Wraps a completed sweep's `out` set into the final result and marks
/// whether the sweep finished with nothing feasible (the only condition
/// under which the `no_feasible` counter fires — early fatal errors do
/// not count as an exhausted sweep).
fn finish_sweep(
    out: Vec<Solution>,
    stats: &mut SolveStats,
) -> (Result<Vec<Solution>, CactiError>, bool) {
    stats.feasible = out.len();
    if out.is_empty() {
        let e = if stats.lint_rejected > 0 {
            CactiError::LintRejected(stats.lint_rejected)
        } else {
            CactiError::NoFeasibleSolution
        };
        (Err(e), true)
    } else {
        (Ok(out), false)
    }
}

/// Publishes one solve's worth of batched counters to the process-global
/// observability registry. The hot loop accumulates into [`SolveStats`]
/// locally; this is the single flush per solve. `reuse` is the number of
/// memo-slice hits the incremental evaluation scored (always zero on the
/// from-scratch reference path); it lives outside [`SolveStats`] because
/// the stats are compared bitwise across the staged, parallel and
/// reference paths, whose reuse opportunities legitimately differ.
fn flush_obs(stats: &SolveStats, swept_empty: bool, reuse: u64) {
    cactid_obs::counter!("core.solve.calls").inc();
    cactid_obs::counter!("core.solve.orgs_enumerated").add(stats.orgs_enumerated as u64);
    cactid_obs::counter!("core.solve.bound_pruned").add(stats.bound_pruned as u64);
    cactid_obs::counter!("core.solve.electrical_pruned").add(stats.electrical_pruned as u64);
    cactid_obs::counter!("core.solve.lint_rejected").add(stats.lint_rejected as u64);
    cactid_obs::counter!("core.solve.feasible").add(stats.feasible as u64);
    cactid_obs::counter!("core.solve.incremental_reuse").add(reuse);
    if swept_empty {
        cactid_obs::counter!("core.solve.no_feasible").inc();
    }
}

/// The serial staged sweep. `screen` selects the pruned pipeline; the
/// debug-only reference path passes [`Screen::Off`] and pays the full
/// model cost for every candidate. Returns the outcome, the
/// exhausted-sweep flag for [`flush_obs`], and the memo-reuse hit count.
fn sweep_serial(
    spec: &MemorySpec,
    linter: Option<&dyn SolutionLinter>,
    screen: Screen<'_>,
) -> (SolveOutcome, bool, u64) {
    let mut stats = SolveStats::default();
    let mut memo = array::EvalMemo::new();
    let ctx = match SpecCtx::new(spec) {
        Ok(ctx) => ctx,
        Err(e) => {
            return (
                SolveOutcome {
                    result: Err(e),
                    stats,
                },
                false,
                0,
            )
        }
    };

    let mut iter = org::enumerate_lazy(spec);
    let mut out = Vec::new();
    while let Some(org) = iter.next() {
        stats.orgs_enumerated += 1;
        match evaluate_candidate(&ctx, org, screen, &mut memo) {
            CandidateOutcome::BoundPruned => stats.bound_pruned += 1,
            CandidateOutcome::ElectricalPruned => stats.electrical_pruned += 1,
            CandidateOutcome::Fatal(e) => {
                // A fatal error always reported the full enumeration count
                // in the eager implementation; drain the iterator so the
                // lazy pipeline keeps that contract.
                stats.orgs_enumerated += iter.count();
                return (
                    SolveOutcome {
                        result: Err(e),
                        stats,
                    },
                    false,
                    memo.reuse_hits(),
                );
            }
            CandidateOutcome::Feasible(sol) => {
                if let Some(sol) = admit(spec, linter, *sol, &mut stats) {
                    out.push(sol);
                }
            }
        }
    }
    let (result, swept_empty) = finish_sweep(out, &mut stats);
    (
        SolveOutcome { result, stats },
        swept_empty,
        memo.reuse_hits(),
    )
}

fn solve_inner(spec: &MemorySpec, linter: Option<&dyn SolutionLinter>) -> SolveOutcome {
    let _span = cactid_obs::span("core.solve");
    let (outcome, swept_empty, reuse) = sweep_serial(spec, linter, Screen::Exact);
    flush_obs(&outcome.stats, swept_empty, reuse);
    outcome
}

/// Like [`solve_with_stats`], but the pre-screen consults the certified
/// cutoffs in `bounds` (produced and proved sound by `cactid-prove`),
/// skipping the closed-form arithmetic wherever a certificate already
/// decides the verdict. This is the opt-in entry behind the `cactid
/// --certified` flag: with any bounds — sound, conservative, or stale —
/// the solution set, its ordering, and the stats are byte-for-byte
/// identical to [`solve_with_stats`], because the certified screen falls
/// back to the identical concrete expressions outside its certified
/// domain and `array::evaluate` re-checks feasibility on every survivor.
pub fn solve_with_stats_certified(
    spec: &MemorySpec,
    linter: Option<&dyn SolutionLinter>,
    bounds: &array::CertifiedBounds,
) -> SolveOutcome {
    let _span = cactid_obs::span("core.solve");
    let (outcome, swept_empty, reuse) = sweep_serial(spec, linter, Screen::Certified(bounds));
    flush_obs(&outcome.stats, swept_empty, reuse);
    outcome
}

/// The batch-oriented solver entry point: like [`solve_with`] (or [`solve`]
/// when `linter` is `None`), but additionally returns the [`SolveStats`] of
/// the sweep, and never panics on infeasible specs.
///
/// Both [`MemorySpec`] and the returned [`SolveOutcome`] own all their data
/// (`Send`), so this is the function batch engines call from worker
/// threads.
pub fn solve_with_stats(spec: &MemorySpec, linter: Option<&dyn SolutionLinter>) -> SolveOutcome {
    solve_inner(spec, linter)
}

/// Like [`solve_with_stats`], but fans the candidate evaluations out over
/// `threads` scoped workers (`0` means the machine's available
/// parallelism). The merge is serial and in organization-index order —
/// including the lint stage, which the [`SolutionLinter`] trait does not
/// require to be thread-safe — so the solution set, its ordering, and the
/// stats are identical to the serial path. A fatal model error reported by
/// any candidate poisons the solve exactly as it does serially: stats
/// merge stops at the first fatal index and the full enumeration count is
/// still reported.
///
/// Below this candidate count the parallel entry point evaluates inline on
/// the calling thread instead of fanning out: scoped-thread spawn and
/// synchronization cost more than the models save on tiny sweeps. The
/// solve-throughput bench measured the 70-candidate COMM-DRAM DIMM sweep
/// at 0.62x serial speed when fanned out; with the fallback the parallel
/// entry is exactly the serial evaluation (same outcomes, same merge), so
/// such sweeps can never regress below 1.0x again.
pub const PARALLEL_SERIAL_THRESHOLD: usize = 128;

/// Worth reaching for only on sweeps whose model time dominates the
/// per-thread spawn cost — large main-memory or high-capacity cache specs;
/// sweeps under [`PARALLEL_SERIAL_THRESHOLD`] candidates run inline, as
/// does any call on a single-core host (where spinning up the pool can
/// only lose). Either serial fallback is counted in the
/// `core.solve.parallel_serial_fallback` observability counter.
pub fn solve_with_stats_parallel(
    spec: &MemorySpec,
    linter: Option<&dyn SolutionLinter>,
    threads: usize,
) -> SolveOutcome {
    let _span = cactid_obs::span("core.solve");
    // Single-core hosts first: `host_parallelism() == 1` means the
    // fan-out machinery can only lose, so skip even the prefix probe and
    // run the serial sweep directly. Then the sweep-size probe: tiny
    // sweeps run the actual serial sweep, not a serialized imitation of
    // the fan-out — same lazy enumeration, no intermediate outcome
    // buffer. The prefix count costs at most THRESHOLD cheap geometry
    // steps, so large sweeps pay nothing noticeable for the probe.
    let effective_threads = if threads == 0 {
        par::host_parallelism()
    } else {
        threads
    };
    let serial = effective_threads <= 1
        || org::enumerate_lazy(spec)
            .take(PARALLEL_SERIAL_THRESHOLD)
            .count()
            < PARALLEL_SERIAL_THRESHOLD;
    if serial {
        cactid_obs::counter!("core.solve.parallel_serial_fallback").inc();
        let (outcome, swept_empty, reuse) = sweep_serial(spec, linter, Screen::Exact);
        flush_obs(&outcome.stats, swept_empty, reuse);
        return outcome;
    }

    let mut stats = SolveStats::default();
    let ctx = match SpecCtx::new(spec) {
        Ok(ctx) => ctx,
        Err(e) => {
            flush_obs(&stats, false, 0);
            return SolveOutcome {
                result: Err(e),
                stats,
            };
        }
    };

    let orgs = org::enumerate(spec);
    stats.orgs_enumerated = orgs.len();
    // Each worker carries its own memo: slice reuse needs no sharing or
    // locking, and since every slice is a pure function of its key the
    // per-worker results — and the index-ordered merge below — stay
    // bitwise identical to the serial sweep however the atomic cursor
    // happens to partition the candidates.
    let (outcomes, memos): (Vec<CandidateOutcome>, Vec<array::EvalMemo>) =
        par::parallel_map_with(threads, orgs.len(), array::EvalMemo::new, |memo, i| {
            evaluate_candidate(&ctx, orgs[i], Screen::Exact, memo)
        });
    let reuse: u64 = memos.iter().map(array::EvalMemo::reuse_hits).sum();

    let mut out = Vec::new();
    let mut fatal = None;
    for outcome in outcomes {
        match outcome {
            CandidateOutcome::BoundPruned => stats.bound_pruned += 1,
            CandidateOutcome::ElectricalPruned => stats.electrical_pruned += 1,
            CandidateOutcome::Fatal(e) => {
                fatal = Some(e);
                break;
            }
            CandidateOutcome::Feasible(sol) => {
                if let Some(sol) = admit(spec, linter, *sol, &mut stats) {
                    out.push(sol);
                }
            }
        }
    }
    if let Some(e) = fatal {
        flush_obs(&stats, false, reuse);
        return SolveOutcome {
            result: Err(e),
            stats,
        };
    }
    let (result, swept_empty) = finish_sweep(out, &mut stats);
    flush_obs(&stats, swept_empty, reuse);
    SolveOutcome { result, stats }
}

/// Per-reason counts of candidates rejected by the closed-form screen,
/// accumulated by [`static_screen`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreenHistogram {
    /// Candidates with more subarray rows than the cell allows.
    pub subarray_rows: usize,
    /// Candidates past the 3 ns distributed wordline RC bound.
    pub wordline_elmore: usize,
    /// DRAM candidates whose charge-sharing signal misses the sense margin.
    pub sense_margin: usize,
}

impl ScreenHistogram {
    /// Counts one rejection.
    pub fn record(&mut self, failure: array::PrescreenFailure) {
        match failure {
            array::PrescreenFailure::SubarrayRows => self.subarray_rows += 1,
            array::PrescreenFailure::WordlineElmore => self.wordline_elmore += 1,
            array::PrescreenFailure::SenseMargin => self.sense_margin += 1,
        }
    }

    /// Total rejections across all reasons.
    pub fn total(&self) -> usize {
        self.subarray_rows + self.wordline_elmore + self.sense_margin
    }

    /// `(label, count)` pairs in check order, matching
    /// [`array::PrescreenFailure::ALL`].
    pub fn entries(&self) -> [(&'static str, usize); 3] {
        [
            ("subarray-rows", self.subarray_rows),
            ("wordline-elmore", self.wordline_elmore),
            ("sense-margin", self.sense_margin),
        ]
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &ScreenHistogram) {
        self.subarray_rows += other.subarray_rows;
        self.wordline_elmore += other.wordline_elmore;
        self.sense_margin += other.sense_margin;
    }
}

/// What [`static_screen`] proved about a spec without running any circuit
/// model.
#[derive(Debug, Clone, PartialEq)]
pub enum ScreenVerdict {
    /// Provably infeasible: [`solve`] is guaranteed to return exactly this
    /// error for the spec (the screen is exact, so no model evaluation can
    /// change the outcome).
    Infeasible(CactiError),
    /// At least `survivors` organizations pass the closed-form screen. The
    /// spec will very likely solve, but later stages the screen cannot see
    /// (lint rejection, non-finite metrics in [`select`]) may still fail
    /// it — the verdict is one-sided by design.
    MaybeFeasible {
        /// Organizations that pass the closed-form screen.
        survivors: usize,
    },
}

impl ScreenVerdict {
    /// `true` for the provably-infeasible verdict.
    pub fn is_infeasible(&self) -> bool {
        matches!(self, ScreenVerdict::Infeasible(_))
    }
}

/// The result of statically screening one spec: the verdict, the
/// [`SolveStats`] a real solve of an infeasible spec would report, and the
/// per-reason rejection histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticScreen {
    /// Feasibility verdict.
    pub verdict: ScreenVerdict,
    /// For an [`ScreenVerdict::Infeasible`] spec these are byte-for-byte
    /// the counters [`solve_with_stats`] would report: every enumerated
    /// organization bound-pruned, nothing feasible. For a `MaybeFeasible`
    /// spec only `orgs_enumerated` and `bound_pruned` are meaningful (the
    /// real solve decides the rest).
    pub stats: SolveStats,
    /// Why the screen rejected what it rejected.
    pub reasons: ScreenHistogram,
}

/// Statically classifies a spec using only the exact closed-form checks —
/// the per-spec tag design and [`array::prescreen_explain`] over the full
/// organization enumeration. No circuit model runs and no solve happens:
/// an [`ScreenVerdict::Infeasible`] verdict is a *proof* that
/// [`solve_with_stats`] would return the same error with the same stats,
/// because the screen evaluates exactly the feasibility conditions
/// [`array::evaluate`] checks first.
///
/// This is the engine behind `cactid audit`: a whole exploration grid can
/// be classified in microseconds per point, and statically-doomed points
/// skipped without changing a byte of the output records.
pub fn static_screen(spec: &MemorySpec) -> StaticScreen {
    static_screen_inner(spec, None)
}

/// [`static_screen`] with the certified fast path: where the
/// [`array::CertifiedBounds`] certificate already decides a check, the
/// closed form is skipped. The verdict, stats, and per-reason histogram
/// are identical to [`static_screen`] for any bounds, sound or
/// conservative — the fast path preserves the check order and falls back
/// to the concrete expressions outside its certified domain.
pub fn static_screen_certified(spec: &MemorySpec, bounds: &array::CertifiedBounds) -> StaticScreen {
    static_screen_inner(spec, Some(bounds))
}

fn static_screen_inner(spec: &MemorySpec, bounds: Option<&array::CertifiedBounds>) -> StaticScreen {
    cactid_obs::counter!("core.screen.calls").inc();
    let mut stats = SolveStats::default();
    let mut reasons = ScreenHistogram::default();
    // Mirror SpecCtx::new: the technology tables are infallible, the tag
    // design is the only per-spec stage that can fail before enumeration.
    let tech = Technology::cached(spec.node);
    if spec.kind.is_cache() {
        if let Err(e) = tag::design_tag(tech, spec) {
            cactid_obs::counter!("core.screen.infeasible").inc();
            return StaticScreen {
                verdict: ScreenVerdict::Infeasible(e),
                stats,
                reasons,
            };
        }
    }
    let cell = tech.cell(spec.cell_tech);
    let mut survivors = 0usize;
    for org in org::enumerate_lazy(spec) {
        stats.orgs_enumerated += 1;
        let verdict = match bounds {
            Some(b) => array::prescreen_verdict_with(&cell, org.rows(spec), org.cols(spec), b),
            None => array::prescreen_explain(&cell, org.rows(spec), org.cols(spec)).map(|_| ()),
        };
        match verdict {
            Ok(()) => survivors += 1,
            Err(failure) => {
                stats.bound_pruned += 1;
                reasons.record(failure);
            }
        }
    }
    let verdict = if survivors == 0 {
        cactid_obs::counter!("core.screen.infeasible").inc();
        ScreenVerdict::Infeasible(CactiError::NoFeasibleSolution)
    } else {
        ScreenVerdict::MaybeFeasible { survivors }
    };
    StaticScreen {
        verdict,
        stats,
        reasons,
    }
}

/// The debug-only unpruned reference path: every enumerated candidate runs
/// through the full electrical models with the pre-screen disabled. Exists
/// so equivalence tests can prove the staged/pruned pipeline returns
/// exactly the same solution set — `bound_pruned` here is always zero and
/// `electrical_pruned` reports what the staged path prunes by bound.
pub fn solve_with_stats_reference(
    spec: &MemorySpec,
    linter: Option<&dyn SolutionLinter>,
) -> SolveOutcome {
    let _span = cactid_obs::span("core.solve");
    let (outcome, swept_empty, reuse) = sweep_serial(spec, linter, Screen::Off);
    flush_obs(&outcome.stats, swept_empty, reuse);
    outcome
}

/// Evaluates every feasible organization for `spec` and returns the full
/// solution set (unfiltered).
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] when nothing is feasible.
pub fn solve(spec: &MemorySpec) -> Result<Vec<Solution>, CactiError> {
    solve_inner(spec, None).result
}

/// Like [`solve`], but consults a lint engine on every assembled candidate:
/// candidates with any `Error`-severity diagnostic are rejected from the
/// solution set, and the surviving candidates carry their non-error
/// diagnostics in [`Solution::warnings`].
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] when nothing is feasible, or
/// [`CactiError::LintRejected`] when candidates existed but the linter
/// rejected every one of them.
pub fn solve_with(
    spec: &MemorySpec,
    linter: &dyn SolutionLinter,
) -> Result<Vec<Solution>, CactiError> {
    solve_inner(spec, Some(linter)).result
}

/// Applies the staged optimization of §2.4 to a solution set and returns
/// the winner.
///
/// 1. keep solutions with `area ≤ (1 + max_area_overhead) · best_area`;
/// 2. of those, keep `access_time ≤ (1 + max_access_time_overhead) · best`;
/// 3. minimize the normalized weighted objective over dynamic energy,
///    leakage (+ refresh) power, random cycle time and interleave cycle
///    time.
///
/// # Errors
///
/// [`CactiError::NoFeasibleSolution`] if `solutions` is empty, or when no
/// candidate survives the staged filters — with well-formed metrics the
/// minimum-area solution always survives both screens, but non-finite
/// areas or access times (NaN propagated through a model escape hatch)
/// fail every `<=` comparison and can empty the stages.
pub fn select(spec: &MemorySpec, solutions: &[Solution]) -> Result<Solution, CactiError> {
    cactid_obs::counter!("core.select.calls").inc();
    if solutions.is_empty() {
        return Err(CactiError::NoFeasibleSolution);
    }
    let opt = &spec.opt;

    // The scoring below is the designated raw-f64 escape hatch: the
    // normalized weighted objective mixes energy, power and time ratios
    // into one dimensionless score, so the quantities drop to `.value()`
    // here and nowhere else in the solver.
    let best_area = solutions
        .iter()
        .map(|s| s.area.value())
        .fold(f64::INFINITY, f64::min);
    let area_cap = best_area * (1.0 + opt.max_area_overhead);
    let stage1: Vec<&Solution> = solutions
        .iter()
        .filter(|s| s.area.value() <= area_cap)
        .collect();

    let best_t = stage1
        .iter()
        .map(|s| s.access_time.value())
        .fold(f64::INFINITY, f64::min);
    let t_cap = best_t * (1.0 + opt.max_access_time_overhead);
    let stage2: Vec<&Solution> = stage1
        .iter()
        .copied()
        .filter(|s| s.access_time.value() <= t_cap)
        .collect();

    let min_of = |f: fn(&Solution) -> f64| {
        stage2
            .iter()
            .map(|s| f(s).max(1e-30))
            .fold(f64::INFINITY, f64::min)
    };
    cactid_obs::counter!("core.select.area_pruned").add((solutions.len() - stage1.len()) as u64);
    cactid_obs::counter!("core.select.time_pruned").add((stage1.len() - stage2.len()) as u64);

    let e_min = min_of(|s| s.read_energy.value());
    let l_min = min_of(|s| (s.leakage_power + s.refresh_power).value());
    let c_min = min_of(|s| s.random_cycle.value());
    let i_min = min_of(|s| s.interleave_cycle.value());

    stage2
        .into_iter()
        .min_by(|a, b| {
            let obj = |s: &Solution| {
                opt.weight_dynamic * s.read_energy.value().max(1e-30) / e_min
                    + opt.weight_leakage * (s.leakage_power + s.refresh_power).value().max(1e-30)
                        / l_min
                    + opt.weight_cycle * s.random_cycle.value().max(1e-30) / c_min
                    + opt.weight_interleave * s.interleave_cycle.value().max(1e-30) / i_min
            };
            obj(a).total_cmp(&obj(b))
        })
        .cloned()
        .ok_or_else(|| {
            cactid_obs::counter!("core.select.no_feasible").inc();
            CactiError::NoFeasibleSolution
        })
}

/// Convenience: [`solve`] then [`select`].
///
/// # Errors
///
/// Propagates [`CactiError::NoFeasibleSolution`] from the sweep.
pub fn optimize(spec: &MemorySpec) -> Result<Solution, CactiError> {
    let all = solve(spec)?;
    select(spec, &all)
}

/// Convenience: [`solve_with`] then [`select`] — the winner is guaranteed
/// free of `Error`-severity diagnostics from `linter`.
///
/// # Errors
///
/// Propagates [`CactiError::NoFeasibleSolution`] or
/// [`CactiError::LintRejected`] from the sweep.
pub fn optimize_with(
    spec: &MemorySpec,
    linter: &dyn SolutionLinter,
) -> Result<Solution, CactiError> {
    let all = solve_with(spec, linter)?;
    select(spec, &all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccessMode, OptimizationOptions};
    use cactid_tech::{CellTechnology, TechNode};
    use cactid_units::{Joules, Seconds, SquareMeters, Watts};

    fn l2() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn l2_solves_with_many_candidates() {
        let sols = solve(&l2()).unwrap();
        assert!(sols.len() > 10, "only {} candidates", sols.len());
        for s in &sols {
            assert!(s.access_time > Seconds::ZERO && s.access_time < Seconds::ns(50.0));
            assert!(s.area > SquareMeters::ZERO);
            assert!(s.read_energy > Joules::ZERO);
            assert!(s.leakage_power > Watts::ZERO);
        }
    }

    #[test]
    fn staged_filters_respect_caps() {
        let spec = l2();
        let sols = solve(&spec).unwrap();
        let chosen = select(&spec, &sols).unwrap();
        let best_area = sols
            .iter()
            .map(|s| s.area.value())
            .fold(f64::INFINITY, f64::min);
        assert!(chosen.area.value() <= best_area * (1.0 + spec.opt.max_area_overhead) + 1e-12);
    }

    #[test]
    fn energy_weighting_changes_the_pick() {
        let mut spec = l2();
        spec.opt = OptimizationOptions {
            weight_dynamic: 100.0,
            weight_leakage: 0.0,
            weight_cycle: 0.0,
            weight_interleave: 0.0,
            max_area_overhead: 1.0,
            max_access_time_overhead: 2.0,
            ..OptimizationOptions::default()
        };
        let sols = solve(&spec).unwrap();
        let energy_pick = select(&spec, &sols).unwrap();
        spec.opt.weight_dynamic = 0.0;
        spec.opt.weight_cycle = 100.0;
        let cycle_pick = select(&spec, &sols).unwrap();
        // The two objectives should not pick a strictly worse solution on
        // their own axis.
        assert!(energy_pick.read_energy <= cycle_pick.read_energy + Joules::from_si(1e-15));
        assert!(cycle_pick.random_cycle <= energy_pick.random_cycle + Seconds::from_si(1e-15));
    }

    #[test]
    fn solve_with_stats_counts_the_sweep() {
        let spec = l2();
        let out = solve_with_stats(&spec, None);
        let sols = out.result.unwrap();
        assert_eq!(out.stats.feasible, sols.len());
        assert!(out.stats.orgs_enumerated >= sols.len());
        assert_eq!(out.stats.lint_rejected, 0);
        assert_eq!(sols, solve(&spec).unwrap(), "stats path changes nothing");
    }

    #[test]
    fn solve_with_stats_reports_orgs_even_on_failure() {
        // A spec whose organizations all fail electrically is hard to build
        // via the builder; instead check the error path maps through.
        let mut spec = l2();
        spec.opt.repeater_relax = 1.0;
        let out = solve_with_stats(&spec, None);
        assert!(out.result.is_ok());
        assert!(out.stats.orgs_enumerated > 0);
    }

    #[test]
    fn select_with_nonfinite_areas_errors_instead_of_panicking() {
        // Regression: every candidate failing the area screen used to trip
        // the stage-2 `.expect`. NaN areas fail `area <= cap` for every
        // candidate (NaN comparisons are false), emptying both stages.
        let spec = l2();
        let mut sols = solve(&spec).unwrap();
        for s in &mut sols {
            s.area = SquareMeters::from_si(f64::NAN);
        }
        assert_eq!(
            select(&spec, &sols),
            Err(CactiError::NoFeasibleSolution),
            "non-finite areas must yield a typed error, not a panic"
        );
        // Same story when the access times are the poisoned axis.
        let mut sols = solve(&spec).unwrap();
        for s in &mut sols {
            s.access_time = Seconds::from_si(f64::NAN);
        }
        assert_eq!(select(&spec, &sols), Err(CactiError::NoFeasibleSolution));
    }

    #[test]
    fn solve_publishes_obs_counters() {
        let calls_before = cactid_obs::counter!("core.solve.calls").get();
        let orgs_before = cactid_obs::counter!("core.solve.orgs_enumerated").get();
        let out = solve_with_stats(&l2(), None);
        assert!(cactid_obs::counter!("core.solve.calls").get() > calls_before);
        assert!(
            cactid_obs::counter!("core.solve.orgs_enumerated").get()
                >= orgs_before + out.stats.orgs_enumerated as u64
        );
        let snap = cactid_obs::snapshot();
        let h = snap.histogram("span.core.solve.ns").expect("solve span");
        assert!(h.count >= 1);
    }

    #[test]
    fn static_screen_matches_the_sweep_on_a_feasible_spec() {
        let spec = l2();
        let screen = static_screen(&spec);
        let out = solve_with_stats(&spec, None);
        assert_eq!(screen.stats.orgs_enumerated, out.stats.orgs_enumerated);
        assert_eq!(screen.stats.bound_pruned, out.stats.bound_pruned);
        assert_eq!(screen.reasons.total(), screen.stats.bound_pruned);
        let sols = out.result.unwrap();
        match screen.verdict {
            ScreenVerdict::MaybeFeasible { survivors } => {
                // The screen is exact: survivors are precisely the
                // candidates the full models accept.
                assert_eq!(survivors, sols.len());
            }
            ScreenVerdict::Infeasible(_) => panic!("l2 is feasible"),
        }
    }

    #[test]
    fn screen_histogram_records_and_merges() {
        use crate::array::PrescreenFailure;
        let mut h = ScreenHistogram::default();
        h.record(PrescreenFailure::SubarrayRows);
        h.record(PrescreenFailure::SubarrayRows);
        h.record(PrescreenFailure::SenseMargin);
        assert_eq!(h.total(), 3);
        assert_eq!(
            h.entries(),
            [
                ("subarray-rows", 2),
                ("wordline-elmore", 0),
                ("sense-margin", 1)
            ]
        );
        let mut other = ScreenHistogram::default();
        other.record(PrescreenFailure::WordlineElmore);
        h.merge(&other);
        assert_eq!(h.total(), 4);
        assert_eq!(h.wordline_elmore, 1);
    }

    #[test]
    fn optimize_is_deterministic() {
        let spec = l2();
        let a = optimize(&spec).unwrap();
        let b = optimize(&spec).unwrap();
        assert_eq!(a.org, b.org);
    }
}
