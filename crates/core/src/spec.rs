//! Input specification for a memory to be modeled.

use crate::error::CactiError;
use cactid_tech::{CellTechnology, TechNode};

/// How a cache accesses its tag and data arrays (paper §3.4 and CACTI 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AccessMode {
    /// Tags and data accessed concurrently; the whole set is read and the
    /// matching way late-selected. Fastest, highest energy.
    #[default]
    Normal,
    /// Data accessed only after tag lookup — only the matching way's data
    /// is read. Saves energy, serializes delay.
    Sequential,
    /// Tags and data in parallel but only one way read per data access
    /// (way prediction/fast mode): tag-path and data-path overlap.
    Fast,
}

/// What kind of memory is being modeled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryKind {
    /// A cache with tag and data arrays.
    Cache {
        /// Tag/data access ordering.
        access_mode: AccessMode,
    },
    /// A plain RAM (scratchpad / directory / embedded memory): no tags,
    /// `block_bytes` is the access width.
    Ram,
    /// A main-memory DRAM chip on a DIMM (paper §2.1): banked, page-based,
    /// burst-oriented, narrow external interface.
    MainMemory {
        /// External data pins (x4 / x8 / x16).
        io_bits: u32,
        /// Burst length (4 or 8 typical).
        burst_length: u32,
        /// Internal prefetch width in bits per IO pin (8n for DDR3/DDR4).
        prefetch: u32,
        /// DRAM page (row) size in bits — constrains the number of sense
        /// amplifiers per activated stripe.
        page_bits: u64,
    },
}

impl MemoryKind {
    /// `true` if this is a cache (has a tag array).
    pub fn is_cache(&self) -> bool {
        matches!(self, MemoryKind::Cache { .. })
    }
}

/// Optimization knobs (paper §2.4).
#[derive(Debug, Clone, PartialEq)]
pub struct OptimizationOptions {
    /// Keep solutions with area within this fraction above the best-area
    /// solution (`max area constraint`); e.g. `0.4` allows +40 %.
    pub max_area_overhead: f64,
    /// Keep solutions with access time within this fraction above the best
    /// remaining access time (`max acctime constraint`).
    pub max_access_time_overhead: f64,
    /// Weight of dynamic read energy in the final objective.
    pub weight_dynamic: f64,
    /// Weight of leakage (+ refresh) power in the final objective.
    pub weight_leakage: f64,
    /// Weight of random cycle time in the final objective.
    pub weight_cycle: f64,
    /// Weight of multisubbank-interleave cycle time in the final objective.
    pub weight_interleave: f64,
    /// Repeater relaxation ≥ 1.0 (`max repeater delay constraint`): larger
    /// values trade H-tree delay for energy.
    pub repeater_relax: f64,
    /// Model sleep transistors that halve the leakage of mats not activated
    /// during an access (used for the Xeon-style SRAM L3, paper §2.5).
    pub sleep_transistors: bool,
}

impl Default for OptimizationOptions {
    fn default() -> Self {
        OptimizationOptions {
            max_area_overhead: 0.5,
            max_access_time_overhead: 0.5,
            weight_dynamic: 1.0,
            weight_leakage: 1.0,
            weight_cycle: 0.5,
            weight_interleave: 0.5,
            repeater_relax: 1.0,
            sleep_transistors: false,
        }
    }
}

/// Full input specification for one memory.
///
/// Construct with [`MemorySpec::builder`]; `build` validates the
/// combination.
///
/// # Example
///
/// ```
/// use cactid_core::{MemorySpec, MemoryKind, AccessMode};
/// use cactid_tech::{CellTechnology, TechNode};
///
/// # fn main() -> Result<(), cactid_core::CactiError> {
/// let l2 = MemorySpec::builder()
///     .capacity_bytes(1 << 20)
///     .block_bytes(64)
///     .associativity(8)
///     .banks(1)
///     .cell_tech(CellTechnology::Sram)
///     .node(TechNode::N32)
///     .kind(MemoryKind::Cache { access_mode: AccessMode::Normal })
///     .build()?;
/// assert_eq!(l2.sets(), 2048);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySpec {
    /// Total capacity in bytes (across all banks).
    pub capacity_bytes: u64,
    /// Cache-line size (caches) or access word (RAM) in bytes.
    pub block_bytes: u32,
    /// Set associativity (1 for RAM / main memory).
    pub associativity: u32,
    /// Number of independently addressable banks.
    pub n_banks: u32,
    /// Memory kind.
    pub kind: MemoryKind,
    /// Cell technology of the data (and tag) arrays.
    pub cell_tech: CellTechnology,
    /// Technology node.
    pub node: TechNode,
    /// Physical address width used for tag sizing \[bits\].
    pub address_bits: u32,
    /// Optimization knobs.
    pub opt: OptimizationOptions,
}

impl MemorySpec {
    /// Starts building a specification.
    pub fn builder() -> MemorySpecBuilder {
        MemorySpecBuilder::default()
    }

    /// Capacity of one bank \[bytes\].
    pub fn bank_bytes(&self) -> u64 {
        self.capacity_bytes / u64::from(self.n_banks)
    }

    /// Number of sets (whole memory).
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (u64::from(self.block_bytes) * u64::from(self.associativity))
    }

    /// Number of sets in one bank.
    pub fn sets_per_bank(&self) -> u64 {
        self.sets() / u64::from(self.n_banks)
    }

    /// Tag width in bits: address bits minus set-index and block-offset
    /// bits, plus two status bits (valid + coherence).
    pub fn tag_bits(&self) -> u32 {
        let index_bits = self.sets_per_bank().trailing_zeros() + self.n_banks.trailing_zeros();
        let offset_bits = self.block_bytes.trailing_zeros();
        self.address_bits.saturating_sub(index_bits + offset_bits) + 2
    }

    /// Bits delivered by one read access at the array interface: one block
    /// for caches (the way select happens at the subarray outputs, so the
    /// data H-tree carries a single line) and RAMs, one burst for main
    /// memory.
    pub fn output_bits(&self) -> u64 {
        match self.kind {
            MemoryKind::Cache { .. } | MemoryKind::Ram => u64::from(self.block_bytes) * 8,
            MemoryKind::MainMemory {
                io_bits, prefetch, ..
            } => u64::from(io_bits) * u64::from(prefetch),
        }
    }

    /// Fraction of the sensed stripe whose sense amplifiers actually fire.
    /// Sequential-mode SRAM caches enable only the selected way's amps;
    /// DRAM senses the whole open row regardless (destructive readout —
    /// the operational constraint discussed in paper §3.4).
    pub fn sense_fraction(&self) -> f64 {
        match self.kind {
            MemoryKind::Cache {
                access_mode: AccessMode::Sequential,
            } if self.cell_tech == CellTechnology::Sram => 1.0 / f64::from(self.associativity),
            _ => 1.0,
        }
    }

    fn validate(&self) -> Result<(), CactiError> {
        let err = |m: &str| Err(CactiError::InvalidSpec(m.to_string()));
        if self.capacity_bytes == 0 {
            return err("capacity must be nonzero");
        }
        if self.block_bytes == 0 || !self.block_bytes.is_power_of_two() {
            return err("block size must be a nonzero power of two");
        }
        if self.associativity == 0 {
            return err("associativity must be nonzero");
        }
        let set_bytes = u64::from(self.block_bytes) * u64::from(self.associativity);
        if !self.capacity_bytes.is_multiple_of(set_bytes) {
            return err("capacity must be a whole number of sets");
        }
        let sets = self.capacity_bytes / set_bytes;
        if !sets.is_power_of_two() {
            return err("the number of sets must be a power of two");
        }
        if self.n_banks == 0 || !self.n_banks.is_power_of_two() {
            return err("bank count must be a nonzero power of two");
        }
        if self.capacity_bytes < u64::from(self.block_bytes) * u64::from(self.associativity) {
            return err("capacity smaller than one set");
        }
        if self.bank_bytes() * u64::from(self.n_banks) != self.capacity_bytes {
            return err("capacity must divide evenly across banks");
        }
        if self.sets() == 0 {
            return err("associativity exceeds the number of lines");
        }
        if self.sets_per_bank() == 0 || !self.sets_per_bank().is_power_of_two() {
            return err("sets per bank must be a nonzero power of two");
        }
        match self.kind {
            MemoryKind::Cache { .. } => {
                if self.associativity > 32 {
                    return err("associativity above 32 is not modeled");
                }
            }
            MemoryKind::Ram => {
                if self.associativity != 1 {
                    return err("plain RAM must have associativity 1");
                }
            }
            MemoryKind::MainMemory {
                io_bits,
                burst_length,
                prefetch,
                page_bits,
            } => {
                if self.associativity != 1 {
                    return err("main memory must have associativity 1");
                }
                if self.cell_tech != CellTechnology::CommDram {
                    return err("main memory must use COMM-DRAM cells");
                }
                if !io_bits.is_power_of_two() || io_bits > 32 {
                    return err("io width must be a power of two ≤ 32");
                }
                if !burst_length.is_power_of_two() || burst_length > 16 {
                    return err("burst length must be a power of two ≤ 16");
                }
                if !prefetch.is_power_of_two() || prefetch < burst_length {
                    return err("prefetch must be a power of two ≥ burst length");
                }
                if page_bits == 0 || !page_bits.is_power_of_two() {
                    return err("page size must be a nonzero power of two");
                }
                if page_bits * 2 > self.bank_bytes() * 8 {
                    return err("page size larger than half a bank");
                }
            }
        }
        if self.opt.repeater_relax < 1.0 {
            return err("repeater relaxation must be ≥ 1.0");
        }
        if self.opt.max_area_overhead < 0.0 || self.opt.max_access_time_overhead < 0.0 {
            return err("optimization overheads must be non-negative");
        }
        Ok(())
    }
}

/// Builder for [`MemorySpec`].
#[derive(Debug, Clone, Default)]
pub struct MemorySpecBuilder {
    capacity_bytes: Option<u64>,
    block_bytes: Option<u32>,
    associativity: Option<u32>,
    n_banks: Option<u32>,
    kind: Option<MemoryKind>,
    cell_tech: Option<CellTechnology>,
    node: Option<TechNode>,
    address_bits: Option<u32>,
    opt: Option<OptimizationOptions>,
}

impl MemorySpecBuilder {
    /// Total capacity in bytes.
    pub fn capacity_bytes(mut self, v: u64) -> Self {
        self.capacity_bytes = Some(v);
        self
    }

    /// Line/word size in bytes.
    pub fn block_bytes(mut self, v: u32) -> Self {
        self.block_bytes = Some(v);
        self
    }

    /// Set associativity.
    pub fn associativity(mut self, v: u32) -> Self {
        self.associativity = Some(v);
        self
    }

    /// Number of banks.
    pub fn banks(mut self, v: u32) -> Self {
        self.n_banks = Some(v);
        self
    }

    /// Memory kind.
    pub fn kind(mut self, v: MemoryKind) -> Self {
        self.kind = Some(v);
        self
    }

    /// Cell technology.
    pub fn cell_tech(mut self, v: CellTechnology) -> Self {
        self.cell_tech = Some(v);
        self
    }

    /// Technology node.
    pub fn node(mut self, v: TechNode) -> Self {
        self.node = Some(v);
        self
    }

    /// Physical address width (default 40).
    pub fn address_bits(mut self, v: u32) -> Self {
        self.address_bits = Some(v);
        self
    }

    /// Optimization knobs (default [`OptimizationOptions::default`]).
    pub fn optimization(mut self, v: OptimizationOptions) -> Self {
        self.opt = Some(v);
        self
    }

    /// Validates and builds the specification.
    ///
    /// # Errors
    ///
    /// Returns [`CactiError::InvalidSpec`] when a required field is missing
    /// or the combination is inconsistent.
    pub fn build(self) -> Result<MemorySpec, CactiError> {
        let missing = |f: &str| CactiError::InvalidSpec(format!("missing field: {f}"));
        let spec = MemorySpec {
            capacity_bytes: self
                .capacity_bytes
                .ok_or_else(|| missing("capacity_bytes"))?,
            block_bytes: self.block_bytes.ok_or_else(|| missing("block_bytes"))?,
            associativity: self.associativity.unwrap_or(1),
            n_banks: self.n_banks.unwrap_or(1),
            kind: self.kind.ok_or_else(|| missing("kind"))?,
            cell_tech: self.cell_tech.ok_or_else(|| missing("cell_tech"))?,
            node: self.node.ok_or_else(|| missing("node"))?,
            address_bits: self.address_bits.unwrap_or(40),
            opt: self.opt.unwrap_or_default(),
        };
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cache_builder() -> MemorySpecBuilder {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
    }

    #[test]
    fn valid_cache_builds() {
        let s = cache_builder().build().unwrap();
        assert_eq!(s.sets(), 2048);
        assert_eq!(s.output_bits(), 512);
        // 40 - 11 (index) - 6 (offset) + 2 status = 25.
        assert_eq!(s.tag_bits(), 25);
        assert_eq!(s.sense_fraction(), 1.0);
    }

    #[test]
    fn sequential_mode_reads_one_way() {
        let s = cache_builder()
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Sequential,
            })
            .build()
            .unwrap();
        assert_eq!(s.output_bits(), 512);
        assert_eq!(s.sense_fraction(), 1.0 / 8.0);
    }

    #[test]
    fn non_power_of_two_associativity_is_fine_if_sets_are() {
        // The paper's L3 configurations use 12/18/24-way associativity.
        let s = MemorySpec::builder()
            .capacity_bytes(24 << 20)
            .block_bytes(64)
            .associativity(12)
            .banks(8)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        assert_eq!(s.sets(), 32768);
        assert_eq!(s.sets_per_bank(), 4096);
    }

    #[test]
    fn dram_cache_senses_full_row_even_in_sequential_mode() {
        let s = MemorySpec::builder()
            .capacity_bytes(48 << 20)
            .block_bytes(64)
            .associativity(12)
            .banks(8)
            .cell_tech(CellTechnology::LpDram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Sequential,
            })
            .build()
            .unwrap();
        assert_eq!(s.sense_fraction(), 1.0, "destructive readout");
    }

    #[test]
    fn rejects_non_power_of_two_capacity() {
        let e = cache_builder().capacity_bytes(3 << 19).build().unwrap_err();
        assert!(matches!(e, CactiError::InvalidSpec(_)));
    }

    #[test]
    fn rejects_capacity_below_one_set() {
        let e = cache_builder()
            .capacity_bytes(256)
            .block_bytes(64)
            .associativity(8)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("sets"), "{e}");
    }

    #[test]
    fn rejects_ram_with_associativity() {
        let e = MemorySpec::builder()
            .capacity_bytes(1 << 16)
            .block_bytes(8)
            .associativity(2)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N45)
            .kind(MemoryKind::Ram)
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("associativity 1"));
    }

    #[test]
    fn main_memory_requires_comm_dram() {
        let e = MemorySpec::builder()
            .capacity_bytes(1 << 30)
            .block_bytes(8)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8192,
            })
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("COMM-DRAM"));
    }

    #[test]
    fn main_memory_output_is_one_burst() {
        let s = MemorySpec::builder()
            .capacity_bytes(1 << 30) // 1 GB = 8 Gb
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N32)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8192,
            })
            .build()
            .unwrap();
        assert_eq!(s.output_bits(), 64);
    }

    #[test]
    fn rejects_page_bigger_than_half_bank() {
        let e = MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N32)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 1 << 20,
            })
            .build()
            .unwrap_err();
        assert!(e.to_string().contains("page size"));
    }

    #[test]
    fn missing_field_is_reported() {
        let e = MemorySpec::builder().build().unwrap_err();
        assert!(e.to_string().contains("missing field"));
    }
}
