//! A minimal hermetic scoped-thread fan-out for intra-spec parallelism.
//!
//! The workspace carries zero registry dependencies, so instead of rayon
//! this module provides the one primitive the staged solver needs: N scoped
//! `std::thread` workers claiming candidate indices off a shared atomic
//! cursor and depositing results into index-addressed slots. It is the same
//! shape as `explore::pool`, minus that pool's observability plumbing —
//! intra-spec fan-out sits inside the `core.solve` span and must not
//! perturb the per-solve counter contract.
//!
//! The module is public: downstream layers (batch engines, long-running
//! services) reuse the same primitive for small index-addressed fan-outs
//! instead of growing a second pool implementation.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, OnceLock};

/// The machine's available parallelism, resolved once per process.
///
/// `std::thread::available_parallelism` is not a cheap getter on Linux —
/// it reads the cgroup filesystem to honor CPU quotas, which costs
/// microseconds per call. Per-solve callers (the single-core fallback in
/// `solve_with_stats_parallel` runs on every solve of a small sweep)
/// would pay that syscall tax against solves that themselves take tens
/// of microseconds, so the answer is cached for the process lifetime.
pub fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Runs `work(i)` for every `i in 0..n` on `threads` workers and returns
/// the results in index order regardless of completion order.
///
/// * `threads == 0` is taken as the machine's available parallelism; the
///   effective count is clamped to `n`.
/// * With one effective thread everything runs inline on the caller's
///   thread in index order — no spawning, so single-threaded calls are
///   exactly as deterministic and cheap as a plain loop.
pub fn parallel_map<R, F>(threads: usize, n: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_map_with(threads, n, || (), |(), i| work(i)).0
}

/// [`parallel_map`] with per-worker state: every worker (or the calling
/// thread, on the inline path) builds one `S` via `init` and threads it
/// mutably through each `work(&mut state, i)` call it claims. Returns the
/// index-ordered results plus the worker states, in no particular order —
/// callers aggregate over them (e.g. summing memo-reuse counters).
///
/// The staged solver hands each worker its own incremental-evaluation
/// memo this way: no sharing, no locking, and because every memo slice is
/// a pure function of its key, results are bitwise independent of how the
/// atomic cursor partitions indices across workers.
pub fn parallel_map_with<S, R, I, F>(threads: usize, n: usize, init: I, work: F) -> (Vec<R>, Vec<S>)
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = if threads == 0 {
        host_parallelism()
    } else {
        threads
    }
    .min(n.max(1));
    if threads <= 1 {
        let mut state = init();
        let out = (0..n).map(|i| work(&mut state, i)).collect();
        return (out, vec![state]);
    }

    let cursor = AtomicUsize::new(0);
    let slots = Mutex::new({
        let mut v: Vec<Option<R>> = Vec::with_capacity(n);
        v.resize_with(n, || None);
        v
    });
    let states = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = work(&mut state, i);
                    // A panicking worker already aborts the scope; recover
                    // the guard so an unrelated poisoned lock cannot
                    // double-panic.
                    slots
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(r);
                }
                states
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(state);
            });
        }
    });
    let out = slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("every index is claimed exactly once")))
        .collect();
    let states = states
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (out, states)
}

/// Runs a lock-step epoch loop over a persistent team of `threads`
/// workers: every epoch, each worker runs `worker(w, epoch)` concurrently,
/// then — with all workers parked at a barrier — the calling thread alone
/// runs `coordinate(epoch)`. The loop continues while `coordinate` returns
/// `true`.
///
/// This is the synchronization skeleton of the sharded simulator: `worker`
/// is the shard-local phase (touching only shard-owned state), `coordinate`
/// is the exclusive boundary phase (draining cross-shard queues). The team
/// is spawned once and reused across every epoch, because a simulation runs
/// thousands of epochs and per-epoch `std::thread::spawn` costs would dwarf
/// the epochs themselves.
///
/// * The calling thread participates as worker `threads - 1`, so `threads`
///   is the *total* concurrency, and only `threads - 1` OS threads are
///   spawned.
/// * `threads <= 1` runs everything inline — `worker(0, e)` then
///   `coordinate(e)` on the caller, no spawning, no atomics in the loop —
///   so a single-threaded epoch loop is exactly a plain loop. Callers rely
///   on this path being bitwise identical to the threaded one.
/// * `coordinate` always observes every `worker` call of its epoch as
///   happened-before (barrier ordering), and vice versa for the next epoch.
pub fn run_epochs<W, C>(threads: usize, worker: W, mut coordinate: C)
where
    W: Fn(usize, u64) + Sync,
    C: FnMut(u64) -> bool,
{
    if threads <= 1 {
        let mut epoch = 0u64;
        loop {
            worker(0, epoch);
            if !coordinate(epoch) {
                break;
            }
            epoch += 1;
        }
        return;
    }

    // Two reusable rendezvous points: `start` releases the team into an
    // epoch's worker phase, `end` closes it. Between `end` of epoch e and
    // `start` of epoch e+1 the spawned workers are parked, so the caller
    // runs `coordinate` with exclusive access to everything.
    let start = Barrier::new(threads);
    let end = Barrier::new(threads);
    let done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for w in 0..threads - 1 {
            let (start, end, done, worker) = (&start, &end, &done, &worker);
            scope.spawn(move || {
                let mut epoch = 0u64;
                loop {
                    start.wait();
                    if done.load(Ordering::Acquire) {
                        break;
                    }
                    worker(w, epoch);
                    end.wait();
                    epoch += 1;
                }
            });
        }
        let mut epoch = 0u64;
        loop {
            start.wait();
            worker(threads - 1, epoch);
            end.wait();
            if !coordinate(epoch) {
                done.store(true, Ordering::Release);
                start.wait(); // release the parked team into its exit check
                break;
            }
            epoch += 1;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let seq: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [0, 1, 2, 8, 64] {
            assert_eq!(parallel_map(threads, 257, |i| i * i), seq);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert!(parallel_map::<usize, _>(8, 0, |i| i).is_empty());
        assert_eq!(parallel_map(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_states_partition_the_work() {
        // Each worker counts the indices it claimed; the returned states
        // must account for every index exactly once, and the inline path
        // must hand back exactly one state.
        for threads in [1, 4] {
            let (out, states) = parallel_map_with(
                threads,
                100,
                || 0usize,
                |count, i| {
                    *count += 1;
                    i * 2
                },
            );
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            assert!(states.len() <= threads.max(1));
            assert_eq!(states.iter().sum::<usize>(), 100);
            if threads == 1 {
                assert_eq!(states, vec![100]);
            }
        }
    }

    #[test]
    fn run_epochs_alternates_worker_and_coordinate_phases() {
        // Each epoch every worker increments a per-worker cell; coordinate
        // checks all cells advanced exactly once per epoch (i.e. the
        // phases never overlap or skip) and stops after 5 epochs.
        for threads in [1, 2, 4] {
            let cells: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            let mut epochs_seen = Vec::new();
            run_epochs(
                threads,
                |w, _e| {
                    cells[w].fetch_add(1, Ordering::Relaxed);
                },
                |e| {
                    for c in &cells {
                        assert_eq!(c.load(Ordering::Relaxed), e as usize + 1);
                    }
                    epochs_seen.push(e);
                    e < 4
                },
            );
            assert_eq!(epochs_seen, vec![0, 1, 2, 3, 4]);
            for c in &cells {
                assert_eq!(c.load(Ordering::Relaxed), 5);
            }
        }
    }

    #[test]
    fn run_epochs_inline_path_needs_no_sync() {
        // threads = 1 must run worker 0 then coordinate, strictly
        // interleaved, on the calling thread.
        let log = std::sync::Mutex::new(Vec::new());
        run_epochs(
            1,
            |w, e| {
                assert_eq!(w, 0);
                log.lock().unwrap().push(('w', e));
            },
            |e| {
                log.lock().unwrap().push(('c', e));
                e < 1
            },
        );
        assert_eq!(
            log.into_inner().unwrap(),
            vec![('w', 0), ('c', 0), ('w', 1), ('c', 1)]
        );
    }

    #[test]
    fn every_index_is_worked_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(4, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
