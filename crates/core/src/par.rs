//! A minimal hermetic scoped-thread fan-out for intra-spec parallelism.
//!
//! The workspace carries zero registry dependencies, so instead of rayon
//! this module provides the one primitive the staged solver needs: N scoped
//! `std::thread` workers claiming candidate indices off a shared atomic
//! cursor and depositing results into index-addressed slots. It is the same
//! shape as `explore::pool`, minus that pool's observability plumbing —
//! intra-spec fan-out sits inside the `core.solve` span and must not
//! perturb the per-solve counter contract.
//!
//! The module is public: downstream layers (batch engines, long-running
//! services) reuse the same primitive for small index-addressed fan-outs
//! instead of growing a second pool implementation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `work(i)` for every `i in 0..n` on `threads` workers and returns
/// the results in index order regardless of completion order.
///
/// * `threads == 0` is taken as the machine's available parallelism; the
///   effective count is clamped to `n`.
/// * With one effective thread everything runs inline on the caller's
///   thread in index order — no spawning, so single-threaded calls are
///   exactly as deterministic and cheap as a plain loop.
pub fn parallel_map<R, F>(threads: usize, n: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = if threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        threads
    }
    .min(n.max(1));
    if threads <= 1 {
        return (0..n).map(&work).collect();
    }

    let cursor = AtomicUsize::new(0);
    let slots = Mutex::new({
        let mut v: Vec<Option<R>> = Vec::with_capacity(n);
        v.resize_with(n, || None);
        v
    });
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = work(i);
                // A panicking worker already aborts the scope; recover the
                // guard so an unrelated poisoned lock cannot double-panic.
                slots
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(r);
            });
        }
    });
    slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("every index is claimed exactly once")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let seq: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [0, 1, 2, 8, 64] {
            assert_eq!(parallel_map(threads, 257, |i| i * i), seq);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert!(parallel_map::<usize, _>(8, 0, |i| i).is_empty());
        assert_eq!(parallel_map(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn every_index_is_worked_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(4, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
