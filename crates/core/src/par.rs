//! A minimal hermetic scoped-thread fan-out for intra-spec parallelism.
//!
//! The workspace carries zero registry dependencies, so instead of rayon
//! this module provides the one primitive the staged solver needs: N scoped
//! `std::thread` workers claiming candidate indices off a shared atomic
//! cursor and depositing results into index-addressed slots. It is the same
//! shape as `explore::pool`, minus that pool's observability plumbing —
//! intra-spec fan-out sits inside the `core.solve` span and must not
//! perturb the per-solve counter contract.
//!
//! The module is public: downstream layers (batch engines, long-running
//! services) reuse the same primitive for small index-addressed fan-outs
//! instead of growing a second pool implementation.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// The machine's available parallelism, resolved once per process.
///
/// `std::thread::available_parallelism` is not a cheap getter on Linux —
/// it reads the cgroup filesystem to honor CPU quotas, which costs
/// microseconds per call. Per-solve callers (the single-core fallback in
/// `solve_with_stats_parallel` runs on every solve of a small sweep)
/// would pay that syscall tax against solves that themselves take tens
/// of microseconds, so the answer is cached for the process lifetime.
pub fn host_parallelism() -> usize {
    static HOST: OnceLock<usize> = OnceLock::new();
    *HOST.get_or_init(|| std::thread::available_parallelism().map_or(1, usize::from))
}

/// Runs `work(i)` for every `i in 0..n` on `threads` workers and returns
/// the results in index order regardless of completion order.
///
/// * `threads == 0` is taken as the machine's available parallelism; the
///   effective count is clamped to `n`.
/// * With one effective thread everything runs inline on the caller's
///   thread in index order — no spawning, so single-threaded calls are
///   exactly as deterministic and cheap as a plain loop.
pub fn parallel_map<R, F>(threads: usize, n: usize, work: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    parallel_map_with(threads, n, || (), |(), i| work(i)).0
}

/// [`parallel_map`] with per-worker state: every worker (or the calling
/// thread, on the inline path) builds one `S` via `init` and threads it
/// mutably through each `work(&mut state, i)` call it claims. Returns the
/// index-ordered results plus the worker states, in no particular order —
/// callers aggregate over them (e.g. summing memo-reuse counters).
///
/// The staged solver hands each worker its own incremental-evaluation
/// memo this way: no sharing, no locking, and because every memo slice is
/// a pure function of its key, results are bitwise independent of how the
/// atomic cursor partitions indices across workers.
pub fn parallel_map_with<S, R, I, F>(threads: usize, n: usize, init: I, work: F) -> (Vec<R>, Vec<S>)
where
    S: Send,
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> R + Sync,
{
    let threads = if threads == 0 {
        host_parallelism()
    } else {
        threads
    }
    .min(n.max(1));
    if threads <= 1 {
        let mut state = init();
        let out = (0..n).map(|i| work(&mut state, i)).collect();
        return (out, vec![state]);
    }

    let cursor = AtomicUsize::new(0);
    let slots = Mutex::new({
        let mut v: Vec<Option<R>> = Vec::with_capacity(n);
        v.resize_with(n, || None);
        v
    });
    let states = Mutex::new(Vec::with_capacity(threads));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let r = work(&mut state, i);
                    // A panicking worker already aborts the scope; recover
                    // the guard so an unrelated poisoned lock cannot
                    // double-panic.
                    slots
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner)[i] = Some(r);
                }
                states
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push(state);
            });
        }
    });
    let out = slots
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .into_iter()
        .map(|s| s.unwrap_or_else(|| unreachable!("every index is claimed exactly once")))
        .collect();
    let states = states
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    (out, states)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_index_order() {
        let seq: Vec<usize> = (0..257).map(|i| i * i).collect();
        for threads in [0, 1, 2, 8, 64] {
            assert_eq!(parallel_map(threads, 257, |i| i * i), seq);
        }
    }

    #[test]
    fn empty_and_tiny_inputs_are_fine() {
        assert!(parallel_map::<usize, _>(8, 0, |i| i).is_empty());
        assert_eq!(parallel_map(8, 1, |i| i + 7), vec![7]);
    }

    #[test]
    fn worker_states_partition_the_work() {
        // Each worker counts the indices it claimed; the returned states
        // must account for every index exactly once, and the inline path
        // must hand back exactly one state.
        for threads in [1, 4] {
            let (out, states) = parallel_map_with(
                threads,
                100,
                || 0usize,
                |count, i| {
                    *count += 1;
                    i * 2
                },
            );
            assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
            assert!(states.len() <= threads.max(1));
            assert_eq!(states.iter().sum::<usize>(), 100);
            if threads == 1 {
                assert_eq!(states, vec![100]);
            }
        }
    }

    #[test]
    fn every_index_is_worked_exactly_once() {
        let calls = AtomicUsize::new(0);
        let out = parallel_map(4, 100, |i| {
            calls.fetch_add(1, Ordering::Relaxed);
            i
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
        assert_eq!(out, (0..100).collect::<Vec<_>>());
    }
}
