//! Tag-array model: a small array evaluated with the same machinery as the
//! data array, plus the tag comparator.

use crate::array::{self, ArrayInput, ArrayResult};
use crate::error::CactiError;
use crate::spec::MemorySpec;
use cactid_tech::{DeviceParams, Technology};
use cactid_units::{Joules, Seconds};

/// Result of designing the tag array for a cache.
#[derive(Debug, Clone, PartialEq)]
pub struct TagResult {
    /// The underlying array evaluation (one bank's tag array).
    pub array: ArrayResult,
    /// Tag comparator delay.
    pub comparator_delay: Seconds,
    /// Tag comparator energy per access (all ways compared).
    pub comparator_energy: Joules,
}

impl TagResult {
    /// Tag path latency: array access plus compare.
    pub fn access_time(&self) -> Seconds {
        self.array.access_time() + self.comparator_delay
    }

    /// Tag path read energy.
    pub fn read_energy(&self) -> Joules {
        self.array.read_energy() + self.comparator_energy
    }
}

fn fo4(dev: &DeviceParams) -> Seconds {
    let cin = (1.0 + dev.p_to_n_ratio) * dev.c_gate;
    let cself = (1.0 + dev.p_to_n_ratio) * dev.c_drain;
    0.69 * dev.r_eff_n * (cself + 4.0 * cin)
}

/// Designs the per-bank tag array for `spec`, choosing the internal
/// organization that minimizes tag access time.
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] if no tag organization is
/// electrically feasible.
pub fn design_tag(tech: &Technology, spec: &MemorySpec) -> Result<TagResult, CactiError> {
    let sets = spec.sets_per_bank();
    let tag_bits = u64::from(spec.tag_bits());
    let assoc = u64::from(spec.associativity);
    let cell = tech.cell(spec.cell_tech);
    let periph = tech.peripheral_device(spec.cell_tech);

    let mut best: Option<ArrayResult> = None;
    for ntspd in [1u64, 2, 4] {
        for ntwl in [1u32, 2, 4] {
            let stripe_bits = assoc * tag_bits * ntspd;
            let cols = stripe_bits / u64::from(ntwl);
            if stripe_bits % u64::from(ntwl) != 0 || !(32..=4096).contains(&cols) {
                continue;
            }
            let mut ntbl = 1u32;
            while ntbl <= 128 {
                let denom = ntspd * u64::from(ntbl);
                if !sets.is_multiple_of(denom) {
                    break;
                }
                let rows = sets / denom;
                if rows < 16 {
                    break;
                }
                if rows.is_power_of_two() {
                    let input = ArrayInput {
                        rows,
                        cols,
                        ndwl: ntwl,
                        ndbl: ntbl,
                        deg_bl_mux: 1,
                        deg_sa_mux: ntspd as u32,
                        output_bits: assoc * tag_bits,
                        address_bits: spec.address_bits,
                        cell,
                        periph,
                        repeater_relax: spec.opt.repeater_relax,
                        sleep_transistors: spec.opt.sleep_transistors,
                        sense_fraction: 1.0,
                    };
                    if let Ok(r) = array::evaluate(tech, &input) {
                        let better = match &best {
                            None => true,
                            Some(b) => r.access_time() < b.access_time(),
                        };
                        if better {
                            best = Some(r);
                        }
                    }
                }
                ntbl *= 2;
            }
        }
    }
    let array = best.ok_or(CactiError::NoFeasibleSolution)?;

    // Comparator: per-bit XNOR into a log-depth AND reduction, one
    // comparator per way; ~1 FO4 per stage.
    let stages = 2.0 + (tag_bits as f64).log2().ceil();
    let comparator_delay = stages * fo4(&periph);
    let c_node = 6.0 * periph.c_inv_min();
    let comparator_energy = assoc as f64 * tag_bits as f64 * 0.5 * c_node * periph.vdd * periph.vdd;

    Ok(TagResult {
        array,
        comparator_delay,
        comparator_energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccessMode, MemoryKind};
    use cactid_tech::{CellTechnology, TechNode};
    use cactid_units::{SquareMeters, Watts};

    fn spec(capacity: u64, tech: CellTechnology) -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(capacity)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(tech)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn tag_is_much_smaller_and_faster_than_data_capacity_suggests() {
        let tech = Technology::new(TechNode::N32);
        let s = spec(1 << 20, CellTechnology::Sram);
        let tag = design_tag(&tech, &s).unwrap();
        // 1 MB / 64 B lines × ~27 tag bits ≈ 54 kbit ≈ 7 kB of tags.
        assert!(
            tag.array.area() < SquareMeters::from_si(1e-6),
            "tag area {} m²",
            tag.array.area()
        );
        assert!(tag.access_time() < Seconds::ns(2.0));
        assert!(tag.comparator_delay > Seconds::ZERO);
    }

    #[test]
    fn bigger_cache_has_bigger_tag_array() {
        let tech = Technology::new(TechNode::N32);
        let small = design_tag(&tech, &spec(1 << 20, CellTechnology::Sram)).unwrap();
        let big = design_tag(&tech, &spec(1 << 24, CellTechnology::Sram)).unwrap();
        assert!(big.array.area() > small.array.area());
    }

    #[test]
    fn dram_tags_work_too() {
        let tech = Technology::new(TechNode::N32);
        let tag = design_tag(&tech, &spec(8 << 20, CellTechnology::LpDram)).unwrap();
        assert!(tag.array.refresh_power > Watts::ZERO);
    }
}
