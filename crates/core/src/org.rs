//! Array-organization parameters and the candidate sweep (paper §2.1, §2.4).

use crate::spec::{MemoryKind, MemorySpec};

/// One candidate array organization for a bank.
///
/// A bank is a grid of `ndwl × ndbl` subarrays. An access activates one
/// horizontal *stripe* of `ndwl` subarrays; the wordline row of a stripe
/// holds `stripe_bits` (one DRAM page, or `nspd` cache sets). Column
/// multiplexing (`deg_bl_mux` before the sense amps, `deg_sa_mux` after)
/// reduces the stripe to the access's output width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrgParams {
    /// Subarrays per stripe (wordline-direction partitioning).
    pub ndwl: u32,
    /// Stripes per bank (bitline-direction partitioning).
    pub ndbl: u32,
    /// Sets mapped onto one stripe row (caches/RAM; fixed 1.0 for main
    /// memory where the page size sets the stripe width instead).
    pub nspd: f64,
    /// Bitline-mux degree (columns sharing a sense amp). Always 1 for DRAM:
    /// destructive readout requires sensing every cell on the open row.
    pub deg_bl_mux: u32,
    /// Sense-amp-mux (column-select) degree after sensing.
    pub deg_sa_mux: u32,
}

impl OrgParams {
    /// Bits on one activated stripe row.
    pub fn stripe_bits(&self, spec: &MemorySpec) -> u64 {
        match spec.kind {
            MemoryKind::MainMemory { page_bits, .. } => page_bits,
            _ => {
                let set_bits = u64::from(spec.block_bytes) * 8 * u64::from(spec.associativity);
                (set_bits as f64 * self.nspd) as u64
            }
        }
    }

    /// Columns per subarray.
    pub fn cols(&self, spec: &MemorySpec) -> u64 {
        self.stripe_bits(spec) / u64::from(self.ndwl)
    }

    /// Rows per subarray.
    pub fn rows(&self, spec: &MemorySpec) -> u64 {
        let bank_bits = spec.bank_bytes() * 8;
        let stripe = self.stripe_bits(spec);
        if stripe == 0 {
            return 0;
        }
        bank_bits / stripe / u64::from(self.ndbl)
    }

    /// Total mux factor the organization provides.
    pub fn mux_factor(&self) -> u64 {
        u64::from(self.deg_bl_mux) * u64::from(self.deg_sa_mux)
    }
}

/// Limits of the candidate sweep.
const MAX_NDWL: u32 = 64;
const MAX_NDBL: u32 = 512;
const MIN_ROWS: u64 = 16;
const MAX_COLS: u64 = 8192;
const MIN_COLS: u64 = 32;
/// Maximum sense-amp mux degree (column-select fan-in) we model.
const MAX_SA_MUX: u32 = 1024;
const MAX_BL_MUX: u32 = 8;

/// Enumerates every structurally feasible [`OrgParams`] for `spec`
/// (electrical feasibility — sense margins, wordline RC — is judged later
/// by the array model).
pub fn enumerate(spec: &MemorySpec) -> Vec<OrgParams> {
    let mut out = Vec::new();
    let is_dram = spec.cell_tech.is_dram();
    let nspd_choices: &[f64] = if matches!(spec.kind, MemoryKind::MainMemory { .. }) {
        &[1.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };
    let output_bits = spec.output_bits();
    let bank_bits = spec.bank_bytes() * 8;

    for &nspd in nspd_choices {
        let set_bits = u64::from(spec.block_bytes) * 8 * u64::from(spec.associativity);
        let stripe_bits = match spec.kind {
            MemoryKind::MainMemory { page_bits, .. } => page_bits,
            _ => {
                let s = set_bits as f64 * nspd;
                if s.fract() != 0.0 {
                    continue;
                }
                s as u64
            }
        };
        if stripe_bits == 0
            || stripe_bits < output_bits
            || stripe_bits > bank_bits
            || stripe_bits % output_bits != 0
        {
            continue;
        }
        let mux_needed = stripe_bits / output_bits;

        let mut ndwl = 1u32;
        while ndwl <= MAX_NDWL {
            let cols = stripe_bits / u64::from(ndwl);
            if cols < MIN_COLS {
                break;
            }
            if cols <= MAX_COLS && stripe_bits % u64::from(ndwl) == 0 {
                let mut ndbl = 1u32;
                while ndbl <= MAX_NDBL {
                    let total_rows = bank_bits / stripe_bits;
                    if !total_rows.is_multiple_of(u64::from(ndbl)) {
                        break;
                    }
                    let rows = total_rows / u64::from(ndbl);
                    if rows < MIN_ROWS {
                        break;
                    }
                    if rows.is_power_of_two() {
                        // Split the mux factor between bitline mux and
                        // sense-amp mux.
                        let bl_choices: Vec<u32> = if is_dram {
                            vec![1]
                        } else {
                            (0..=3)
                                .map(|s| 1u32 << s)
                                .filter(|&d| {
                                    d <= MAX_BL_MUX && mux_needed.is_multiple_of(u64::from(d))
                                })
                                .collect()
                        };
                        for deg_bl in bl_choices {
                            let deg_sa = mux_needed / u64::from(deg_bl);
                            if deg_sa == 0 || deg_sa > u64::from(MAX_SA_MUX) {
                                continue;
                            }
                            out.push(OrgParams {
                                ndwl,
                                ndbl,
                                nspd,
                                deg_bl_mux: deg_bl,
                                deg_sa_mux: deg_sa as u32,
                            });
                        }
                    }
                    ndbl *= 2;
                }
            }
            ndwl *= 2;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccessMode, MemoryKind};
    use cactid_tech::{CellTechnology, TechNode};

    fn l2_spec() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn enumeration_is_nonempty_and_consistent() {
        let spec = l2_spec();
        let orgs = enumerate(&spec);
        assert!(!orgs.is_empty());
        for org in &orgs {
            let rows = org.rows(&spec);
            let cols = org.cols(&spec);
            assert!(rows >= MIN_ROWS && rows.is_power_of_two());
            assert!(cols >= MIN_COLS);
            // Capacity conservation: rows × cols × subarrays == bank bits.
            let bits = rows * cols * u64::from(org.ndwl) * u64::from(org.ndbl);
            assert_eq!(bits, spec.bank_bytes() * 8, "org {org:?}");
            // Mux factor matches stripe/output ratio.
            assert_eq!(
                org.mux_factor(),
                org.stripe_bits(&spec) / spec.output_bits()
            );
        }
    }

    #[test]
    fn dram_never_uses_bitline_mux() {
        let spec = MemorySpec::builder()
            .capacity_bytes(8 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::LpDram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        for org in enumerate(&spec) {
            assert_eq!(org.deg_bl_mux, 1, "destructive readout forbids bl-mux");
        }
    }

    #[test]
    fn main_memory_stripe_is_the_page() {
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 30)
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N78)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8192,
            })
            .build()
            .unwrap();
        let orgs = enumerate(&spec);
        assert!(!orgs.is_empty());
        for org in &orgs {
            assert_eq!(org.stripe_bits(&spec), 8192);
            assert_eq!(org.deg_bl_mux, 1);
            // Column select covers page/burst-output.
            assert_eq!(org.deg_sa_mux, (8192 / 64) as u32);
        }
    }

    #[test]
    fn distinct_candidates() {
        let spec = l2_spec();
        let orgs = enumerate(&spec);
        for (i, a) in orgs.iter().enumerate() {
            for b in orgs.iter().skip(i + 1) {
                assert!(a != b, "duplicate organization {a:?}");
            }
        }
    }
}
