//! Array-organization parameters and the candidate sweep (paper §2.1, §2.4).

use crate::spec::{MemoryKind, MemorySpec};

/// One candidate array organization for a bank.
///
/// A bank is a grid of `ndwl × ndbl` subarrays. An access activates one
/// horizontal *stripe* of `ndwl` subarrays; the wordline row of a stripe
/// holds `stripe_bits` (one DRAM page, or `nspd` cache sets). Column
/// multiplexing (`deg_bl_mux` before the sense amps, `deg_sa_mux` after)
/// reduces the stripe to the access's output width.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OrgParams {
    /// Subarrays per stripe (wordline-direction partitioning).
    pub ndwl: u32,
    /// Stripes per bank (bitline-direction partitioning).
    pub ndbl: u32,
    /// Sets mapped onto one stripe row (caches/RAM; fixed 1.0 for main
    /// memory where the page size sets the stripe width instead).
    pub nspd: f64,
    /// Bitline-mux degree (columns sharing a sense amp). Always 1 for DRAM:
    /// destructive readout requires sensing every cell on the open row.
    pub deg_bl_mux: u32,
    /// Sense-amp-mux (column-select) degree after sensing.
    pub deg_sa_mux: u32,
}

impl OrgParams {
    /// Bits on one activated stripe row.
    ///
    /// The cache/RAM stripe is `set_bits × nspd` with the rounding made
    /// explicit: the sweep only emits organizations whose product is
    /// exactly integral ([`enumerate_lazy`] rejects fractional stripes up
    /// front), so `round()` is the identity there, while a hand-built
    /// [`OrgParams`] with a fractional product — which the lint rules must
    /// still be able to inspect — rounds to the nearest bit instead of
    /// silently flooring.
    pub fn stripe_bits(&self, spec: &MemorySpec) -> u64 {
        match spec.kind {
            MemoryKind::MainMemory { page_bits, .. } => page_bits,
            _ => {
                let set_bits = u64::from(spec.block_bytes) * 8 * u64::from(spec.associativity);
                (set_bits as f64 * self.nspd).round() as u64
            }
        }
    }

    /// Columns per subarray.
    ///
    /// Enumerated organizations always divide the stripe evenly over
    /// `ndwl` ([`enumerate_lazy`] filters the rest out); hand-built orgs
    /// that do not are flagged by the lint rules, and this accessor floors
    /// for them like any integer division.
    pub fn cols(&self, spec: &MemorySpec) -> u64 {
        self.stripe_bits(spec) / u64::from(self.ndwl)
    }

    /// Rows per subarray.
    pub fn rows(&self, spec: &MemorySpec) -> u64 {
        let bank_bits = spec.bank_bytes() * 8;
        let stripe = self.stripe_bits(spec);
        if stripe == 0 {
            return 0;
        }
        bank_bits / stripe / u64::from(self.ndbl)
    }

    /// Total mux factor the organization provides.
    pub fn mux_factor(&self) -> u64 {
        u64::from(self.deg_bl_mux) * u64::from(self.deg_sa_mux)
    }
}

/// Limits of the candidate sweep.
const MAX_NDWL: u32 = 64;
const MAX_NDBL: u32 = 512;
const MIN_ROWS: u64 = 16;
const MAX_COLS: u64 = 8192;
const MIN_COLS: u64 = 32;
/// Maximum sense-amp mux degree (column-select fan-in) we model.
const MAX_SA_MUX: u32 = 1024;
const MAX_BL_MUX: u32 = 8;

/// The structural limits [`enumerate_lazy`] sweeps within, published so
/// static analyses (`cactid-prove`) can bound the reachable organization
/// space without re-deriving the sweep. The values here are the single
/// source of truth — the sweep itself reads them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepBounds {
    /// Largest wordline-direction partitioning swept.
    pub max_ndwl: u32,
    /// Largest bitline-direction partitioning swept.
    pub max_ndbl: u32,
    /// Smallest subarray row count emitted.
    pub min_rows: u64,
    /// Smallest subarray column count emitted.
    pub min_cols: u64,
    /// Largest subarray column count emitted.
    pub max_cols: u64,
    /// Largest sense-amp mux degree emitted.
    pub max_sa_mux: u32,
    /// Largest bitline mux degree emitted (SRAM only; DRAM is fixed at 1).
    pub max_bl_mux: u32,
}

/// The sweep limits of [`enumerate_lazy`].
pub const SWEEP_BOUNDS: SweepBounds = SweepBounds {
    max_ndwl: MAX_NDWL,
    max_ndbl: MAX_NDBL,
    min_rows: MIN_ROWS,
    min_cols: MIN_COLS,
    max_cols: MAX_COLS,
    max_sa_mux: MAX_SA_MUX,
    max_bl_mux: MAX_BL_MUX,
};

/// Powers of two `1, 2, 4, …` up to and including `max`.
fn powers_of_two(max: u32) -> impl Iterator<Item = u32> {
    std::iter::successors(Some(1u32), |&x| x.checked_mul(2)).take_while(move |&x| x <= max)
}

/// Bitline-mux degrees to try for one stripe: DRAM's destructive readout
/// forbids any bitline mux (always 1); SRAM tries powers of two up to
/// [`MAX_BL_MUX`] that divide the required mux factor.
fn bl_mux_choices(is_dram: bool, mux_needed: u64) -> impl Iterator<Item = u32> {
    (0u32..=3).map(|s| 1u32 << s).filter(move |&d| {
        if is_dram {
            d == 1
        } else {
            d <= MAX_BL_MUX && mux_needed.is_multiple_of(u64::from(d))
        }
    })
}

/// Lazily enumerates every structurally feasible [`OrgParams`] for `spec`
/// (electrical feasibility — sense margins, wordline RC — is judged later
/// by the array model).
///
/// Candidates stream out in the exact order the historical eager sweep
/// produced them: `nspd` outermost, then `ndwl` and `ndbl` over powers of
/// two, then the bitline/sense-amp mux split. The solver's staged pipeline
/// consumes this iterator directly so rejected candidates never occupy
/// memory; [`enumerate`] collects it for callers that need a `Vec`.
///
/// Organizations whose stripe does not divide evenly — a fractional
/// `set_bits × nspd` product, or a stripe not divisible by `ndwl` — are
/// rejected here rather than silently truncated.
pub fn enumerate_lazy(spec: &MemorySpec) -> impl Iterator<Item = OrgParams> {
    let is_dram = spec.cell_tech.is_dram();
    let page_bits = match spec.kind {
        MemoryKind::MainMemory { page_bits, .. } => Some(page_bits),
        _ => None,
    };
    let set_bits = u64::from(spec.block_bytes) * 8 * u64::from(spec.associativity);
    let output_bits = spec.output_bits();
    let bank_bits = spec.bank_bytes() * 8;
    let nspd_choices: &'static [f64] = if page_bits.is_some() {
        &[1.0]
    } else {
        &[0.25, 0.5, 1.0, 2.0, 4.0, 8.0]
    };

    nspd_choices
        .iter()
        .copied()
        .filter_map(move |nspd| {
            let stripe_bits = match page_bits {
                Some(p) => p,
                None => {
                    let s = set_bits as f64 * nspd;
                    if s.fract() != 0.0 {
                        return None;
                    }
                    s as u64
                }
            };
            (stripe_bits != 0
                && stripe_bits >= output_bits
                && stripe_bits <= bank_bits
                && stripe_bits % output_bits == 0)
                .then_some((nspd, stripe_bits))
        })
        .flat_map(move |(nspd, stripe_bits)| {
            let mux_needed = stripe_bits / output_bits;
            let total_rows = bank_bits / stripe_bits;
            powers_of_two(MAX_NDWL)
                // Columns shrink as ndwl doubles, so the first too-narrow
                // subarray ends the sweep (the eager loop's `break`).
                .take_while(move |&ndwl| stripe_bits / u64::from(ndwl) >= MIN_COLS)
                .filter(move |&ndwl| {
                    let cols = stripe_bits / u64::from(ndwl);
                    cols <= MAX_COLS && stripe_bits % u64::from(ndwl) == 0
                })
                .flat_map(move |ndwl| {
                    powers_of_two(MAX_NDBL)
                        // Once ndbl stops dividing the rows, or the
                        // subarray gets too short, doubling further can
                        // never recover — both conditions are monotone.
                        .take_while(move |&ndbl| {
                            total_rows.is_multiple_of(u64::from(ndbl))
                                && total_rows / u64::from(ndbl) >= MIN_ROWS
                        })
                        .filter(move |&ndbl| (total_rows / u64::from(ndbl)).is_power_of_two())
                        .flat_map(move |ndbl| {
                            // Split the mux factor between bitline mux and
                            // sense-amp mux.
                            bl_mux_choices(is_dram, mux_needed).filter_map(move |deg_bl| {
                                let deg_sa = mux_needed / u64::from(deg_bl);
                                (deg_sa != 0 && deg_sa <= u64::from(MAX_SA_MUX)).then_some(
                                    OrgParams {
                                        ndwl,
                                        ndbl,
                                        nspd,
                                        deg_bl_mux: deg_bl,
                                        deg_sa_mux: deg_sa as u32,
                                    },
                                )
                            })
                        })
                })
        })
}

/// Eagerly enumerates every structurally feasible [`OrgParams`] for `spec`:
/// [`enumerate_lazy`] collected into a `Vec`, in the same order.
pub fn enumerate(spec: &MemorySpec) -> Vec<OrgParams> {
    enumerate_lazy(spec).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AccessMode, MemoryKind};
    use cactid_tech::{CellTechnology, TechNode};

    fn l2_spec() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn enumeration_is_nonempty_and_consistent() {
        let spec = l2_spec();
        let orgs = enumerate(&spec);
        assert!(!orgs.is_empty());
        for org in &orgs {
            let rows = org.rows(&spec);
            let cols = org.cols(&spec);
            assert!(rows >= MIN_ROWS && rows.is_power_of_two());
            assert!(cols >= MIN_COLS);
            // Capacity conservation: rows × cols × subarrays == bank bits.
            let bits = rows * cols * u64::from(org.ndwl) * u64::from(org.ndbl);
            assert_eq!(bits, spec.bank_bytes() * 8, "org {org:?}");
            // Mux factor matches stripe/output ratio.
            assert_eq!(
                org.mux_factor(),
                org.stripe_bits(&spec) / spec.output_bits()
            );
        }
    }

    #[test]
    fn dram_never_uses_bitline_mux() {
        let spec = MemorySpec::builder()
            .capacity_bytes(8 << 20)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::LpDram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        for org in enumerate(&spec) {
            assert_eq!(org.deg_bl_mux, 1, "destructive readout forbids bl-mux");
        }
    }

    #[test]
    fn main_memory_stripe_is_the_page() {
        let spec = MemorySpec::builder()
            .capacity_bytes(1 << 30)
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N78)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8192,
            })
            .build()
            .unwrap();
        let orgs = enumerate(&spec);
        assert!(!orgs.is_empty());
        for org in &orgs {
            assert_eq!(org.stripe_bits(&spec), 8192);
            assert_eq!(org.deg_bl_mux, 1);
            // Column select covers page/burst-output.
            assert_eq!(org.deg_sa_mux, (8192 / 64) as u32);
        }
    }

    #[test]
    fn distinct_candidates() {
        let spec = l2_spec();
        let orgs = enumerate(&spec);
        for (i, a) in orgs.iter().enumerate() {
            for b in orgs.iter().skip(i + 1) {
                assert!(a != b, "duplicate organization {a:?}");
            }
        }
    }

    #[test]
    fn lazy_enumeration_matches_the_historical_eager_sweep() {
        // The candidate count of the 1 MB L2 sweep was pinned while
        // `enumerate` was still an eager nested loop; the lazy iterator
        // must reproduce it exactly (the golden-metrics suite pins the
        // per-candidate values, this pins the enumeration itself).
        let spec = l2_spec();
        assert_eq!(enumerate_lazy(&spec).count(), 973);
        // First candidate of the historical order: smallest nspd that
        // passes the stripe screens, ndwl = ndbl = 1.
        let first = enumerate_lazy(&spec).next().unwrap();
        assert_eq!((first.ndwl, first.ndbl), (1, 1));
    }

    /// Regression for the `stripe_bits` truncation fix: an odd
    /// associativity with fractional `nspd` exercises the float product.
    /// `set_bits = 64·8·3 = 1536` and `nspd = 0.25` gives exactly 384 bits
    /// — the old `as u64` floor and the explicit rounding agree on every
    /// exact product, and every emitted org must conserve capacity.
    #[test]
    fn fractional_nspd_with_odd_associativity_is_exact() {
        let spec = MemorySpec::builder()
            .capacity_bytes(3 << 16) // 192 KB = 64 B × 3 ways × 1024 sets
            .block_bytes(64)
            .associativity(3)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let quarter = OrgParams {
            ndwl: 1,
            ndbl: 1,
            nspd: 0.25,
            deg_bl_mux: 1,
            deg_sa_mux: 1,
        };
        assert_eq!(quarter.stripe_bits(&spec), 384, "no silent floor");
        let orgs = enumerate(&spec);
        assert!(!orgs.is_empty());
        for org in &orgs {
            let stripe = org.stripe_bits(&spec);
            // The stripe divides evenly across the wordline partitions …
            assert_eq!(stripe % u64::from(org.ndwl), 0, "org {org:?}");
            assert_eq!(org.cols(&spec) * u64::from(org.ndwl), stripe);
            // … and capacity is conserved bit for bit.
            let bits =
                org.rows(&spec) * org.cols(&spec) * u64::from(org.ndwl) * u64::from(org.ndbl);
            assert_eq!(bits, spec.bank_bytes() * 8, "org {org:?}");
        }
    }
}
