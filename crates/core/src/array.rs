//! The core array model: evaluates one bank organization (geometry, timing,
//! energy, leakage, refresh) for any of the three cell technologies.
//!
//! Layout model: a bank is `ndwl × ndbl` subarrays. Each subarray carries
//! its own row decoder strip (pitch-matched wordline drivers) and a sense
//! amplifier strip; address and data travel on a repeatered H-tree whose
//! span follows from the assembled bank dimensions. DRAM subarrays use the
//! folded-bitline organization (paper §2.3): every bitline on the open row
//! is sensed (no bitline muxing), reads are destructive and followed by a
//! writeback/restore phase, and cells must be refreshed every retention
//! period.

use crate::error::CactiError;
use cactid_circuit::decoder::Decoder;
use cactid_circuit::driver::BufferChain;
use cactid_circuit::mux::PassMux;
use cactid_circuit::repeater::RepeatedWire;
use cactid_circuit::sense_amp::SenseAmp;
use cactid_circuit::BlockResult;
use cactid_tech::{CellParams, DeviceParams, Technology, WireParams, WireType};
use cactid_units::{Farads, Joules, Meters, Ohms, Seconds, SquareMeters, Volts, Watts};

/// Tuning constants, grouped so the validation experiments (Tables 2–3,
/// Figure 1) can be calibrated transparently. Values are physical-order
/// estimates; see EXPERIMENTS.md for the calibration record.
pub mod cal {
    /// Precharge device width in multiples of minimum width (SRAM).
    pub const W_PRECHARGE_MULT: f64 = 12.0;
    /// Precharge/equalizer width for DRAM, pitch-constrained to the tight
    /// bitline pitch and therefore much weaker.
    pub const W_PRECHARGE_MULT_DRAM: f64 = 3.0;
    /// SRAM bitline read swing as a multiple of the sense margin.
    pub const SRAM_BL_SWING_MULT: f64 = 2.0;
    /// Settle factor (in time constants) for DRAM charge sharing.
    pub const TAU_SHARE: f64 = 2.2;
    /// Settle factor for DRAM cell restore (writeback).
    pub const TAU_RESTORE: f64 = 2.2;
    /// Settle factor for bitline precharge/equalization.
    pub const TAU_PRECHARGE: f64 = 2.2;
    /// Fraction of the idle-stripe leakage retained under sleep
    /// transistors (paper §2.5: sleep transistors halve idle-mat leakage).
    pub const SLEEP_FACTOR: f64 = 0.5;
    /// Control/synchronization overhead multiplier on the bus-pipeline
    /// initiation interval (multisubbank interleave cycle).
    pub const INTERLEAVE_OVERHEAD: f64 = 2.0;
    /// Extra bitline energy factor covering restore + precharge of the
    /// full DRAM swing relative to the initial sensing half-swing.
    pub const DRAM_BL_CYCLE_FACTOR: f64 = 2.3;
    /// Routing-fill factor for the central address/data spine.
    pub const SPINE_FILL: f64 = 1.6;
    /// Fixed per-bank control-strip height in feature sizes.
    pub const CONTROL_STRIP_F: f64 = 60.0;
    /// Per-subarray edge overhead (precharge, equalization, mux strips) in
    /// feature sizes of height.
    pub const SUBARRAY_EDGE_F: f64 = 30.0;
}

/// Generic description of one array (data or tag) to evaluate: geometry
/// plus the electrical context. Produced from a `MemorySpec` + `OrgParams`
/// by the solver, or synthesized directly by the tag model.
#[derive(Debug, Clone)]
pub struct ArrayInput {
    /// Rows per subarray (power of two).
    pub rows: u64,
    /// Columns per subarray (power of two).
    pub cols: u64,
    /// Subarrays per activated stripe.
    pub ndwl: u32,
    /// Stripes per bank.
    pub ndbl: u32,
    /// Bitline-mux degree (1 for DRAM).
    pub deg_bl_mux: u32,
    /// Sense-amp (column-select) mux degree.
    pub deg_sa_mux: u32,
    /// Bits delivered per access.
    pub output_bits: u64,
    /// Address bits routed on the input H-tree.
    pub address_bits: u32,
    /// Cell technology parameters.
    pub cell: CellParams,
    /// Peripheral device parameters.
    pub periph: DeviceParams,
    /// Repeater relaxation knob (≥ 1).
    pub repeater_relax: f64,
    /// Sleep transistors on idle stripes.
    pub sleep_transistors: bool,
    /// Fraction of the sensed stripe whose sense amps fire (sequential-mode
    /// SRAM caches gate unselected ways; DRAM always senses the full row).
    pub sense_fraction: f64,
}

impl ArrayInput {
    /// Bits on one activated stripe.
    pub fn stripe_bits(&self) -> u64 {
        self.cols * u64::from(self.ndwl)
    }

    /// Total bits stored in the bank.
    pub fn bank_bits(&self) -> u64 {
        self.stripe_bits() * self.rows * u64::from(self.ndbl)
    }
}

/// Delay breakdown of one access path.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DelayBreakdown {
    /// Address H-tree from bank edge to stripe.
    pub htree_in: Seconds,
    /// Predecode + row decode + wordline rise.
    pub decode: Seconds,
    /// Bitline development (SRAM discharge / DRAM charge share).
    pub bitline: Seconds,
    /// Sense amplification.
    pub sense: Seconds,
    /// Bitline-mux + sense-amp-mux traversal.
    pub mux: Seconds,
    /// Column-select decode (serial only for the main-memory interface).
    pub column_decode: Seconds,
    /// Data H-tree back to the bank edge.
    pub htree_out: Seconds,
    /// Bitline precharge (cycle-time component).
    pub precharge: Seconds,
    /// DRAM cell restore/writeback (cycle-time component; 0 for SRAM).
    pub restore: Seconds,
}

/// Energy breakdown of one access.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// Address distribution.
    pub htree_in: Joules,
    /// Decoders + wordline (at V_PP for DRAM).
    pub decode: Joules,
    /// Bitline swing (+ restore/precharge for DRAM).
    pub bitline: Joules,
    /// Sense amplifiers.
    pub sense: Joules,
    /// Column path: muxes + data return H-tree.
    pub column: Joules,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> Joules {
        self.htree_in + self.decode + self.bitline + self.sense + self.column
    }

    /// Row-activation portion (everything before the column path) —
    /// the DRAM ACTIVATE command energy.
    pub fn activate(&self) -> Joules {
        self.htree_in + self.decode + self.bitline + self.sense
    }
}

/// Complete evaluation of one bank organization.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrayResult {
    /// Delay components.
    pub delay: DelayBreakdown,
    /// Read energy components.
    pub energy: EnergyBreakdown,
    /// Write energy per access.
    pub write_energy: Joules,
    /// Random cycle time.
    pub random_cycle: Seconds,
    /// Multisubbank interleave cycle time (paper §2.3.4).
    pub interleave_cycle: Seconds,
    /// Bank standby leakage.
    pub leakage: Watts,
    /// Bank refresh power (0 for SRAM).
    pub refresh_power: Watts,
    /// Bank width.
    pub width: Meters,
    /// Bank height.
    pub height: Meters,
    /// DRAM sense signal actually available (margin for SRAM).
    pub sense_signal: Volts,
    /// Energy to refresh one row stripe (0 for SRAM).
    pub row_refresh_energy: Joules,
    /// Delay of the column-select (CSL) driver chain. Not part of the
    /// random access path (see [`DelayBreakdown::column_decode`]); the
    /// main-memory interface consumes it for its serial CAS decode instead
    /// of re-designing the chain per candidate.
    pub column_select_delay: Seconds,
}

impl ArrayResult {
    /// Random access time: everything from address-in to data-out.
    pub fn access_time(&self) -> Seconds {
        let d = &self.delay;
        d.htree_in + d.decode + d.bitline + d.sense + d.mux + d.column_decode + d.htree_out
    }

    /// Time until data is latched in the sense amps (DRAM tRCD).
    pub fn t_row_to_sense(&self) -> Seconds {
        let d = &self.delay;
        d.htree_in + d.decode + d.bitline + d.sense
    }

    /// Column path after sensing (DRAM CAS core latency).
    pub fn t_column(&self) -> Seconds {
        let d = &self.delay;
        d.column_decode + d.mux + d.htree_out
    }

    /// Bank area.
    pub fn area(&self) -> SquareMeters {
        self.width * self.height
    }

    /// Total read energy per access.
    pub fn read_energy(&self) -> Joules {
        self.energy.total()
    }
}

/// Which of the three closed-form checks rejected a candidate, reported by
/// [`prescreen_explain`] so static analyses (the `cactid audit` grid
/// screen) can build per-reason infeasibility histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrescreenFailure {
    /// The subarray has more rows than the cell's `max_rows_per_subarray`.
    SubarrayRows,
    /// The distributed wordline RC exceeds the 3 ns hierarchical-wordline
    /// bound.
    WordlineElmore,
    /// The DRAM charge-sharing signal falls below the sense margin.
    SenseMargin,
}

impl PrescreenFailure {
    /// Every failure reason, in check order.
    pub const ALL: &'static [PrescreenFailure] = &[
        PrescreenFailure::SubarrayRows,
        PrescreenFailure::WordlineElmore,
        PrescreenFailure::SenseMargin,
    ];

    /// Stable kebab-case label used in histograms and reports.
    pub fn label(self) -> &'static str {
        match self {
            PrescreenFailure::SubarrayRows => "subarray-rows",
            PrescreenFailure::WordlineElmore => "wordline-elmore",
            PrescreenFailure::SenseMargin => "sense-margin",
        }
    }
}

/// The hierarchical-wordline feasibility bound: a distributed wordline RC
/// beyond this needs a re-buffered wordline scheme outside the model's
/// scope, so [`prescreen_explain`] rejects the organization. Named so the
/// `cactid-prove` abstract evaluator compares against the identical
/// constant.
pub const WORDLINE_ELMORE_BOUND: Seconds = Seconds::from_si(3e-9);

/// Certified prescreen cutoffs for one `(node, cell technology)` pair,
/// proved sound by `cactid-prove`'s exhaustive interval scan and consumed
/// by the opt-in fast paths ([`prescreen_verdict_with`],
/// `solve_with_stats_certified`, `static_screen_certified`).
///
/// Each field is a one-sided claim about [`prescreen_explain`]'s verdict
/// that holds for **every** `(rows, cols)` inside the scanned domain:
/// columns past `wordline_reject_above` certainly fail the wordline-Elmore
/// check, columns up to `wordline_pass_upto` certainly pass it, and
/// likewise for the DRAM sense margin over power-of-two row counts. The
/// fast paths fall back to the concrete closed forms outside the certified
/// domain or inside the undecided boundary zone, so their verdict — and
/// the failure *reason*, which feeds the audit histograms — is identical
/// to [`prescreen_explain`] whether or not the certificates bite.
///
/// [`CertifiedBounds::conservative`] is the no-certificate element: its
/// fast paths never fire and the behavior degenerates to the concrete
/// screen. Unsound scans (which would indicate a transcription bug in the
/// prover) degrade to it rather than ship a wrong cutoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CertifiedBounds {
    /// The certificates only speak for `cols <= cols_domain` …
    pub cols_domain: u64,
    /// … and for power-of-two `rows <= rows_domain`.
    pub rows_domain: u64,
    /// Every `cols <= wordline_pass_upto` certainly passes the wordline
    /// check (0 when nothing is certified to pass).
    pub wordline_pass_upto: u64,
    /// Every `cols > wordline_reject_above` within the domain certainly
    /// fails the wordline check (`u64::MAX` when nothing is certified to
    /// reject).
    pub wordline_reject_above: u64,
    /// Every power-of-two `rows <= sense_pass_upto` certainly passes the
    /// DRAM sense-margin check.
    pub sense_pass_upto: u64,
    /// Every power-of-two `rows >= sense_reject_from` within the domain
    /// certainly fails the DRAM sense-margin check.
    pub sense_reject_from: u64,
}

impl CertifiedBounds {
    /// The no-certificate element: every fast path falls through to the
    /// concrete closed forms.
    #[must_use]
    pub const fn conservative() -> Self {
        Self {
            cols_domain: 0,
            rows_domain: 0,
            wordline_pass_upto: 0,
            wordline_reject_above: u64::MAX,
            sense_pass_upto: 0,
            sense_reject_from: u64::MAX,
        }
    }
}

impl Default for CertifiedBounds {
    fn default() -> Self {
        Self::conservative()
    }
}

/// The closed-form feasibility screen of [`evaluate`], separated out so the
/// solver's staged pipeline can reject candidates before paying for the
/// full circuit evaluation.
///
/// This computes *exactly* the three infeasibility conditions `evaluate`
/// checks — subarray height against the cell's `max_rows_per_subarray`,
/// distributed wordline RC against the 3 ns hierarchical-wordline bound,
/// and the DRAM charge-sharing signal against the sense margin — with the
/// same expressions, so a candidate passes this screen if and only if
/// `evaluate` succeeds on it. On success it returns the sense signal the
/// organization develops (the margin itself for SRAM).
///
/// # Errors
///
/// Returns the [`PrescreenFailure`] naming the first check that failed —
/// exactly when [`evaluate`] would fail for the same `(cell, rows, cols)`.
pub fn prescreen_explain(
    cell: &CellParams,
    rows: u64,
    cols: u64,
) -> Result<Volts, PrescreenFailure> {
    if rows > cell.max_rows_per_subarray as u64 {
        return Err(PrescreenFailure::SubarrayRows);
    }
    // Wordlines are driven from one end without hierarchical re-buffering;
    // beyond a few ns of distributed RC the organization needs a
    // hierarchical wordline scheme outside this model's scope.
    let wl_rc =
        0.38 * (cell.r_wordline_per_cell * cols as f64) * (cell.c_wordline_per_cell * cols as f64);
    if wl_rc > WORDLINE_ELMORE_BOUND {
        return Err(PrescreenFailure::WordlineElmore);
    }
    if cell.technology.is_dram() {
        let Some(s) = cell.dram_sense_signal(rows as usize) else {
            unreachable!("dram cell provides a sense signal");
        };
        if s < cell.v_sense_margin {
            return Err(PrescreenFailure::SenseMargin);
        }
        Ok(s)
    } else {
        Ok(cell.v_sense_margin)
    }
}

/// Verdict-only [`prescreen_explain`] consulting certified cutoffs: where
/// a [`CertifiedBounds`] certificate already decides a check, the closed
/// form is skipped; in the boundary zone (or outside the certified domain)
/// the concrete expression runs unchanged. The check order — subarray
/// rows, then wordline Elmore, then sense margin — is preserved
/// structurally, so the verdict *and the failure reason* are identical to
/// [`prescreen_explain`] for every input, certified or not.
///
/// # Errors
///
/// Returns the same [`PrescreenFailure`] that [`prescreen_explain`] would
/// for the same `(cell, rows, cols)`.
pub fn prescreen_verdict_with(
    cell: &CellParams,
    rows: u64,
    cols: u64,
    bounds: &CertifiedBounds,
) -> Result<(), PrescreenFailure> {
    if rows > cell.max_rows_per_subarray as u64 {
        return Err(PrescreenFailure::SubarrayRows);
    }
    let cols_certified = cols <= bounds.cols_domain;
    if cols_certified && cols > bounds.wordline_reject_above {
        return Err(PrescreenFailure::WordlineElmore);
    }
    if !(cols_certified && cols <= bounds.wordline_pass_upto) {
        let wl_rc = 0.38
            * (cell.r_wordline_per_cell * cols as f64)
            * (cell.c_wordline_per_cell * cols as f64);
        if wl_rc > WORDLINE_ELMORE_BOUND {
            return Err(PrescreenFailure::WordlineElmore);
        }
    }
    if cell.technology.is_dram() {
        let rows_certified = rows.is_power_of_two() && rows <= bounds.rows_domain;
        if rows_certified && rows >= bounds.sense_reject_from {
            return Err(PrescreenFailure::SenseMargin);
        }
        if !(rows_certified && rows <= bounds.sense_pass_upto) {
            let Some(s) = cell.dram_sense_signal(rows as usize) else {
                unreachable!("dram cell provides a sense signal");
            };
            if s < cell.v_sense_margin {
                return Err(PrescreenFailure::SenseMargin);
            }
        }
    }
    Ok(())
}

/// [`prescreen_explain`] with the reason folded into the solver's error
/// type.
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] exactly when [`evaluate`]
/// would for the same `(cell, rows, cols)`.
pub fn prescreen(cell: &CellParams, rows: u64, cols: u64) -> Result<Volts, CactiError> {
    prescreen_explain(cell, rows, cols).map_err(|_| CactiError::NoFeasibleSolution)
}

/// Per-solve scratch memoizing every candidate-invariant or axis-keyed
/// piece of [`evaluate`], so a sweep over adjacent [`org::enumerate_lazy`]
/// candidates (which differ in one [`crate::OrgParams`] axis at a time)
/// recomputes only the slices whose axis actually changed.
///
/// Each slice is keyed by the *complete* set of inputs its values depend
/// on — `rows`, `cols`, `(rows, cols)`, a mux degree, or the bit pattern
/// of a derived float — and is recomputed through the identical
/// expressions [`evaluate`] uses whenever the key misses. A hit therefore
/// returns values bitwise equal to a from-scratch evaluation, and the
/// results carry no dependence on the order candidates arrive in (pinned
/// by the enumeration-shuffle proptest).
///
/// A memo is valid for reuse across [`ArrayInput`]s that differ **only**
/// in the organization axes (`rows`, `cols`, `ndwl`, `ndbl`,
/// `deg_bl_mux`, `deg_sa_mux`) — exactly what one solve's sweep produces
/// from a single spec. The solver allocates one per solve (or per worker
/// on the parallel path); [`evaluate`] itself runs on a fresh memo, which
/// degenerates to the plain from-scratch evaluation.
///
/// [`org::enumerate_lazy`]: crate::org::enumerate_lazy
#[derive(Debug, Default)]
pub struct EvalMemo {
    hits: u64,
    consts: Option<SolveConsts>,
    screen: Option<((u64, u64), Result<Volts, PrescreenFailure>)>,
    row: Option<(u64, RowSlice)>,
    col: Option<(u64, ColSlice)>,
    dec: Option<((u64, u64), DecSlice)>,
    dec_delay: Option<((u64, u64, u64), Seconds)>,
    sa: [Option<((u32, u64), SaSlice)>; SA_SLOTS],
    ht: Option<(u64, HtSlice)>,
    out: Option<(u64, OutSlice)>,
    bl_mux: [Option<((u32, u64), BlockResult)>; BL_MUX_SLOTS],
    sa_mux: [Option<((u32, u64), BlockResult)>; SA_MUX_SLOTS],
}

/// Sense-amp slots, direct-indexed by `deg_bl_mux.trailing_zeros()`
/// (enumeration caps the bitline mux at 8 = 2³).
const SA_SLOTS: usize = 4;
/// Bitline-mux slots, same indexing as [`SA_SLOTS`].
const BL_MUX_SLOTS: usize = 4;
/// Sense-amp-mux slots, direct-indexed by `deg_sa_mux.trailing_zeros()`
/// (enumeration caps the output mux at 1024 = 2¹⁰).
const SA_MUX_SLOTS: usize = 11;

/// Values every candidate of one solve shares: technology-wide wire and
/// device terms plus the spec-level spine width.
#[derive(Debug, Clone, Copy)]
struct SolveConsts {
    wire: WireParams,
    f: Meters,
    spine_w: Meters,
    r_pre: Ohms,
    latch_overhead: Seconds,
}

/// Everything keyed only by `rows`: bitline RC and the closed-form
/// bitline/restore/precharge timings.
#[derive(Debug, Clone, Copy)]
struct RowSlice {
    c_bl: Farads,
    t_bitline: Seconds,
    t_restore: Seconds,
    t_precharge: Seconds,
}

/// Everything keyed only by `cols`: wordline RC, subarray width, the
/// predecode wire load and the column-select driver chain.
#[derive(Debug, Clone, Copy)]
struct ColSlice {
    c_wl: Farads,
    r_wl: Ohms,
    array_w: Meters,
    predec_wire: Farads,
    csl_eval: BlockResult,
}

/// The row decoder, keyed by `(rows, cols)`. The designed chain is kept so
/// the per-candidate re-timing at the real H-tree ramp can reuse it.
#[derive(Debug)]
struct DecSlice {
    decoder: Decoder,
    dec: BlockResult,
}

/// The sense-amp strip, keyed by `(deg_bl_mux, rows)` for DRAM (the amp
/// regenerates the bitline and senses the rows-dependent signal) and by
/// `deg_bl_mux` alone for SRAM.
#[derive(Debug, Clone, Copy)]
struct SaSlice {
    sa_eval: BlockResult,
    w_latch: Meters,
}

/// The repeatered H-tree, keyed by the bit pattern of its span.
#[derive(Debug, Clone, Copy)]
struct HtSlice {
    ht_in: BlockResult,
    ht_stage: Seconds,
    w_rep: Meters,
}

/// The output driver chain, keyed by the bit pattern of the H-tree input
/// capacitance it is sized against (a per-solve constant in practice —
/// repeater width is independent of span — so this slot hits after the
/// first candidate).
#[derive(Debug, Clone, Copy)]
struct OutSlice {
    out_eval: BlockResult,
    c_first: Farads,
}

impl EvalMemo {
    /// An empty memo: every slice misses on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// How many slice lookups hit across the memo's lifetime — the work
    /// the incremental evaluation skipped relative to from-scratch
    /// candidates. Flushed to the `core.solve.incremental_reuse` counter
    /// once per solve.
    #[must_use]
    pub fn reuse_hits(&self) -> u64 {
        self.hits
    }

    /// Memoized [`prescreen_explain`], keyed by `(rows, cols)`. The staged
    /// sweep screens each candidate through this, so the screen's verdict
    /// is computed once and the subsequent [`evaluate_incremental`] of a
    /// surviving candidate reuses it instead of re-running the closed
    /// forms.
    ///
    /// # Errors
    ///
    /// Exactly when [`prescreen_explain`] fails for `(cell, rows, cols)`.
    pub fn prescreen_cached(
        &mut self,
        cell: &CellParams,
        rows: u64,
        cols: u64,
    ) -> Result<Volts, PrescreenFailure> {
        if let Some((k, v)) = self.screen {
            if k == (rows, cols) {
                self.hits += 1;
                return v;
            }
        }
        let v = prescreen_explain(cell, rows, cols);
        self.screen = Some(((rows, cols), v));
        v
    }

    fn consts(&mut self, tech: &Technology, input: &ArrayInput) -> SolveConsts {
        if let Some(c) = self.consts {
            self.hits += 1;
            return c;
        }
        let periph = &input.periph;
        let f = tech.feature_size();
        let wire = tech.wire(WireType::SemiGlobal);
        let spine_w = (u64::from(input.address_bits) + input.output_bits) as f64
            * wire.pitch
            * cal::SPINE_FILL;
        let w_pre = if input.cell.technology.is_dram() {
            cal::W_PRECHARGE_MULT_DRAM
        } else {
            cal::W_PRECHARGE_MULT
        };
        let r_pre = periph.res_on_n(w_pre * periph.min_width);
        // Pipeline latch + clocking overhead on any cycle.
        let fo4 = 0.69
            * periph.r_eff_n
            * ((1.0 + periph.p_to_n_ratio) * (periph.c_drain + 4.0 * periph.c_gate));
        let latch_overhead = 3.0 * fo4;
        let c = SolveConsts {
            wire,
            f,
            spine_w,
            r_pre,
            latch_overhead,
        };
        self.consts = Some(c);
        c
    }

    fn row_slice(&mut self, input: &ArrayInput, r_pre: Ohms) -> RowSlice {
        if let Some((k, v)) = self.row {
            if k == input.rows {
                self.hits += 1;
                return v;
            }
        }
        let cell = &input.cell;
        let periph = &input.periph;
        let c_bl =
            cell.c_bitline_per_cell * input.rows as f64 + 2.0 * periph.c_drain * periph.min_width;
        let r_bl = cell.r_bitline_per_cell * input.rows as f64;
        let derate = cell.timing_derate;
        let (t_bitline, t_restore) = if cell.technology.is_dram() {
            // Escape hatch: F²/F has no named quantity; series capacitance
            // of the cell and bitline computed on raw SI values.
            let c_eff = Farads::from_si(
                cell.c_storage.value() * c_bl.value() / (cell.c_storage + c_bl).value(),
            );
            let t_share = derate * cal::TAU_SHARE * (cell.r_access_on + r_bl / 2.0) * c_eff;
            // The restore tail is slow: the access device loses overdrive
            // as the cell node approaches VDD (restore_saturation), and
            // worst-case cells set the spec (timing_derate).
            let t_rest = derate
                * cal::TAU_RESTORE
                * (cell.r_access_on * cell.restore_saturation + r_bl / 2.0)
                * cell.c_storage;
            (t_share, t_rest)
        } else {
            let t_dis = c_bl * (cal::SRAM_BL_SWING_MULT * cell.v_sense_margin) / cell.i_cell_read
                + 0.38 * r_bl * c_bl;
            (t_dis, Seconds::ZERO)
        };
        let t_precharge = derate * cal::TAU_PRECHARGE * (r_pre + r_bl / 2.0) * c_bl;
        let v = RowSlice {
            c_bl,
            t_bitline,
            t_restore,
            t_precharge,
        };
        self.row = Some((input.rows, v));
        v
    }

    fn col_slice(&mut self, input: &ArrayInput, k: &SolveConsts) -> ColSlice {
        if let Some((key, v)) = self.col {
            if key == input.cols {
                self.hits += 1;
                return v;
            }
        }
        let cell = &input.cell;
        let periph = &input.periph;
        let c_wl = cell.c_wordline_per_cell * input.cols as f64;
        let r_wl = cell.r_wordline_per_cell * input.cols as f64;
        let array_w = input.cols as f64 * cell.width;
        let predec_wire = k.wire.cap(array_w);
        // Column-select decode: sized to drive one CSL across the stripe.
        let csl_load = k.wire.cap(array_w) + 8.0 * periph.c_inv_min();
        let csl = BufferChain::design(periph, periph.c_inv_min(), csl_load);
        let csl_eval = csl.evaluate(periph, Seconds::ZERO);
        let v = ColSlice {
            c_wl,
            r_wl,
            array_w,
            predec_wire,
            csl_eval,
        };
        self.col = Some((input.cols, v));
        v
    }

    fn dec_block(&mut self, input: &ArrayInput, col: &ColSlice) -> BlockResult {
        let key = (input.rows, input.cols);
        if let Some((k, ref v)) = self.dec {
            if k == key {
                self.hits += 1;
                return v.dec;
            }
        }
        let cell = &input.cell;
        let periph = &input.periph;
        let decoder = Decoder::design(
            periph,
            input.rows.max(2) as usize,
            col.c_wl,
            col.r_wl,
            cell.vpp,
            col.predec_wire,
            cell.height,
        );
        let dec = decoder.evaluate(periph, Seconds::ZERO);
        self.dec = Some((key, DecSlice { decoder, dec }));
        dec
    }

    fn dec_delay(&mut self, input: &ArrayInput, ramp: Seconds) -> Seconds {
        let key = (input.rows, input.cols, ramp.value().to_bits());
        if let Some((k, v)) = self.dec_delay {
            if k == key {
                self.hits += 1;
                return v;
            }
        }
        // Re-time the decode path at the real H-tree ramp; area/energy/
        // leakage were captured by the zero-ramp evaluation and are
        // ramp-independent.
        let t = match &self.dec {
            Some((k, slice)) if *k == (input.rows, input.cols) => {
                slice.decoder.delay(&input.periph, ramp)
            }
            _ => unreachable!("the decoder slice is designed before decode re-timing"),
        };
        self.dec_delay = Some((key, t));
        t
    }

    fn sa_slice(&mut self, input: &ArrayInput, sense_signal: Volts, c_bl: Farads) -> SaSlice {
        let is_dram = input.cell.technology.is_dram();
        let key = (input.deg_bl_mux, if is_dram { input.rows } else { 0 });
        let idx = (input.deg_bl_mux.trailing_zeros() as usize).min(SA_SLOTS - 1);
        if let Some((k, v)) = self.sa[idx] {
            if k == key {
                self.hits += 1;
                return v;
            }
        }
        let cell = &input.cell;
        let periph = &input.periph;
        let sa_pitch = 2.0 * cell.width * f64::from(input.deg_bl_mux);
        // DRAM sense amps must regenerate the whole bitline; SRAM amps
        // sense onto isolated latch nodes.
        let sa_c_extra = if is_dram { c_bl } else { Farads::ZERO };
        let sa = SenseAmp::design_with_load(periph, sa_pitch, sa_c_extra, cell.sense_gm_derate);
        let sa_eval = sa.evaluate(periph, sense_signal, cell.vdd_cell);
        let v = SaSlice {
            sa_eval,
            w_latch: sa.w_latch,
        };
        self.sa[idx] = Some((key, v));
        v
    }

    fn ht_slice(&mut self, input: &ArrayInput, k: &SolveConsts, htree_len: Meters) -> HtSlice {
        let key = htree_len.value().to_bits();
        if let Some((kk, v)) = self.ht {
            if kk == key {
                self.hits += 1;
                return v;
            }
        }
        let periph = &input.periph;
        let ht = RepeatedWire::design(periph, &k.wire, htree_len, input.repeater_relax);
        let ht_in = ht.evaluate(periph, &k.wire, Seconds::ZERO);
        // `RepeatedWire::stage_delay` is its zero-ramp evaluation divided
        // by the segment count, and `ht_in` *is* that evaluation — divide
        // instead of walking the repeater chain a second time.
        let ht_stage = ht_in.delay / ht.n_seg as f64;
        let v = HtSlice {
            ht_in,
            ht_stage,
            w_rep: ht.w_rep,
        };
        self.ht = Some((key, v));
        v
    }

    fn out_slice(&mut self, input: &ArrayInput, ht_in_cap: Farads) -> OutSlice {
        let key = ht_in_cap.value().to_bits();
        if let Some((k, v)) = self.out {
            if k == key {
                self.hits += 1;
                return v;
            }
        }
        let periph = &input.periph;
        let out_drv = BufferChain::design(periph, 4.0 * periph.c_inv_min(), 20.0 * ht_in_cap);
        let out_eval = out_drv.evaluate(periph, Seconds::ZERO);
        let v = OutSlice {
            out_eval,
            c_first: out_drv.stage_caps[0],
        };
        self.out = Some((key, v));
        v
    }

    fn bl_mux_slice(&mut self, input: &ArrayInput, sa_in_cap: Farads) -> BlockResult {
        let key = (input.deg_bl_mux, sa_in_cap.value().to_bits());
        let idx = (input.deg_bl_mux.trailing_zeros() as usize).min(BL_MUX_SLOTS - 1);
        if let Some((k, v)) = self.bl_mux[idx] {
            if k == key {
                self.hits += 1;
                return v;
            }
        }
        let periph = &input.periph;
        let bl_mux = PassMux::design(periph, input.deg_bl_mux as usize);
        let v = bl_mux.evaluate(periph, Seconds::ZERO, sa_in_cap);
        self.bl_mux[idx] = Some((key, v));
        v
    }

    fn sa_mux_slice(&mut self, input: &ArrayInput, c_first: Farads) -> BlockResult {
        let key = (input.deg_sa_mux, c_first.value().to_bits());
        let idx = (input.deg_sa_mux.trailing_zeros() as usize).min(SA_MUX_SLOTS - 1);
        if let Some((k, v)) = self.sa_mux[idx] {
            if k == key {
                self.hits += 1;
                return v;
            }
        }
        let periph = &input.periph;
        let sa_mux = PassMux::design(periph, input.deg_sa_mux as usize);
        let v = sa_mux.evaluate(periph, Seconds::ZERO, c_first);
        self.sa_mux[idx] = Some((key, v));
        v
    }
}

/// Evaluates one array organization.
///
/// This is the from-scratch entry: it runs [`evaluate_incremental`] on a
/// fresh [`EvalMemo`], so every slice misses and the full model cost is
/// paid — the behavior sweeps rely on for the unpruned reference path.
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] when the organization is
/// electrically infeasible (e.g. a DRAM bitline too long to meet the sense
/// margin); [`prescreen`] reports the identical verdict without the cost
/// of the full evaluation.
pub fn evaluate(tech: &Technology, input: &ArrayInput) -> Result<ArrayResult, CactiError> {
    evaluate_incremental(tech, input, &mut EvalMemo::new())
}

/// [`evaluate`] with a caller-owned [`EvalMemo`]: slices of the model that
/// depend only on unchanged organization axes are reused from the memo
/// instead of recomputed, which makes sweeping adjacent
/// [`crate::org::enumerate_lazy`] candidates (one axis changes per step)
/// substantially cheaper than from-scratch evaluation. Every reused slice
/// is keyed by the complete set of inputs it depends on, so the returned
/// [`ArrayResult`] is bitwise identical to [`evaluate`]'s for any memo
/// state and any candidate order.
///
/// # Errors
///
/// Returns [`CactiError::NoFeasibleSolution`] exactly when [`evaluate`]
/// does.
pub fn evaluate_incremental(
    tech: &Technology,
    input: &ArrayInput,
    memo: &mut EvalMemo,
) -> Result<ArrayResult, CactiError> {
    let cell = &input.cell;
    let periph = &input.periph;
    let is_dram = cell.technology.is_dram();

    let Ok(sense_signal) = memo.prescreen_cached(cell, input.rows, input.cols) else {
        return Err(CactiError::NoFeasibleSolution);
    };

    let k = memo.consts(tech, input);
    let f = k.f;

    // ---- Bitline electrical state + rows-keyed closed-form timings ----
    let row = memo.row_slice(input, k.r_pre);
    let c_bl = row.c_bl;

    // ---- Subarray / bank geometry (needed for wire lengths) ----
    let col = memo.col_slice(input, &k);
    let array_w = col.array_w;
    let array_h = input.rows as f64 * cell.height;
    let dec = memo.dec_block(input, &col);
    let dec_strip_w = dec.area / array_h.max(f);

    let sa = memo.sa_slice(input, sense_signal, c_bl);
    let n_sa_per_subarray = (input.cols / u64::from(input.deg_bl_mux)) as f64;
    let sa_strip_h = (n_sa_per_subarray * sa.sa_eval.area) / array_w.max(f);

    let sub_w = array_w + dec_strip_w;
    let sub_h = array_h + sa_strip_h + cal::SUBARRAY_EDGE_F * f;
    let bank_w = f64::from(input.ndwl) * sub_w + k.spine_w;
    let bank_h = f64::from(input.ndbl) * sub_h + cal::CONTROL_STRIP_F * f;

    // ---- H-trees ----
    // Address-in and data-out traverse the same repeatered span from a
    // clean driver edge, so one evaluation serves both directions.
    let htree_len = (bank_w / 2.0 + bank_h / 2.0).max(10.0 * f);
    let ht = memo.ht_slice(input, &k, htree_len);
    let ht_in = &ht.ht_in;
    let ht_out = &ht.ht_in;

    // ---- Row path ----
    let t_htree_in = ht_in.delay;
    let t_decode = memo.dec_delay(input, ht_in.ramp_out);

    let derate = cell.timing_derate;
    let (t_bitline, t_restore) = (row.t_bitline, row.t_restore);
    let t_sense = derate * sa.sa_eval.delay;

    // ---- Column path ----
    let sa_in_cap = periph.cap_gate(sa.w_latch);
    let bl_mux_eval = memo.bl_mux_slice(input, sa_in_cap);
    // The mux output drives the data H-tree's first repeater.
    let ht_in_cap = periph.cap_gate(ht.w_rep * (1.0 + periph.p_to_n_ratio));
    let out = memo.out_slice(input, ht_in_cap);
    let sa_mux_eval = memo.sa_mux_slice(input, out.c_first);
    let t_mux = bl_mux_eval.delay + sa_mux_eval.delay + out.out_eval.delay;

    let t_column_decode = col.csl_eval.delay;

    let t_htree_out = ht_out.delay;

    // ---- Precharge ----
    let t_precharge = row.t_precharge;

    // ---- Cycle times ----
    let latch_overhead = k.latch_overhead;
    let random_cycle = if is_dram {
        t_decode + t_bitline + t_sense + t_restore + t_precharge + latch_overhead
    } else {
        t_bitline + t_sense + t_precharge + 0.4 * t_decode + latch_overhead
    };
    let interleave_cycle = cal::INTERLEAVE_OVERHEAD
        * ht.ht_stage
            .max(out.out_eval.delay)
            .max(t_column_decode / 2.0);

    // ---- Energy ----
    let stripe_bits = input.stripe_bits() as f64;
    let vdd_c = cell.vdd_cell;
    let e_htree_in = f64::from(input.address_bits) * 0.5 * ht_in.energy;
    let e_decode = f64::from(input.ndwl) * dec.energy;
    let e_bitline = if is_dram {
        // Every stripe bitline makes a half-VDD sense excursion, then a
        // full restore + precharge; the storage cell is rewritten.
        stripe_bits
            * cal::DRAM_BL_CYCLE_FACTOR
            * (c_bl * vdd_c * vdd_c / 2.0 + cell.c_storage * vdd_c * vdd_c / 2.0)
    } else {
        let swing = cal::SRAM_BL_SWING_MULT * cell.v_sense_margin;
        stripe_bits * c_bl * vdd_c * swing
    };
    let n_sensed = stripe_bits / f64::from(input.deg_bl_mux) * input.sense_fraction;
    let e_sense = n_sensed * sa.sa_eval.energy;
    let e_column = input.output_bits as f64
        * (0.5 * ht_out.energy + sa_mux_eval.energy + bl_mux_eval.energy + out.out_eval.energy)
        + col.csl_eval.energy;
    let energy = EnergyBreakdown {
        htree_in: e_htree_in,
        decode: e_decode,
        bitline: e_bitline,
        sense: e_sense,
        column: e_column,
    };
    // Writes drive the selected columns full swing; for DRAM the restore
    // work is already in the bitline term.
    let write_extra =
        input.output_bits as f64 * c_bl * vdd_c * vdd_c * if is_dram { 0.2 } else { 1.0 };
    let write_energy = energy.total() - 0.3 * e_column + write_extra;

    // ---- Leakage ----
    let n_subarrays = f64::from(input.ndwl * input.ndbl);
    let stripe_periph_leak = f64::from(input.ndwl)
        * (dec.leakage
            + n_sa_per_subarray * sa.sa_eval.leakage
            + n_sa_per_subarray * (bl_mux_eval.leakage + sa_mux_eval.leakage) / 8.0
            + out.out_eval.leakage);
    let cell_leak = input.bank_bits() as f64 * cell.leak_per_cell * vdd_c;
    let shared_leak = ht_in.leakage + ht_out.leakage + col.csl_eval.leakage;
    let idle_factor = if input.sleep_transistors {
        cal::SLEEP_FACTOR
    } else {
        1.0
    };
    let ndbl = f64::from(input.ndbl);
    let stripe_scale = 1.0 + (ndbl - 1.0) * idle_factor;
    let leakage = stripe_periph_leak * stripe_scale
        + cell_leak * ((1.0 / ndbl) + (1.0 - 1.0 / ndbl) * idle_factor)
        + shared_leak;
    let _ = n_subarrays;

    // ---- Refresh ----
    let (refresh_power, row_refresh_energy) = if is_dram {
        let rows_total = (input.rows * u64::from(input.ndbl)) as f64;
        let e_row = e_decode + e_bitline + e_sense;
        (rows_total * e_row / cell.retention_time, e_row)
    } else {
        (Watts::ZERO, Joules::ZERO)
    };

    Ok(ArrayResult {
        delay: DelayBreakdown {
            htree_in: t_htree_in,
            decode: t_decode,
            bitline: t_bitline,
            sense: t_sense,
            mux: t_mux,
            column_decode: Seconds::ZERO,
            htree_out: t_htree_out,
            precharge: t_precharge,
            restore: t_restore,
        },
        energy,
        write_energy,
        random_cycle,
        interleave_cycle,
        leakage,
        refresh_power,
        width: bank_w,
        height: bank_h,
        sense_signal,
        row_refresh_energy,
        column_select_delay: t_column_decode,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{CellTechnology, TechNode};

    fn mk_input(tech: &Technology, cell_tech: CellTechnology, rows: u64, cols: u64) -> ArrayInput {
        ArrayInput {
            rows,
            cols,
            ndwl: 4,
            ndbl: 8,
            deg_bl_mux: 1,
            deg_sa_mux: 4,
            output_bits: cols * 4 / 4,
            address_bits: 40,
            cell: tech.cell(cell_tech),
            periph: tech.peripheral_device(cell_tech),
            repeater_relax: 1.0,
            sleep_transistors: false,
            sense_fraction: 1.0,
        }
    }

    #[test]
    fn sram_access_time_is_sub_ns_for_small_array() {
        let tech = Technology::new(TechNode::N32);
        let input = mk_input(&tech, CellTechnology::Sram, 128, 256);
        let r = evaluate(&tech, &input).unwrap();
        assert!(
            r.access_time() > Seconds::ps(50.0) && r.access_time() < Seconds::ns(2.0),
            "{}",
            r.access_time()
        );
        assert_eq!(r.delay.restore, Seconds::ZERO);
        assert_eq!(r.refresh_power, Watts::ZERO);
    }

    #[test]
    fn dram_has_restore_and_refresh() {
        let tech = Technology::new(TechNode::N32);
        let input = mk_input(&tech, CellTechnology::LpDram, 128, 256);
        let r = evaluate(&tech, &input).unwrap();
        assert!(r.delay.restore > Seconds::ZERO);
        assert!(r.refresh_power > Watts::ZERO);
        // Destructive readout: cycle time exceeds the SRAM-equivalent.
        assert!(r.random_cycle > r.delay.bitline + r.delay.sense);
    }

    #[test]
    fn comm_dram_is_slower_but_denser_than_sram() {
        let tech = Technology::new(TechNode::N32);
        let sram = evaluate(&tech, &mk_input(&tech, CellTechnology::Sram, 128, 256)).unwrap();
        let comm = evaluate(&tech, &mk_input(&tech, CellTechnology::CommDram, 128, 256)).unwrap();
        assert!(comm.access_time() > sram.access_time());
        assert!(comm.area() < sram.area());
        assert!(
            comm.leakage < sram.leakage / 10.0,
            "LSTP periphery + no cell leak"
        );
    }

    #[test]
    fn too_many_dram_rows_is_infeasible() {
        let tech = Technology::new(TechNode::N32);
        let input = mk_input(&tech, CellTechnology::CommDram, 4096, 256);
        assert_eq!(
            evaluate(&tech, &input).unwrap_err(),
            CactiError::NoFeasibleSolution
        );
    }

    #[test]
    fn sleep_transistors_cut_leakage() {
        let tech = Technology::new(TechNode::N32);
        let mut input = mk_input(&tech, CellTechnology::Sram, 256, 512);
        let without = evaluate(&tech, &input).unwrap().leakage;
        input.sleep_transistors = true;
        let with = evaluate(&tech, &input).unwrap().leakage;
        assert!(with < without);
        assert!(with > 0.4 * without);
    }

    #[test]
    fn bigger_bank_means_bigger_area_and_energy() {
        let tech = Technology::new(TechNode::N32);
        let small = evaluate(&tech, &mk_input(&tech, CellTechnology::Sram, 128, 256)).unwrap();
        let mut big_in = mk_input(&tech, CellTechnology::Sram, 256, 256);
        big_in.ndbl = 16;
        let big = evaluate(&tech, &big_in).unwrap();
        assert!(big.area() > small.area());
        assert!(big.leakage > small.leakage);
    }

    #[test]
    fn energy_breakdown_sums() {
        let tech = Technology::new(TechNode::N32);
        let r = evaluate(&tech, &mk_input(&tech, CellTechnology::Sram, 128, 256)).unwrap();
        let e = r.energy;
        let total = e.htree_in + e.decode + e.bitline + e.sense + e.column;
        assert!((r.read_energy() - total).abs() < Joules::from_si(1e-18));
        assert!(e.activate() <= total);
    }
}
