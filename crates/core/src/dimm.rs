//! DIMM-level assembly: a rank of x-N chips accessed in lockstep behind a
//! 64-bit channel (paper §3.1: "each channel connected to a single-ranked
//! 8 GB DIMM made up of 8 Gb DDR4-3200 devices").

use crate::error::CactiError;
use crate::main_memory::MainMemoryResult;
use crate::spec::{MemoryKind, MemorySpec};
use cactid_units::{Joules, Seconds, Watts};

/// A DIMM description: how chips populate a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DimmConfig {
    /// Channel data width \[bits\] (64 for DDR).
    pub channel_bits: u32,
    /// Ranks on the DIMM.
    pub ranks: u32,
    /// Interface data rate [MT/s] — used for burst-time and bandwidth.
    pub data_rate_mts: u32,
}

impl Default for DimmConfig {
    fn default() -> Self {
        // The study's DDR4-3200 single-ranked DIMM.
        DimmConfig {
            channel_bits: 64,
            ranks: 1,
            data_rate_mts: 3200,
        }
    }
}

/// DIMM-level results derived from a chip-level solution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DimmResult {
    /// Chips per rank (channel width / chip IO width).
    pub chips_per_rank: u32,
    /// Total chips on the DIMM.
    pub total_chips: u32,
    /// DIMM capacity \[bytes\].
    pub capacity_bytes: u64,
    /// Energy to read one 64-byte line (rank ACT + RD across all chips,
    /// closed-page).
    pub line_read_energy: Joules,
    /// Energy to write one 64-byte line.
    pub line_write_energy: Joules,
    /// DIMM standby power.
    pub standby_power: Watts,
    /// DIMM refresh power.
    pub refresh_power: Watts,
    /// Peak channel bandwidth [bytes/s].
    pub peak_bandwidth: f64,
    /// Time to burst one 64-byte line on the channel.
    pub t_burst: Seconds,
}

/// Assembles DIMM-level numbers from a main-memory chip solution.
///
/// # Errors
///
/// [`CactiError::InvalidSpec`] if `spec` is not a main-memory spec or the
/// chip IO width does not divide the channel width.
pub fn assemble(
    spec: &MemorySpec,
    chip: &MainMemoryResult,
    dimm: DimmConfig,
) -> Result<DimmResult, CactiError> {
    let MemoryKind::MainMemory { io_bits, .. } = spec.kind else {
        return Err(CactiError::InvalidSpec(
            "DIMM assembly requires a main-memory spec".to_string(),
        ));
    };
    if io_bits == 0 || !dimm.channel_bits.is_multiple_of(io_bits) {
        return Err(CactiError::InvalidSpec(format!(
            "chip IO width x{io_bits} must divide the {}-bit channel",
            dimm.channel_bits
        )));
    }
    let chips_per_rank = dimm.channel_bits / io_bits;
    let total_chips = chips_per_rank * dimm.ranks;
    let e = &chip.energies;
    let n = f64::from(chips_per_rank);
    let peak_bandwidth = f64::from(dimm.data_rate_mts) * 1e6 * (f64::from(dimm.channel_bits) / 8.0);
    Ok(DimmResult {
        chips_per_rank,
        total_chips,
        capacity_bytes: spec.capacity_bytes * u64::from(total_chips),
        line_read_energy: n * (e.activate + e.read),
        line_write_energy: n * (e.activate + e.write),
        standby_power: f64::from(total_chips) * e.standby_power,
        refresh_power: f64::from(total_chips) * e.refresh_power,
        peak_bandwidth,
        t_burst: Seconds::from_si(64.0 / peak_bandwidth),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::optimize;
    use cactid_tech::{CellTechnology, TechNode};

    fn chip_spec() -> MemorySpec {
        MemorySpec::builder()
            .capacity_bytes(1 << 30) // 8 Gb chip
            .block_bytes(8)
            .banks(8)
            .cell_tech(CellTechnology::CommDram)
            .node(TechNode::N32)
            .kind(MemoryKind::MainMemory {
                io_bits: 8,
                burst_length: 8,
                prefetch: 8,
                page_bits: 8 << 10,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn study_dimm_is_8gb_of_eight_chips() {
        let spec = chip_spec();
        let sol = optimize(&spec).unwrap();
        let d = assemble(
            &spec,
            sol.main_memory.as_ref().unwrap(),
            DimmConfig::default(),
        )
        .unwrap();
        assert_eq!(d.chips_per_rank, 8);
        assert_eq!(d.total_chips, 8);
        assert_eq!(d.capacity_bytes, 8 << 30);
        // DDR4-3200 on 64 bits: 25.6 GB/s, 2.5 ns per 64 B line.
        assert!((d.peak_bandwidth - 25.6e9).abs() / 25.6e9 < 1e-9);
        assert!((d.t_burst - Seconds::from_si(2.5e-9)).abs() < Seconds::from_si(1e-12));
        // Rank line-read energy: ~8× the chip's ACT+RD (paper Table 3's
        // 14.2 nJ per cache line is this quantity).
        assert!(d.line_read_energy > Joules::nj(5.0) && d.line_read_energy < Joules::nj(20.0));
        assert!(d.line_write_energy > d.line_read_energy * 0.9);
        assert!(d.standby_power > Watts::ZERO && d.refresh_power > Watts::ZERO);
    }

    #[test]
    fn x4_chips_double_the_population() {
        let mut spec = chip_spec();
        spec.kind = MemoryKind::MainMemory {
            io_bits: 4,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        };
        let sol = optimize(&spec).unwrap();
        let d = assemble(
            &spec,
            sol.main_memory.as_ref().unwrap(),
            DimmConfig::default(),
        )
        .unwrap();
        assert_eq!(d.chips_per_rank, 16);
        assert_eq!(d.capacity_bytes, 16 << 30);
    }

    #[test]
    fn rejects_odd_io_width() {
        let mut spec = chip_spec();
        spec.kind = MemoryKind::MainMemory {
            io_bits: 32,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        };
        // 64 % 32 == 0 is fine; use a DIMM with a 48-bit channel to force
        // the mismatch.
        let sol = optimize(&spec).unwrap();
        let dimm = DimmConfig {
            channel_bits: 48,
            ..DimmConfig::default()
        };
        let err = assemble(&spec, sol.main_memory.as_ref().unwrap(), dimm).unwrap_err();
        assert!(err.to_string().contains("divide"), "{err}");
    }
}
