//! Error types for the CACTI-D core model.

use std::error::Error;
use std::fmt;

/// Errors returned by specification validation and the solver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CactiError {
    /// The memory specification is internally inconsistent (message says
    /// which constraint failed).
    InvalidSpec(String),
    /// The organization sweep found no feasible solution for the spec.
    NoFeasibleSolution,
    /// Every feasible candidate was rejected by the diagnostics engine
    /// (an `Error`-severity lint rule fired on each one); carries the
    /// number of candidates rejected.
    LintRejected(usize),
}

impl fmt::Display for CactiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CactiError::InvalidSpec(msg) => write!(f, "invalid memory specification: {msg}"),
            CactiError::NoFeasibleSolution => {
                f.write_str("no feasible array organization for this specification")
            }
            CactiError::LintRejected(n) => write!(
                f,
                "all {n} feasible candidate(s) were rejected by the diagnostics engine"
            ),
        }
    }
}

impl Error for CactiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = CactiError::InvalidSpec("capacity must be a power of two".into());
        let s = e.to_string();
        assert!(s.starts_with("invalid memory specification"));
        assert!(s.contains("capacity"));
        assert_eq!(
            CactiError::NoFeasibleSolution.to_string(),
            "no feasible array organization for this specification"
        );
    }
}
