//! # cactid-core — the CACTI-D memory model
//!
//! Reproduction of CACTI-D (Thoziyoor, Ahn, Monchiero, Brockman, Jouppi —
//! *A Comprehensive Memory Modeling Tool and its Application to the Design
//! and Analysis of Future Memory Hierarchies*, ISCA 2008).
//!
//! Given a [`MemorySpec`] — capacity, block size, associativity, banks,
//! cell technology (SRAM / LP-DRAM / COMM-DRAM), technology node and
//! optimization knobs — the solver sweeps array organizations
//! ([`org::OrgParams`]), evaluates each with circuit-level models
//! ([`mod@array`]), and selects a winner using the paper's staged optimization
//! (§2.4). Caches get a tag array and access-mode-aware assembly; main
//! memory gets the chip-level DRAM command model of §2.1/§2.3.5 (tRCD, CAS
//! latency, tRC, tRRD, ACTIVATE/READ/WRITE energies, refresh power).
//!
//! # Quickstart
//!
//! ```
//! use cactid_core::{optimize, MemorySpec, MemoryKind, AccessMode};
//! use cactid_tech::{CellTechnology, TechNode};
//!
//! # fn main() -> Result<(), cactid_core::CactiError> {
//! // A 1 MB 8-way SRAM L2 at 32 nm.
//! let spec = MemorySpec::builder()
//!     .capacity_bytes(1 << 20)
//!     .block_bytes(64)
//!     .associativity(8)
//!     .banks(1)
//!     .cell_tech(CellTechnology::Sram)
//!     .node(TechNode::N32)
//!     .kind(MemoryKind::Cache { access_mode: AccessMode::Normal })
//!     .build()?;
//! let sol = optimize(&spec)?;
//! println!(
//!     "access {:.2} ns, area {:.2} mm², read {:.2} nJ",
//!     sol.access_ns(), sol.area_mm2(), sol.read_energy_nj(),
//! );
//! # Ok(())
//! # }
//! ```

pub mod array;
pub mod dimm;
pub mod error;
pub mod lint;
pub mod main_memory;
pub mod org;
pub mod solution;
pub mod spec;
pub mod tag;

mod optimizer;
pub mod par;

pub use array::{CertifiedBounds, EvalMemo, PrescreenFailure};
pub use dimm::{DimmConfig, DimmResult};
pub use error::CactiError;
pub use lint::{Diagnostic, Location, Report, Severity, SolutionLinter};
pub use main_memory::{DramEnergies, DramTiming, MainMemoryResult};
pub use optimizer::{
    optimize, optimize_with, select, solve, solve_with, solve_with_stats,
    solve_with_stats_certified, solve_with_stats_parallel, solve_with_stats_reference,
    static_screen, static_screen_certified, ScreenHistogram, ScreenVerdict, SolveOutcome,
    SolveStats, StaticScreen, PARALLEL_SERIAL_THRESHOLD,
};
pub use org::OrgParams;
pub use solution::Solution;
pub use spec::{AccessMode, MemoryKind, MemorySpec, MemorySpecBuilder, OptimizationOptions};

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{CellTechnology, TechNode};
    use cactid_units::Watts;

    #[test]
    fn shared_types_are_send_and_sync() {
        // Long-lived services hand these across worker threads; a field
        // change that silently drops Send/Sync must fail here, not at a
        // distant spawn site.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MemorySpec>();
        assert_send_sync::<Solution>();
        assert_send_sync::<CactiError>();
        assert_send_sync::<SolveStats>();
        assert_send_sync::<OptimizationOptions>();
    }

    #[test]
    fn concurrent_solves_of_one_spec_agree_bitwise() {
        // Eight threads race the same spec against the resident technology
        // tables; every winner must be identical to the single-threaded
        // answer (solves are pure given the spec).
        let spec = MemorySpec::builder()
            .capacity_bytes(256 << 10)
            .block_bytes(64)
            .associativity(8)
            .banks(1)
            .cell_tech(CellTechnology::Sram)
            .node(TechNode::N32)
            .kind(MemoryKind::Cache {
                access_mode: AccessMode::Normal,
            })
            .build()
            .unwrap();
        let reference = optimize(&spec).unwrap();
        let winners = par::parallel_map(8, 8, |_| optimize(&spec).unwrap());
        for w in winners {
            assert_eq!(w, reference);
        }
    }

    #[test]
    fn three_technologies_rank_as_the_paper_says() {
        // Same 8 MB cache in all three technologies at 32 nm: SRAM fastest
        // and biggest; COMM-DRAM slowest, smallest and least leaky
        // (Table 3 orderings).
        let mk = |cell| {
            let spec = MemorySpec::builder()
                .capacity_bytes(8 << 20)
                .block_bytes(64)
                .associativity(8)
                .banks(1)
                .cell_tech(cell)
                .node(TechNode::N32)
                .kind(MemoryKind::Cache {
                    access_mode: AccessMode::Normal,
                })
                .build()
                .unwrap();
            optimize(&spec).unwrap()
        };
        let sram = mk(CellTechnology::Sram);
        let lp = mk(CellTechnology::LpDram);
        let comm = mk(CellTechnology::CommDram);

        // SRAM has the fastest random cycle (no destructive readout); the
        // DRAMs pay writeback+restore, COMM-DRAM most of all.
        assert!(sram.random_cycle < lp.random_cycle);
        assert!(lp.random_cycle < comm.random_cycle);
        // COMM-DRAM is by far the slowest to access (LSTP periphery).
        assert!(comm.access_time > 1.5 * lp.access_time);
        // Density: SRAM (146 F²) ≫ LP-DRAM (30 F²) > COMM-DRAM (6 F²).
        assert!(sram.area > lp.area && lp.area > comm.area);
        // Leakage orderings from Table 3.
        assert!(comm.leakage_power < lp.leakage_power / 10.0);
        assert!(sram.leakage_power > lp.leakage_power);
        assert!(sram.refresh_power == Watts::ZERO);
        assert!(lp.refresh_power > comm.refresh_power, "short LP retention");
    }
}
