//! Structured diagnostic records for the static-validation subsystem.
//!
//! This module holds only the *record types* — [`Diagnostic`], [`Severity`],
//! [`Location`], [`Report`] — and the [`SolutionLinter`] hook through which
//! the optimizer consults an external rule engine. The rules themselves
//! (codes `CD0001`–`CD0022`) live in the `cactid-analyze` crate, which
//! depends on this one; keeping the records here lets the optimizer reject
//! candidates that violate Error-severity invariants without a dependency
//! cycle.

use std::fmt;

use crate::solution::Solution;
use crate::spec::MemorySpec;

/// How serious a diagnostic is.
///
/// `Error` means the object violates a model invariant and must not be used
/// (the optimizer drops such candidates); `Warn` flags suspicious but legal
/// configurations; `Info` is advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory note; never affects exit status or solution acceptance.
    Info,
    /// Suspicious but legal; rejected only under `--deny-warnings`.
    Warn,
    /// Invariant violation; the object is rejected.
    Error,
}

impl Severity {
    /// Every severity, from least to most serious.
    pub const ALL: &'static [Severity] = &[Severity::Info, Severity::Warn, Severity::Error];

    /// Stable lowercase name used by the renderers and the JSON
    /// diagnostics schema: `"info"`, `"warning"`, `"error"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warning",
            Severity::Error => "error",
        }
    }

    /// Parses the stable name back; the exact inverse of [`Self::as_str`].
    pub fn parse_str(s: &str) -> Option<Severity> {
        Severity::ALL.iter().copied().find(|v| v.as_str() == s)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Which model object a diagnostic points into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LintObject {
    /// The user-supplied [`MemorySpec`].
    Spec,
    /// The resolved Table-1 cell parameters for the spec's technology.
    Cell,
    /// An array organization (`Ndwl`/`Ndbl`/`Nspd`/mux degrees).
    Organization,
    /// An assembled [`Solution`].
    Solution,
    /// The DRAM chip-level result inside a main-memory solution.
    MainMemory,
    /// A completed batch run (a JSONL record set) analyzed as a whole by
    /// the cross-record `CD01xx` rules.
    Run,
}

impl LintObject {
    /// Every object kind, in pipeline order.
    pub const ALL: &'static [LintObject] = &[
        LintObject::Spec,
        LintObject::Cell,
        LintObject::Organization,
        LintObject::Solution,
        LintObject::MainMemory,
        LintObject::Run,
    ];

    /// Stable dotted path prefix used by the renderers and the JSON
    /// diagnostics schema.
    pub fn as_str(self) -> &'static str {
        match self {
            LintObject::Spec => "spec",
            LintObject::Cell => "technology.cell",
            LintObject::Organization => "organization",
            LintObject::Solution => "solution",
            LintObject::MainMemory => "solution.main_memory",
            LintObject::Run => "run",
        }
    }

    /// Parses the stable name back; the exact inverse of [`Self::as_str`].
    pub fn parse_str(s: &str) -> Option<LintObject> {
        LintObject::ALL.iter().copied().find(|v| v.as_str() == s)
    }
}

impl fmt::Display for LintObject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The offending field, named as `object.field` (e.g.
/// `spec.capacity_bytes`, `solution.main_memory.timing.t_rcd`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// The model object the field belongs to.
    pub object: LintObject,
    /// Field path within the object.
    pub field: &'static str,
}

impl Location {
    /// Location of a [`MemorySpec`] field.
    pub fn spec(field: &'static str) -> Self {
        Location {
            object: LintObject::Spec,
            field,
        }
    }

    /// Location of a resolved cell-parameter field.
    pub fn cell(field: &'static str) -> Self {
        Location {
            object: LintObject::Cell,
            field,
        }
    }

    /// Location of an organization field.
    pub fn org(field: &'static str) -> Self {
        Location {
            object: LintObject::Organization,
            field,
        }
    }

    /// Location of a solution field.
    pub fn solution(field: &'static str) -> Self {
        Location {
            object: LintObject::Solution,
            field,
        }
    }

    /// Location of a field of the main-memory chip result.
    pub fn main_memory(field: &'static str) -> Self {
        Location {
            object: LintObject::MainMemory,
            field,
        }
    }

    /// Location of a cross-record property of a completed run.
    pub fn run(field: &'static str) -> Self {
        Location {
            object: LintObject::Run,
            field,
        }
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.object, self.field)
    }
}

/// One finding from the rule engine.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable rule code, `CD0001`..`CD0022`.
    pub code: &'static str,
    /// How serious the finding is.
    pub severity: Severity,
    /// The offending field.
    pub location: Location,
    /// Human-readable explanation with the actual numbers involved.
    pub message: String,
    /// Machine-readable suggested fix: `(field-path, suggested value)`.
    /// `None` when no single-field fix exists.
    pub suggestion: Option<Suggestion>,
}

/// A machine-readable suggested fix: set `field` to `value`.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// The field to change, as an `object.field` path.
    pub field: Location,
    /// Replacement value, rendered as it would appear in the spec/CLI.
    pub value: String,
}

impl fmt::Display for Suggestion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "set {} = {}", self.field, self.value)
    }
}

impl Diagnostic {
    /// Builds an `Error` diagnostic.
    pub fn error(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            code,
            severity: Severity::Error,
            location,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Builds a `Warn` diagnostic.
    pub fn warn(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warn,
            ..Diagnostic::error(code, location, message)
        }
    }

    /// Builds an `Info` diagnostic.
    pub fn info(code: &'static str, location: Location, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Info,
            ..Diagnostic::error(code, location, message)
        }
    }

    /// Attaches a machine-readable suggested fix.
    #[must_use]
    pub fn with_suggestion(mut self, field: Location, value: impl Into<String>) -> Self {
        self.suggestion = Some(Suggestion {
            field,
            value: value.into(),
        });
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {} (at {})",
            self.severity, self.code, self.message, self.location
        )
    }
}

/// An ordered collection of diagnostics from one lint pass.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report.
    pub fn new() -> Self {
        Report::default()
    }

    /// Adds one diagnostic.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Number of `Error`-severity diagnostics.
    pub fn error_count(&self) -> usize {
        self.count(Severity::Error)
    }

    /// Number of `Warn`-severity diagnostics.
    pub fn warn_count(&self) -> usize {
        self.count(Severity::Warn)
    }

    fn count(&self, sev: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == sev)
            .count()
    }

    /// `true` when the report holds no diagnostics at all.
    pub fn is_empty(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `true` when no `Error`-severity diagnostics are present.
    pub fn is_clean(&self) -> bool {
        self.error_count() == 0
    }

    /// Iterates over the diagnostics in emission order.
    pub fn iter(&self) -> std::slice::Iter<'_, Diagnostic> {
        self.diagnostics.iter()
    }

    /// Consumes the report, returning the diagnostics.
    pub fn into_vec(self) -> Vec<Diagnostic> {
        self.diagnostics
    }

    /// Borrows the diagnostics as a slice.
    pub fn as_slice(&self) -> &[Diagnostic] {
        &self.diagnostics
    }
}

impl<'a> IntoIterator for &'a Report {
    type Item = &'a Diagnostic;
    type IntoIter = std::slice::Iter<'a, Diagnostic>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

impl FromIterator<Diagnostic> for Report {
    fn from_iter<T: IntoIterator<Item = Diagnostic>>(iter: T) -> Self {
        Report {
            diagnostics: iter.into_iter().collect(),
        }
    }
}

impl Extend<Diagnostic> for Report {
    fn extend<T: IntoIterator<Item = Diagnostic>>(&mut self, iter: T) {
        self.diagnostics.extend(iter);
    }
}

/// Hook through which the optimizer consults a rule engine on every
/// assembled candidate.
///
/// Implemented by `cactid_analyze::Analyzer`; the optimizer drops
/// candidates whose diagnostics include an `Error` and attaches the
/// remaining warnings to the returned [`Solution`] (`Solution::warnings`).
pub trait SolutionLinter {
    /// Lints one assembled candidate solution against `spec`.
    fn lint_candidate(&self, spec: &MemorySpec, solution: &Solution) -> Vec<Diagnostic>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_displays() {
        assert!(Severity::Error > Severity::Warn);
        assert!(Severity::Warn > Severity::Info);
        assert_eq!(Severity::Warn.to_string(), "warning");
    }

    #[test]
    fn severity_and_object_names_round_trip() {
        for &sev in Severity::ALL {
            assert_eq!(Severity::parse_str(sev.as_str()), Some(sev));
        }
        assert_eq!(Severity::parse_str("fatal"), None);
        for &obj in LintObject::ALL {
            assert_eq!(LintObject::parse_str(obj.as_str()), Some(obj));
            assert_eq!(obj.to_string(), obj.as_str());
        }
        assert_eq!(LintObject::parse_str("chip"), None);
        assert_eq!(Location::run("access_ns").to_string(), "run.access_ns");
    }

    #[test]
    fn location_paths_render() {
        assert_eq!(
            Location::spec("capacity_bytes").to_string(),
            "spec.capacity_bytes"
        );
        assert_eq!(
            Location::main_memory("timing.t_rcd").to_string(),
            "solution.main_memory.timing.t_rcd"
        );
    }

    #[test]
    fn diagnostic_builders_and_display() {
        let d = Diagnostic::error(
            "CD0001",
            Location::spec("capacity_bytes"),
            "not a power of two",
        )
        .with_suggestion(Location::spec("capacity_bytes"), "1048576");
        assert_eq!(d.severity, Severity::Error);
        assert_eq!(d.code, "CD0001");
        let s = d.to_string();
        assert!(s.contains("error[CD0001]"));
        assert!(s.contains("spec.capacity_bytes"));
        assert_eq!(
            d.suggestion.unwrap().to_string(),
            "set spec.capacity_bytes = 1048576"
        );
    }

    #[test]
    fn report_counts_and_cleanliness() {
        let mut r = Report::new();
        assert!(r.is_clean() && r.is_empty());
        r.push(Diagnostic::warn(
            "CD0002",
            Location::spec("block_bytes"),
            "odd size",
        ));
        assert!(r.is_clean() && !r.is_empty());
        r.push(Diagnostic::error(
            "CD0003",
            Location::spec("n_banks"),
            "zero banks",
        ));
        assert!(!r.is_clean());
        assert_eq!(r.error_count(), 1);
        assert_eq!(r.warn_count(), 1);
        assert_eq!(r.iter().count(), 2);
    }
}
