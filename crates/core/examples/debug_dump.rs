//! Calibration dump: prints model outputs for the paper's key
//! configurations next to the published targets (Tables 2 and 3).
//! Used during development; not part of the test suite.

use cactid_core::{
    optimize, solve, AccessMode, MemoryKind, MemorySpec, OptimizationOptions, Solution,
};
use cactid_tech::{CellTechnology, TechNode};

fn cache(cap: u64, assoc: u32, banks: u32, cell: CellTechnology, node: TechNode) -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(cap)
        .block_bytes(64)
        .associativity(assoc)
        .banks(banks)
        .cell_tech(cell)
        .node(node)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .optimization(OptimizationOptions {
            sleep_transistors: cell == CellTechnology::Sram,
            ..Default::default()
        })
        .build()
        .unwrap()
}

fn row(name: &str, s: &Solution) {
    println!(
        "{name:22} acc {:7.2}ns cyc {:6.2}ns int {:6.2}ns area {:8.3}mm2 eff {:5.1}% Erd {:7.3}nJ leak {:9.4}W refr {:9.5}W org(ndwl={},ndbl={},nspd={},blmux={},samux={})",
        s.access_ns(),
        s.random_cycle * 1e9,
        s.interleave_cycle * 1e9,
        s.area_mm2(),
        s.area_efficiency * 100.0,
        s.read_energy_nj(),
        s.leakage_power,
        s.refresh_power,
        s.org.ndwl,
        s.org.ndbl,
        s.org.nspd,
        s.org.deg_bl_mux,
        s.org.deg_sa_mux,
    );
    let d = &s.data.delay;
    println!(
        "   delay: htin {:.2} dec {:.2} bl {:.2} sns {:.2} mux {:.2} htout {:.2} pre {:.2} rst {:.2} (ns)",
        d.htree_in * 1e9,
        d.decode * 1e9,
        d.bitline * 1e9,
        d.sense * 1e9,
        d.mux * 1e9,
        d.htree_out * 1e9,
        d.precharge * 1e9,
        d.restore * 1e9
    );
    let e = &s.data.energy;
    println!(
        "   energy: htin {:.3} dec {:.3} bl {:.3} sns {:.3} col {:.3} (nJ) | tag acc {:.2}ns E {:.3}nJ",
        e.htree_in * 1e9,
        e.decode * 1e9,
        e.bitline * 1e9,
        e.sense * 1e9,
        e.column * 1e9,
        s.tag.as_ref().map_or(0.0, |t| t.access_time().value() * 1e9),
        s.tag.as_ref().map_or(0.0, |t| t.read_energy().value() * 1e9),
    );
}

fn main() {
    println!("== Table 3 targets @32nm, 2GHz ==");
    println!("L1 32KB: acc 1.0ns cyc 0.5 area 0.17 eff 25% E 0.07nJ leak 0.009W");
    row(
        "L1 32KB SRAM",
        &optimize(&cache(32 << 10, 8, 1, CellTechnology::Sram, TechNode::N32)).unwrap(),
    );
    println!("L2 1MB: acc 1.5ns cyc 0.5 area 2.0 eff 67% E 0.27nJ leak 0.157W");
    row(
        "L2 1MB SRAM",
        &optimize(&cache(1 << 20, 8, 1, CellTechnology::Sram, TechNode::N32)).unwrap(),
    );
    println!("L3 24MB SRAM (8bk): acc 2.5ns cyc 0.5 area 6.2/bank eff 64% E 0.54nJ leak 3.6W");
    row(
        "L3 24MB SRAM",
        &optimize(&cache(24 << 20, 12, 8, CellTechnology::Sram, TechNode::N32)).unwrap(),
    );
    println!("L3 48MB LP ED: acc 2.5ns cyc 0.5 area 5.7/bank eff 36% E 0.54nJ leak 2.0W refr 0.3W");
    row(
        "L3 48MB LP-DRAM",
        &optimize(&cache(
            48 << 20,
            12,
            8,
            CellTechnology::LpDram,
            TechNode::N32,
        ))
        .unwrap(),
    );
    println!("L3 72MB LP C: acc 3.5ns cyc 1.5 area 6.0/bank eff 51% E 0.59nJ leak 2.1W refr 0.12W");
    row(
        "L3 72MB LP-DRAM",
        &optimize(&cache(
            72 << 20,
            18,
            8,
            CellTechnology::LpDram,
            TechNode::N32,
        ))
        .unwrap(),
    );
    println!(
        "L3 96MB CM ED: acc 8ns cyc 2.5 area 4.8/bank eff 30% E 0.6nJ leak 0.015W refr 0.00018W"
    );
    row(
        "L3 96MB COMM",
        &optimize(&cache(
            96 << 20,
            12,
            8,
            CellTechnology::CommDram,
            TechNode::N32,
        ))
        .unwrap(),
    );
    println!(
        "L3 192MB CM C: acc 10.5ns cyc 5 area 6.2/bank eff 47% E 0.92nJ leak 0.026W refr 0.001W"
    );
    row(
        "L3 192MB COMM",
        &optimize(&cache(
            192 << 20,
            24,
            8,
            CellTechnology::CommDram,
            TechNode::N32,
        ))
        .unwrap(),
    );

    println!("\n== Table 2: Micron 1Gb DDR3 @78nm x8 BL8 page 8Kb ==");
    println!("targets: eff 52.5% tRCD 13.7 CL 12.3 tRC 48.2ns ACT 2.3nJ RD 1.1 WR 1.2 refr 4.5mW");
    let micron = MemorySpec::builder()
        .capacity_bytes(1 << 27)
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(TechNode::N78)
        .kind(MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8192,
        })
        .build()
        .unwrap();
    {
        let s = optimize(&micron).unwrap();
        let mm = s.main_memory.as_ref().unwrap();
        println!(
            "model: eff {:5.1}% tRCD {:5.2} CL {:5.2} tRAS {:5.2} tRP {:5.2} tRC {:5.2} tRRD {:5.2}ns ACT {:6.3}nJ RD {:6.3} WR {:6.3} refr {:7.3}mW standby {:6.1}mW area {:6.1}mm2",
            mm.area_efficiency * 100.0,
            mm.timing.t_rcd * 1e9,
            mm.timing.cas_latency * 1e9,
            mm.timing.t_ras * 1e9,
            mm.timing.t_rp * 1e9,
            mm.timing.t_rc * 1e9,
            mm.timing.t_rrd * 1e9,
            mm.energies.activate * 1e9,
            mm.energies.read * 1e9,
            mm.energies.write * 1e9,
            mm.energies.refresh_power * 1e3,
            mm.energies.standby_power * 1e3,
            mm.chip_area * 1e6,
        );
        row("  (bank view)", &s);
    }

    println!("\n== 8Gb DDR4-like @32nm (Table 3 main memory) ==");
    println!("targets: acc(tRCD+CL) 30.5ns tRC 49ns area 115mm2 eff 46% standby 0.091W refr 0.009W E 14.2nJ(x8 chips)");
    let ddr4 = MemorySpec::builder()
        .capacity_bytes(1 << 30)
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(TechNode::N32)
        .kind(MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8192,
        })
        .build()
        .unwrap();
    let s = optimize(&ddr4).unwrap();
    let mm = s.main_memory.as_ref().unwrap();
    println!(
        "model: eff {:5.1}% tRCD {:5.2} CL {:5.2} tRC {:5.2} tRRD {:5.2}ns ACT {:6.3}nJ RD {:6.3}nJ refr {:7.3}mW standby {:6.1}mW area {:6.1}mm2",
        mm.area_efficiency * 100.0,
        mm.timing.t_rcd * 1e9,
        mm.timing.cas_latency * 1e9,
        mm.timing.t_rc * 1e9,
        mm.timing.t_rrd * 1e9,
        mm.energies.activate * 1e9,
        mm.energies.read * 1e9,
        mm.energies.refresh_power * 1e3,
        mm.energies.standby_power * 1e3,
        mm.chip_area * 1e6,
    );

    println!("\n== solution counts ==");
    for (n, spec) in [
        (
            "L2",
            cache(1 << 20, 8, 1, CellTechnology::Sram, TechNode::N32),
        ),
        ("micron", micron.clone()),
    ] {
        println!("{n}: {} candidates", solve(&spec).map_or(0, |v| v.len()));
    }
}
