//! The staged-pipeline determinism contract (DESIGN.md §14): the pruned
//! pipeline, the debug-only unpruned reference, and the parallel fan-out
//! must all return exactly the same solution set in the same order, and
//! the pre-screen must account for precisely the candidates the full
//! models would have rejected.

use cactid_core::{
    array, org, solve_with_stats, solve_with_stats_certified, solve_with_stats_parallel,
    solve_with_stats_reference, AccessMode, MemoryKind, MemorySpec, Solution,
    PARALLEL_SERIAL_THRESHOLD,
};
use cactid_tech::{CellTechnology, TechNode, Technology};

fn sram_l2() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(1 << 20)
        .block_bytes(64)
        .associativity(8)
        .banks(1)
        .cell_tech(CellTechnology::Sram)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .build()
        .unwrap()
}

fn lp_dram_l3() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(8 << 20)
        .block_bytes(64)
        .associativity(16)
        .banks(1)
        .cell_tech(CellTechnology::LpDram)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .build()
        .unwrap()
}

/// The `ci.sh` COMM-DRAM smoke spec (128 MB x8 BL8 chip, 8 Kb page, 78 nm).
fn comm_dram_smoke() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(1 << 27)
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(TechNode::N78)
        .kind(MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        })
        .build()
        .unwrap()
}

fn assert_identical_sets(label: &str, a: &[Solution], b: &[Solution]) {
    assert_eq!(a.len(), b.len(), "{label}: solution counts differ");
    for (x, y) in a.iter().zip(b) {
        assert_eq!(x, y, "{label}: solutions diverge at org {:?}", x.org);
    }
}

#[test]
fn staged_solve_equals_the_unpruned_reference() {
    for (label, spec) in [
        ("sram-l2", sram_l2()),
        ("lp-dram-l3", lp_dram_l3()),
        ("comm-dram", comm_dram_smoke()),
    ] {
        let staged = solve_with_stats(&spec, None);
        let reference = solve_with_stats_reference(&spec, None);
        assert_identical_sets(
            label,
            staged.result.as_ref().unwrap(),
            reference.result.as_ref().unwrap(),
        );
        assert_eq!(
            staged.stats.orgs_enumerated, reference.stats.orgs_enumerated,
            "{label}: enumeration counts differ"
        );
        assert_eq!(
            staged.stats.feasible, reference.stats.feasible,
            "{label}: feasible counts differ"
        );
        // The pre-screen is exact: what it prunes by bound is precisely
        // what the reference pipeline prunes electrically, and nothing
        // slips past it into the full models.
        assert_eq!(
            staged.stats.bound_pruned, reference.stats.electrical_pruned,
            "{label}: the pre-screen does not account for the model rejections"
        );
        assert_eq!(staged.stats.electrical_pruned, 0, "{label}");
        assert_eq!(reference.stats.bound_pruned, 0, "{label}");
    }
}

#[test]
fn parallel_solve_equals_serial_at_every_thread_count() {
    for (label, spec) in [("sram-l2", sram_l2()), ("comm-dram", comm_dram_smoke())] {
        let serial = solve_with_stats(&spec, None);
        for threads in [1, 2, 8] {
            let par = solve_with_stats_parallel(&spec, None, threads);
            assert_identical_sets(
                label,
                serial.result.as_ref().unwrap(),
                par.result.as_ref().unwrap(),
            );
            assert_eq!(
                serial.stats, par.stats,
                "{label}: stats diverge at {threads} threads"
            );
        }
    }
}

/// The solve-throughput bench's COMM-DRAM DIMM spec (1 GB chip): its
/// 70-candidate sweep sits under [`PARALLEL_SERIAL_THRESHOLD`], so the
/// parallel entry point must take the inline serial path.
fn comm_dram_dimm() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(1 << 30)
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(TechNode::N78)
        .kind(MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        })
        .build()
        .unwrap()
}

/// The certified screen with *proved* bounds returns exactly what the
/// exact staged screen returns — same solutions, same stats, same
/// rejection accounting. This is the wiring contract for `--certified`:
/// the proof only licenses skipping closed forms, never changing answers.
#[test]
fn certified_solve_equals_the_staged_solve_with_proved_bounds() {
    for (label, spec) in [
        ("sram-l2", sram_l2()),
        ("lp-dram-l3", lp_dram_l3()),
        ("comm-dram", comm_dram_smoke()),
    ] {
        let bounds = cactid_prove::certified_bounds(spec.node, spec.cell_tech);
        let staged = solve_with_stats(&spec, None);
        let certified = solve_with_stats_certified(&spec, None, &bounds);
        assert_identical_sets(
            label,
            staged.result.as_ref().unwrap(),
            certified.result.as_ref().unwrap(),
        );
        assert_eq!(
            staged.stats, certified.stats,
            "{label}: certified stats diverge"
        );
    }
}

/// Small sweeps take the serial path inside the parallel entry point, so
/// the 0.62x COMM-DRAM DIMM regression the solve bench recorded cannot
/// recur: below the threshold the two entry points are the same code.
#[test]
fn comm_dram_dimm_sweep_falls_back_to_serial() {
    let spec = comm_dram_dimm();
    let serial = solve_with_stats(&spec, None);
    assert!(
        serial.stats.orgs_enumerated < PARALLEL_SERIAL_THRESHOLD,
        "the DIMM sweep grew past the serial-fallback threshold: {} >= {}",
        serial.stats.orgs_enumerated,
        PARALLEL_SERIAL_THRESHOLD
    );
    for threads in [0, 2, 8] {
        let par = solve_with_stats_parallel(&spec, None, threads);
        assert_identical_sets(
            "comm-dram-dimm",
            serial.result.as_ref().unwrap(),
            par.result.as_ref().unwrap(),
        );
        assert_eq!(serial.stats, par.stats, "threads={threads}");
    }
}

/// A 192 KB 3-way SRAM cache: the odd associativity drives the sweep
/// through non-power-of-two stripe widths and the `nspd = 0.25` corner,
/// where rows/cols flip at different enumeration steps than on the
/// power-of-two bench specs.
fn sram_odd_assoc() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(3 << 16)
        .block_bytes(64)
        .associativity(3)
        .banks(1)
        .cell_tech(CellTechnology::Sram)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .build()
        .unwrap()
}

/// Walks every enumerated organization of each spec in sweep order — the
/// order where exactly one axis changes per step, so every memo slice gets
/// exercised at its invalidation boundary — and asserts the memo-carrying
/// evaluation is bitwise identical to a from-scratch evaluation of the
/// same candidate, on both the feasible and the infeasible side.
#[test]
fn incremental_evaluation_matches_from_scratch_at_every_axis_boundary() {
    for (label, spec) in [
        ("sram-l2", sram_l2()),
        ("sram-192k-3way", sram_odd_assoc()),
        ("lp-dram-l3", lp_dram_l3()),
    ] {
        let tech = Technology::cached(spec.node);
        let cell = tech.cell(spec.cell_tech);
        let periph = tech.peripheral_device(spec.cell_tech);
        let mut memo = array::EvalMemo::new();
        let (mut feasible, mut pruned) = (0u64, 0u64);
        for o in org::enumerate_lazy(&spec) {
            let input = array::ArrayInput {
                rows: o.rows(&spec),
                cols: o.cols(&spec),
                ndwl: o.ndwl,
                ndbl: o.ndbl,
                deg_bl_mux: o.deg_bl_mux,
                deg_sa_mux: o.deg_sa_mux,
                output_bits: spec.output_bits(),
                address_bits: spec.address_bits,
                cell,
                periph,
                repeater_relax: spec.opt.repeater_relax,
                sleep_transistors: spec.opt.sleep_transistors,
                sense_fraction: spec.sense_fraction(),
            };
            let fresh = array::evaluate(tech, &input);
            let incremental = array::evaluate_incremental(tech, &input, &mut memo);
            match (fresh, incremental) {
                (Ok(a), Ok(b)) => {
                    assert_eq!(a, b, "{label}: divergence at org {o:?}");
                    feasible += 1;
                }
                (Err(_), Err(_)) => pruned += 1,
                (a, b) => panic!("{label}: feasibility flipped at org {o:?}: {a:?} vs {b:?}"),
            }
        }
        assert!(feasible > 0, "{label}: nothing evaluated");
        assert!(
            memo.reuse_hits() > 0,
            "{label}: the sweep scored no memo reuse ({feasible} feasible, {pruned} pruned)"
        );
    }
}

#[test]
fn bound_pruning_fires_on_the_comm_dram_smoke_spec() {
    let out = solve_with_stats(&comm_dram_smoke(), None);
    assert!(out.result.is_ok());
    assert!(
        out.stats.bound_pruned > 0,
        "the pre-screen stopped firing on the COMM-DRAM smoke spec: {:?}",
        out.stats
    );
    assert!(out.stats.feasible > 0);
}
