//! Builds the six system configurations of the LLC study (paper §3.1, §4.1,
//! Table 3) from live CACTI-D solutions.
//!
//! For each DRAM technology the paper evaluates two solutions: one
//! optimized for capacity (`config C`, best density) and one with smaller
//! mats and better energy/delay (`config ED`). We reproduce that by running
//! the §2.4 staged optimizer with different knob settings. Cache clock
//! ratios follow the paper's rule of at most 6 pipeline stages per cache.

use cactid_circuit::{BlockResult, Crossbar};
use cactid_core::{AccessMode, MemoryKind, MemorySpec, OptimizationOptions, Solution};
use cactid_explore::{optimize_cached_in, SolveCache};
use cactid_tech::{CellTechnology, DeviceType, TechNode, Technology, WireType};
use cactid_units::{Meters, Seconds};
use memsim::config::{
    CacheConfig, DramConfig, L3Config, L3Interface, L3PageTiming, PagePolicy, SetMapping,
    SystemConfig,
};

/// CPU clock of the study (2 GHz, paper §4.1).
pub const CLOCK_HZ: f64 = 2.0e9;
/// Maximum pipeline stages inside any cache (paper §4.1).
pub const MAX_PIPE_STAGES: u64 = 6;
/// Crossbar span at 32 nm, measured from the Niagara2 die photo and scaled
/// (paper §4.1).
pub const XBAR_SIDE_M: Meters = Meters::from_si(3.0e-3);
/// Crossbar datapath width \[bits\].
pub const XBAR_WIDTH_BITS: usize = 128;

/// The six system configurations in the paper's plotting order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcKind {
    /// No L3 at all.
    NoL3,
    /// 24 MB SRAM L3 (12-way).
    Sram24,
    /// 48 MB LP-DRAM L3, energy/delay-optimized mats (12-way).
    LpDramEd48,
    /// 72 MB LP-DRAM L3, capacity-optimized (18-way).
    LpDramC72,
    /// 96 MB COMM-DRAM L3, energy/delay-optimized mats (12-way).
    CmDramEd96,
    /// 192 MB COMM-DRAM L3, capacity-optimized (24-way).
    CmDramC192,
}

impl LlcKind {
    /// All six configurations.
    pub const ALL: &'static [LlcKind] = &[
        LlcKind::NoL3,
        LlcKind::Sram24,
        LlcKind::LpDramEd48,
        LlcKind::LpDramC72,
        LlcKind::CmDramEd96,
        LlcKind::CmDramC192,
    ];

    /// The paper's x-axis label for this configuration.
    pub fn label(self) -> &'static str {
        match self {
            LlcKind::NoL3 => "nol3",
            LlcKind::Sram24 => "sram",
            LlcKind::LpDramEd48 => "lp_dram_ed",
            LlcKind::LpDramC72 => "lp_dram_c",
            LlcKind::CmDramEd96 => "cm_dram_ed",
            LlcKind::CmDramC192 => "cm_dram_c",
        }
    }

    /// (capacity, associativity, cell technology, capacity-optimized?) of
    /// the L3, if any.
    pub fn l3_shape(self) -> Option<(u64, u32, CellTechnology, bool)> {
        match self {
            LlcKind::NoL3 => None,
            LlcKind::Sram24 => Some((24 << 20, 12, CellTechnology::Sram, false)),
            LlcKind::LpDramEd48 => Some((48 << 20, 12, CellTechnology::LpDram, false)),
            LlcKind::LpDramC72 => Some((72 << 20, 18, CellTechnology::LpDram, true)),
            LlcKind::CmDramEd96 => Some((96 << 20, 12, CellTechnology::CommDram, false)),
            LlcKind::CmDramC192 => Some((192 << 20, 24, CellTechnology::CommDram, true)),
        }
    }
}

/// A fully-built study configuration: the memsim system description plus
/// the CACTI-D solutions it was derived from (needed by the power model).
#[derive(Debug, Clone)]
pub struct StudyConfig {
    /// Which of the six configurations this is.
    pub kind: LlcKind,
    /// The simulator configuration.
    pub system: SystemConfig,
    /// CACTI-D solution for the 32 KB L1 (per core; L1I is identical).
    pub l1: Solution,
    /// CACTI-D solution for the 1 MB L2 (per core).
    pub l2: Solution,
    /// CACTI-D solution for one L3 bank, if an L3 is present.
    pub l3: Option<Solution>,
    /// CACTI-D solution for the 8 Gb main-memory chip.
    pub main_memory: Solution,
    /// Per-flit crossbar evaluation (delay/energy/leakage).
    pub xbar: BlockResult,
}

/// The paper's "config ED" optimization knobs: smaller mats, better energy
/// and delay.
pub fn ed_options() -> OptimizationOptions {
    OptimizationOptions {
        max_area_overhead: 0.60,
        max_access_time_overhead: 0.15,
        weight_dynamic: 1.5,
        weight_leakage: 0.3,
        weight_cycle: 2.0,
        weight_interleave: 1.0,
        ..OptimizationOptions::default()
    }
}

/// The paper's "config C" optimization knobs: best density.
pub fn c_options() -> OptimizationOptions {
    OptimizationOptions {
        max_area_overhead: 0.20,
        max_access_time_overhead: 1.0,
        weight_dynamic: 0.5,
        weight_leakage: 1.0,
        weight_cycle: 0.3,
        weight_interleave: 0.3,
        ..OptimizationOptions::default()
    }
}

fn cache_spec(
    capacity: u64,
    assoc: u32,
    banks: u32,
    cell: CellTechnology,
    opt: OptimizationOptions,
) -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(capacity)
        .block_bytes(64)
        .associativity(assoc)
        .banks(banks)
        .cell_tech(cell)
        .node(TechNode::N32)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Normal,
        })
        .optimization(opt)
        .build()
        .unwrap_or_else(|e| panic!("study cache specs are valid: {e}"))
}

/// The study's 8 Gb DDR4-3200-class main-memory chip spec (paper §3.1).
pub fn main_memory_spec() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(1 << 30) // 8 Gb
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(TechNode::N32)
        .kind(MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        })
        .optimization(c_options())
        .build()
        .unwrap_or_else(|e| panic!("the main-memory spec is valid: {e}"))
}

/// Rounds a time to CPU cycles with the paper's pipeline-depth rule: the
/// cache runs at `1/ratio` of the CPU clock where `ratio` is the smallest
/// divisor keeping the pipeline within [`MAX_PIPE_STAGES`]; all its timings
/// quantize to that granularity.
fn quantize(t: Seconds) -> u64 {
    (t.value() * CLOCK_HZ).ceil().max(1.0) as u64
}

fn cache_config(sol: &Solution, capacity: u64, assoc: u32) -> CacheConfig {
    let raw_access = quantize(sol.access_time);
    let ratio = raw_access.div_ceil(MAX_PIPE_STAGES).max(1);
    let access_cycles = raw_access.div_ceil(ratio) * ratio;
    let cycle_cycles = quantize(sol.random_cycle).div_ceil(ratio) * ratio;
    let interleave_cycles = quantize(sol.interleave_cycle).div_ceil(ratio).max(1) * ratio;
    CacheConfig {
        capacity_bytes: capacity,
        line_bytes: 64,
        associativity: assoc,
        access_cycles,
        cycle_cycles,
        interleave_cycles,
        n_subbanks: sol.org.ndbl,
    }
}

/// Derives the page-mode row timing of a DRAM L3 from its solution's delay
/// breakdown (used by the §3.4 interface ablation): tRCD is the row path
/// to sensed data, tCAS the column path, tRP the restore + precharge.
pub fn page_timing_of(sol: &Solution) -> L3PageTiming {
    let d = &sol.data.delay;
    L3PageTiming {
        t_rcd: quantize(d.decode + d.bitline + d.sense),
        t_cas: quantize(d.mux + d.htree_out + d.htree_in),
        t_rp: quantize(d.restore + d.precharge),
    }
}

/// Evaluates the L2↔L3 crossbar once (per-flit).
pub fn crossbar_eval() -> BlockResult {
    let tech = Technology::new(TechNode::N32);
    let dev = tech.device(DeviceType::Hp);
    let wire = tech.wire(WireType::Global);
    Crossbar::new(8, 8, XBAR_WIDTH_BITS, XBAR_SIDE_M).evaluate(&dev, &wire)
}

/// Builds one study configuration (runs the CACTI-D sweeps; ~a second).
pub fn build(kind: LlcKind) -> StudyConfig {
    // The six study configurations share their L1/L2/main-memory specs,
    // and Table 3 builds all six: going through the cactid-explore solve
    // memo makes each distinct spec cost one solve per process.
    let l1_sol = optimize_cached_in(
        SolveCache::global(),
        &cache_spec(
            32 << 10,
            8,
            1,
            CellTechnology::Sram,
            OptimizationOptions::default(),
        ),
    )
    .unwrap_or_else(|e| panic!("the L1 spec solves: {e}"));
    let l2_sol = optimize_cached_in(
        SolveCache::global(),
        &cache_spec(
            1 << 20,
            8,
            1,
            CellTechnology::Sram,
            OptimizationOptions::default(),
        ),
    )
    .unwrap_or_else(|e| panic!("the L2 spec solves: {e}"));
    let mm_sol = optimize_cached_in(SolveCache::global(), &main_memory_spec())
        .unwrap_or_else(|e| panic!("the main-memory spec solves: {e}"));
    let Some(mm) = mm_sol.main_memory.as_ref() else {
        unreachable!("a main-memory solution carries chip-level data")
    };

    let l3_sol = kind.l3_shape().map(|(cap, assoc, cell, cap_opt)| {
        let mut opt = if cap_opt { c_options() } else { ed_options() };
        // The paper models an aggressively leakage-controlled SRAM L3
        // (sleep transistors halving idle-mat leakage, like the 65 nm Xeon).
        opt.sleep_transistors = cell == CellTechnology::Sram;
        optimize_cached_in(SolveCache::global(), &cache_spec(cap, assoc, 8, cell, opt))
            .unwrap_or_else(|e| panic!("the {} L3 spec solves: {e}", kind.label()))
    });

    let xbar = crossbar_eval();
    let xbar_cycles = quantize(xbar.delay).max(1);

    let mut system = SystemConfig::baseline_no_l3();
    system.clock_hz = CLOCK_HZ;
    system.l1 = cache_config(&l1_sol, 32 << 10, 8);
    system.l2 = cache_config(&l2_sol, 1 << 20, 8);
    system.dram = DramConfig {
        channels: 2,
        // DDR4-3200-class devices expose 16 banks (4 bank groups × 4);
        // the model folds bank groups into a flat bank count.
        banks: 16,
        page_bytes: 8 << 10,
        t_rcd: quantize(mm.timing.t_rcd),
        t_cl: quantize(mm.timing.cas_latency),
        t_rp: quantize(mm.timing.t_rp),
        t_rc: quantize(mm.timing.t_rc),
        // tRRD_S at 3200 MT/s is ~3 ns; the chip-level model's
        // power-delivery bound applies per bank group.
        t_rrd: quantize(mm.timing.t_rrd).min(6),
        t_burst: 5, // 64 B over a 64-bit DDR4-3200 channel = 2.5 ns
        // NPB-style streaming hits open rows heavily; the paper (§2.3.4)
        // leaves the policy to the architect — open page is the right
        // choice for these workloads (the closed-page ablation lives in
        // the benches).
        page_policy: PagePolicy::Open,
    };
    system.l3 = l3_sol.as_ref().map(|sol| {
        let Some((cap, assoc, cell, _)) = kind.l3_shape() else {
            unreachable!("an L3 solution implies an L3 shape")
        };
        L3Config {
            bank: cache_config(sol, cap / 8, assoc),
            n_banks: 8,
            xbar_cycles,
            is_dram: cell.is_dram(),
            set_mapping: SetMapping::SetsPerPage,
            interface: L3Interface::SramLike,
            page_timing: cell.is_dram().then(|| page_timing_of(sol)),
        }
    });

    StudyConfig {
        kind,
        system,
        l1: l1_sol,
        l2: l2_sol,
        l3: l3_sol,
        main_memory: mm_sol,
        xbar,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_l3_config_builds() {
        let c = build(LlcKind::NoL3);
        assert!(c.system.l3.is_none());
        assert!(c.l3.is_none());
        // DRAM timings in a DDR4-plausible band at 2 GHz.
        assert!(c.system.dram.t_rcd > 15 && c.system.dram.t_rcd < 60);
        assert!(c.system.dram.t_rc > c.system.dram.t_rcd + c.system.dram.t_rp);
    }

    #[test]
    fn sram_l3_is_fast_and_comm_l3_is_dense_slow() {
        let sram = build(LlcKind::Sram24);
        let comm = build(LlcKind::CmDramC192);
        let s = sram.system.l3.as_ref().unwrap();
        let c = comm.system.l3.as_ref().unwrap();
        assert!(s.bank.access_cycles < c.bank.access_cycles);
        assert!(s.bank.cycle_cycles <= c.bank.cycle_cycles);
        assert_eq!(s.bank.capacity_bytes, 3 << 20);
        assert_eq!(c.bank.capacity_bytes, 24 << 20);
        assert!(!s.is_dram && c.is_dram);
    }

    #[test]
    fn ed_config_has_better_cycle_time_than_c() {
        let ed = build(LlcKind::LpDramEd48);
        let c = build(LlcKind::LpDramC72);
        let ed_l3 = ed.l3.as_ref().unwrap();
        let c_l3 = c.l3.as_ref().unwrap();
        assert!(ed_l3.random_cycle <= c_l3.random_cycle * 1.05);
        // C is denser (better area efficiency).
        assert!(c_l3.area_efficiency >= ed_l3.area_efficiency * 0.95);
    }

    #[test]
    fn quantization_respects_pipeline_rule() {
        let comm = build(LlcKind::CmDramEd96);
        let l3 = comm.system.l3.as_ref().unwrap();
        let ratio = l3.bank.access_cycles.div_ceil(MAX_PIPE_STAGES).max(1);
        assert_eq!(l3.bank.access_cycles % ratio, 0);
        assert_eq!(l3.bank.cycle_cycles % ratio, 0);
    }
}
