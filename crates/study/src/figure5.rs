//! Figure 5: memory-hierarchy power breakdown (a), system power breakdown
//! and normalized energy-delay product (b).

use crate::configs::{LlcKind, StudyConfig};
use crate::figure4::AppRun;
use crate::power::{energy_delay, system_power, MemoryHierarchyPower, CORE_POWER_W};
use npbgen::NpbApp;

/// Power/energy summary of one run.
#[derive(Debug, Clone)]
pub struct PowerRun {
    /// Application.
    pub app: NpbApp,
    /// Configuration.
    pub kind: LlcKind,
    /// Hierarchy power breakdown \[W\].
    pub hierarchy: MemoryHierarchyPower,
    /// System power (core + hierarchy) \[W\].
    pub system_w: f64,
    /// Energy-delay product [J·s].
    pub edp: f64,
    /// Simulated seconds.
    pub seconds: f64,
}

/// Computes Figure 5's quantities from the Figure 4 runs.
pub fn figure5(study: &[(StudyConfig, Vec<AppRun>)]) -> Vec<PowerRun> {
    let mut out = Vec::new();
    for (cfg, runs) in study {
        for r in runs {
            let hierarchy = MemoryHierarchyPower::from_run(cfg, &r.stats);
            out.push(PowerRun {
                app: r.app,
                kind: cfg.kind,
                hierarchy,
                system_w: system_power(&hierarchy),
                edp: energy_delay(&hierarchy, r.seconds),
                seconds: r.seconds,
            });
        }
    }
    out
}

/// Finds one run's power summary.
pub fn find(rows: &[PowerRun], app: NpbApp, kind: LlcKind) -> &PowerRun {
    rows.iter()
        .find(|r| r.app == app && r.kind == kind)
        .unwrap_or_else(|| panic!("no power run for {app:?} on {kind:?}"))
}

/// Average (across apps) hierarchy-power increase of `kind` vs. no-L3.
pub fn avg_hierarchy_increase(rows: &[PowerRun], kind: LlcKind) -> f64 {
    let mut acc = 0.0;
    for &app in NpbApp::ALL {
        let base = find(rows, app, LlcKind::NoL3).hierarchy.total();
        let with = find(rows, app, kind).hierarchy.total();
        acc += with / base - 1.0;
    }
    acc / NpbApp::ALL.len() as f64
}

/// Average (across apps) normalized energy-delay of `kind` vs. no-L3
/// (< 1 is better).
pub fn avg_normalized_edp(rows: &[PowerRun], kind: LlcKind) -> f64 {
    let mut acc = 0.0;
    for &app in NpbApp::ALL {
        let base = find(rows, app, LlcKind::NoL3).edp;
        acc += find(rows, app, kind).edp / base;
    }
    acc / NpbApp::ALL.len() as f64
}

/// Renders Figure 5(a): hierarchy power breakdown per app × config.
pub fn render_a(rows: &[PowerRun]) -> String {
    let mut s = String::from(
        "Figure 5(a): memory-hierarchy power (W)\n\
         config        L1(l/d)   L2(l/d)   xbar(l/d)  L3(l/d/r)      mem(d/s/r)    bus   total\n",
    );
    for &app in NpbApp::ALL {
        s.push_str(&format!("{app}:\n"));
        for &kind in LlcKind::ALL {
            let r = find(rows, app, kind);
            let h = &r.hierarchy;
            s.push_str(&format!(
                "  {:11} {:4.2}/{:4.2} {:4.2}/{:4.2} {:4.2}/{:4.2}  {:4.2}/{:4.2}/{:4.2}  {:4.2}/{:4.2}/{:4.2} {:5.2} {:6.2}\n",
                kind.label(),
                h.l1_leak, h.l1_dyn,
                h.l2_leak, h.l2_dyn,
                h.xbar_leak, h.xbar_dyn,
                h.l3_leak, h.l3_dyn, h.l3_refresh,
                h.mem_dyn, h.mem_standby, h.mem_refresh,
                h.bus,
                h.total(),
            ));
        }
    }
    s
}

/// Renders Figure 5(b): system power and normalized energy-delay.
pub fn render_b(rows: &[PowerRun]) -> String {
    let mut s = format!(
        "Figure 5(b): system power (core {CORE_POWER_W} W + hierarchy) and normalized energy-delay\n"
    );
    for &app in NpbApp::ALL {
        s.push_str(&format!("{app}:\n"));
        let base_edp = find(rows, app, LlcKind::NoL3).edp;
        for &kind in LlcKind::ALL {
            let r = find(rows, app, kind);
            s.push_str(&format!(
                "  {:11} system {:6.2} W   norm E*D {:5.3}\n",
                kind.label(),
                r.system_w,
                r.edp / base_edp
            ));
        }
    }
    s.push_str("\naverages vs nol3:\n");
    for &kind in LlcKind::ALL.iter().skip(1) {
        s.push_str(&format!(
            "  {:11} hierarchy power {:+5.1}%   energy-delay {:+5.1}%\n",
            kind.label(),
            avg_hierarchy_increase(rows, kind) * 100.0,
            (avg_normalized_edp(rows, kind) - 1.0) * 100.0,
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::build;
    use crate::figure4::run_one;

    #[test]
    fn hierarchy_breakdown_reflects_l3_technology() {
        // Small runs; the full-scale shape checks live in integration
        // tests / benches.
        let apps = [NpbApp::FtB];
        let mut study = Vec::new();
        for &kind in &[LlcKind::NoL3, LlcKind::Sram24, LlcKind::CmDramEd96] {
            let cfg = build(kind);
            let runs: Vec<AppRun> = apps.iter().map(|&a| run_one(&cfg, a, 200_000)).collect();
            study.push((cfg, runs));
        }
        let rows: Vec<PowerRun> = figure5(&study);
        let sram = rows.iter().find(|r| r.kind == LlcKind::Sram24).unwrap();
        let comm = rows.iter().find(|r| r.kind == LlcKind::CmDramEd96).unwrap();
        let nol3 = rows.iter().find(|r| r.kind == LlcKind::NoL3).unwrap();
        // SRAM L3 leaks watts; COMM L3 leaks milliwatts.
        assert!(sram.hierarchy.l3_leak > 1.0);
        assert!(comm.hierarchy.l3_leak < 0.1);
        assert_eq!(nol3.hierarchy.l3_leak, 0.0);
        // System power must exceed core power.
        assert!(nol3.system_w > CORE_POWER_W);
    }
}
