//! # llc-study — the paper's experiments
//!
//! Reproduces every table and figure of the CACTI-D paper's evaluation:
//!
//! | Experiment | Module | What it produces |
//! |------------|--------|------------------|
//! | Table 1 | [`table1`] | SRAM / LP-DRAM / COMM-DRAM technology characteristics |
//! | Table 2 | [`table2`] | DRAM model validation vs. the 78 nm Micron 1 Gb DDR3-1066 |
//! | Figure 1 | [`figure1`] | SRAM validation vs. the 65 nm 16 MB Xeon L3 (solution sweep) |
//! | Table 3 | [`table3`] | 32 nm projections for L1/L2/five L3s/main memory |
//! | Figure 4 | [`figure4`] | IPC, average read latency and cycle breakdown, 8 apps × 6 configs |
//! | Figure 5 | [`figure5`] | Memory-hierarchy power, system power and energy-delay |
//!
//! The [`configs`] module builds the six system configurations (`nol3`,
//! `sram`, `lp_dram_ed`, `lp_dram_c`, `cm_dram_ed`, `cm_dram_c`) from live
//! CACTI-D solutions; [`power`] assembles the Figure 5 power model
//! (component energies × simulator activity counts, plus leakage, refresh,
//! memory-bus power at 2 mW/Gb/s and the scaled 22.3 W core power).
//!
//! Two extensions go beyond the paper's figures: [`powerdown`] quantifies
//! the conclusion's suggestion that DRAM power-down modes would cut the
//! dominant standby power, and [`thermal`] reproduces the §4.3 stacked-die
//! temperature claim (< 1.5 K between technologies).
//!
//! Run everything from the CLI:
//!
//! ```text
//! cargo run --release -p llc-study -- all
//! ```

pub mod configs;
pub mod figure1;
pub mod figure4;
pub mod figure5;
pub mod power;
pub mod powerdown;
pub mod report;
pub mod sweep;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod thermal;

pub use configs::{LlcKind, StudyConfig};
pub use figure4::{run_study, AppRun};
pub use power::{MemoryHierarchyPower, CORE_POWER_W};
