//! Figure 1: SRAM model validation against the 65 nm 16 MB Intel Xeon L3
//! cache (paper §2.5) — a bubble chart of access time vs. power with area
//! as bubble size, comparing CACTI-D solutions produced under different
//! optimization-knob settings against the published cache.

use crate::report::pct_err;
use cactid_core::{solve, AccessMode, MemoryKind, MemorySpec, OptimizationOptions, Solution};
use cactid_tech::{CellTechnology, TechNode};

/// Published 65 nm Xeon L3 reference points (paper §2.5 and the CACTI 5.1
/// technical report). Two bubbles exist because two dynamic-power numbers
/// were quoted for different activity factors; values are approximate
/// published figures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct XeonTarget {
    /// Access time \[s\].
    pub access_time: f64,
    /// Total power (leakage + dynamic at the quoted activity) \[W\].
    pub power: f64,
    /// Area \[m²\].
    pub area: f64,
}

/// Published 90 nm Sun SPARC (UltraSPARC IV+) 4 MB L2 reference point —
/// the paper's second SRAM validation target (McIntyre et al., JSSC 2005);
/// values are approximate published figures.
pub const SPARC_TARGET: XeonTarget = XeonTarget {
    access_time: 3.1e-9,
    power: 5.5,
    area: 58e-6,
};

/// The two target bubbles.
pub const XEON_TARGETS: [XeonTarget; 2] = [
    XeonTarget {
        access_time: 3.9e-9,
        power: 4.8,
        area: 110e-6,
    },
    XeonTarget {
        access_time: 3.9e-9,
        power: 8.3,
        area: 110e-6,
    },
];

/// One CACTI-D bubble: a solution under a particular knob setting.
#[derive(Debug, Clone)]
pub struct Figure1Point {
    /// Knob description.
    pub knobs: String,
    /// Access time \[s\].
    pub access_time: f64,
    /// Leakage + dynamic power at activity factor 1.0 \[W\].
    pub power: f64,
    /// Area \[m²\].
    pub area: f64,
}

/// The Xeon-like specification: 16 MB, 16-way, 64 B lines, 65 nm SRAM with
/// sleep transistors (paper §2.5 models sleep transistors halving idle-mat
/// leakage).
pub fn xeon_spec(opt: OptimizationOptions) -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(16 << 20)
        .block_bytes(64)
        .associativity(16)
        .banks(1)
        .cell_tech(CellTechnology::Sram)
        .node(TechNode::N65)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Sequential,
        })
        .optimization(OptimizationOptions {
            sleep_transistors: true,
            ..opt
        })
        .build()
        .unwrap_or_else(|e| panic!("the Xeon spec is valid: {e}"))
}

/// Power at activity factor `af` given the cache cycles at ~1 GHz L3 clock.
fn solution_power(sol: &Solution, af: f64) -> f64 {
    // The Xeon L3 served roughly one access per core clock at peak;
    // following the paper we evaluate dynamic power at an assumed access
    // rate of one per 3 ns (the cache's own random-access pipeline).
    let access_rate = af / 3.0e-9;
    sol.leakage_power.value() + sol.read_energy.value() * access_rate
}

/// Sweeps the optimizer knobs (max-area %, max-acctime %, repeater
/// relaxation) and returns the resulting bubbles (paper: "we vary
/// optimization variables … within reasonable bounds").
pub fn figure1() -> Vec<Figure1Point> {
    let mut out = Vec::new();
    for &(area_pct, time_pct, relax) in &[
        (0.10, 0.10, 1.0),
        (0.30, 0.10, 1.0),
        (0.30, 0.30, 1.0),
        (0.50, 0.30, 1.5),
        (0.50, 0.50, 2.0),
        (1.00, 0.50, 1.0),
        (1.00, 1.00, 2.0),
    ] {
        let opt = OptimizationOptions {
            max_area_overhead: area_pct,
            max_access_time_overhead: time_pct,
            repeater_relax: relax,
            ..OptimizationOptions::default()
        };
        let spec = xeon_spec(opt);
        let Ok(sols) = solve(&spec) else { continue };
        let Ok(sol) = cactid_core::select(&spec, &sols) else {
            continue;
        };
        out.push(Figure1Point {
            knobs: format!(
                "area+{:.0}% time+{:.0}% relax{relax:.1}",
                area_pct * 100.0,
                time_pct * 100.0
            ),
            access_time: sol.access_time.value(),
            power: solution_power(&sol, 1.0),
            area: sol.area.value(),
        });
    }
    out
}

/// The SPARC-like specification: 4 MB, 4-way, 64 B lines, 90 nm SRAM.
pub fn sparc_spec(opt: OptimizationOptions) -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(4 << 20)
        .block_bytes(64)
        .associativity(4)
        .banks(1)
        .cell_tech(CellTechnology::Sram)
        .node(TechNode::N90)
        .kind(MemoryKind::Cache {
            access_mode: AccessMode::Sequential,
        })
        .optimization(opt)
        .build()
        .unwrap_or_else(|e| panic!("the SPARC spec is valid: {e}"))
}

/// The SPARC L2 validation point: the best-access-time solution under
/// default knobs, evaluated like the Xeon bubbles.
pub fn sparc_point() -> Figure1Point {
    let opt = OptimizationOptions {
        max_area_overhead: 0.3,
        max_access_time_overhead: 0.1,
        ..OptimizationOptions::default()
    };
    let spec = sparc_spec(opt);
    let sols = solve(&spec).unwrap_or_else(|e| panic!("the SPARC spec solves: {e}"));
    let sol = cactid_core::select(&spec, &sols)
        .unwrap_or_else(|e| unreachable!("solve returned a non-empty set: {e}"));
    Figure1Point {
        knobs: "sparc l2 (90nm)".into(),
        access_time: sol.access_time.value(),
        power: solution_power(&sol, 1.0),
        area: sol.area.value(),
    }
}

/// The best-access-time solution's mean error vs. the first target across
/// access time, area and power — the paper reports ~20 % for this metric.
pub fn best_access_mean_error(points: &[Figure1Point]) -> f64 {
    let best = points
        .iter()
        .min_by(|a, b| a.access_time.total_cmp(&b.access_time))
        .unwrap_or_else(|| panic!("points must be non-empty"));
    let t = XEON_TARGETS[0];
    (pct_err(best.access_time, t.access_time).abs()
        + pct_err(best.area, t.area).abs()
        + pct_err(best.power, t.power).abs())
        / 3.0
}

/// Renders the Figure 1 data as text.
pub fn render() -> String {
    let points = figure1();
    let mut s =
        String::from("Figure 1: 65nm Xeon L3 validation (bubbles: access time, power, area)\n");
    for t in XEON_TARGETS {
        s.push_str(&format!(
            "  target : acc {:.2}ns power {:5.2}W area {:6.1}mm2\n",
            t.access_time * 1e9,
            t.power,
            t.area / 1e-6
        ));
    }
    for p in &points {
        s.push_str(&format!(
            "  cacti-d: acc {:.2}ns power {:5.2}W area {:6.1}mm2  [{}]\n",
            p.access_time * 1e9,
            p.power,
            p.area / 1e-6,
            p.knobs
        ));
    }
    s.push_str(&format!(
        "best-access-time solution mean |error| vs target: {:.0}% (paper: ~20%)\n",
        best_access_mean_error(&points)
    ));
    // The paper's second validation target (analysis "not shown" there).
    let sparc = sparc_point();
    s.push_str(&format!(
        "\n90nm SPARC L2 validation (paper §2.5, analysis not shown there):\n  target : acc {:.2}ns power {:5.2}W area {:6.1}mm2\n  cacti-d: acc {:.2}ns power {:5.2}W area {:6.1}mm2\n",
        SPARC_TARGET.access_time * 1e9,
        SPARC_TARGET.power,
        SPARC_TARGET.area / 1e-6,
        sparc.access_time * 1e9,
        sparc.power,
        sparc.area / 1e-6,
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_produces_distinct_tradeoffs() {
        let pts = figure1();
        assert!(pts.len() >= 5);
        let min_t = pts.iter().map(|p| p.access_time).fold(f64::MAX, f64::min);
        let max_t = pts.iter().map(|p| p.access_time).fold(0.0, f64::max);
        // The knobs genuinely move the solutions around.
        assert!(max_t > min_t, "sweep collapsed to one point");
    }

    #[test]
    fn sparc_l2_lands_in_the_published_ballpark() {
        let p = sparc_point();
        let t = SPARC_TARGET;
        let err = (pct_err(p.access_time, t.access_time).abs()
            + pct_err(p.area, t.area).abs()
            + pct_err(p.power, t.power).abs())
            / 3.0;
        assert!(err < 60.0, "SPARC mean |error| {err:.0}%");
    }

    #[test]
    fn best_access_solution_is_in_the_xeon_ballpark() {
        let pts = figure1();
        let err = best_access_mean_error(&pts);
        // The paper reports ~20 % average error; accept up to 45 % for the
        // reproduction (we do not have the real ITRS tables).
        assert!(err < 45.0, "mean error {err:.0}%");
    }
}
