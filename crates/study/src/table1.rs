//! Table 1: key characteristics of the SRAM, LP-DRAM and COMM-DRAM
//! technologies at 32 nm.

use crate::report::format_table;
use cactid_tech::{CellTechnology, TechNode, Technology};

/// One rendered row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Characteristic name.
    pub characteristic: &'static str,
    /// Values for SRAM / LP-DRAM / COMM-DRAM.
    pub values: [String; 3],
}

/// Computes Table 1 at the given node (the paper prints 32 nm values).
pub fn table1(node: TechNode) -> Vec<Table1Row> {
    let tech = Technology::new(node);
    let cells: Vec<_> = CellTechnology::ALL.iter().map(|&c| tech.cell(c)).collect();
    let mut rows = Vec::new();
    let f3 =
        |v: [f64; 3], fmt: fn(f64) -> String| -> [String; 3] { [fmt(v[0]), fmt(v[1]), fmt(v[2])] };
    rows.push(Table1Row {
        characteristic: "Cell area (F^2)",
        values: f3(
            [cells[0].area_f2, cells[1].area_f2, cells[2].area_f2],
            |v| format!("{v:.0}"),
        ),
    });
    rows.push(Table1Row {
        characteristic: "Peripheral device",
        values: [
            CellTechnology::Sram.peripheral_device_type().to_string(),
            CellTechnology::LpDram.peripheral_device_type().to_string(),
            CellTechnology::CommDram
                .peripheral_device_type()
                .to_string(),
        ],
    });
    rows.push(Table1Row {
        characteristic: "Bitline interconnect",
        values: [
            CellTechnology::Sram.bitline_wire_type().to_string(),
            CellTechnology::LpDram.bitline_wire_type().to_string(),
            CellTechnology::CommDram.bitline_wire_type().to_string(),
        ],
    });
    rows.push(Table1Row {
        characteristic: "Cell VDD (V)",
        values: f3(
            [
                cells[0].vdd_cell.value(),
                cells[1].vdd_cell.value(),
                cells[2].vdd_cell.value(),
            ],
            |v| format!("{v:.1}"),
        ),
    });
    rows.push(Table1Row {
        characteristic: "Storage cap (fF)",
        values: [
            "-".into(),
            format!("{:.0}", cells[1].c_storage.value() * 1e15),
            format!("{:.0}", cells[2].c_storage.value() * 1e15),
        ],
    });
    rows.push(Table1Row {
        characteristic: "Boosted wordline VPP (V)",
        values: [
            "-".into(),
            format!("{:.1}", cells[1].vpp.value()),
            format!("{:.1}", cells[2].vpp.value()),
        ],
    });
    rows.push(Table1Row {
        characteristic: "Refresh period (ms)",
        values: [
            "-".into(),
            format!("{:.2}", cells[1].retention_time.value() * 1e3),
            format!("{:.0}", cells[2].retention_time.value() * 1e3),
        ],
    });
    rows
}

/// Renders Table 1 as text.
pub fn render(node: TechNode) -> String {
    let rows: Vec<Vec<String>> = table1(node)
        .into_iter()
        .map(|r| {
            let mut v = vec![r.characteristic.to_string()];
            v.extend(r.values);
            v
        })
        .collect();
    format!(
        "Table 1: technology characteristics at {node}\n{}",
        format_table(&["Characteristic", "SRAM", "LP-DRAM", "COMM-DRAM"], &rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_at_32nm() {
        let rows = table1(TechNode::N32);
        let get = |name: &str| -> [String; 3] {
            rows.iter()
                .find(|r| r.characteristic == name)
                .unwrap()
                .values
                .clone()
        };
        assert_eq!(get("Cell area (F^2)"), ["146", "30", "6"]);
        assert_eq!(get("Cell VDD (V)"), ["0.9", "1.0", "1.0"]);
        assert_eq!(get("Storage cap (fF)"), ["-", "20", "30"]);
        assert_eq!(get("Boosted wordline VPP (V)"), ["-", "1.5", "2.6"]);
        assert_eq!(get("Refresh period (ms)"), ["-", "0.12", "64"]);
        assert_eq!(
            get("Bitline interconnect"),
            ["local", "local", "tungsten bitline"]
        );
    }

    #[test]
    fn render_includes_headers() {
        let s = render(TechNode::N32);
        assert!(s.contains("COMM-DRAM"));
        assert!(s.contains("146"));
    }
}
