//! L3 capacity-sensitivity sweep.
//!
//! Paper §4.2 explains the per-application behaviour through two factors:
//! "1) the frequency of the L3 accesses per instruction, and 2) the
//! sensitivity of L3 misses over L3 capacity." This module measures both
//! directly: it sweeps the L3 capacity (keeping the SRAM-like timing of a
//! chosen technology) and reports L3 accesses per kilo-instruction and the
//! miss ratio at each size — the curves that explain Figure 4.

use crate::configs::{self, LlcKind, StudyConfig};
use memsim::Simulator;
use npbgen::{NpbApp, NpbClass, NpbTrace};

/// One point of the sensitivity curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Total L3 capacity \[bytes\].
    pub capacity_bytes: u64,
    /// L3 accesses per kilo-instruction.
    pub l3_apki: f64,
    /// L3 miss ratio (loads).
    pub miss_ratio: f64,
    /// Chip IPC at this point.
    pub ipc: f64,
}

/// Sweeps the L3 capacity for one application. `capacities` are total L3
/// sizes (divided over 8 banks); timing is held at the base configuration's
/// values so the curve isolates the capacity effect. The base
/// configuration's associativity must keep the per-bank set count a power
/// of two for every swept capacity (the 12-way configurations do for the
/// 3·2ⁿ MB sizes of [`STUDY_CAPACITIES`]).
pub fn capacity_sweep(
    base: &StudyConfig,
    app: NpbApp,
    class: NpbClass,
    capacities: &[u64],
    instructions: u64,
) -> Vec<SweepPoint> {
    // Each capacity point is an independent warm-up + measurement
    // simulation, so the sweep rides the cactid-explore work-claiming
    // pool; results come back in capacity order regardless of which
    // worker finished first.
    cactid_explore::pool::parallel_map(0, capacities, |_, &cap| {
        let mut cfg = base.clone();
        let Some(l3) = cfg.system.l3.as_mut() else {
            unreachable!("the sweep base config carries an L3")
        };
        l3.bank.capacity_bytes = cap / u64::from(l3.n_banks);
        let trace = NpbTrace::with_class(app, class, cfg.system.n_threads());
        let mut sim = Simulator::new(cfg.system.clone(), trace);
        sim.run(instructions);
        sim.reset_stats();
        let stats = sim.run(instructions);
        stats.publish_obs();
        let c = &stats.counts;
        let reached = stats.load_level_hits[2] + stats.load_level_hits[3];
        SweepPoint {
            capacity_bytes: cap,
            l3_apki: c.l3_reads as f64 / (stats.instructions as f64 / 1000.0),
            miss_ratio: if reached == 0 {
                0.0
            } else {
                stats.load_level_hits[3] as f64 / reached as f64
            },
            ipc: stats.ipc(),
        }
    })
}

/// The capacities the paper's five L3 options span, plus endpoints.
pub const STUDY_CAPACITIES: [u64; 6] =
    [12 << 20, 24 << 20, 48 << 20, 96 << 20, 192 << 20, 384 << 20];

/// Renders sensitivity curves for a set of applications.
pub fn render(apps: &[NpbApp], instructions: u64) -> String {
    let base = configs::build(LlcKind::LpDramEd48);
    let mut s = String::from(
        "L3 capacity sensitivity (paper §4.2's two factors, LP-DRAM timing held fixed)\n",
    );
    for &app in apps {
        s.push_str(&format!("{app}:\n"));
        for p in capacity_sweep(&base, app, NpbClass::C, &STUDY_CAPACITIES, instructions) {
            s.push_str(&format!(
                "  {:4} MB: {:5.1} L3 accesses/kinstr, miss ratio {:.2}, ipc {:.2}\n",
                p.capacity_bytes >> 20,
                p.l3_apki,
                p.miss_ratio,
                p.ipc
            ));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_ratio_falls_with_capacity_for_fitting_apps() {
        // Class-B ft.B (15 MB warm set — big enough to spill the L2s,
        // small enough to populate quickly): a 12 MB L3 cannot hold the
        // footprint, a 96 MB L3 swallows it whole.
        let base = configs::build(LlcKind::LpDramEd48);
        let pts = capacity_sweep(
            &base,
            NpbApp::FtB,
            NpbClass::B,
            &[12 << 20, 96 << 20],
            4_000_000,
        );
        assert_eq!(pts.len(), 2);
        assert!(
            pts[1].miss_ratio < pts[0].miss_ratio * 0.8,
            "{} -> {}",
            pts[0].miss_ratio,
            pts[1].miss_ratio
        );
        assert!(pts[1].ipc > pts[0].ipc);
    }

    #[test]
    fn ua_c_has_low_l3_access_frequency() {
        // The paper's factor (1): ua.C barely touches the L3.
        let base = configs::build(LlcKind::LpDramEd48);
        let ua = capacity_sweep(&base, NpbApp::UaC, NpbClass::C, &[96 << 20], 400_000);
        let ft = capacity_sweep(&base, NpbApp::FtB, NpbClass::C, &[96 << 20], 400_000);
        assert!(
            ua[0].l3_apki < ft[0].l3_apki / 2.0,
            "ua {} vs ft {}",
            ua[0].l3_apki,
            ft[0].l3_apki
        );
    }
}
