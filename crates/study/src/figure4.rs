//! Figure 4: IPC, average read latency (a) and normalized execution-cycle
//! breakdown (b) for the eight NPB applications on the six system
//! configurations.

use crate::configs::{self, LlcKind, StudyConfig};
use crate::report::format_table;
use memsim::{SimStats, Simulator};
use npbgen::{NpbApp, NpbTrace};

/// Result of simulating one (application, configuration) pair.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Application.
    pub app: NpbApp,
    /// Configuration.
    pub kind: LlcKind,
    /// Measured statistics (post-warm-up).
    pub stats: SimStats,
    /// Measured wall time of the simulated interval \[s\].
    pub seconds: f64,
}

/// Runs the full study: every application on every configuration.
///
/// `instructions` is the measured instruction count per run; a quarter of
/// it is additionally executed first as cache warm-up. The paper runs 10 B
/// instructions per pair; tens of millions are enough for the synthetic
/// profiles to reach steady state.
pub fn run_study(instructions: u64) -> Vec<(StudyConfig, Vec<AppRun>)> {
    let mut out = Vec::new();
    for &kind in LlcKind::ALL {
        let cfg = configs::build(kind);
        let mut runs = Vec::new();
        for &app in NpbApp::ALL {
            runs.push(run_one(&cfg, app, instructions));
        }
        out.push((cfg, runs));
    }
    out
}

/// Runs one (application, configuration) pair.
pub fn run_one(cfg: &StudyConfig, app: NpbApp, instructions: u64) -> AppRun {
    let _span = cactid_obs::span("study.run_one");
    let trace = NpbTrace::new(app, cfg.system.n_threads());
    let mut sim = Simulator::new(cfg.system.clone(), trace);
    // Full-length warm-up: the big L3s take tens of millions of
    // instructions to populate (60–450 MB warm sets).
    sim.run(instructions);
    sim.reset_stats();
    let stats = sim.run(instructions);
    // Publish only the measured interval's counts (warm-up was discarded).
    stats.publish_obs();
    let seconds = stats.cycles as f64 / cfg.system.clock_hz;
    AppRun {
        app,
        kind: cfg.kind,
        stats,
        seconds,
    }
}

/// Renders Figure 4(a): IPC and average read latency.
pub fn render_a(study: &[(StudyConfig, Vec<AppRun>)]) -> String {
    let mut rows = Vec::new();
    for (i, &app) in NpbApp::ALL.iter().enumerate() {
        let mut ipc_row = vec![format!("{app} IPC")];
        let mut lat_row = vec![format!("{app} lat")];
        for (_, runs) in study {
            let r = &runs[i];
            ipc_row.push(format!("{:.2}", r.stats.ipc()));
            lat_row.push(format!("{:.1}", r.stats.avg_read_latency()));
        }
        rows.push(ipc_row);
        rows.push(lat_row);
    }
    let mut headers = vec!["app"];
    headers.extend(LlcKind::ALL.iter().map(|k| k.label()));
    format!(
        "Figure 4(a): IPC and average read latency (cycles)\n{}",
        format_table(&headers, &rows)
    )
}

/// Renders Figure 4(b): normalized execution-cycle breakdown.
pub fn render_b(study: &[(StudyConfig, Vec<AppRun>)]) -> String {
    let mut s =
        String::from("Figure 4(b): normalized cycle breakdown (instr/L2/L3/mem/barrier/lock %)\n");
    for (i, &app) in NpbApp::ALL.iter().enumerate() {
        s.push_str(&format!("{app}:\n"));
        for (cfg, runs) in study {
            let f = runs[i].stats.breakdown_fractions();
            s.push_str(&format!(
                "  {:11} {:5.1} {:5.1} {:5.1} {:5.1} {:5.1} {:5.1}\n",
                cfg.kind.label(),
                f[0] * 100.0,
                f[1] * 100.0,
                f[2] * 100.0,
                f[3] * 100.0,
                f[4] * 100.0,
                f[5] * 100.0
            ));
        }
    }
    s
}

/// Convenience accessor: the run for (app, kind).
pub fn find(study: &[(StudyConfig, Vec<AppRun>)], app: NpbApp, kind: LlcKind) -> &AppRun {
    study
        .iter()
        .find(|(c, _)| c.kind == kind)
        .and_then(|(_, runs)| runs.iter().find(|r| r.app == app))
        .unwrap_or_else(|| panic!("no run for {app:?} on {kind:?}"))
}

/// Relative execution-time reduction of `kind` vs. no-L3 for one app
/// (positive = faster).
pub fn speedup_vs_nol3(study: &[(StudyConfig, Vec<AppRun>)], app: NpbApp, kind: LlcKind) -> f64 {
    let base = find(study, app, LlcKind::NoL3).seconds;
    let t = find(study, app, kind).seconds;
    1.0 - t / base
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One smaller-scale end-to-end sanity run (full-scale checks live in
    /// the integration tests and benches).
    #[test]
    fn ft_b_gains_from_an_l3() {
        let nol3 = configs::build(LlcKind::NoL3);
        let lp = configs::build(LlcKind::LpDramC72);
        let a = run_one(&nol3, NpbApp::FtB, 400_000);
        let b = run_one(&lp, NpbApp::FtB, 400_000);
        assert!(
            b.stats.ipc() > a.stats.ipc(),
            "{} vs {}",
            b.stats.ipc(),
            a.stats.ipc()
        );
        assert!(b.stats.avg_read_latency() < a.stats.avg_read_latency());
        assert!(b.stats.counts.mem_reads < a.stats.counts.mem_reads);
    }

    #[test]
    fn cg_c_is_l3_insensitive() {
        let nol3 = configs::build(LlcKind::NoL3);
        let lp = configs::build(LlcKind::LpDramC72);
        let a = run_one(&nol3, NpbApp::CgC, 400_000);
        let b = run_one(&lp, NpbApp::CgC, 400_000);
        let gain = 1.0 - b.seconds / a.seconds;
        assert!(gain < 0.30, "cg.C should barely benefit, got {gain:.2}");
    }
}
