//! The Figure 5 power model: component energies (from CACTI-D solutions) ×
//! activity counts (from the simulator), plus leakage, refresh, memory-bus
//! power and the scaled core power.

use crate::configs::StudyConfig;
use memsim::SimStats;

/// Core power of the bottom die: 22.3 W (90 nm Niagara scaled to 32 nm with
/// 8 four-wide SIMD FPUs — paper §4.3).
pub const CORE_POWER_W: f64 = 22.3;

/// Memory-bus energy cost: 2 mW/Gb/s "suitable for the 2013 time-frame"
/// (paper §4.3) — i.e. 2 pJ/bit.
pub const BUS_J_PER_BIT: f64 = 2.0e-12;

/// DRAM chips accessed in parallel per channel (x8 devices on a 64-bit
/// channel).
pub const CHIPS_PER_RANK: f64 = 8.0;
/// Total DRAM chips in the system (2 channels × 1 single-ranked DIMM).
pub const TOTAL_CHIPS: f64 = 16.0;

/// Power of the memory hierarchy, broken into the paper's Figure 5(a)
/// categories \[W\].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MemoryHierarchyPower {
    /// L1 (instruction + data, all cores) leakage.
    pub l1_leak: f64,
    /// L1 dynamic.
    pub l1_dyn: f64,
    /// L2 (all cores) leakage.
    pub l2_leak: f64,
    /// L2 dynamic.
    pub l2_dyn: f64,
    /// L2↔L3 crossbar leakage.
    pub xbar_leak: f64,
    /// L2↔L3 crossbar dynamic.
    pub xbar_dyn: f64,
    /// L3 leakage.
    pub l3_leak: f64,
    /// L3 dynamic.
    pub l3_dyn: f64,
    /// L3 refresh.
    pub l3_refresh: f64,
    /// Main-memory chip dynamic.
    pub mem_dyn: f64,
    /// Main-memory standby (leakage + interface).
    pub mem_standby: f64,
    /// Main-memory refresh.
    pub mem_refresh: f64,
    /// Memory bus.
    pub bus: f64,
}

impl MemoryHierarchyPower {
    /// Total memory-hierarchy power \[W\].
    pub fn total(&self) -> f64 {
        self.l1_leak
            + self.l1_dyn
            + self.l2_leak
            + self.l2_dyn
            + self.xbar_leak
            + self.xbar_dyn
            + self.l3_leak
            + self.l3_dyn
            + self.l3_refresh
            + self.mem_dyn
            + self.mem_standby
            + self.mem_refresh
            + self.bus
    }

    /// Assembles the breakdown for one simulated run.
    pub fn from_run(cfg: &StudyConfig, stats: &SimStats) -> MemoryHierarchyPower {
        let seconds = stats.cycles as f64 / cfg.system.clock_hz;
        if seconds == 0.0 {
            return MemoryHierarchyPower::default();
        }
        let per_s = 1.0 / seconds;
        let n_cores = f64::from(cfg.system.n_cores);
        let c = &stats.counts;

        // L1: data + instruction caches, both of the L1 solution's shape.
        // Two L1 arrays per core (I + D).
        let l1_leak = 2.0 * n_cores * cfg.l1.leakage_power.value();
        let l1_dyn = ((c.l1_reads + c.l1i_reads) as f64 * cfg.l1.read_energy.value()
            + c.l1_writes as f64 * cfg.l1.write_energy.value())
            * per_s;

        let l2_leak = n_cores * cfg.l2.leakage_power.value();
        let l2_dyn = (c.l2_reads as f64 * cfg.l2.read_energy.value()
            + c.l2_writes as f64 * cfg.l2.write_energy.value())
            * per_s;

        let (xbar_leak, xbar_dyn, l3_leak, l3_dyn, l3_refresh) = match &cfg.l3 {
            Some(l3) => {
                let flits = (64 * 8 / crate::configs::XBAR_WIDTH_BITS) as f64;
                (
                    cfg.xbar.leakage.value(),
                    c.xbar_transfers as f64 * flits * cfg.xbar.energy.value() * per_s,
                    l3.leakage_power.value(),
                    (c.l3_reads as f64 * l3.read_energy.value()
                        + c.l3_writes as f64 * l3.write_energy.value())
                        * per_s,
                    l3.refresh_power.value(),
                )
            }
            None => (0.0, 0.0, 0.0, 0.0, 0.0),
        };

        let Some(mm) = cfg.main_memory.main_memory.as_ref() else {
            unreachable!("a study config carries a chip-level main-memory solution")
        };
        let e = &mm.energies;
        let mem_dyn = CHIPS_PER_RANK
            * (c.mem_activates as f64 * e.activate.value()
                + c.mem_reads as f64 * e.read.value()
                + c.mem_writes as f64 * e.write.value())
            * per_s;
        let mem_standby = TOTAL_CHIPS * e.standby_power.value();
        let mem_refresh = TOTAL_CHIPS * e.refresh_power.value();

        let bus_bits = (c.mem_reads + c.mem_writes) as f64 * 64.0 * 8.0;
        let bus = bus_bits * BUS_J_PER_BIT * per_s;

        MemoryHierarchyPower {
            l1_leak,
            l1_dyn,
            l2_leak,
            l2_dyn,
            xbar_leak,
            xbar_dyn,
            l3_leak,
            l3_dyn,
            l3_refresh,
            mem_dyn,
            mem_standby,
            mem_refresh,
            bus,
        }
    }
}

/// System power: core + memory hierarchy \[W\].
pub fn system_power(hier: &MemoryHierarchyPower) -> f64 {
    CORE_POWER_W + hier.total()
}

/// Energy-delay product of a run: `P_system × t²` [J·s].
pub fn energy_delay(hier: &MemoryHierarchyPower, seconds: f64) -> f64 {
    system_power(hier) * seconds * seconds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{build, LlcKind};
    use memsim::stats::AccessCounts;

    fn fake_stats(cycles: u64) -> SimStats {
        SimStats {
            cycles,
            instructions: cycles,
            counts: AccessCounts {
                l1_reads: 1_000_000,
                l1_writes: 300_000,
                l1i_reads: 2_000_000,
                l2_reads: 100_000,
                l2_writes: 40_000,
                l3_reads: 30_000,
                l3_writes: 12_000,
                l3_page_hits: 0,
                xbar_transfers: 60_000,
                mem_activates: 8_000,
                mem_reads: 8_000,
                mem_writes: 3_000,
                mem_page_hits: 0,
            },
            ..SimStats::default()
        }
    }

    #[test]
    fn no_l3_has_no_l3_power() {
        let cfg = build(LlcKind::NoL3);
        let p = MemoryHierarchyPower::from_run(&cfg, &fake_stats(10_000_000));
        assert_eq!(p.l3_leak, 0.0);
        assert_eq!(p.l3_dyn, 0.0);
        assert_eq!(p.l3_refresh, 0.0);
        assert!(p.mem_standby > 0.5, "standby dominates: {}", p.mem_standby);
        assert!(p.total() > 0.0);
    }

    #[test]
    fn sram_l3_leaks_lp_leaks_less_comm_least() {
        let sram = build(LlcKind::Sram24);
        let lp = build(LlcKind::LpDramEd48);
        let comm = build(LlcKind::CmDramEd96);
        let s = MemoryHierarchyPower::from_run(&sram, &fake_stats(10_000_000));
        let l = MemoryHierarchyPower::from_run(&lp, &fake_stats(10_000_000));
        let c = MemoryHierarchyPower::from_run(&comm, &fake_stats(10_000_000));
        assert!(s.l3_leak > l.l3_leak, "{} vs {}", s.l3_leak, l.l3_leak);
        assert!(l.l3_leak > 10.0 * c.l3_leak);
        // DRAM L3s refresh; SRAM doesn't.
        assert_eq!(s.l3_refresh, 0.0);
        assert!(l.l3_refresh > 0.0 && c.l3_refresh > 0.0);
        assert!(l.l3_refresh > c.l3_refresh, "LP refreshes far more often");
    }

    #[test]
    fn energy_delay_scales_quadratically_with_time() {
        let cfg = build(LlcKind::NoL3);
        let p = MemoryHierarchyPower::from_run(&cfg, &fake_stats(10_000_000));
        let ed1 = energy_delay(&p, 1.0);
        let ed2 = energy_delay(&p, 2.0);
        assert!((ed2 / ed1 - 4.0).abs() < 1e-9);
    }

    #[test]
    fn zero_time_is_safe() {
        let cfg = build(LlcKind::NoL3);
        let p = MemoryHierarchyPower::from_run(&cfg, &SimStats::default());
        assert_eq!(p.total(), 0.0);
    }
}
