//! Extension: main-memory power-down modes.
//!
//! The paper's conclusion (§6) observes that standby power dominates
//! main-memory power and suggests that "appropriate use of DRAM power-down
//! modes, combined with supporting operating system policies, may
//! significantly reduce main memory power." This module quantifies that
//! suggestion with the reproduction's own numbers: it estimates channel
//! occupancy from the simulator's access counts and applies a
//! precharge-power-down model to the idle fraction.

use crate::configs::StudyConfig;
use crate::power::{MemoryHierarchyPower, TOTAL_CHIPS};
use memsim::SimStats;

/// Fraction of standby power drawn in precharge power-down (CKE low):
/// DDR3/DDR4 IDD2P is roughly 30–40 % of IDD2N.
pub const POWERDOWN_RESIDUAL: f64 = 0.35;

/// Power-down entry/exit overhead, expressed as a minimum idle streak the
/// controller must predict before it pays off; modeled as the fraction of
/// idle time actually spent powered down.
pub const POWERDOWN_COVERAGE: f64 = 0.8;

/// Result of the power-down analysis for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerDownAnalysis {
    /// Fraction of time the memory channels are busy (0–1).
    pub busy_fraction: f64,
    /// Standby power without power-down \[W\].
    pub standby_baseline: f64,
    /// Standby power with power-down \[W\].
    pub standby_with_powerdown: f64,
    /// Memory-hierarchy power saved \[W\].
    pub hierarchy_savings: f64,
}

/// Estimates the fraction of time a rank cannot power down: each activate
/// holds its bank for ~tRC, each row hit occupies it for a column access,
/// and the rank is busy whenever *any* of its banks is active. Treating
/// banks as independently loaded, the rank-busy probability is
/// `1 − (1 − u_bank)^banks`.
pub fn busy_fraction(cfg: &StudyConfig, stats: &SimStats) -> f64 {
    if stats.cycles == 0 {
        return 0.0;
    }
    let d = &cfg.system.dram;
    let c = &stats.counts;
    let act_cycles = c.mem_activates as f64 * d.t_rc as f64;
    let hit_cycles = c.mem_page_hits as f64 * (d.t_cl + d.t_burst) as f64;
    let bank_time = (stats.cycles * u64::from(d.channels * d.banks)) as f64;
    let u_bank = ((act_cycles + hit_cycles) / bank_time).min(1.0);
    1.0 - (1.0 - u_bank).powi(d.banks as i32)
}

/// Applies the power-down model to one run's hierarchy power.
pub fn analyze(
    cfg: &StudyConfig,
    stats: &SimStats,
    hier: &MemoryHierarchyPower,
) -> PowerDownAnalysis {
    let busy = busy_fraction(cfg, stats);
    let idle = 1.0 - busy;
    let powered_down = idle * POWERDOWN_COVERAGE;
    // The interface portion (DLL, input buffers) is what power-down turns
    // off; chip leakage continues. Both are inside `standby_power`, so the
    // residual factor models their combination.
    let baseline = hier.mem_standby;
    let with_pd = baseline * (1.0 - powered_down * (1.0 - POWERDOWN_RESIDUAL));
    PowerDownAnalysis {
        busy_fraction: busy,
        standby_baseline: baseline,
        standby_with_powerdown: with_pd,
        hierarchy_savings: baseline - with_pd,
    }
}

/// Renders the analysis across a set of runs, followed by the analytic
/// savings-vs-occupancy curve that shows where the paper's suggestion
/// pays off (idle and low-activity phases, which the OS policies the
/// paper mentions would create).
pub fn render(rows: &[(String, PowerDownAnalysis, f64)]) -> String {
    let mut s = String::from(
        "Extension (paper §6): precharge power-down on idle memory channels\n\
         run                         busy%  standby W  w/ pwrdn W  hier. saving\n",
    );
    for (label, a, hier_total) in rows {
        s.push_str(&format!(
            "  {:24} {:6.1} {:10.3} {:11.3}  {:5.1}% of hierarchy\n",
            label,
            a.busy_fraction * 100.0,
            a.standby_baseline,
            a.standby_with_powerdown,
            a.hierarchy_savings / hier_total * 100.0,
        ));
    }
    s.push_str(
        "\nDuring full-throttle phases of these memory-bound benchmarks the ranks\n\
         stay active, so power-down recovers little — the opportunity is in idle\n\
         and low-activity phases, which OS policies (paper §6) would create:\n\
         rank busy    standby saving\n",
    );
    for busy in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let saving = (1.0 - busy) * POWERDOWN_COVERAGE * (1.0 - POWERDOWN_RESIDUAL);
        s.push_str(&format!(
            "  {:8.0}%    {:5.1}% of standby power\n",
            busy * 100.0,
            saving * 100.0
        ));
    }
    s
}

/// Convenience: total chips constant re-export sanity (the analysis scales
/// with the DIMM population).
pub fn chips() -> f64 {
    TOTAL_CHIPS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{build, LlcKind};
    use crate::figure4::run_one;
    use npbgen::NpbApp;

    #[test]
    fn filtered_memory_is_idler_and_saves_more() {
        // ft.B hammers memory with no L3 but a big L3 filters it — the
        // power-down opportunity grows accordingly.
        let nol3 = build(LlcKind::NoL3);
        let comm = build(LlcKind::CmDramC192);
        let busy = run_one(&nol3, NpbApp::FtB, 600_000);
        let quiet = run_one(&comm, NpbApp::FtB, 600_000);
        let hb = MemoryHierarchyPower::from_run(&nol3, &busy.stats);
        let hq = MemoryHierarchyPower::from_run(&comm, &quiet.stats);
        let ab = analyze(&nol3, &busy.stats, &hb);
        let aq = analyze(&comm, &quiet.stats, &hq);
        assert!(
            aq.busy_fraction < ab.busy_fraction,
            "{} vs {}",
            aq.busy_fraction,
            ab.busy_fraction
        );
        assert!(aq.hierarchy_savings > 0.0);
        // Savings never exceed the baseline standby power.
        assert!(aq.standby_with_powerdown >= aq.standby_baseline * POWERDOWN_RESIDUAL);
        assert!(ab.standby_with_powerdown <= ab.standby_baseline);
        assert!(aq.hierarchy_savings >= ab.hierarchy_savings);
    }

    #[test]
    fn busy_fraction_is_bounded() {
        let cfg = build(LlcKind::NoL3);
        let run = run_one(&cfg, NpbApp::CgC, 300_000);
        let f = busy_fraction(&cfg, &run.stats);
        assert!((0.0..=1.0).contains(&f), "{f}");
        assert!(f > 0.05, "cg.C keeps memory busy: {f}");
    }
}
