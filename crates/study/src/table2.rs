//! Table 2: validation of the DRAM model against the 78 nm Micron 1 Gb
//! DDR3-1066 x8 device (paper §2.5).
//!
//! The "actual" column reproduces the paper's published device data
//! (datasheet timing + Micron power-calculator energies); the model column
//! is a live CACTI-D solution. Following the paper, the selected solution
//! is the high-area-efficiency one ("because of the premium on price per
//! bit of commodity DRAM").

use crate::report::{format_table, pct_err};
use cactid_core::{optimize, MemoryKind, MemorySpec, OptimizationOptions, Solution};
use cactid_tech::{CellTechnology, TechNode};

/// Published values for the Micron 1 Gb DDR3-1066 x8 device (paper
/// Table 2, "Actual value" column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MicronActual {
    /// Area efficiency (fraction; the paper assumes the ITRS 56 % value).
    pub area_efficiency: f64,
    /// tRCD \[s\].
    pub t_rcd: f64,
    /// CAS latency \[s\].
    pub cas_latency: f64,
    /// tRC \[s\].
    pub t_rc: f64,
    /// ACTIVATE (+precharge) energy \[J\].
    pub e_activate: f64,
    /// READ energy \[J\].
    pub e_read: f64,
    /// WRITE energy \[J\].
    pub e_write: f64,
    /// Refresh power \[W\].
    pub p_refresh: f64,
}

/// The paper's Table 2 "Actual value" column.
pub const MICRON_ACTUAL: MicronActual = MicronActual {
    area_efficiency: 0.56,
    t_rcd: 13.1e-9,
    cas_latency: 13.1e-9,
    t_rc: 52.5e-9,
    e_activate: 3.1e-9,
    e_read: 1.6e-9,
    e_write: 1.8e-9,
    p_refresh: 3.5e-3,
};

/// One row of the reproduced Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Metric name.
    pub metric: &'static str,
    /// Published device value.
    pub actual: f64,
    /// Our model's value.
    pub model: f64,
    /// Percent error of the model vs. actual.
    pub error_pct: f64,
}

/// The Micron-like specification (1 Gb, 8 banks, x8, BL8, 8 Kb page, 78 nm).
pub fn micron_spec() -> MemorySpec {
    MemorySpec::builder()
        .capacity_bytes(1 << 27)
        .block_bytes(8)
        .banks(8)
        .cell_tech(CellTechnology::CommDram)
        .node(TechNode::N78)
        .kind(MemoryKind::MainMemory {
            io_bits: 8,
            burst_length: 8,
            prefetch: 8,
            page_bits: 8 << 10,
        })
        .optimization(OptimizationOptions {
            // Paper: pick a high-area-efficiency solution.
            max_area_overhead: 0.20,
            max_access_time_overhead: 1.0,
            weight_dynamic: 0.5,
            weight_leakage: 1.0,
            weight_cycle: 0.3,
            weight_interleave: 0.3,
            ..OptimizationOptions::default()
        })
        .build()
        .unwrap_or_else(|e| panic!("the Micron spec is valid: {e}"))
}

/// Solves the Micron spec and assembles the validation rows.
pub fn table2() -> (Solution, Vec<Table2Row>) {
    let sol = optimize(&micron_spec()).unwrap_or_else(|e| panic!("the Micron spec solves: {e}"));
    let Some(mm) = sol.main_memory.as_ref() else {
        unreachable!("a main-memory solution carries the chip-level result")
    };
    let a = MICRON_ACTUAL;
    let rows = vec![
        Table2Row {
            metric: "Area efficiency (%)",
            actual: a.area_efficiency * 100.0,
            model: mm.area_efficiency * 100.0,
            error_pct: pct_err(mm.area_efficiency, a.area_efficiency),
        },
        Table2Row {
            metric: "Activation delay tRCD (ns)",
            actual: a.t_rcd * 1e9,
            model: mm.timing.t_rcd.value() * 1e9,
            error_pct: pct_err(mm.timing.t_rcd.value(), a.t_rcd),
        },
        Table2Row {
            metric: "CAS latency (ns)",
            actual: a.cas_latency * 1e9,
            model: mm.timing.cas_latency.value() * 1e9,
            error_pct: pct_err(mm.timing.cas_latency.value(), a.cas_latency),
        },
        Table2Row {
            metric: "Row cycle time tRC (ns)",
            actual: a.t_rc * 1e9,
            model: mm.timing.t_rc.value() * 1e9,
            error_pct: pct_err(mm.timing.t_rc.value(), a.t_rc),
        },
        Table2Row {
            metric: "ACTIVATE energy (nJ)",
            actual: a.e_activate * 1e9,
            model: mm.energies.activate.value() * 1e9,
            error_pct: pct_err(mm.energies.activate.value(), a.e_activate),
        },
        Table2Row {
            metric: "READ energy (nJ)",
            actual: a.e_read * 1e9,
            model: mm.energies.read.value() * 1e9,
            error_pct: pct_err(mm.energies.read.value(), a.e_read),
        },
        Table2Row {
            metric: "WRITE energy (nJ)",
            actual: a.e_write * 1e9,
            model: mm.energies.write.value() * 1e9,
            error_pct: pct_err(mm.energies.write.value(), a.e_write),
        },
        Table2Row {
            metric: "Refresh power (mW)",
            actual: a.p_refresh * 1e3,
            model: mm.energies.refresh_power.value() * 1e3,
            error_pct: pct_err(mm.energies.refresh_power.value(), a.p_refresh),
        },
    ];
    (sol, rows)
}

/// Mean absolute error across the Table 2 metrics.
pub fn mean_abs_error(rows: &[Table2Row]) -> f64 {
    rows.iter().map(|r| r.error_pct.abs()).sum::<f64>() / rows.len() as f64
}

/// Renders Table 2 as text.
pub fn render() -> String {
    let (_, rows) = table2();
    let mae = mean_abs_error(&rows);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.metric.to_string(),
                format!("{:.1}", r.actual),
                format!("{:.1}", r.model),
                format!("{:+.1}%", r.error_pct),
            ]
        })
        .collect();
    format!(
        "Table 2: DRAM validation vs 78nm Micron 1Gb DDR3-1066 x8\n{}\nmean |error| = {mae:.1}% (paper's CACTI-D: 16%)\n",
        format_table(&["Metric", "Actual", "CACTI-D (this repo)", "Error"], &table_rows)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_stays_within_paper_class_accuracy() {
        let (_, rows) = table2();
        // Timing metrics within ±25 %; energy/power within ±45 % (the
        // paper's own model errors reach −33 % on energies).
        for r in &rows {
            let bound = if r.metric.contains("energy") || r.metric.contains("power") {
                45.0
            } else {
                25.0
            };
            assert!(
                r.error_pct.abs() <= bound,
                "{}: {:+.1}% (actual {:.2}, model {:.2})",
                r.metric,
                r.error_pct,
                r.actual,
                r.model
            );
        }
        let mae = mean_abs_error(&rows);
        assert!(mae < 25.0, "mean |error| {mae:.1}% too high");
    }

    #[test]
    fn selected_solution_is_dense() {
        let (sol, _) = table2();
        let mm = sol.main_memory.as_ref().unwrap();
        assert!(mm.area_efficiency > 0.40, "{}", mm.area_efficiency);
    }
}
