//! Minimal aligned-table formatting for the CLI reports.

/// Formats a table: headers plus rows, columns padded to fit.
pub fn format_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = headers
        .iter()
        .map(std::string::ToString::to_string)
        .collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Percent-difference helper used in the validation tables.
pub fn pct_err(model: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return 0.0;
    }
    (model - actual) / actual * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "23".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(
            lines[1].chars().filter(|&c| c == '-').count(),
            lines[1].len()
        );
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn pct_err_signs() {
        assert!((pct_err(90.0, 100.0) + 10.0).abs() < 1e-12);
        assert!((pct_err(110.0, 100.0) - 10.0).abs() < 1e-12);
        assert_eq!(pct_err(1.0, 0.0), 0.0);
    }
}
