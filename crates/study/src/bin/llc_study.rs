//! CLI for the CACTI-D paper reproduction.
//!
//! ```text
//! llc-study table1                 # Table 1: technology characteristics
//! llc-study table2                 # Table 2: Micron DDR3 validation
//! llc-study fig1                   # Figure 1: Xeon L3 validation sweep
//! llc-study table3                 # Table 3: 32nm hierarchy projections
//! llc-study fig4 [-n INSTR]        # Figure 4: IPC/latency/cycle breakdown
//! llc-study fig5 [-n INSTR]        # Figure 5: power and energy-delay
//! llc-study all  [-n INSTR]        # everything (fig4+fig5 share the runs)
//! llc-study thermal                # extension: stacked-die temperature
//! llc-study powerdown [-n INSTR]   # extension: DRAM power-down savings
//! llc-study sweep [-n INSTR]       # L3 capacity-sensitivity curves
//! llc-study shard [--cores N] [--shards K] [--dragon] [-n INSTR]
//!                                  # sharded-simulator run; prints a
//!                                  # stats digest for determinism checks
//! ```
//!
//! Every command additionally accepts `--trace FILE`: at exit the process
//! metrics registry (optimizer, solve-cache, pool, and simulator counters)
//! is dumped as a JSONL sidecar to FILE and summarized on stderr. The
//! sidecar is observability-only — the study tables are unaffected.

use cactid_tech::TechNode;
use llc_study::power::MemoryHierarchyPower;
use llc_study::{
    configs, figure1, figure4, figure5, powerdown, sweep, table1, table2, table3, thermal,
};

fn parse_instructions(args: &[String]) -> u64 {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "-n" || a == "--instructions" {
            if let Some(v) = it.next() {
                return v.replace('_', "").parse().unwrap_or_else(|_| {
                    eprintln!("bad instruction count {v:?}");
                    std::process::exit(2)
                });
            }
        }
    }
    // Default: enough for the synthetic profiles to reach steady state on
    // the largest L3s while staying minutes-scale.
    5_000_000
}

fn parse_flag_u64(args: &[String], flag: &str) -> Option<u64> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == flag {
            match it.next().map(|v| v.replace('_', "").parse()) {
                Some(Ok(v)) => return Some(v),
                _ => {
                    eprintln!("{flag} expects an integer");
                    std::process::exit(2)
                }
            }
        }
    }
    None
}

fn parse_trace(args: &[String]) -> Option<std::path::PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            match it.next() {
                Some(v) => return Some(std::path::PathBuf::from(v)),
                None => {
                    eprintln!("--trace expects a file path");
                    std::process::exit(2)
                }
            }
        }
    }
    None
}

fn run_figures_4_and_5(instructions: u64, do4: bool, do5: bool) {
    eprintln!("running study: 8 apps x 6 configs x {instructions} instructions...");
    let study = figure4::run_study(instructions);
    if do4 {
        println!("{}", figure4::render_a(&study));
        println!("{}", figure4::render_b(&study));
    }
    if do5 {
        let rows = figure5::figure5(&study);
        println!("{}", figure5::render_a(&rows));
        println!("{}", figure5::render_b(&rows));
    }
}

fn run_thermal() {
    let estimates: Vec<_> = configs::LlcKind::ALL
        .iter()
        .skip(1)
        .filter_map(|&k| thermal::estimate(&configs::build(k)))
        .collect();
    println!("{}", thermal::render(&estimates));
}

fn run_powerdown(instructions: u64) {
    use npbgen::NpbApp;
    eprintln!("powerdown extension: 3 apps x 3 configs x {instructions} instructions...");
    let mut rows = Vec::new();
    for kind in [
        configs::LlcKind::NoL3,
        configs::LlcKind::Sram24,
        configs::LlcKind::CmDramC192,
    ] {
        let cfg = configs::build(kind);
        for app in [NpbApp::CgC, NpbApp::FtB, NpbApp::UaC] {
            let run = figure4::run_one(&cfg, app, instructions);
            let hier = MemoryHierarchyPower::from_run(&cfg, &run.stats);
            let a = powerdown::analyze(&cfg, &run.stats, &hier);
            rows.push((format!("{} / {app}", kind.label()), a, hier.total()));
        }
    }
    println!("{}", powerdown::render(&rows));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map_or("all", String::as_str);
    let n = parse_instructions(&args);
    match cmd {
        "table1" => println!("{}", table1::render(TechNode::N32)),
        "table2" => println!("{}", table2::render()),
        "fig1" => println!("{}", figure1::render()),
        "table3" => println!("{}", table3::render()),
        "fig4" => run_figures_4_and_5(n, true, false),
        "fig5" => run_figures_4_and_5(n, false, true),
        "thermal" => run_thermal(),
        "powerdown" => run_powerdown(n.min(2_000_000)),
        "sweep" => {
            use npbgen::NpbApp;
            eprintln!("capacity sweep: 3 apps x 6 capacities x {n} instructions...");
            println!(
                "{}",
                sweep::render(&[NpbApp::FtB, NpbApp::BtC, NpbApp::UaC], n)
            );
        }
        "shard" => {
            use memsim::{CoherenceProtocol, ShardedSimulator, SystemConfig};
            let cores = parse_flag_u64(&args, "--cores").unwrap_or(64) as u32;
            let shards = parse_flag_u64(&args, "--shards").unwrap_or(0) as usize;
            let mut cfg = SystemConfig::many_core(cores);
            if args.iter().any(|a| a == "--dragon") {
                cfg.protocol = CoherenceProtocol::Dragon;
            }
            let trace = npbgen::NpbTrace::new(npbgen::NpbApp::FtB, cfg.n_threads());
            eprintln!("sharded run: {cores} cores, {n} instructions...");
            let mut sim = ShardedSimulator::new(cfg, trace, shards);
            let stats = sim.run(n);
            stats.publish_obs();
            let info = sim.info();
            println!(
                "shard cores={cores} workers={} epochs={} msgs={} fallbacks={} \
                 ipc={:.3} digest={:016x}",
                info.last_workers,
                info.epochs,
                info.messages,
                info.serial_fallbacks,
                stats.ipc(),
                stats.digest()
            );
        }
        "all" => {
            println!("{}", table1::render(TechNode::N32));
            println!("{}", table2::render());
            println!("{}", figure1::render());
            println!("{}", table3::render());
            run_figures_4_and_5(n, true, true);
            run_thermal();
        }
        other => {
            eprintln!(
                "unknown command {other:?}; try table1|table2|table3|fig1|fig4|fig5|thermal|powerdown|sweep|shard|all"
            );
            std::process::exit(2);
        }
    }
    if let Some(path) = parse_trace(&args) {
        if let Err(e) = cactid_obs::write_trace(&path, &format!("llc-study {cmd}")) {
            eprintln!("error: writing trace {}: {e}", path.display());
            std::process::exit(1);
        }
        eprint!("{}", cactid_obs::render_summary(&cactid_obs::snapshot()));
    }
}
