//! Table 3: projections of key properties of every memory-hierarchy level
//! at 32 nm (paper §4.1) — L1, L2, the five L3 options and the 8 Gb
//! main-memory chip.

use crate::configs::{self, LlcKind, CLOCK_HZ, MAX_PIPE_STAGES};
use crate::report::format_table;
use cactid_core::Solution;
use cactid_units::Seconds;

/// One column of Table 3.
#[derive(Debug, Clone)]
pub struct Table3Column {
    /// Level label ("L1", "L2", "L3 sram", … , "Main memory chip").
    pub label: String,
    /// Capacity \[bytes\] (per chip for main memory).
    pub capacity_bytes: u64,
    /// Banks.
    pub banks: u32,
    /// Subbanks per bank (stripes the organization interleaves across).
    pub subbanks: u32,
    /// Associativity (0 = not a cache).
    pub associativity: u32,
    /// Cache clock as a fraction of the CPU clock (1 / ratio).
    pub clock_ratio: u64,
    /// Access time [CPU cycles].
    pub access_cycles: u64,
    /// Random cycle time [CPU cycles].
    pub cycle_cycles: u64,
    /// Area \[mm²\] (per bank for L3s, per chip for main memory).
    pub area_mm2: f64,
    /// Area efficiency [%].
    pub area_eff_pct: f64,
    /// Standby/leakage power \[W\] (whole structure).
    pub leakage_w: f64,
    /// Refresh power \[W\].
    pub refresh_w: f64,
    /// Dynamic read energy per access \[nJ\].
    pub read_energy_nj: f64,
}

fn cycles(t: Seconds) -> u64 {
    (t.value() * CLOCK_HZ).ceil().max(1.0) as u64
}

fn column(
    label: &str,
    sol: &Solution,
    capacity: u64,
    banks: u32,
    assoc: u32,
    per_bank_area: bool,
) -> Table3Column {
    let access_raw = cycles(sol.access_time);
    let ratio = access_raw.div_ceil(MAX_PIPE_STAGES).max(1);
    let area = if per_bank_area {
        sol.area_mm2() / f64::from(banks)
    } else {
        sol.area_mm2()
    };
    Table3Column {
        label: label.to_string(),
        capacity_bytes: capacity,
        banks,
        subbanks: sol.org.ndbl,
        associativity: assoc,
        clock_ratio: ratio,
        access_cycles: access_raw.div_ceil(ratio) * ratio,
        cycle_cycles: cycles(sol.random_cycle).div_ceil(ratio) * ratio,
        area_mm2: area,
        area_eff_pct: sol.area_efficiency * 100.0,
        leakage_w: sol.leakage_power.value(),
        refresh_w: sol.refresh_power.value(),
        read_energy_nj: sol.read_energy_nj(),
    }
}

/// Computes all Table 3 columns (runs the CACTI-D sweeps; a few seconds).
pub fn table3() -> Vec<Table3Column> {
    let mut cols = Vec::new();
    // Build one config per LLC kind; L1/L2/MM are identical across them, so
    // take them from the first.
    let base = configs::build(LlcKind::NoL3);
    cols.push(column("L1", &base.l1, 32 << 10, 1, 8, false));
    cols.push(column("L2", &base.l2, 1 << 20, 1, 8, false));
    for &kind in LlcKind::ALL.iter().skip(1) {
        let cfg = configs::build(kind);
        let Some((cap, assoc, _, _)) = kind.l3_shape() else {
            unreachable!("every kind past NoL3 has an L3")
        };
        let Some(sol) = cfg.l3.as_ref() else {
            unreachable!("an L3 shape implies an L3 solution")
        };
        cols.push(column(
            &format!("L3 {}", kind.label()),
            sol,
            cap,
            8,
            assoc,
            true,
        ));
    }
    // Main memory chip: access time = tRCD + CL, cycle = tRC.
    let mm_sol = &base.main_memory;
    let Some(mm) = mm_sol.main_memory.as_ref() else {
        unreachable!("a main-memory solution carries chip-level data")
    };
    let access = cycles(mm.timing.t_rcd + mm.timing.cas_latency);
    let ratio = 16; // DDR interface clock vs 2 GHz core
    cols.push(Table3Column {
        label: "Main memory chip".into(),
        capacity_bytes: 1 << 30,
        banks: 8,
        subbanks: mm_sol.org.ndbl,
        associativity: 0,
        clock_ratio: ratio,
        access_cycles: access,
        cycle_cycles: cycles(mm.timing.t_rc),
        area_mm2: mm.chip_area.value() / 1e-6,
        area_eff_pct: mm.area_efficiency * 100.0,
        leakage_w: mm.energies.standby_power.value(),
        refresh_w: mm.energies.refresh_power.value(),
        read_energy_nj: (mm.energies.activate + mm.energies.read).value() * 8.0 * 1e9,
    });
    cols
}

fn human_capacity(bytes: u64) -> String {
    if bytes >= 1 << 30 {
        format!("{}Gb", (bytes * 8) >> 30)
    } else if bytes >= 1 << 20 {
        format!("{}MB", bytes >> 20)
    } else {
        format!("{}KB", bytes >> 10)
    }
}

/// Renders Table 3 as text (one row per level for readability — the paper
/// prints it transposed).
pub fn render() -> String {
    let cols = table3();
    let rows: Vec<Vec<String>> = cols
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                human_capacity(c.capacity_bytes),
                c.banks.to_string(),
                c.subbanks.to_string(),
                if c.associativity == 0 {
                    "-".into()
                } else {
                    c.associativity.to_string()
                },
                format!("1/{}", c.clock_ratio),
                c.access_cycles.to_string(),
                c.cycle_cycles.to_string(),
                format!("{:.2}", c.area_mm2),
                format!("{:.0}", c.area_eff_pct),
                format!("{:.3}", c.leakage_w),
                format!("{:.4}", c.refresh_w),
                format!("{:.2}", c.read_energy_nj),
            ]
        })
        .collect();
    format!(
        "Table 3: 32nm projections (2 GHz CPU cycles; L3 area per bank)\n{}",
        format_table(
            &[
                "Level", "Cap", "Bk", "Sub", "Asc", "Clk", "Acc", "Cyc", "mm2", "Eff%", "Leak W",
                "Refr W", "Erd nJ"
            ],
            &rows
        )
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_has_eight_columns_with_paper_shape() {
        let cols = table3();
        assert_eq!(cols.len(), 8);
        let by = |l: &str| {
            cols.iter()
                .find(|c| c.label.contains(l))
                .unwrap_or_else(|| panic!("{l} missing"))
        };
        let l1 = by("L1");
        let sram = by("sram");
        let lp = by("lp_dram_ed");
        let comm = by("cm_dram_c");
        let mm = by("Main memory");

        // Access-time ordering: L1 < SRAM L3 ≤ LP L3 < COMM L3 < memory.
        assert!(l1.access_cycles <= 3);
        assert!(sram.access_cycles <= lp.access_cycles + 1);
        assert!(lp.access_cycles < comm.access_cycles);
        assert!(comm.access_cycles < mm.access_cycles);

        // Leakage ordering (Table 3): SRAM > LP ≫ COMM.
        assert!(sram.leakage_w > lp.leakage_w);
        assert!(lp.leakage_w > 10.0 * comm.leakage_w);

        // Only DRAMs refresh; LP far more often than COMM.
        assert_eq!(sram.refresh_w, 0.0);
        assert!(lp.refresh_w > comm.refresh_w);

        // COMM-DRAM L3 densest: biggest capacity in comparable bank area.
        assert!(comm.area_mm2 < 3.0 * sram.area_mm2);
        assert!(mm.area_mm2 > 50.0 && mm.area_mm2 < 200.0);
    }

    #[test]
    fn render_mentions_every_level() {
        let s = render();
        for label in ["L1", "L2", "sram", "lp_dram_ed", "cm_dram_c", "Main memory"] {
            assert!(s.contains(label), "missing {label}");
        }
    }
}
