//! Extension: stacked-die temperature estimate (paper §4.3).
//!
//! The paper reports a HotSpot study: the maximum power density occurs
//! with the stacked SRAM L3, but thanks to long-channel devices and sleep
//! transistors the per-bank power stays ~450 mW and "the maximum observed
//! temperature difference between the different technologies was less than
//! 1.5 K." We reproduce that conclusion with a 1-D thermal-resistance
//! model of the face-to-face 3-D stack, which is sufficient for the
//! less-than-a-few-kelvin regime the paper reports.

use crate::configs::StudyConfig;

/// Vertical thermal resistance from the stacked L3 die to the heat-spreader
/// path, per unit area [K·m²/W]: silicon bulk + face-to-face interface.
/// ~100 µm thinned silicon (k≈120 W/mK) plus bond/underfill interface.
pub const R_TH_AREA: f64 = 4.0e-6;

/// Result of the thermal estimate for one L3 technology.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalEstimate {
    /// Configuration label.
    pub label: &'static str,
    /// Worst-case per-bank L3 power (leakage + refresh + peak dynamic) \[W\].
    pub bank_power: f64,
    /// Bank area \[m²\].
    pub bank_area: f64,
    /// Power density [W/cm²].
    pub power_density_w_cm2: f64,
    /// Temperature rise over the core die \[K\].
    pub delta_t: f64,
}

/// Estimates the stacked-die temperature rise for one study configuration
/// (those with an L3). Peak dynamic power assumes an access every random
/// cycle per bank — the worst case the paper's activity factors bound.
pub fn estimate(cfg: &StudyConfig) -> Option<ThermalEstimate> {
    let l3 = cfg.l3.as_ref()?;
    let banks = 8.0;
    let leak_per_bank = ((l3.leakage_power + l3.refresh_power) / banks).value();
    let peak_rate = 1.0 / l3.random_cycle.value().max(1e-12);
    // The paper's workloads keep L3 activity well below peak; use a 10 %
    // activity factor for the "hot" estimate, as the observed per-bank
    // power (~450 mW max) implies.
    let dyn_per_bank = 0.1 * peak_rate * l3.read_energy.value();
    let bank_power = leak_per_bank + dyn_per_bank;
    let bank_area = (l3.area / banks).value();
    let density = bank_power / bank_area;
    Some(ThermalEstimate {
        label: cfg.kind.label(),
        bank_power,
        bank_area,
        power_density_w_cm2: density / 1e4,
        delta_t: density * R_TH_AREA,
    })
}

/// Renders the comparison across configurations.
pub fn render(estimates: &[ThermalEstimate]) -> String {
    let mut s = String::from(
        "Extension (paper §4.3): stacked-die temperature rise\n\
         config        bank P (W)  density W/cm2  dT (K)\n",
    );
    for e in estimates {
        s.push_str(&format!(
            "  {:11} {:10.3} {:14.2} {:7.3}\n",
            e.label, e.bank_power, e.power_density_w_cm2, e.delta_t
        ));
    }
    if let (Some(max), Some(min)) = (
        estimates.iter().map(|e| e.delta_t).max_by(f64::total_cmp),
        estimates.iter().map(|e| e.delta_t).min_by(f64::total_cmp),
    ) {
        s.push_str(&format!(
            "  max difference between technologies: {:.2} K (paper: < 1.5 K)\n",
            max - min
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::{build, LlcKind};

    #[test]
    fn temperature_differences_stay_below_paper_bound() {
        let estimates: Vec<ThermalEstimate> = LlcKind::ALL
            .iter()
            .skip(1)
            .map(|&k| estimate(&build(k)).expect("has L3"))
            .collect();
        assert_eq!(estimates.len(), 5);
        let max = estimates.iter().map(|e| e.delta_t).fold(0.0, f64::max);
        let min = estimates
            .iter()
            .map(|e| e.delta_t)
            .fold(f64::INFINITY, f64::min);
        // The paper: < 1.5 K between technologies; allow 2 K headroom for
        // our coarser model.
        assert!(max - min < 2.0, "ΔT spread {:.2} K", max - min);
        // The logic-process caches (SRAM / LP-DRAM) dissipate far more per
        // bank than COMM-DRAM — yet the ΔT stays small, which is the
        // paper's point.
        let sram = estimates.iter().find(|e| e.label == "sram").unwrap();
        let comm = estimates.iter().find(|e| e.label == "cm_dram_c").unwrap();
        assert!(sram.bank_power > 10.0 * comm.bank_power);
        // SRAM per-bank power stays sub-watt (the paper's ~450 mW with
        // sleep transistors and long-channel devices).
        assert!(sram.bank_power < 1.2, "{} W", sram.bank_power);
    }

    #[test]
    fn no_l3_has_no_estimate() {
        assert!(estimate(&build(LlcKind::NoL3)).is_none());
    }
}
