//! The service: request dispatch, the solve path, and the two transports.
//!
//! One [`Service`] owns an injectable in-process solve memo
//! ([`SolveCache`]), an optional persistent [`SolutionStore`], and a
//! thread budget for grid fan-out. Both transports — a stdin/stdout JSONL
//! loop and a TCP listener — funnel into the same line handler, so they
//! are byte-for-byte interchangeable and the stdio loop (trivially
//! testable, no sockets) pins the protocol behavior for both.
//!
//! # The solve path and byte identity
//!
//! A `solve` request resolves in three stages, cheapest first:
//!
//! 1. **store** — fingerprint + canonical-key lookup in the persistent
//!    store; a hit splices the stored body under the request's `id`
//!    without any model evaluation.
//! 2. **memo** — the in-process [`SolveCache`] (shared across requests
//!    and grid points; the resident [`cactid_tech::Technology`] tables
//!    are likewise constructed once per node).
//! 3. **solve** — the full organization sweep, after which the rendered
//!    body is appended to the store.
//!
//! Records carry only deterministic data (the explore JSONL contract), so
//! the spliced warm answer is byte-identical to a cold in-process solve
//! by construction: both come from the same
//! [`cactid_explore::record::render_solved`] output, differing only in
//! the `idx` prefix the service re-attaches per request.

use crate::error::ServeError;
use crate::protocol::{parse_request, Request};
use crate::store::SolutionStore;
use cactid_core::MemorySpec;
use cactid_explore::hash::{spec_canon, spec_fingerprint};
use cactid_explore::json::JsonObject;
use cactid_explore::record::{mode_label, render_invalid, render_solved};
use cactid_explore::{pool, GridPoint, SolveCache};
use std::io::{BufRead, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Instant;

/// Service construction options.
#[derive(Debug, Clone, Default)]
pub struct ServeConfig {
    /// Worker threads for `grid` fan-out; `0` means the pool default.
    pub threads: usize,
    /// Path of the persistent solution store; `None` serves memo-only.
    pub store: Option<PathBuf>,
}

/// How a service loop ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeOutcome {
    /// Requests handled by this loop (empty lines don't count).
    pub requests: u64,
    /// `true` when the loop ended on a `shutdown` request rather than
    /// end-of-input.
    pub shutdown: bool,
}

/// A resident solve service. See the module docs for the solve path.
#[derive(Debug)]
pub struct Service {
    cache: SolveCache,
    store: Option<SolutionStore>,
    threads: usize,
    requests: AtomicU64,
}

/// The store lookup key: everything besides the spec that shapes the
/// rendered body (opt label and access-mode label), then the injective
/// canonical spec encoding. Labels come from fixed tables, so the key is
/// TSV-safe end to end.
fn store_key(point: &GridPoint, spec: &MemorySpec) -> String {
    format!(
        "{};{};{}",
        point.opt_label,
        mode_label(point.access_mode),
        spec_canon(spec)
    )
}

/// The stored portion of a record line: everything after `{"idx":N,`.
fn record_body(line: &str) -> &str {
    line.split_once(',').map_or(line, |(_, rest)| rest)
}

/// Reattaches a request-local `idx` to a stored body.
fn splice_idx(idx: usize, body: &str) -> String {
    format!("{{\"idx\":{idx},{body}")
}

fn error_line(id: u64, msg: &str) -> String {
    let mut o = JsonObject::new();
    o.u64("id", id).str("error", msg);
    o.finish()
}

impl Service {
    /// Builds a service: opens (or creates) the persistent store when
    /// configured, with an empty solve memo.
    ///
    /// # Errors
    ///
    /// Store open failures; see [`SolutionStore::open`].
    pub fn new(config: &ServeConfig) -> Result<Self, ServeError> {
        let store = match &config.store {
            Some(p) => Some(SolutionStore::open(p)?),
            None => None,
        };
        Ok(Service {
            cache: SolveCache::new(),
            store,
            threads: config.threads,
            requests: AtomicU64::new(0),
        })
    }

    /// The persistent store, when one is configured.
    pub fn store(&self) -> Option<&SolutionStore> {
        self.store.as_ref()
    }

    /// The in-process solve memo.
    pub fn cache(&self) -> &SolveCache {
        &self.cache
    }

    /// Requests handled over the service's lifetime (all transports).
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Answers one request line. Returns the response lines plus whether
    /// the request asked the service to shut down. Blank lines produce no
    /// response and don't count as requests.
    pub fn handle_line(&self, line: &str) -> (Vec<String>, bool) {
        let line = line.trim();
        if line.is_empty() {
            return (Vec::new(), false);
        }
        let t0 = Instant::now();
        cactid_obs::counter!("serve.requests").inc();
        self.requests.fetch_add(1, Ordering::Relaxed);
        let (responses, shutdown) = match parse_request(line) {
            Err((id, msg)) => (vec![error_line(id, &msg)], false),
            Ok(Request::Solve { point, .. }) => (vec![self.solve_line(&point)], false),
            Ok(Request::Grid { id, grid }) => (self.grid_lines(id, &grid), false),
            Ok(Request::Stats { id }) => (vec![self.stats_line(id)], false),
            Ok(Request::Shutdown { id }) => {
                let mut o = JsonObject::new();
                o.u64("id", id).bool("ok", true);
                (vec![o.finish()], true)
            }
        };
        let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
        cactid_obs::histogram!("serve.request.ns").record(ns);
        (responses, shutdown)
    }

    /// Resolves one point: store hit → memo → full solve (then store
    /// insert). Invalid specs render as `"invalid"` records and never
    /// touch the store.
    fn solve_line(&self, point: &GridPoint) -> String {
        let spec = match &point.spec {
            Ok(spec) => spec,
            Err(e) => return render_invalid(point, e),
        };
        let fp = spec_fingerprint(spec);
        let key = store_key(point, spec);
        if let Some(store) = &self.store {
            if let Some(body) = store.get(fp, &key) {
                return splice_idx(point.idx, &body);
            }
        }
        let (entry, _) = self.cache.solve_point(spec, None);
        let line = render_solved(point, &entry);
        if let Some(store) = &self.store {
            if let Err(e) = store.insert(fp, &key, record_body(&line)) {
                // A failing append must not corrupt the answer: serve the
                // solve, surface the store problem out of band.
                eprintln!("cactid-serve: {e}");
            }
        }
        line
    }

    fn grid_lines(&self, id: u64, grid: &cactid_explore::Grid) -> Vec<String> {
        let expansion = match grid.expand() {
            Ok(e) => e,
            Err(e) => return vec![error_line(id, &e.to_string())],
        };
        let mut lines =
            pool::parallel_map(self.threads, &expansion.points, |_, p| self.solve_line(p));
        let mut done = JsonObject::new();
        done.u64("id", id)
            .bool("done", true)
            .u64("points", lines.len() as u64);
        lines.push(done.finish());
        lines
    }

    fn stats_line(&self, id: u64) -> String {
        let mut o = JsonObject::new();
        o.u64("id", id)
            .u64("requests", self.requests_served())
            .u64("cache_entries", self.cache.len() as u64)
            .u64(
                "store_entries",
                self.store.as_ref().map_or(0, |s| s.len() as u64),
            );
        o.finish()
    }

    /// Serves JSONL requests from `reader` until end-of-input or a
    /// `shutdown` request, writing response lines to `writer` (flushed
    /// after every request, so interactive callers see answers
    /// immediately).
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] on transport read/write failures. Malformed
    /// requests are answered in-band and are not errors.
    pub fn run_lines(
        &self,
        mut reader: impl BufRead,
        mut writer: impl Write,
    ) -> Result<ServeOutcome, ServeError> {
        let mut outcome = ServeOutcome {
            requests: 0,
            shutdown: false,
        };
        let mut line = String::new();
        loop {
            line.clear();
            let n = reader
                .read_line(&mut line)
                .map_err(|e| ServeError::Io(format!("read: {e}")))?;
            if n == 0 {
                break;
            }
            let (responses, shutdown) = self.handle_line(&line);
            if !responses.is_empty() {
                outcome.requests += 1;
            }
            for r in &responses {
                writeln!(writer, "{r}").map_err(|e| ServeError::Io(format!("write: {e}")))?;
            }
            writer
                .flush()
                .map_err(|e| ServeError::Io(format!("write: {e}")))?;
            if shutdown {
                outcome.shutdown = true;
                break;
            }
        }
        Ok(outcome)
    }

    /// Serves stdin/stdout — the hermetic transport `ci.sh` and tests
    /// drive, and the natural mode under a process supervisor.
    ///
    /// # Errors
    ///
    /// See [`Service::run_lines`].
    pub fn run_stdio(&self) -> Result<ServeOutcome, ServeError> {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        self.run_lines(stdin.lock(), stdout.lock())
    }

    /// Accepts TCP connections until a `shutdown` request arrives on any
    /// of them, serving each connection on its own scoped thread (they
    /// all share this service's memo and store). Connections open at
    /// shutdown finish their current request loop when their client
    /// closes.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the listener's local address cannot be
    /// read. Per-connection failures are reported to stderr and do not
    /// stop the service.
    pub fn run_tcp(&self, listener: &TcpListener) -> Result<(), ServeError> {
        let addr = listener
            .local_addr()
            .map_err(|e| ServeError::Io(format!("listener: {e}")))?;
        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            for conn in listener.incoming() {
                if stop.load(Ordering::SeqCst) {
                    break;
                }
                let stream = match conn {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("cactid-serve: accept: {e}");
                        continue;
                    }
                };
                let stop = &stop;
                scope.spawn(move || {
                    if let Err(e) = self.serve_stream(stream, stop, addr) {
                        eprintln!("cactid-serve: connection: {e}");
                    }
                });
            }
        });
        Ok(())
    }

    fn serve_stream(
        &self,
        stream: TcpStream,
        stop: &AtomicBool,
        addr: SocketAddr,
    ) -> Result<(), ServeError> {
        let reader = std::io::BufReader::new(
            stream
                .try_clone()
                .map_err(|e| ServeError::Io(format!("socket: {e}")))?,
        );
        let outcome = self.run_lines(reader, stream)?;
        if outcome.shutdown {
            stop.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it can observe the stop flag.
            let _ = TcpStream::connect(addr);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memo_only() -> Service {
        Service::new(&ServeConfig::default()).unwrap()
    }

    fn solve_req(id: u64) -> String {
        format!("{{\"id\":{id},\"op\":\"solve\",\"size\":65536,\"assoc\":4}}")
    }

    #[test]
    fn stdio_loop_answers_and_stops_on_shutdown() {
        let svc = memo_only();
        let input = format!(
            "{}\n\n{}\n{{\"id\":5,\"op\":\"stats\"}}\n{{\"id\":6,\"op\":\"shutdown\"}}\nignored after shutdown\n",
            solve_req(1),
            solve_req(2)
        );
        let mut out = Vec::new();
        let outcome = svc.run_lines(input.as_bytes(), &mut out).unwrap();
        assert_eq!(outcome.requests, 4, "blank line is not a request");
        assert!(outcome.shutdown);
        let out = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("{\"idx\":1,"));
        assert!(lines[0].contains("\"status\":\"ok\""));
        assert!(lines[1].starts_with("{\"idx\":2,"));
        assert!(lines[2].contains("\"requests\":3"));
        assert!(
            lines[2].contains("\"cache_entries\":1"),
            "memo shared: {}",
            lines[2]
        );
        assert_eq!(lines[3], "{\"id\":6,\"ok\":true}");
    }

    #[test]
    fn duplicate_requests_differ_only_in_idx() {
        let svc = memo_only();
        let (a, _) = svc.handle_line(&solve_req(1));
        let (b, _) = svc.handle_line(&solve_req(42));
        assert_eq!(record_body(&a[0]), record_body(&b[0]));
        assert!(b[0].starts_with("{\"idx\":42,"));
    }

    #[test]
    fn malformed_lines_are_answered_in_band() {
        let svc = memo_only();
        let (r, shutdown) = svc.handle_line("{\"id\":3,\"op\":\"fly\"}");
        assert!(!shutdown);
        assert!(r[0].starts_with("{\"id\":3,\"error\":"));
        let (r, _) = svc.handle_line("garbage");
        assert!(r[0].starts_with("{\"id\":0,\"error\":"));
    }

    #[test]
    fn invalid_specs_render_as_invalid_records() {
        let svc = memo_only();
        let (r, _) = svc.handle_line("{\"id\":9,\"op\":\"solve\",\"size\":49152}");
        assert!(r[0].starts_with("{\"idx\":9,"));
        assert!(r[0].contains("\"status\":\"invalid\""));
    }

    #[test]
    fn grid_op_streams_points_then_a_done_line() {
        let svc = memo_only();
        let (r, _) =
            svc.handle_line("{\"id\":7,\"op\":\"grid\",\"sizes\":[65536,131072],\"assocs\":[4,8]}");
        assert_eq!(r.len(), 5);
        for (i, line) in r[..4].iter().enumerate() {
            assert!(line.starts_with(&format!("{{\"idx\":{i},")), "{line}");
            assert!(line.contains("\"status\":\"ok\""));
        }
        assert_eq!(r[4], "{\"id\":7,\"done\":true,\"points\":4}");
        // The grid populated the shared memo; a matching solve re-renders
        // the same body without a fresh sweep.
        let (single, _) = svc.handle_line(&solve_req(3));
        assert_eq!(record_body(&single[0]), record_body(&r[0]));
    }

    #[test]
    fn tcp_round_trip_and_shutdown() {
        let svc = memo_only();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|scope| {
            let svc = &svc;
            let handle = scope.spawn(move || svc.run_tcp(&listener));
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = std::io::BufReader::new(stream.try_clone().unwrap());
            let mut w = stream;
            writeln!(w, "{}", solve_req(11)).unwrap();
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.starts_with("{\"idx\":11,"), "{line}");
            writeln!(w, "{{\"id\":12,\"op\":\"shutdown\"}}").unwrap();
            line.clear();
            reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim(), "{\"id\":12,\"ok\":true}");
            drop(w);
            handle.join().unwrap().unwrap();
        });
    }
}
