//! The disk-backed, content-addressed solution store.
//!
//! The store maps a solved spec to the rendered body of its JSONL record,
//! keyed by the spec's 64-bit FNV-1a fingerprint
//! ([`cactid_explore::hash::spec_fingerprint`]) and guarded against
//! fingerprint collisions by the injective canonical encoding
//! ([`cactid_explore::hash::spec_canon`]): lookups compare the full
//! canonical key, so a 64-bit collision degrades to a miss instead of a
//! wrong answer — the same discipline as the in-process
//! [`cactid_explore::SolveCache`].
//!
//! # On-disk format
//!
//! A plain-text, append-only file: one magic header line, then one TSV
//! line per stored solution:
//!
//! ```text
//! #cactid-serve-store v1
//! <fp:016x><TAB><key><TAB><body><TAB>.
//! ```
//!
//! `key` is the canonical spec encoding (tab- and newline-free by
//! construction) prefixed with the opt label and access-mode label the
//! record was rendered under; `body` is the record line minus its leading
//! `{"idx":N,` (JSON string escaping keeps it tab-free). The trailing `.`
//! is the same completeness sentinel as the explore checkpoint format: no
//! other field ends a line with `<TAB>.`, so no truncation of a line can
//! still parse.
//!
//! # Crash safety
//!
//! The load discipline is borrowed from
//! [`cactid_explore::resume`]: only newline-terminated lines count, a
//! trailing newline-less fragment left by a kill mid-append is truncated
//! away ([`cactid_explore::resume::trim_torn_tail`]) before the store
//! appends again, and a malformed *interior* line fails the open loudly —
//! tolerating it would silently discard every record written after it.
//! Each insert is a single buffered write of one full line followed by a
//! flush, so the file only ever grows by whole records plus at most one
//! torn tail.

use crate::error::ServeError;
use cactid_explore::resume::trim_torn_tail;
use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Magic first line of a store file; bumps when the record format does.
pub const STORE_MAGIC: &str = "#cactid-serve-store v1";

/// Terminal field of every record line. No key or body field can end a
/// line with `<TAB>.`, so a truncated line can never pass as complete.
const SENTINEL: &str = ".";

#[derive(Debug, Default)]
struct Inner {
    /// fp → `[(key, body)]`; buckets are tiny (collisions are rare).
    index: HashMap<u64, Vec<(String, String)>>,
    /// Append handle; `None` for in-memory stores.
    file: Option<std::fs::File>,
}

/// A thread-safe content-addressed store of rendered solution bodies,
/// optionally spilled to an append-only file so later processes reopen it
/// warm. See the module docs for format and crash-safety.
#[derive(Debug)]
pub struct SolutionStore {
    inner: Mutex<Inner>,
    path: Option<PathBuf>,
}

fn io_err(path: &Path, e: &std::io::Error) -> ServeError {
    ServeError::Io(format!("{}: {e}", path.display()))
}

impl SolutionStore {
    /// An empty store with no backing file: lookups and inserts work, but
    /// nothing survives the process.
    pub fn in_memory() -> Self {
        SolutionStore {
            inner: Mutex::new(Inner::default()),
            path: None,
        }
    }

    /// Opens (or creates) the store at `path`, loading every complete
    /// record and positioning for append. A torn trailing fragment from a
    /// killed writer is truncated away; that record is simply re-solved
    /// and re-inserted by whoever needs it next.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] if the file cannot be read, truncated or opened
    /// for append, and [`ServeError::Store`] if it exists but has the
    /// wrong magic or a malformed interior line.
    pub fn open(path: &Path) -> Result<Self, ServeError> {
        trim_torn_tail(path).map_err(|e| ServeError::Io(e.to_string()))?;
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
            Err(e) => return Err(io_err(path, &e)),
        };
        let mut index: HashMap<u64, Vec<(String, String)>> = HashMap::new();
        let mut lines = text.lines().enumerate();
        if let Some((_, head)) = lines.next() {
            if head != STORE_MAGIC {
                return Err(ServeError::Store(format!(
                    "{}: not a cactid-serve store (header {head:?})",
                    path.display()
                )));
            }
            for (n, line) in lines {
                let (fp, key, body) = parse_record(line).ok_or_else(|| {
                    ServeError::Store(format!(
                        "{}: malformed record at line {}; the file is corrupt — \
                         delete it or pick another --store path",
                        path.display(),
                        n + 1
                    ))
                })?;
                let bucket = index.entry(fp).or_default();
                // First write wins, matching the in-process memo: a
                // duplicate append (two racing services) is harmless.
                if !bucket.iter().any(|(k, _)| k == key) {
                    bucket.push((key.to_string(), body.to_string()));
                }
            }
        }
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, &e))?;
        if text.is_empty() {
            writeln!(file, "{STORE_MAGIC}").map_err(|e| io_err(path, &e))?;
            file.flush().map_err(|e| io_err(path, &e))?;
        }
        Ok(SolutionStore {
            inner: Mutex::new(Inner {
                index,
                file: Some(file),
            }),
            path: Some(path.to_path_buf()),
        })
    }

    /// The backing file, if any.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// The number of stored solutions.
    pub fn len(&self) -> usize {
        self.lock().index.values().map(Vec::len).sum()
    }

    /// `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Looks up a stored body by fingerprint, verifying the full canonical
    /// key so fingerprint collisions read as misses.
    pub fn get(&self, fp: u64, key: &str) -> Option<String> {
        let hit = self
            .lock()
            .index
            .get(&fp)
            .and_then(|bucket| bucket.iter().find(|(k, _)| k == key))
            .map(|(_, body)| body.clone());
        if hit.is_some() {
            cactid_obs::counter!("serve.store.hits").inc();
        } else {
            cactid_obs::counter!("serve.store.misses").inc();
        }
        hit
    }

    /// Inserts a solved body, appending it to the backing file (one line,
    /// flushed). Returns `false` without writing when the key is already
    /// present — inserts are idempotent, so duplicate requests racing past
    /// the lookup cost one solve, never a corrupt double record.
    ///
    /// `key` and `body` must be tab- and newline-free; the canonical spec
    /// encoding and JSON record rendering both guarantee this.
    ///
    /// # Errors
    ///
    /// [`ServeError::Io`] when the append or flush fails.
    pub fn insert(&self, fp: u64, key: &str, body: &str) -> Result<bool, ServeError> {
        debug_assert!(
            !key.contains(['\t', '\n']) && !body.contains(['\t', '\n']),
            "store fields must be TSV-safe"
        );
        let mut inner = self.lock();
        let bucket = inner.index.entry(fp).or_default();
        if bucket.iter().any(|(k, _)| k == key) {
            return Ok(false);
        }
        bucket.push((key.to_string(), body.to_string()));
        if let Some(file) = inner.file.as_mut() {
            let path = self.path.as_deref().unwrap_or_else(|| Path::new("store"));
            writeln!(file, "{fp:016x}\t{key}\t{body}\t{SENTINEL}")
                .and_then(|()| file.flush())
                .map_err(|e| io_err(path, &e))?;
        }
        cactid_obs::counter!("serve.store.inserts").inc();
        Ok(true)
    }
}

/// Parses one record line into `(fp, key, body)`; `None` on any
/// malformation (wrong arity, bad hex, missing sentinel).
fn parse_record(line: &str) -> Option<(u64, &str, &str)> {
    let mut fields = line.split('\t');
    let (fp, key, body, sentinel) = (
        fields.next()?,
        fields.next()?,
        fields.next()?,
        fields.next()?,
    );
    if fields.next().is_some() || sentinel != SENTINEL || fp.len() != 16 {
        return None;
    }
    let fp = u64::from_str_radix(fp, 16).ok()?;
    if key.is_empty() || body.is_empty() {
        return None;
    }
    Some((fp, key, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cactid-serve-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn round_trips_across_reopen() {
        let p = tmp("roundtrip");
        std::fs::remove_file(&p).ok();
        {
            let s = SolutionStore::open(&p).unwrap();
            assert!(s.is_empty());
            assert!(s.insert(0xabcd, "key-a", "\"x\":1}").unwrap());
            assert!(
                !s.insert(0xabcd, "key-a", "\"x\":1}").unwrap(),
                "idempotent"
            );
            assert!(s.insert(0xabce, "key-b", "\"y\":2}").unwrap());
            assert_eq!(s.len(), 2);
        }
        let s = SolutionStore::open(&p).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0xabcd, "key-a").as_deref(), Some("\"x\":1}"));
        assert_eq!(s.get(0xabce, "key-b").as_deref(), Some("\"y\":2}"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn fingerprint_collisions_read_as_misses() {
        let s = SolutionStore::in_memory();
        s.insert(7, "key-a", "\"a\":1}").unwrap();
        s.insert(7, "key-b", "\"b\":2}").unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(7, "key-a").as_deref(), Some("\"a\":1}"));
        assert_eq!(s.get(7, "key-b").as_deref(), Some("\"b\":2}"));
        assert!(s.get(7, "key-c").is_none(), "collision degrades to a miss");
    }

    #[test]
    fn torn_tail_is_recovered_and_reappended_cleanly() {
        let p = tmp("torn");
        std::fs::remove_file(&p).ok();
        {
            let s = SolutionStore::open(&p).unwrap();
            s.insert(1, "key-1", "\"a\":1}").unwrap();
        }
        // Simulate a kill mid-append: a trailing fragment with no newline.
        let mut f = std::fs::OpenOptions::new().append(true).open(&p).unwrap();
        write!(f, "0000000000000002\tkey-2\t\"b\":").unwrap();
        drop(f);

        let s = SolutionStore::open(&p).unwrap();
        assert_eq!(s.len(), 1, "the torn record is gone, not half-loaded");
        s.insert(3, "key-3", "\"c\":3}").unwrap();
        drop(s);
        // The re-append started on a fresh line: everything loads.
        let s = SolutionStore::open(&p).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(3, "key-3").as_deref(), Some("\"c\":3}"));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn interior_corruption_fails_the_open_loudly() {
        let p = tmp("corrupt");
        std::fs::write(
            &p,
            format!("{STORE_MAGIC}\n0000000000000001\tkey\t\"a\":1\nmore\tstuff\t.\t.\n"),
        )
        .unwrap();
        match SolutionStore::open(&p) {
            Err(ServeError::Store(msg)) => assert!(msg.contains("line 2"), "{msg}"),
            other => panic!("expected store corruption, got {other:?}"),
        }
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let p = tmp("magic");
        std::fs::write(&p, "#something-else v9\n").unwrap();
        assert!(matches!(SolutionStore::open(&p), Err(ServeError::Store(_))));
        std::fs::remove_file(&p).ok();
    }

    #[test]
    fn no_truncation_of_a_record_line_parses() {
        let full = "00000000000000ff\tkey\t\"a\":1}\t.";
        assert!(parse_record(full).is_some());
        for cut in 0..full.len() {
            assert!(parse_record(&full[..cut]).is_none(), "prefix {cut} parsed");
        }
    }
}
