//! The service error type.

use std::fmt;

/// Anything that can fail while opening or appending the solution store or
/// running a service loop. Protocol-level problems (a malformed request
/// line) are **not** errors at this level — they become error *responses*
/// on the wire, so one bad client line never takes the service down.
#[derive(Debug)]
pub enum ServeError {
    /// A filesystem or socket operation failed; carries the path or peer
    /// and the OS error text.
    Io(String),
    /// The store file exists but is not a valid store: wrong magic, or a
    /// malformed interior line (a torn *tail* is recovered silently; torn
    /// interiors are corruption).
    Store(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(msg) => write!(f, "i/o error: {msg}"),
            ServeError::Store(msg) => write!(f, "solution store error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}
