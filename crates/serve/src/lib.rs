//! # cactid-serve — a persistent solve/explore service for CACTI-D
//!
//! One-shot CLI invocations re-pay technology construction and the full
//! organization sweep on every call, even for specs solved seconds ago.
//! This crate keeps a solver *resident*: a long-running service that
//! accepts spec and grid queries as JSONL requests, batches them onto the
//! exploration crate's work-claiming pool against one resident
//! [`cactid_tech::Technology`] and one shared solve memo, and answers in
//! the exploration engine's record schema — a `serve` answer for a spec
//! is byte-identical to the line `cactid explore` would write for it.
//!
//! Three layers:
//!
//! * **[`mod@store`]** — a disk-backed, content-addressed
//!   [`SolutionStore`]: solutions keyed by the spec's FNV-1a fingerprint,
//!   guarded by the injective canonical encoding
//!   ([`cactid_explore::hash::spec_canon`]), spilled to an append-only
//!   file with the torn-tail-safe load discipline of the exploration
//!   checkpoint format — so restarts share warm results, and a warm
//!   answer is bitwise equal to the cold solve it replaced.
//! * **[`mod@protocol`]** — the JSONL [`Request`] grammar
//!   (`solve`/`grid`/`stats`/`shutdown`), parsed with the workspace's own
//!   hermetic JSON parser; malformed lines become in-band error
//!   responses, never crashes.
//! * **[`mod@service`]** — the [`Service`]: request dispatch over two
//!   interchangeable transports, a stdin/stdout loop (what tests and
//!   `ci.sh` drive) and a std-TCP listener, both funneling into one line
//!   handler.
//!
//! # Quickstart
//!
//! ```
//! use cactid_serve::{Service, ServeConfig};
//!
//! # fn main() -> Result<(), cactid_serve::ServeError> {
//! let svc = Service::new(&ServeConfig::default())?; // memo-only, no disk
//! let input = "{\"id\":1,\"op\":\"solve\",\"size\":65536}\n";
//! let mut out = Vec::new();
//! svc.run_lines(input.as_bytes(), &mut out)?;
//! assert!(String::from_utf8(out).unwrap().starts_with("{\"idx\":1,"));
//! # Ok(())
//! # }
//! ```

pub mod error;
pub mod protocol;
pub mod service;
pub mod store;

pub use error::ServeError;
pub use protocol::{parse_request, Request};
pub use service::{ServeConfig, ServeOutcome, Service};
pub use store::{SolutionStore, STORE_MAGIC};
