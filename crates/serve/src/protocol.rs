//! The JSONL request protocol.
//!
//! One request per line, one JSON object per request; responses reuse the
//! exploration engine's record schema byte-for-byte (a `serve` answer for
//! a spec is the same line `cactid explore` would have written for it).
//!
//! ```text
//! {"id":1,"op":"solve","size":1048576,"assoc":8,"cell":"sram","node":32}
//! {"id":2,"op":"grid","sizes":[65536,131072],"assocs":[4,8]}
//! {"id":3,"op":"stats"}
//! {"id":4,"op":"shutdown"}
//! ```
//!
//! * `solve` — one spec, answered with one record whose `idx` is the
//!   request `id`. Fields mirror the classic CLI flags: `size` (bytes,
//!   required), `block` (64), `assoc` (8), `banks` (1), `cell`
//!   (`"sram"`/`"lp-dram"`/`"comm-dram"`), `node` (nm, 32), `mode`
//!   (`"normal"`/`"sequential"`/`"fast"`), `opt` (a named variant:
//!   `"default"`/`"ed"`/`"c"`), `ram` (bool), and `main_memory`
//!   (`{"io":8,"burst":8,"prefetch":8,"page":8192}`) for the §2.1 DRAM
//!   chip model. Unknown fields are ignored (forward compatibility).
//! * `grid` — a whole sweep, fields mirroring the `cactid explore` axis
//!   flags (`sizes` required; `blocks`, `assocs`, `banks`, `nodes`,
//!   `cells`, `opts`, `mode` optional); answered with one record per
//!   point (grid-local `idx`) and a final `{"id":N,"done":true,...}`
//!   line.
//! * `stats` / `shutdown` — service introspection and orderly stop.
//!
//! Parse failures are not service errors: the caller turns the message
//! into an `{"id":N,"error":"..."}` response line and keeps serving.

use cactid_analyze::json::{parse, JsonValue};
use cactid_core::{AccessMode, MemoryKind, MemorySpec};
use cactid_explore::{Grid, GridPoint, OptVariant};
use cactid_tech::{CellTechnology, TechNode};

/// A parsed request.
#[derive(Debug)]
pub enum Request {
    /// Solve one spec; the answer is one record at `idx: id`.
    Solve {
        /// Client-chosen correlation id, echoed as the record `idx`.
        id: u64,
        /// The point to solve (carries the spec or its validation error).
        point: Box<GridPoint>,
    },
    /// Solve a whole grid on the service's pool.
    Grid {
        /// Client-chosen correlation id, echoed in the `done` line.
        id: u64,
        /// The sweep definition.
        grid: Grid,
    },
    /// Report request/cache/store counts.
    Stats {
        /// Client-chosen correlation id.
        id: u64,
    },
    /// Stop the service loop after acknowledging.
    Shutdown {
        /// Client-chosen correlation id.
        id: u64,
    },
}

fn parse_cell(v: &str) -> Option<CellTechnology> {
    match v {
        "sram" => Some(CellTechnology::Sram),
        "lp-dram" | "lpdram" => Some(CellTechnology::LpDram),
        "comm-dram" | "commdram" => Some(CellTechnology::CommDram),
        _ => None,
    }
}

fn parse_mode(v: &str) -> Option<AccessMode> {
    match v {
        "normal" => Some(AccessMode::Normal),
        "sequential" => Some(AccessMode::Sequential),
        "fast" => Some(AccessMode::Fast),
        _ => None,
    }
}

fn field_u64(v: &JsonValue, key: &str, default: u64) -> Result<u64, String> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_u64()
            .ok_or_else(|| format!("field {key:?} must be a non-negative integer")),
    }
}

fn field_u32(v: &JsonValue, key: &str, default: u32) -> Result<u32, String> {
    let raw = field_u64(v, key, u64::from(default))?;
    u32::try_from(raw).map_err(|_| format!("field {key:?} is out of range"))
}

fn field_str<'a>(v: &'a JsonValue, key: &str, default: &'a str) -> Result<&'a str, String> {
    match v.get(key) {
        None => Ok(default),
        Some(f) => f
            .as_str()
            .ok_or_else(|| format!("field {key:?} must be a string")),
    }
}

fn node_from_nm(nm: u64) -> Result<TechNode, String> {
    u32::try_from(nm)
        .ok()
        .and_then(TechNode::from_nm)
        .ok_or_else(|| format!("unknown technology node {nm} nm"))
}

fn cell_from(v: &str) -> Result<CellTechnology, String> {
    parse_cell(v).ok_or_else(|| format!("unknown cell technology {v:?}"))
}

fn mode_from(v: &str) -> Result<AccessMode, String> {
    parse_mode(v).ok_or_else(|| format!("unknown access mode {v:?}"))
}

fn opt_from(v: &str) -> Result<OptVariant, String> {
    OptVariant::named(v).ok_or_else(|| format!("unknown opt variant {v:?}"))
}

/// Extracts the field `key` as a list, mapping each element through
/// `each`; `None` when the field is absent.
fn field_list<T>(
    v: &JsonValue,
    key: &str,
    each: impl Fn(&JsonValue) -> Result<T, String>,
) -> Result<Option<Vec<T>>, String> {
    let Some(f) = v.get(key) else { return Ok(None) };
    let JsonValue::Arr(items) = f else {
        return Err(format!("field {key:?} must be an array"));
    };
    if items.is_empty() {
        return Err(format!("field {key:?} must not be empty"));
    }
    items.iter().map(each).collect::<Result<_, _>>().map(Some)
}

fn elem_u64(v: &JsonValue) -> Result<u64, String> {
    v.as_u64()
        .ok_or_else(|| "array elements must be non-negative integers".to_string())
}

fn elem_u32(v: &JsonValue) -> Result<u32, String> {
    u32::try_from(elem_u64(v)?).map_err(|_| "array element out of range".to_string())
}

fn elem_str(v: &JsonValue) -> Result<&str, String> {
    v.as_str()
        .ok_or_else(|| "array elements must be strings".to_string())
}

fn solve_request(id: u64, v: &JsonValue) -> Result<Request, String> {
    let size = v
        .get("size")
        .ok_or_else(|| "solve requests require a \"size\" field (bytes)".to_string())?
        .as_u64()
        .ok_or_else(|| "field \"size\" must be a non-negative integer".to_string())?;
    let block = field_u32(v, "block", 64)?;
    let banks = field_u32(v, "banks", 1)?;
    let node = node_from_nm(field_u64(v, "node", 32)?)?;
    let cell = cell_from(field_str(v, "cell", "sram")?)?;
    let access_mode = mode_from(field_str(v, "mode", "normal")?)?;
    let variant = opt_from(field_str(v, "opt", "default")?)?;
    let ram = matches!(v.get("ram"), Some(JsonValue::Bool(true)));
    let (kind, default_assoc) = if let Some(mm) = v.get("main_memory") {
        let kind = MemoryKind::MainMemory {
            io_bits: field_u32(mm, "io", 8)?,
            burst_length: field_u32(mm, "burst", 8)?,
            prefetch: field_u32(mm, "prefetch", 8)?,
            page_bits: field_u64(mm, "page", 8 << 10)?,
        };
        (kind, 1)
    } else if ram {
        (MemoryKind::Ram, 1)
    } else {
        (MemoryKind::Cache { access_mode }, 8)
    };
    let associativity = field_u32(v, "assoc", default_assoc)?;
    let spec = MemorySpec::builder()
        .capacity_bytes(size)
        .block_bytes(block)
        .associativity(associativity)
        .banks(banks)
        .cell_tech(cell)
        .node(node)
        .kind(kind)
        .optimization(variant.opt)
        .build();
    let point = GridPoint {
        idx: usize::try_from(id).map_err(|_| "field \"id\" is out of range".to_string())?,
        capacity_bytes: size,
        block_bytes: block,
        associativity,
        banks,
        node,
        cell,
        access_mode,
        opt_label: variant.label,
        spec,
    };
    Ok(Request::Solve {
        id,
        point: Box::new(point),
    })
}

fn grid_request(id: u64, v: &JsonValue) -> Result<Request, String> {
    let mut grid = Grid::new();
    grid.capacities = field_list(v, "sizes", elem_u64)?
        .ok_or_else(|| "grid requests require a \"sizes\" array (bytes)".to_string())?;
    if let Some(blocks) = field_list(v, "blocks", elem_u32)? {
        grid.blocks = blocks;
    }
    if let Some(assocs) = field_list(v, "assocs", elem_u32)? {
        grid.associativities = assocs;
    }
    if let Some(banks) = field_list(v, "banks", elem_u32)? {
        grid.banks = banks;
    }
    if let Some(nodes) = field_list(v, "nodes", |n| node_from_nm(elem_u64(n)?))? {
        grid.nodes = nodes;
    }
    if let Some(cells) = field_list(v, "cells", |c| cell_from(elem_str(c)?))? {
        grid.cells = cells;
    }
    if let Some(opts) = field_list(v, "opts", |o| opt_from(elem_str(o)?))? {
        grid.opts = opts;
    }
    grid.access_mode = mode_from(field_str(v, "mode", "normal")?)?;
    Ok(Request::Grid { id, grid })
}

/// Parses one request line.
///
/// # Errors
///
/// `(id, message)` — the best-effort request id (0 when the line is not
/// even an object with an integer `id`) plus a human-readable reason, for
/// the caller to render as an error response.
pub fn parse_request(line: &str) -> Result<Request, (u64, String)> {
    let v = parse(line).map_err(|e| (0, format!("invalid JSON: {e}")))?;
    let id = v
        .get("id")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| (0, "requests require an integer \"id\" field".to_string()))?;
    let op = v
        .get("op")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| (id, "requests require a string \"op\" field".to_string()))?;
    match op {
        "solve" => solve_request(id, &v).map_err(|m| (id, m)),
        "grid" => grid_request(id, &v).map_err(|m| (id, m)),
        "stats" => Ok(Request::Stats { id }),
        "shutdown" => Ok(Request::Shutdown { id }),
        other => Err((id, format!("unknown op {other:?}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_request_fills_defaults_and_builds_the_spec() {
        let r = parse_request(r#"{"id":7,"op":"solve","size":1048576}"#).unwrap();
        let Request::Solve { id, point } = r else {
            panic!("expected solve");
        };
        assert_eq!(id, 7);
        assert_eq!(point.idx, 7);
        assert_eq!(point.capacity_bytes, 1 << 20);
        assert_eq!(point.block_bytes, 64);
        assert_eq!(point.associativity, 8);
        assert_eq!(point.opt_label, "default");
        let spec = point.spec.as_ref().unwrap();
        assert!(matches!(spec.kind, MemoryKind::Cache { .. }));
    }

    #[test]
    fn main_memory_and_ram_kinds_parse() {
        let r = parse_request(
            r#"{"id":1,"op":"solve","size":1073741824,"block":8,"banks":8,"cell":"comm-dram","node":78,"main_memory":{"io":8,"burst":8,"prefetch":8,"page":8192}}"#,
        )
        .unwrap();
        let Request::Solve { point, .. } = r else {
            panic!("expected solve");
        };
        let spec = point.spec.as_ref().unwrap();
        assert!(matches!(
            spec.kind,
            MemoryKind::MainMemory {
                io_bits: 8,
                page_bits: 8192,
                ..
            }
        ));
        assert_eq!(spec.associativity, 1, "main memory defaults to direct");

        let r = parse_request(r#"{"id":2,"op":"solve","size":65536,"ram":true}"#).unwrap();
        let Request::Solve { point, .. } = r else {
            panic!("expected solve");
        };
        assert!(matches!(point.spec.as_ref().unwrap().kind, MemoryKind::Ram));
    }

    #[test]
    fn invalid_axis_combination_is_a_point_not_an_error() {
        // 48 KB doesn't form a power-of-two set count: the request parses,
        // the point carries the validation error (rendered as an
        // `"invalid"` record, same as explore).
        let r = parse_request(r#"{"id":3,"op":"solve","size":49152}"#).unwrap();
        let Request::Solve { point, .. } = r else {
            panic!("expected solve");
        };
        assert!(point.spec.is_err());
    }

    #[test]
    fn grid_request_mirrors_the_explore_axes() {
        let r = parse_request(
            r#"{"id":9,"op":"grid","sizes":[65536,131072],"assocs":[4,8],"opts":["default","ed"]}"#,
        )
        .unwrap();
        let Request::Grid { id, grid } = r else {
            panic!("expected grid");
        };
        assert_eq!(id, 9);
        assert_eq!(grid.capacities, vec![65536, 131072]);
        assert_eq!(grid.associativities, vec![4, 8]);
        assert_eq!(grid.opts.len(), 2);
        assert_eq!(grid.len(), 8);
    }

    #[test]
    fn malformed_requests_name_the_problem() {
        for (line, expect) in [
            ("not json", "invalid JSON"),
            (r#"{"op":"solve"}"#, "integer \"id\""),
            (r#"{"id":1}"#, "string \"op\""),
            (r#"{"id":1,"op":"fly"}"#, "unknown op"),
            (r#"{"id":1,"op":"solve"}"#, "\"size\""),
            (
                r#"{"id":1,"op":"solve","size":1024,"cell":"flash"}"#,
                "cell",
            ),
            (
                r#"{"id":1,"op":"solve","size":1024,"opt":"x"}"#,
                "opt variant",
            ),
            (r#"{"id":1,"op":"grid","sizes":[]}"#, "must not be empty"),
        ] {
            let (_, msg) = parse_request(line).unwrap_err();
            assert!(msg.contains(expect), "{line}: {msg}");
        }
        // The id survives into the error when parseable.
        let (id, _) = parse_request(r#"{"id":42,"op":"fly"}"#).unwrap_err();
        assert_eq!(id, 42);
    }
}
