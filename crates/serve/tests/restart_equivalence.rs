//! The acceptance pin for the persistent store: after a service restart, a
//! duplicate query answered from disk is **byte-identical** to a cold
//! in-process solve — no model evaluation, same bytes.

use cactid_serve::{ServeConfig, Service};

fn answer(svc: &Service, request: &str) -> String {
    let (mut lines, _) = svc.handle_line(request);
    assert_eq!(lines.len(), 1);
    lines.remove(0)
}

#[test]
fn warm_restart_answers_are_byte_identical_to_cold_solves() {
    let dir = std::env::temp_dir().join(format!("cactid-serve-restart-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("solutions.store");
    std::fs::remove_file(&store).ok();
    let config = ServeConfig {
        threads: 1,
        store: Some(store.clone()),
    };
    let requests = [
        r#"{"id":1,"op":"solve","size":1048576,"assoc":8,"cell":"sram","node":32}"#,
        r#"{"id":2,"op":"solve","size":8388608,"assoc":16,"cell":"lp-dram","node":32}"#,
        r#"{"id":3,"op":"solve","size":1073741824,"block":8,"banks":8,"cell":"comm-dram","node":78,"main_memory":{"io":8,"burst":8,"prefetch":8,"page":8192}}"#,
    ];

    // Cold: a fresh service populates the store by actually solving.
    let cold: Vec<String> = {
        let svc = Service::new(&config).unwrap();
        let cold = requests.iter().map(|r| answer(&svc, r)).collect();
        assert_eq!(svc.store().unwrap().len(), 3);
        assert_eq!(svc.cache().len(), 3, "cold answers went through the memo");
        cold
    };
    for line in &cold {
        assert!(line.contains("\"status\":\"ok\""), "{line}");
    }

    // Restart: a new process-equivalent service reopens the same file.
    let svc = Service::new(&config).unwrap();
    assert_eq!(svc.store().unwrap().len(), 3, "the store reloaded warm");
    for (request, cold_line) in requests.iter().zip(&cold) {
        let warm = answer(&svc, request);
        assert_eq!(&warm, cold_line, "warm answer must be bitwise cold");
    }
    assert!(
        svc.cache().is_empty(),
        "every warm answer came from the store — the memo never saw a solve"
    );

    // A duplicate under a different id differs only in the idx prefix.
    let relabeled = answer(
        &svc,
        r#"{"id":99,"op":"solve","size":1048576,"assoc":8,"cell":"sram","node":32}"#,
    );
    assert!(relabeled.starts_with("{\"idx\":99,"));
    let body = |l: &str| l.split_once(',').map(|(_, b)| b.to_string()).unwrap();
    assert_eq!(body(&relabeled), body(&cold[0]));
    assert!(svc.cache().is_empty());

    // Cross-check against a store-less service: the cold in-process solve
    // path and the warm spliced path agree byte-for-byte.
    let memo_only = Service::new(&ServeConfig::default()).unwrap();
    for (request, cold_line) in requests.iter().zip(&cold) {
        assert_eq!(&answer(&memo_only, request), cold_line);
    }

    std::fs::remove_dir_all(&dir).ok();
}
