//! Pass-transistor column multiplexers (bitline mux and sense-amp mux).

use crate::horowitz::stage;
use crate::BlockResult;
use cactid_tech::DeviceParams;
use cactid_units::{energy_cv2, Farads, Meters, Seconds};

/// A `degree`:1 pass-transistor mux on a capacitive node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PassMux {
    /// Mux degree (1 = pass-through, modeled as zero cost).
    pub degree: usize,
    /// Pass-device width.
    pub w_pass: Meters,
}

impl PassMux {
    /// Designs a mux of the given degree; pass devices are sized a few
    /// multiples of minimum width.
    pub fn design(dev: &DeviceParams, degree: usize) -> PassMux {
        PassMux {
            degree,
            w_pass: 6.0 * dev.min_width,
        }
    }

    /// Evaluates one traversal driving `c_out`.
    pub fn evaluate(&self, dev: &DeviceParams, input_ramp: Seconds, c_out: Farads) -> BlockResult {
        if self.degree <= 1 {
            return BlockResult {
                ramp_out: input_ramp,
                ..BlockResult::default()
            };
        }
        let r = dev.res_on_n(self.w_pass);
        // The output node sees the drain caps of all `degree` pass devices.
        let c_node = dev.cap_drain(self.w_pass) * self.degree as f64 + c_out;
        let tf = r * c_node;
        let (delay, ramp_out) = stage(input_ramp, tf, 0.5);
        let energy = energy_cv2(c_node, dev.vdd)
            // Select-line toggle.
            + energy_cv2(dev.cap_gate(self.w_pass), dev.vdd);
        let leakage = dev.leak_power(self.w_pass * self.degree as f64 * 0.5);
        let f = dev.min_width / 2.5;
        let area = self.degree as f64 * self.w_pass * 4.0 * f;
        BlockResult {
            delay,
            ramp_out,
            energy,
            leakage,
            area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{DeviceType, TechNode, Technology};
    use cactid_units::Joules;

    fn dev() -> DeviceParams {
        Technology::new(TechNode::N32).device(DeviceType::Hp)
    }

    #[test]
    fn degree_one_is_free() {
        let d = dev();
        let m = PassMux::design(&d, 1);
        let r = m.evaluate(&d, Seconds::ps(5.0), Farads::ff(100.0));
        assert_eq!(r.delay, Seconds::ZERO);
        assert_eq!(r.energy, Joules::ZERO);
        assert_eq!(r.ramp_out, Seconds::ps(5.0));
    }

    #[test]
    fn higher_degree_is_slower_and_leakier() {
        let d = dev();
        let m2 = PassMux::design(&d, 2).evaluate(&d, Seconds::ZERO, Farads::ff(50.0));
        let m8 = PassMux::design(&d, 8).evaluate(&d, Seconds::ZERO, Farads::ff(50.0));
        assert!(m8.delay > m2.delay);
        assert!(m8.leakage > m2.leakage);
        assert!(m8.area > m2.area);
    }
}
