//! Optimal repeater insertion for long wires, with the energy-delay
//! relaxation knob the paper describes (§2.4, `max repeater delay
//! constraint`): repeaters may be downsized/spread out to trade a bounded
//! delay increase for energy savings.

use crate::horowitz::stage;
use crate::BlockResult;
use cactid_tech::{DeviceParams, WireParams};
use cactid_units::{energy_cv2, Meters, Seconds};

/// A repeatered wire of a given length.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepeatedWire {
    /// Total wire length.
    pub length: Meters,
    /// Repeater segment length.
    pub seg_len: Meters,
    /// Repeater NMOS width.
    pub w_rep: Meters,
    /// Number of segments (≥ 1).
    pub n_seg: usize,
}

impl RepeatedWire {
    /// Designs a repeatered wire of `length` using classic optimal
    /// repeater sizing, then relaxes it by `relax ≥ 1.0`: repeaters are
    /// downsized by `relax` and spaced `√relax` further apart, trading
    /// delay for energy exactly as CACTI's `max repeater delay constraint`
    /// knob does.
    ///
    /// # Panics
    ///
    /// Panics if `length` is not positive or `relax < 1.0`.
    pub fn design(
        dev: &DeviceParams,
        wire: &WireParams,
        length: Meters,
        relax: f64,
    ) -> RepeatedWire {
        assert!(length > Meters::ZERO, "wire length must be positive");
        assert!(relax >= 1.0, "relax must be ≥ 1.0");
        let r0 = dev.r_eff_n; // Ω·m (per unit width)
        let c_g = dev.c_gate * (1.0 + dev.p_to_n_ratio);
        let c_d = dev.c_drain * (1.0 + dev.p_to_n_ratio);
        // Escape hatch: the intermediates under these square roots (s and
        // m², but only after the division) have no named quantity, so the
        // classic closed forms are computed on raw SI values.
        let l_opt = Meters::from_si(
            (2.0 * r0.value() * (c_g + c_d).value()
                / (wire.r_per_m.value() * wire.c_per_m.value()))
            .sqrt(),
        );
        let w_opt = Meters::from_si(
            (r0.value() * wire.c_per_m.value() / (wire.r_per_m.value() * c_g.value())).sqrt(),
        );
        let seg_len = l_opt * relax.sqrt();
        let w_rep = (w_opt / relax).max(dev.min_width);
        let n_seg = (length / seg_len).ceil().max(1.0) as usize;
        RepeatedWire {
            length,
            seg_len: length / n_seg as f64,
            w_rep,
            n_seg,
        }
    }

    /// Evaluates the wire: total delay, energy per full-swing transition,
    /// repeater leakage, and the silicon area of the repeaters (wire tracks
    /// are accounted by the floorplan, not here).
    pub fn evaluate(
        &self,
        dev: &DeviceParams,
        wire: &WireParams,
        input_ramp: Seconds,
    ) -> BlockResult {
        let w_n = self.w_rep;
        let w_p = w_n * dev.p_to_n_ratio;
        let r_drv = dev.res_on_n(w_n);
        let c_in = dev.cap_gate(w_n + w_p);
        let c_self = dev.cap_drain(w_n + w_p);
        let c_w = wire.cap(self.seg_len);
        let r_w = wire.res(self.seg_len);
        let mut delay = Seconds::ZERO;
        let mut ramp = input_ramp;
        // Driver sees its own drain, the wire, and the next repeater; the
        // time constant is identical for every segment — only the ramp
        // evolves through the chain.
        let tf = r_drv * (c_self + c_w + c_in) + r_w * (0.38 * c_w + 0.69 * c_in);
        for _ in 0..self.n_seg {
            let (d, r_out) = stage(ramp, tf, 0.5);
            delay += d;
            ramp = r_out;
        }
        let c_total = self.n_seg as f64 * (c_self + c_w + c_in);
        let energy = energy_cv2(c_total, dev.vdd);
        let leakage = self.n_seg as f64 * dev.leak_power((w_n + w_p) / 2.0);
        let f = dev.min_width / 2.5;
        let area = self.n_seg as f64 * (w_n + w_p) * 4.0 * f;
        BlockResult {
            delay,
            ramp_out: ramp,
            energy,
            leakage,
            area,
        }
    }

    /// Delay of one pipeline segment — the minimum initiation interval of a
    /// wave-pipelined H-tree built from this wire.
    pub fn stage_delay(&self, dev: &DeviceParams, wire: &WireParams) -> Seconds {
        let per = self.evaluate(dev, wire, Seconds::ZERO);
        per.delay / self.n_seg as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{DeviceType, TechNode, Technology, WireType};

    fn setup() -> (DeviceParams, WireParams) {
        let t = Technology::new(TechNode::N32);
        (t.device(DeviceType::Hp), t.wire(WireType::SemiGlobal))
    }

    #[test]
    fn repeated_wire_is_linear_in_length() {
        let (d, w) = setup();
        let short =
            RepeatedWire::design(&d, &w, Meters::mm(1.0), 1.0).evaluate(&d, &w, Seconds::ZERO);
        let long =
            RepeatedWire::design(&d, &w, Meters::mm(4.0), 1.0).evaluate(&d, &w, Seconds::ZERO);
        let ratio = long.delay / short.delay;
        assert!((3.0..5.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn delay_is_roughly_100ps_per_mm_at_32nm() {
        let (d, w) = setup();
        let r = RepeatedWire::design(&d, &w, Meters::mm(1.0), 1.0).evaluate(&d, &w, Seconds::ZERO);
        let ps_per_mm = r.delay / Seconds::ps(1.0);
        assert!(
            (30.0..300.0).contains(&ps_per_mm),
            "{ps_per_mm} ps/mm out of band"
        );
    }

    #[test]
    fn relaxation_trades_delay_for_energy() {
        let (d, w) = setup();
        let tight =
            RepeatedWire::design(&d, &w, Meters::mm(2.0), 1.0).evaluate(&d, &w, Seconds::ZERO);
        let relaxed =
            RepeatedWire::design(&d, &w, Meters::mm(2.0), 2.0).evaluate(&d, &w, Seconds::ZERO);
        assert!(relaxed.delay > tight.delay);
        assert!(relaxed.energy < tight.energy);
        assert!(relaxed.leakage < tight.leakage);
    }

    #[test]
    #[should_panic(expected = "relax")]
    fn rejects_relax_below_one() {
        let (d, w) = setup();
        RepeatedWire::design(&d, &w, Meters::mm(1.0), 0.5);
    }
}
