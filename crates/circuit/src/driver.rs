//! Logical-effort-sized inverter (buffer) chains.

use crate::area::{inverter_area_for_cap, DEFAULT_LEG_HEIGHT_F};
use crate::horowitz::stage;
use crate::logical_effort::size_chain;
use crate::BlockResult;
use cactid_tech::DeviceParams;
use cactid_units::{energy_cv2, Farads, Joules, Meters, Seconds, SquareMeters, Volts, Watts};

/// Per-stage evaluation detail, exposed for tests and debugging.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageResult {
    /// Input capacitance of this stage.
    pub c_in: Farads,
    /// Delay contributed by this stage.
    pub delay: Seconds,
}

/// A chain of inverters sized to drive a capacitive load, the workhorse
/// behind wordline drivers, predecoder drivers, output drivers and mux
/// drivers.
#[derive(Debug, Clone, PartialEq)]
pub struct BufferChain {
    /// Input capacitance of each stage, first to last.
    pub stage_caps: Vec<Farads>,
    /// The load the chain was designed for.
    pub c_load: Farads,
}

impl BufferChain {
    /// Designs a chain whose first stage presents `c_in` of input
    /// capacitance and which drives `c_load`.
    ///
    /// # Panics
    ///
    /// Panics if `c_in` or `c_load` is not positive.
    pub fn design(dev: &DeviceParams, c_in: Farads, c_load: Farads) -> BufferChain {
        let c_in = c_in.max(dev.c_inv_min());
        let chain = size_chain(c_in, c_load, 1.0, 1);
        let stage_caps = chain.cap_ratios.iter().map(|r| *r * c_in).collect();
        BufferChain { stage_caps, c_load }
    }

    /// Number of inverter stages.
    pub fn n_stages(&self) -> usize {
        self.stage_caps.len()
    }

    /// NMOS width of stage `i` under `dev`.
    pub fn stage_width_n(&self, dev: &DeviceParams, i: usize) -> Meters {
        (self.stage_caps[i] / ((1.0 + dev.p_to_n_ratio) * dev.c_gate)).max(dev.min_width)
    }

    /// Evaluates delay/energy/leakage/area of the chain given the input
    /// transition time `input_ramp`, switching at `dev.vdd`.
    pub fn evaluate(&self, dev: &DeviceParams, input_ramp: Seconds) -> BlockResult {
        self.evaluate_at(dev, input_ramp, dev.vdd)
    }

    /// Delay and output ramp of the chain for `input_ramp`, skipping the
    /// ramp-independent energy/leakage/area bookkeeping. Performs the
    /// identical float operations in the identical order as the delay
    /// accumulation inside [`BufferChain::evaluate_at`], so the result is
    /// bit-identical — the swing voltage only affects energy, never delay.
    pub fn delay(&self, dev: &DeviceParams, input_ramp: Seconds) -> (Seconds, Seconds) {
        let mut delay = Seconds::ZERO;
        let mut ramp = input_ramp;
        let n = self.n_stages();
        for i in 0..n {
            let w_n = self.stage_width_n(dev, i);
            let w_p = w_n * dev.p_to_n_ratio;
            let r = dev.res_on_n(w_n);
            let c_self = dev.cap_drain(w_n + w_p);
            let c_next = if i + 1 < n {
                self.stage_caps[i + 1]
            } else {
                self.c_load
            };
            let tf = r * (c_self + c_next);
            let (d, ramp_out) = stage(ramp, tf, 0.5);
            delay += d;
            ramp = ramp_out;
        }
        (delay, ramp)
    }

    /// Like [`BufferChain::evaluate`] but switching the *final* load at
    /// `v_swing` (e.g. a boosted-V_PP wordline) while internal stages swing
    /// the device VDD.
    pub fn evaluate_at(
        &self,
        dev: &DeviceParams,
        input_ramp: Seconds,
        v_swing: Volts,
    ) -> BlockResult {
        let mut delay = Seconds::ZERO;
        let mut ramp = input_ramp;
        let mut energy = Joules::ZERO;
        let mut leak = Watts::ZERO;
        let mut area = SquareMeters::ZERO;
        // Recover the feature size from the device's minimum width
        // (min_width = 2.5 F by construction in cactid-tech).
        let f = dev.min_width / 2.5;
        let n = self.n_stages();
        for i in 0..n {
            let w_n = self.stage_width_n(dev, i);
            let w_p = w_n * dev.p_to_n_ratio;
            let r = dev.res_on_n(w_n);
            let c_self = dev.cap_drain(w_n + w_p);
            let c_next = if i + 1 < n {
                self.stage_caps[i + 1]
            } else {
                self.c_load
            };
            let tf = r * (c_self + c_next);
            let (d, ramp_out) = stage(ramp, tf, 0.5);
            delay += d;
            ramp = ramp_out;
            let v = if i + 1 == n { v_swing } else { dev.vdd };
            // Activity convention: one full transition per access; energy
            // drawn from the supply to charge the node is C·V² but averaged
            // over rising/falling accesses we charge it every other access.
            energy += energy_cv2(c_self + c_next, v);
            leak += dev.leak_power((w_n + w_p) / 2.0);
            area +=
                inverter_area_for_cap(dev, self.stage_caps[i], DEFAULT_LEG_HEIGHT_F * f, f).area();
        }
        BlockResult {
            delay,
            ramp_out: ramp,
            energy,
            leakage: leak,
            area,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{DeviceType, TechNode, Technology};

    fn dev() -> DeviceParams {
        Technology::new(TechNode::N32).device(DeviceType::Hp)
    }

    #[test]
    fn delay_only_path_matches_evaluate_bitwise() {
        let d = dev();
        let chain = BufferChain::design(&d, d.c_inv_min(), 600.0 * d.c_inv_min());
        for ramp_ps in [0.0, 2.9, 80.0] {
            let ramp = Seconds::ps(ramp_ps);
            let full = chain.evaluate(&d, ramp);
            assert_eq!(chain.delay(&d, ramp), (full.delay, full.ramp_out));
        }
    }

    #[test]
    fn bigger_load_is_slower_and_hungrier() {
        let d = dev();
        let small =
            BufferChain::design(&d, d.c_inv_min(), Farads::ff(20.0)).evaluate(&d, Seconds::ZERO);
        let big =
            BufferChain::design(&d, d.c_inv_min(), Farads::ff(2000.0)).evaluate(&d, Seconds::ZERO);
        assert!(big.delay > small.delay);
        assert!(big.energy > small.energy);
        assert!(big.leakage > small.leakage);
        assert!(big.area > small.area);
    }

    #[test]
    fn delay_is_a_few_fo4_per_decade() {
        let d = dev();
        let tech = Technology::new(TechNode::N32);
        let fo4 = tech.fo4(DeviceType::Hp);
        // Driving 1000× the min inverter cap should take ~5 stages ≈ 5 FO4.
        let r = BufferChain::design(&d, d.c_inv_min(), 1000.0 * d.c_inv_min())
            .evaluate(&d, Seconds::ZERO);
        assert!(r.delay > 2.0 * fo4 && r.delay < 12.0 * fo4, "{}", r.delay);
    }

    #[test]
    fn boosted_swing_raises_energy_only() {
        let d = dev();
        let chain = BufferChain::design(&d, d.c_inv_min(), Farads::ff(500.0));
        let normal = chain.evaluate_at(&d, Seconds::ZERO, d.vdd);
        let boosted = chain.evaluate_at(&d, Seconds::ZERO, Volts::from_si(2.6));
        assert!(boosted.energy > normal.energy);
        assert_eq!(boosted.delay, normal.delay);
    }

    #[test]
    fn slow_input_propagates() {
        let d = dev();
        let chain = BufferChain::design(&d, d.c_inv_min(), Farads::ff(100.0));
        let fast = chain.evaluate(&d, Seconds::ZERO);
        let slow = chain.evaluate(&d, Seconds::ps(100.0));
        assert!(slow.delay > fast.delay);
    }
}
