//! Analytical gate-area model with folding and pitch-matching.
//!
//! The paper (§2.3) emphasizes that gate areas must be *sensitive to
//! transistor sizing*, and that pitch-matched circuits (wordline drivers,
//! sense amplifiers) fold their transistors to fit the pitch they must
//! satisfy. This module implements that: a transistor of total width `w`
//! constrained to a maximum leg height `h_max` is folded into
//! `ceil(w / h_max)` legs, each occupying one contacted gate pitch
//! horizontally.

use cactid_tech::DeviceParams;
use cactid_units::{Farads, Meters, SquareMeters};

/// Contacted gate pitch in feature sizes — the horizontal extent of one
/// folded transistor leg (gate + contact + spacing).
pub const GATE_PITCH_F: f64 = 4.0;
/// Default maximum leg height for unconstrained logic, in feature sizes.
pub const DEFAULT_LEG_HEIGHT_F: f64 = 50.0;
/// Vertical overhead per gate (well taps, power rails), in feature sizes.
pub const GATE_OVERHEAD_F: f64 = 10.0;

/// Computed layout footprint of a gate.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GateArea {
    /// Horizontal extent.
    pub width: Meters,
    /// Vertical extent.
    pub height: Meters,
}

impl GateArea {
    /// Footprint area.
    pub fn area(&self) -> SquareMeters {
        self.width * self.height
    }
}

/// Area of a single transistor of total width `w`, folded to legs no taller
/// than `h_max`; `f` is the feature size.
///
/// # Panics
///
/// Panics if `w`, `h_max` or `f` is not positive.
pub fn transistor_area(w: Meters, h_max: Meters, f: Meters) -> GateArea {
    assert!(w > Meters::ZERO && h_max > Meters::ZERO && f > Meters::ZERO);
    let legs = (w / h_max).ceil().max(1.0);
    let leg_h = (w / legs).min(h_max);
    GateArea {
        width: legs * GATE_PITCH_F * f,
        height: leg_h,
    }
}

/// Area of a static CMOS gate with NMOS width `w_n` and PMOS width `w_p`
/// stacked vertically, each folded to fit within `h_max` total height
/// (split between the N and P devices in proportion to their widths).
pub fn gate_area(w_n: Meters, w_p: Meters, h_max: Meters, f: Meters) -> GateArea {
    assert!(w_n > Meters::ZERO && w_p > Meters::ZERO);
    let h_n = h_max * w_n / (w_n + w_p);
    let h_p = h_max - h_n;
    let n = transistor_area(w_n, h_n.max(f), f);
    let p = transistor_area(w_p, h_p.max(f), f);
    GateArea {
        width: n.width.max(p.width),
        height: n.height + p.height + GATE_OVERHEAD_F * f,
    }
}

/// Area of an inverter sized for input capacitance `c_in` under `dev`,
/// pitch-matched to `h_max`.
pub fn inverter_area_for_cap(
    dev: &DeviceParams,
    c_in: Farads,
    h_max: Meters,
    f: Meters,
) -> GateArea {
    let w_n = (c_in / ((1.0 + dev.p_to_n_ratio) * dev.c_gate)).max(dev.min_width);
    let w_p = w_n * dev.p_to_n_ratio;
    gate_area(w_n, w_p, h_max, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{DeviceType, TechNode, Technology};

    const F: Meters = Meters::from_si(32e-9);

    #[test]
    fn area_grows_with_width() {
        let small = transistor_area(10.0 * F, 50.0 * F, F);
        let big = transistor_area(100.0 * F, 50.0 * F, F);
        assert!(big.area() > small.area());
    }

    #[test]
    fn folding_kicks_in_beyond_leg_height() {
        let unfolded = transistor_area(40.0 * F, 50.0 * F, F);
        assert!((unfolded.width - GATE_PITCH_F * F).abs() < Meters::from_si(1e-12));
        let folded = transistor_area(200.0 * F, 50.0 * F, F);
        // 200F / 50F = 4 legs.
        assert!((folded.width - 4.0 * GATE_PITCH_F * F).abs() < Meters::from_si(1e-12));
        assert!(folded.height <= 50.0 * F + Meters::from_si(1e-12));
    }

    #[test]
    fn tighter_pitch_means_wider_layout() {
        // Pitch-matching constraint: squeezing the same transistor into a
        // shorter leg makes the layout wider — the paper's DRAM-vs-SRAM
        // pitch-matching effect.
        let loose = transistor_area(100.0 * F, 50.0 * F, F);
        let tight = transistor_area(100.0 * F, 10.0 * F, F);
        assert!(tight.width > loose.width);
        assert!(tight.area() >= loose.area() * 0.9);
    }

    #[test]
    fn inverter_area_respects_min_width() {
        let tech = Technology::new(TechNode::N32);
        let dev = tech.device(DeviceType::Hp);
        let tiny = inverter_area_for_cap(&dev, Farads::from_si(1e-18), 50.0 * F, F);
        let min_expected = gate_area(dev.min_width, dev.min_width * 2.0, 50.0 * F, F);
        assert!((tiny.area() - min_expected.area()).abs() / min_expected.area() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_width() {
        transistor_area(Meters::ZERO, Meters::from_si(1.0), Meters::from_si(1e-9));
    }
}
