//! Method of logical effort for sizing gate chains.
//!
//! The paper follows Amrutur & Horowitz in sizing decoder and driver chains
//! by logical effort: pick the number of stages so the per-stage effort is
//! near the optimum (~4), then distribute sizes geometrically.

use cactid_units::Farads;

/// Logical effort of common gates (relative to an inverter's `g = 1`),
/// assuming a P:N ratio of 2.
pub fn gate_logical_effort(fanin: usize, is_nand: bool) -> f64 {
    let n = fanin as f64;
    if is_nand {
        (n + 2.0) / 3.0
    } else {
        // NOR
        (2.0 * n + 1.0) / 3.0
    }
}

/// A sized chain computed by logical effort.
#[derive(Debug, Clone, PartialEq)]
pub struct EffortChain {
    /// Electrical×logical effort each stage carries.
    pub stage_effort: f64,
    /// Number of stages.
    pub n_stages: usize,
    /// Input-capacitance multiple of each stage relative to the chain's
    /// first-stage input capacitance.
    pub cap_ratios: Vec<f64>,
}

/// Target per-stage effort. 4 is the textbook optimum; CACTI uses ~3–4.
pub const OPT_STAGE_EFFORT: f64 = 4.0;

/// Sizes a chain to drive `c_load` from an input capacitance `c_in` with
/// total logical effort `g_total` (product of the gates' logical efforts).
///
/// Returns the chain with the stage count that brings per-stage effort
/// closest to [`OPT_STAGE_EFFORT`], always using at least `min_stages`
/// stages.
///
/// # Panics
///
/// Panics if `c_in` or `c_load` is not positive.
pub fn size_chain(c_in: Farads, c_load: Farads, g_total: f64, min_stages: usize) -> EffortChain {
    assert!(c_in > Farads::ZERO, "c_in must be positive");
    assert!(c_load > Farads::ZERO, "c_load must be positive");
    let path_effort = (g_total * c_load / c_in).max(1.0);
    // Optimal stage count.
    let n_float = path_effort.ln() / OPT_STAGE_EFFORT.ln();
    let n = (n_float.round() as usize).max(min_stages).max(1);
    let stage_effort = path_effort.powf(1.0 / n as f64);
    // Geometric capacitance progression; the logical effort is assumed
    // spread over the first stages (adequate for delay/energy purposes).
    let mut cap_ratios = Vec::with_capacity(n);
    let mut c = 1.0;
    for _ in 0..n {
        cap_ratios.push(c);
        c *= stage_effort / 1.0;
    }
    EffortChain {
        stage_effort,
        n_stages: n,
        cap_ratios,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nand_and_nor_efforts() {
        assert!((gate_logical_effort(2, true) - 4.0 / 3.0).abs() < 1e-12);
        assert!((gate_logical_effort(3, true) - 5.0 / 3.0).abs() < 1e-12);
        assert!((gate_logical_effort(2, false) - 5.0 / 3.0).abs() < 1e-12);
        // NOR is always worse than NAND at equal fan-in.
        for n in 2..6 {
            assert!(gate_logical_effort(n, false) > gate_logical_effort(n, true));
        }
    }

    #[test]
    fn chain_effort_near_optimum() {
        let chain = size_chain(Farads::ff(1.0), Farads::ff(256.0), 1.0, 1);
        assert!(chain.stage_effort > 2.0 && chain.stage_effort < 8.0);
        assert_eq!(chain.cap_ratios.len(), chain.n_stages);
        // First stage is unit-sized.
        assert!((chain.cap_ratios[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bigger_load_needs_more_stages() {
        let small = size_chain(Farads::ff(1.0), Farads::ff(16.0), 1.0, 1);
        let big = size_chain(Farads::ff(1.0), Farads::ff(65536.0), 1.0, 1);
        assert!(big.n_stages > small.n_stages);
    }

    #[test]
    fn min_stages_respected() {
        let chain = size_chain(Farads::ff(1.0), Farads::ff(2.0), 1.0, 3);
        assert_eq!(chain.n_stages, 3);
    }

    #[test]
    #[should_panic(expected = "c_load must be positive")]
    fn rejects_nonpositive_load() {
        size_chain(Farads::ff(1.0), Farads::ZERO, 1.0, 1);
    }
}
