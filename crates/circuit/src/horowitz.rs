//! Horowitz's gate-delay approximation.
//!
//! CACTI (and this reproduction) evaluates each gate stage with Horowitz's
//! closed-form approximation, which captures the first-order effect of a
//! finite input slope on propagation delay. See M. Horowitz, *Timing Models
//! for MOS Circuits*, 1983 — and the CACTI 5.1 technical report for the
//! exact form used here.

use cactid_units::Seconds;

/// Horowitz delay of one gate stage.
///
/// * `input_ramp` — input transition time (zero for an ideal step),
/// * `tf` — the stage's RC time constant `R_drive × C_load`,
/// * `vs` — switching threshold as a fraction of VDD (typically 0.5).
///
/// Returns the propagation delay. With a step input this degenerates to the
/// familiar `tf·|ln vs|` (≈ `0.69·tf` for `vs = 0.5`).
pub fn horowitz(input_ramp: Seconds, tf: Seconds, vs: f64) -> Seconds {
    debug_assert!(vs > 0.0 && vs < 1.0, "switching threshold must be in (0,1)");
    debug_assert!(tf >= Seconds::ZERO && input_ramp >= Seconds::ZERO);
    if tf == Seconds::ZERO {
        return Seconds::ZERO;
    }
    let a = input_ramp / tf;
    // b models the fraction of the input transition during which the gate
    // conducts; 0.5 is the standard choice.
    let b = 0.5;
    let lnvs = vs.ln();
    tf * (lnvs * lnvs + 2.0 * a * b * (1.0 - vs)).sqrt()
}

/// Output transition time implied by a Horowitz stage: the delay divided by
/// the remaining voltage fraction, the convention CACTI uses to chain
/// stages.
pub fn ramp_from_delay(delay: Seconds, vs: f64) -> Seconds {
    delay / (1.0 - vs)
}

/// Convenience: evaluate a stage and return `(delay, output_ramp)`.
pub fn stage(input_ramp: Seconds, tf: Seconds, vs: f64) -> (Seconds, Seconds) {
    let d = horowitz(input_ramp, tf, vs);
    (d, ramp_from_delay(d, vs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_input_reduces_to_logarithmic_rc() {
        let tf = Seconds::ps(10.0);
        let d = horowitz(Seconds::ZERO, tf, 0.5);
        let expected = tf * 0.5f64.ln().abs();
        assert!((d - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn slower_input_means_longer_delay() {
        let tf = Seconds::ps(10.0);
        let fast = horowitz(Seconds::ps(1.0), tf, 0.5);
        let slow = horowitz(Seconds::ps(40.0), tf, 0.5);
        assert!(slow > fast);
    }

    #[test]
    fn delay_monotone_in_tf() {
        let d1 = horowitz(Seconds::ps(5.0), Seconds::ps(5.0), 0.5);
        let d2 = horowitz(Seconds::ps(5.0), Seconds::ps(10.0), 0.5);
        assert!(d2 > d1);
    }

    #[test]
    fn zero_tf_is_zero_delay() {
        assert_eq!(
            horowitz(Seconds::ps(5.0), Seconds::ZERO, 0.5),
            Seconds::ZERO
        );
    }

    #[test]
    fn ramp_is_delay_scaled() {
        let (d, r) = stage(Seconds::ZERO, Seconds::ps(8.0), 0.5);
        assert!((r - 2.0 * d).abs() < Seconds::from_si(1e-18));
    }
}
