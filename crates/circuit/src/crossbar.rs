//! Orion-style matrix crossbar model (Wang et al., MICRO 2002), used for
//! the L2↔L3 interconnect of the LLC study (paper §4.1: "Inside CACTI-D we
//! incorporate a model for the delay and energy consumed in a crossbar").

use crate::driver::BufferChain;
use crate::repeater::RepeatedWire;
use crate::BlockResult;
use cactid_tech::{DeviceParams, WireParams};
use cactid_units::{energy_cv2, Joules, Meters, Seconds};

/// An `n_in × n_out` matrix crossbar carrying `width_bits`-wide flits over
/// a physical span of `side_length` per dimension.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossbar {
    /// Number of input ports.
    pub n_in: usize,
    /// Number of output ports.
    pub n_out: usize,
    /// Datapath width per port \[bits\].
    pub width_bits: usize,
    /// Physical length a flit traverses in each dimension.
    pub side_length: Meters,
}

impl Crossbar {
    /// Creates a crossbar description.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or `side_length` is not positive.
    pub fn new(n_in: usize, n_out: usize, width_bits: usize, side_length: Meters) -> Crossbar {
        assert!(n_in > 0 && n_out > 0 && width_bits > 0);
        assert!(side_length > Meters::ZERO);
        Crossbar {
            n_in,
            n_out,
            width_bits,
            side_length,
        }
    }

    /// Evaluates one flit traversal (input port → output port): delay
    /// through input drivers, the two wire dimensions and the output mux;
    /// energy for `width_bits` toggling wires; leakage and area of the
    /// whole structure.
    pub fn evaluate(&self, dev: &DeviceParams, wire: &WireParams) -> BlockResult {
        // Each crossing wire spans the full side; crosspoint drain loads
        // from every output port hang on the input wire.
        let crosspoint_w = 10.0 * dev.min_width;
        let c_crosspoints = dev.cap_drain(crosspoint_w) * self.n_out as f64;
        let row = RepeatedWire::design(dev, wire, self.side_length, 1.0);
        let row_eval = row.evaluate(dev, wire, Seconds::ZERO);
        let col = RepeatedWire::design(dev, wire, self.side_length, 1.0);
        let col_eval = col.evaluate(dev, wire, row_eval.ramp_out);
        // Input driver sized for the wire + crosspoint load.
        let c_line = wire.cap(self.side_length) + c_crosspoints;
        let drv = BufferChain::design(dev, dev.c_inv_min(), c_line).evaluate(dev, Seconds::ZERO);

        let delay = drv.delay + row_eval.delay + col_eval.delay;
        let bits = self.width_bits as f64;
        // Half the bits toggle on average.
        let energy = 0.5
            * bits
            * (drv.energy + row_eval.energy + col_eval.energy + energy_cv2(c_crosspoints, dev.vdd));
        let per_line_leak = drv.leakage + row_eval.leakage + col_eval.leakage;
        let leakage = bits * (self.n_in + self.n_out) as f64 * per_line_leak;
        // Wiring-dominated area: n_in·width tracks × n_out·width tracks.
        let tracks_in = self.n_in as f64 * bits * wire.pitch;
        let tracks_out = self.n_out as f64 * bits * wire.pitch;
        let area = tracks_in.max(self.side_length) * tracks_out.max(self.side_length);

        BlockResult {
            delay,
            ramp_out: col_eval.ramp_out,
            energy,
            leakage,
            area,
        }
    }

    /// Energy to move `bytes` of payload through the crossbar — scales the
    /// per-flit evaluation by the number of flits needed.
    pub fn transfer_energy(&self, dev: &DeviceParams, wire: &WireParams, bytes: usize) -> Joules {
        let flits = (bytes * 8).div_ceil(self.width_bits);
        self.evaluate(dev, wire).energy * flits as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cactid_tech::{DeviceType, TechNode, Technology, WireType};

    fn setup() -> (DeviceParams, WireParams) {
        let t = Technology::new(TechNode::N32);
        (t.device(DeviceType::Hp), t.wire(WireType::Global))
    }

    #[test]
    fn eight_by_eight_llc_crossbar_is_sub_ns() {
        let (d, w) = setup();
        // ~5 mm span, 128-bit flits: the LLC-study configuration scale.
        let xbar = Crossbar::new(8, 8, 128, Meters::mm(5.0));
        let r = xbar.evaluate(&d, &w);
        assert!(
            r.delay > Seconds::ps(50.0) && r.delay < Seconds::ns(2.0),
            "{}",
            r.delay
        );
        assert!(r.energy > Joules::ZERO);
    }

    #[test]
    fn wider_flits_cost_more_energy() {
        let (d, w) = setup();
        let narrow = Crossbar::new(8, 8, 64, Meters::mm(3.0)).evaluate(&d, &w);
        let wide = Crossbar::new(8, 8, 256, Meters::mm(3.0)).evaluate(&d, &w);
        assert!(wide.energy > narrow.energy);
        assert_eq!(wide.delay, narrow.delay);
    }

    #[test]
    fn transfer_energy_scales_with_payload() {
        let (d, w) = setup();
        let xbar = Crossbar::new(8, 8, 128, Meters::mm(3.0));
        let e64 = xbar.transfer_energy(&d, &w, 64);
        let e128 = xbar.transfer_energy(&d, &w, 128);
        assert!((e128 / e64 - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_ports() {
        Crossbar::new(0, 8, 128, Meters::mm(1.0));
    }
}
